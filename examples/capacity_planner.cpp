// Capacity planning with the serving simulator: given a model, a fleet of
// GPUs and a target workload, compare parallelism mappings (PP vs TP vs
// hybrid) and scheduling policies, and report which deployment sustains the
// target rate within latency SLOs. This is the "which config do I deploy"
// question the paper's Figure 10/12 grids answer for their testbeds.
//
//   ./build/examples/capacity_planner [target_rate] [slo_ttft_s] [slo_tpot_s]

#include <cstdlib>
#include <iostream>

#include "core/gllm.hpp"
#include "serve/router.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace gllm;

namespace {

struct Candidate {
  std::string name;
  serve::SystemOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const double target_rate = argc > 1 ? std::atof(argv[1]) : 6.0;
  const double slo_ttft = argc > 2 ? std::atof(argv[2]) : 5.0;
  const double slo_tpot = argc > 3 ? std::atof(argv[3]) : 0.5;

  const auto model = model::presets::qwen2_5_32b();
  const auto cluster = hw::clusters::l20_node(4);
  const auto workload = workload::WorkloadSpec::sharegpt();

  std::cout << "Planning deployment of " << model.name << " on " << cluster.name
            << " for " << workload.name << " @ " << target_rate
            << " req/s, SLO TTFT <= " << slo_ttft << " s, TPOT <= " << slo_tpot * 1e3
            << " ms\n\n";

  std::vector<Candidate> candidates;
  candidates.push_back({"PP4 + token throttling", serve::SystemOptions::gllm(model, cluster, 4)});
  candidates.push_back({"PP4 + sarathi", serve::SystemOptions::gllm_with_ck(model, cluster, 4)});
  candidates.push_back({"TP4 + sarathi", serve::SystemOptions::sglang(model, cluster, 4)});
  {
    // Hybrid PP2 x TP2 with token throttling.
    auto hybrid = serve::SystemOptions::gllm(model, cluster, 2);
    hybrid.tp = 2;
    hybrid.label = "gLLM-pp2tp2";
    candidates.push_back({"PP2 x TP2 + token throttling", hybrid});
  }
  // Data parallelism is only on the menu when a replica fits one GPU; for a
  // 32B model on 48 GB cards it does not, which the planner reports.
  {
    model::PartitionPlan single(model, 1);
    if (model::kv_token_capacity(single, cluster.gpu, 0.9) > 0) {
      std::cout << "(DP replicas possible; add serve::DataParallelSystem candidates)\n";
    } else {
      std::cout << "note: " << model.name
                << " cannot be replicated onto single GPUs - data parallelism is "
                   "not an option on this fleet.\n\n";
    }
  }

  util::TablePrinter table({"deployment", "TTFT(ms)", "TPOT(ms)", "E2EL(s)",
                            "thr(tok/s)", "SLO", "KV capacity", "verdict"});
  std::string best;
  double best_slo = -1.0;
  for (const auto& candidate : candidates) {
    engine::RunResult raw;
    const auto point = serve::run_at_rate(candidate.options, workload, target_rate,
                                          /*duration=*/48.0, /*seed=*/11, &raw);
    const double slo = raw.slo_attainment(slo_ttft, slo_tpot);
    const serve::ServingSystem probe(candidate.options);
    table.add(candidate.name, util::format_double(point.mean_ttft * 1e3, 0),
              util::format_double(point.mean_tpot * 1e3, 0),
              util::format_double(point.mean_e2el, 1),
              util::format_double(point.throughput, 0),
              util::format_double(slo * 100, 1) + "%",
              std::to_string(probe.engine().kv_capacity_tokens()) + " tok",
              slo >= 0.9 ? "meets SLO" : "violates SLO");
    if (slo > best_slo) {
      best_slo = slo;
      best = candidate.name;
    }
  }
  table.print(std::cout);

  std::cout << "\nrecommendation: " << best << " ("
            << util::format_double(best_slo * 100, 1) << "% SLO attainment at "
            << target_rate << " req/s)\n";

  // How far can the recommended deployment be pushed?
  for (const auto& candidate : candidates) {
    if (candidate.name != best) continue;
    const auto max = serve::find_max_throughput(candidate.options, workload,
                                                target_rate, 24.0, 11);
    std::cout << "its maximum sustainable throughput: "
              << util::format_double(max.max_throughput, 0) << " tok/s (saturates near "
              << util::format_double(max.saturation_rate, 1) << " req/s)\n";
  }
  return 0;
}
