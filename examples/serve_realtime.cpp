// Live pipeline-parallel serving with the real threaded runtime: a driver
// worker schedules micro-batches with Token Throttling, stage workers execute
// a real (tiny) transformer with paged-KV attention, and a decoupled frontend
// thread streams tokens as they are sampled — the paper's runtime
// architecture (3.3) end to end, on CPU.
//
//   ./build/examples/serve_realtime [n_requests] [pp_stages]

#include <cstdlib>
#include <iostream>
#include <mutex>

#include "nn/reference.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "runtime/service.hpp"
#include "sched/token_throttle.hpp"
#include "util/rng.hpp"

using namespace gllm;

int main(int argc, char** argv) {
  const int n_requests = argc > 1 ? std::atoi(argv[1]) : 8;
  const int pp = argc > 2 ? std::atoi(argv[2]) : 4;

  const auto cfg = model::presets::tiny();
  std::cout << "Serving " << n_requests << " requests on a " << pp
            << "-stage threaded pipeline (model: " << cfg.n_layers << " layers, hidden "
            << cfg.hidden << ", GQA " << cfg.n_heads << "/" << cfg.n_kv_heads << ")\n\n";

  util::Rng rng(7);
  std::vector<nn::GenRequest> requests;
  for (int i = 0; i < n_requests; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = nn::synthetic_prompt(cfg, 900 + static_cast<std::uint64_t>(i),
                                    8 + static_cast<int>(rng.uniform_int(0, 32)));
    r.max_new_tokens = 6 + static_cast<int>(rng.uniform_int(0, 10));
    requests.push_back(std::move(r));
  }

  runtime::RuntimeOptions options;
  options.model = cfg;
  options.pp = pp;
  options.kv_capacity_tokens = 4096;
  options.kv_block_size = 8;

  sched::ThrottleParams params;
  params.max_p = 64;
  params.min_p = 8;
  params.iter_t = 4;
  runtime::PipelineRuntime rt(options,
                              std::make_shared<sched::TokenThrottleScheduler>(params));

  std::mutex out_mu;
  const auto report = rt.run(requests, [&](const runtime::StreamEvent& ev) {
    std::lock_guard lock(out_mu);
    if (ev.is_last) {
      std::cout << "[request " << ev.request_id << " complete]\n";
    } else {
      std::cout << "request " << ev.request_id << " -> token " << ev.token << "\n";
    }
  });

  std::cout << "\nDone in " << report.wall_seconds << " s: " << report.iterations
            << " micro-batches, scheduler cost " << report.mean_plan_seconds() * 1e3
            << " ms/iteration (paper: 0.045 ms), " << report.preemptions
            << " preemptions.\n";

  // Output-quality parity, the Table 1 analogue: the pipelined output must be
  // token-identical to the single-stage reference model.
  const auto reference = nn::generate_reference(cfg, options.weight_seed, requests);
  int matches = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    matches += report.requests[i].output == reference[i] ? 1 : 0;
  }
  std::cout << "token parity vs single-stage reference: " << matches << "/"
            << requests.size() << "\n";

  // The same pipeline as a persistent server (the api_server workflow):
  // submit from the "user" thread while the driver serves.
  std::cout << "\n-- online mode (PipelineService): submitting the same requests "
               "to a running server --\n";
  runtime::PipelineService service(options,
                                   std::make_shared<sched::TokenThrottleScheduler>(params));
  service.start();
  for (const auto& request : requests) service.submit(request);
  service.drain();
  int online_matches = 0;
  for (const auto& rec : service.results()) {
    online_matches +=
        rec.completed && rec.output == reference[static_cast<std::size_t>(rec.id)] ? 1 : 0;
  }
  service.stop();
  std::cout << "online token parity: " << online_matches << "/" << requests.size()
            << "\n";
  return (matches == n_requests && online_matches == n_requests) ? 0 : 1;
}
