// Quickstart: serve Qwen2.5-32B on one 4x L20 node and compare the three
// systems the paper evaluates — gLLM (PP + Token Throttling), vLLM (PP +
// Sarathi-Serve scheduling) and SGLang (TP) — on a ShareGPT-like workload.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [request_rate] [duration_s]

#include <cstdlib>
#include <iostream>

#include "core/gllm.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace gllm;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 6.0;
  const double duration = argc > 2 ? std::atof(argv[2]) : 64.0;

  const auto model = model::presets::qwen2_5_32b();
  const auto cluster = hw::clusters::l20_node(4);
  const auto workload = workload::WorkloadSpec::sharegpt();

  std::cout << "Serving " << model.name << " (" << model.total_params() / 1000000000
            << "B params) on " << cluster.name << ", workload " << workload.name
            << " @ " << rate << " req/s for " << duration << " s\n\n";

  const std::vector<serve::SystemOptions> systems = {
      serve::SystemOptions::gllm(model, cluster, /*pp=*/4),
      serve::SystemOptions::vllm(model, cluster, /*pp=*/4),
      serve::SystemOptions::sglang(model, cluster, /*tp=*/4),
  };

  util::TablePrinter table({"system", "TTFT (ms)", "TPOT (ms)", "E2EL (s)",
                            "throughput (tok/s)", "util", "token CV", "preempt"});
  for (const auto& options : systems) {
    const auto point = serve::run_at_rate(options, workload, rate, duration, /*seed=*/7);
    table.add(options.label, util::format_double(point.mean_ttft * 1e3, 1),
              util::format_double(point.mean_tpot * 1e3, 1),
              util::format_double(point.mean_e2el, 2),
              util::format_double(point.throughput, 0),
              util::format_double(point.utilization, 2),
              util::format_double(point.token_cv, 2), std::to_string(point.preemptions));
  }
  table.print(std::cout);

  std::cout << "\nToken Throttling keeps per-iteration batched token counts nearly\n"
               "constant (low token CV), which removes inter-batch pipeline bubbles\n"
               "and shows up as higher utilization and throughput at equal load.\n";
  return 0;
}
