// Produce a publication-style comparison report: sweep several systems over a
// rate grid, write markdown + CSV artifacts, and print the summary — the
// workflow a performance engineer runs before a deployment decision.
//
//   ./build/examples/compare_and_report [out_dir]

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/gllm.hpp"
#include "serve/report.hpp"
#include "serve/router.hpp"
#include "util/units.hpp"

using namespace gllm;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  const auto model = model::presets::qwen2_5_14b();
  const auto cluster = hw::clusters::l20_node(4);
  const auto workload = workload::WorkloadSpec::sharegpt();
  const std::vector<double> rates{4.0, 8.0, 16.0};
  const double duration = 32.0;
  const std::uint64_t seed = 11;

  serve::ReportWriter report("Serving comparison: " + model.name + " on " + cluster.name);

  // Section 1: the paper's three systems.
  {
    std::vector<serve::SweepPoint> points;
    for (const auto& options : {serve::SystemOptions::gllm(model, cluster, 4),
                                serve::SystemOptions::vllm(model, cluster, 4),
                                serve::SystemOptions::sglang(model, cluster, 4)}) {
      const auto sweep = serve::rate_sweep(options, workload, rates, duration, seed);
      points.insert(points.end(), sweep.begin(), sweep.end());
    }
    report.add_section("model-parallel systems", std::move(points));
    report.add_note("gLLM = PP4 + Token Throttling; vLLM = PP4 + Sarathi; "
                    "SGLang = TP4 + Sarathi.");
  }

  // Section 2: data-parallel fleet of single-GPU replicas.
  {
    std::vector<serve::SweepPoint> points;
    for (double rate : rates) {
      workload::TraceBuilder builder(workload, seed);
      workload::ArrivalProcess arrivals;
      arrivals.rate = rate;
      const auto trace = builder.generate_for_duration(arrivals, duration);

      serve::DataParallelOptions dp;
      dp.replica = serve::SystemOptions::gllm(model, hw::clusters::l20_node(1), 1);
      dp.replicas = 4;
      serve::DataParallelSystem fleet(dp);
      serve::SystemOptions label_only;
      label_only.label = "DP4 (gLLM replicas)";
      points.push_back(serve::summarize(label_only, rate, fleet.run(trace)));
    }
    report.add_section("data-parallel fleet", std::move(points));
    report.add_note("Least-work routed; each replica holds full weights, so this "
                    "column disappears for models beyond one GPU.");
  }

  // Section 3: error bars for the headline point.
  {
    const auto rep = serve::replicate_at_rate(serve::SystemOptions::gllm(model, cluster, 4),
                                              workload, 16.0, duration, seed, 5);
    std::vector<serve::SweepPoint> points{rep.mean};
    report.add_section("gLLM @ 16 req/s across 5 seeds (mean)", std::move(points));
    std::ostringstream note;
    note << "stddev across seeds: throughput "
         << util::format_double(rep.stddev.throughput, 1) << " tok/s, TTFT "
         << util::format_double(rep.stddev.mean_ttft * 1e3, 1) << " ms.";
    report.add_note(note.str());
  }

  const std::string md_path = out_dir + "/gllm_comparison.md";
  const std::string csv_path = out_dir + "/gllm_comparison.csv";
  {
    std::ofstream md(md_path);
    report.write_markdown(md);
    std::ofstream csv(csv_path);
    report.write_csv(csv);
  }
  std::cout << "wrote " << md_path << " and " << csv_path << "\n\n";

  std::ifstream echo(md_path);
  std::cout << echo.rdbuf();
  return 0;
}
