// Workload tooling: synthesize ShareGPT/Azure-shaped request traces, inspect
// their statistics (the Figure 11 distributions), write them to CSV, and
// replay a saved trace through a serving system. Demonstrates the workload
// and trace-I/O public API.
//
//   ./build/examples/trace_explorer [out.csv]

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/gllm.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace gllm;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/gllm_trace.csv";

  // 1. Synthesize one trace per dataset preset and summarize.
  util::TablePrinter table({"dataset", "requests", "in mean", "in p90", "out mean",
                            "out p90", "tokens total"});
  workload::Trace azure_trace;
  for (const auto& spec :
       {workload::WorkloadSpec::sharegpt(), workload::WorkloadSpec::azure_conv()}) {
    workload::TraceBuilder builder(spec, /*seed=*/42);
    workload::ArrivalProcess arrivals;
    arrivals.kind = workload::ArrivalProcess::Kind::kPoisson;
    arrivals.rate = 2.0;
    auto trace = builder.generate_for_duration(arrivals, 128.0);  // paper's window
    const auto stats = workload::compute_stats(trace);
    table.add(spec.name, std::to_string(stats.n), util::format_double(stats.input_mean, 0),
              util::format_double(stats.input_p90, 0),
              util::format_double(stats.output_mean, 0),
              util::format_double(stats.output_p90, 0),
              util::format_double(stats.total_tokens, 0));
    if (spec.name == "azure") azure_trace = std::move(trace);
  }
  table.print(std::cout);

  // 2. Persist and reload the Azure trace (CSV round trip).
  {
    std::ofstream out(path);
    workload::save_csv(azure_trace, out);
  }
  std::ifstream in(path);
  const auto reloaded = workload::load_csv(in);
  std::cout << "\nwrote " << azure_trace.size() << " requests to " << path
            << ", reloaded " << reloaded.size() << "\n";

  // 3. Replay the saved trace against a deployment.
  const auto options = serve::SystemOptions::gllm(model::presets::qwen2_5_32b(),
                                                  hw::clusters::l20_node(4), 4);
  serve::ServingSystem system(options);
  const auto result = system.run(reloaded);
  std::cout << "replay on " << options.label << ": completed "
            << result.completed_requests() << "/" << reloaded.size() << " requests, "
            << "TTFT " << util::format_duration(result.mean_ttft()) << ", TPOT "
            << util::format_duration(result.mean_tpot()) << ", throughput "
            << util::format_double(result.throughput(), 0) << " tok/s\n";

  // 4. Arrival-process comparison: identical lengths, different burstiness.
  std::cout << "\narrival burstiness at equal mean rate (2 req/s, same lengths):\n";
  for (const auto kind : {workload::ArrivalProcess::Kind::kUniform,
                          workload::ArrivalProcess::Kind::kPoisson,
                          workload::ArrivalProcess::Kind::kBursty}) {
    workload::TraceBuilder builder(workload::WorkloadSpec::sharegpt(), 42);
    workload::ArrivalProcess arrivals;
    arrivals.kind = kind;
    arrivals.rate = 2.0;
    const auto trace = builder.generate_for_duration(arrivals, 96.0);
    util::OnlineStats gaps;
    for (std::size_t i = 1; i < trace.size(); ++i)
      gaps.add(trace[i].arrival - trace[i - 1].arrival);
    const char* name = kind == workload::ArrivalProcess::Kind::kUniform ? "uniform"
                       : kind == workload::ArrivalProcess::Kind::kPoisson ? "poisson"
                                                                          : "bursty";
    std::cout << "  " << name << ": " << trace.size() << " requests, gap CV "
              << util::format_double(gaps.cv(), 2) << "\n";
  }
  return 0;
}
