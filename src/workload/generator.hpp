#pragma once

#include <string>

#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace gllm::workload {

/// Truncated lognormal over integer token counts — the standard fit for both
/// conversational (ShareGPT) and production (Azure) LLM length distributions.
struct LengthDistribution {
  double mu = 0.0;
  double sigma = 1.0;
  int min_len = 1;
  int max_len = 1 << 20;

  int sample(util::Rng& rng) const;

  /// Construct from a target mean and coefficient of variation:
  /// sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2 / 2.
  static LengthDistribution from_mean_cv(double mean, double cv, int min_len, int max_len);
};

/// Inter-arrival process for the open-loop load generator.
struct ArrivalProcess {
  enum class Kind {
    kPoisson,  ///< exponential gaps, the paper's cloud-service scenario
    kUniform,  ///< deterministic gaps at the given rate
    kBursty,   ///< lognormal gaps with heavy CV (stress test, extension)
  };
  Kind kind = Kind::kPoisson;
  double rate = 1.0;       ///< requests/second
  double burst_cv = 4.0;   ///< only for kBursty

  double next_gap(util::Rng& rng) const;
};

/// A named (input, output) length model. The paper's two datasets are given
/// as presets whose means reproduce Figure 11: Azure input mean = 5.21x and
/// output mean = 1.66x those of ShareGPT.
struct WorkloadSpec {
  std::string name;
  LengthDistribution input;
  LengthDistribution output;

  static WorkloadSpec sharegpt();
  static WorkloadSpec azure_conv();
  /// Short prompts/outputs for unit tests and the tiny CPU runtime.
  static WorkloadSpec tiny();
};

/// Deterministic trace synthesis: one generator per (spec, seed) yields a
/// reproducible request stream.
class TraceBuilder {
 public:
  TraceBuilder(WorkloadSpec spec, std::uint64_t seed);

  /// Open-loop trace over a fixed sending duration (paper: 128 s windows).
  Trace generate_for_duration(const ArrivalProcess& arrivals, double duration);

  /// Exactly `n` requests.
  Trace generate_count(const ArrivalProcess& arrivals, std::size_t n);

  /// All requests arriving simultaneously at `at` (bubble case studies).
  Trace generate_burst(std::size_t n, double at = 0.0);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  RequestSpec next_request(double arrival);

  WorkloadSpec spec_;
  util::Rng rng_;
  std::int64_t next_id_ = 0;
};

}  // namespace gllm::workload
