#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gllm::workload {

/// One serving request, as the benchmark client would submit it: an arrival
/// time plus prompt/output token counts (the Azure production trace format).
struct RequestSpec {
  std::int64_t id = 0;
  double arrival = 0.0;  ///< seconds from trace start
  int prompt_len = 0;
  int output_len = 0;
};

using Trace = std::vector<RequestSpec>;

/// Aggregate shape of a trace, used to validate generators against the
/// paper's Figure 11 statistics.
struct TraceStats {
  std::size_t n = 0;
  double input_mean = 0, input_p50 = 0, input_p90 = 0, input_max = 0;
  double output_mean = 0, output_p50 = 0, output_p90 = 0, output_max = 0;
  double duration = 0;       ///< last arrival
  double request_rate = 0;   ///< n / duration
  double total_tokens = 0;   ///< sum of prompt + output lengths
};

TraceStats compute_stats(const Trace& trace);

/// CSV round-trip: header `id,arrival,prompt_len,output_len`.
void save_csv(const Trace& trace, std::ostream& os);
Trace load_csv(std::istream& is);

/// Load the Azure LLM inference production trace format the paper benchmarks
/// with (AzureLLMInferenceTrace_conv.csv): header
/// `TIMESTAMP,ContextTokens,GeneratedTokens`, timestamps either
/// `YYYY-MM-DD HH:MM:SS[.frac]` wall-clock strings or plain seconds.
/// Arrivals are rebased so the first request lands at t=0. `max_requests`
/// (0 = all) truncates long production traces.
Trace load_azure_trace(std::istream& is, std::size_t max_requests = 0);

}  // namespace gllm::workload
