#include "workload/trace.hpp"

#include <ctime>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace gllm::workload {

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.n = trace.size();
  if (trace.empty()) return s;

  util::SampleStats in, out;
  double last_arrival = 0.0;
  for (const auto& r : trace) {
    in.add(r.prompt_len);
    out.add(r.output_len);
    last_arrival = std::max(last_arrival, r.arrival);
    s.total_tokens += r.prompt_len + r.output_len;
  }
  s.input_mean = in.mean();
  s.input_p50 = in.percentile(50);
  s.input_p90 = in.percentile(90);
  s.input_max = in.max();
  s.output_mean = out.mean();
  s.output_p50 = out.percentile(50);
  s.output_p90 = out.percentile(90);
  s.output_max = out.max();
  s.duration = last_arrival;
  s.request_rate = last_arrival > 0 ? static_cast<double>(s.n) / last_arrival : 0.0;
  return s;
}

void save_csv(const Trace& trace, std::ostream& os) {
  os << "id,arrival,prompt_len,output_len\n";
  for (const auto& r : trace) {
    os << r.id << "," << r.arrival << "," << r.prompt_len << "," << r.output_len << "\n";
  }
}

namespace {

/// Seconds since an arbitrary epoch for either `YYYY-MM-DD HH:MM:SS[.frac]`
/// or a plain floating-point number. Throws on anything else.
double parse_timestamp(const std::string& field) {
  if (field.find('-') != std::string::npos && field.find(':') != std::string::npos) {
    std::tm tm = {};
    std::istringstream ts(field);
    ts >> std::get_time(&tm, "%Y-%m-%d %H:%M:%S");
    if (ts.fail()) throw std::runtime_error("load_azure_trace: bad timestamp: " + field);
    double fractional = 0.0;
    if (ts.peek() == '.') {
      ts >> fractional;  // reads ".6805900" as 0.68059
      if (ts.fail()) fractional = 0.0;
    }
    // timegm avoids local-timezone dependence; the absolute epoch cancels out
    // when arrivals are rebased anyway.
    return static_cast<double>(timegm(&tm)) + fractional;
  }
  std::size_t used = 0;
  const double value = std::stod(field, &used);
  if (used == 0) throw std::runtime_error("load_azure_trace: bad timestamp: " + field);
  return value;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ls(line);
  while (std::getline(ls, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

Trace load_azure_trace(std::istream& is, std::size_t max_requests) {
  Trace trace;
  std::string line;
  if (!std::getline(is, line)) return trace;  // header
  double epoch = 0.0;
  bool have_epoch = false;
  std::int64_t id = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (max_requests > 0 && trace.size() >= max_requests) break;
    const auto fields = split_csv_line(line);
    if (fields.size() < 3)
      throw std::runtime_error("load_azure_trace: malformed line: " + line);
    const double t = parse_timestamp(fields[0]);
    if (!have_epoch) {
      epoch = t;
      have_epoch = true;
    }
    RequestSpec r;
    r.id = id++;
    r.arrival = t - epoch;
    r.prompt_len = std::stoi(fields[1]);
    r.output_len = std::stoi(fields[2]);
    if (r.prompt_len <= 0 || r.output_len <= 0)
      throw std::runtime_error("load_azure_trace: non-positive lengths: " + line);
    trace.push_back(r);
  }
  return trace;
}

Trace load_csv(std::istream& is) {
  Trace trace;
  std::string line;
  if (!std::getline(is, line)) return trace;  // header (or empty)
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    RequestSpec r;
    char comma = 0;
    if (!(ls >> r.id >> comma >> r.arrival >> comma >> r.prompt_len >> comma >>
          r.output_len)) {
      throw std::runtime_error("load_csv: malformed trace line: " + line);
    }
    trace.push_back(r);
  }
  return trace;
}

}  // namespace gllm::workload
