#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gllm::workload {

int LengthDistribution::sample(util::Rng& rng) const {
  const double v = rng.lognormal(mu, sigma);
  const auto len = static_cast<int>(std::lround(v));
  return std::clamp(len, min_len, max_len);
}

LengthDistribution LengthDistribution::from_mean_cv(double mean, double cv, int min_len,
                                                    int max_len) {
  if (mean <= 0 || cv <= 0) throw std::invalid_argument("LengthDistribution: mean/cv must be > 0");
  LengthDistribution d;
  const double sigma2 = std::log(1.0 + cv * cv);
  d.sigma = std::sqrt(sigma2);
  d.mu = std::log(mean) - sigma2 / 2.0;
  d.min_len = min_len;
  d.max_len = max_len;
  return d;
}

double ArrivalProcess::next_gap(util::Rng& rng) const {
  if (rate <= 0) throw std::invalid_argument("ArrivalProcess: rate must be > 0");
  switch (kind) {
    case Kind::kPoisson:
      return rng.exponential(rate);
    case Kind::kUniform:
      return 1.0 / rate;
    case Kind::kBursty: {
      const double mean = 1.0 / rate;
      const double sigma2 = std::log(1.0 + burst_cv * burst_cv);
      return rng.lognormal(std::log(mean) - sigma2 / 2.0, std::sqrt(sigma2));
    }
  }
  return 1.0 / rate;
}

WorkloadSpec WorkloadSpec::sharegpt() {
  // ShareGPT conversations: short-to-medium prompts with a heavy tail,
  // medium responses. Means chosen so Azure below lands at the paper's
  // 5.21x / 1.66x ratios (Fig. 11).
  WorkloadSpec w;
  w.name = "sharegpt";
  w.input = LengthDistribution::from_mean_cv(222.0, 1.40, 4, 3072);
  w.output = LengthDistribution::from_mean_cv(200.0, 0.95, 2, 800);
  return w;
}

WorkloadSpec WorkloadSpec::azure_conv() {
  // Azure LLM inference production trace (conversation subset): notably
  // longer inputs (5.21x ShareGPT) and longer outputs (1.66x).
  WorkloadSpec w;
  w.name = "azure";
  w.input = LengthDistribution::from_mean_cv(222.0 * 5.21, 1.25, 16, 12288);
  w.output = LengthDistribution::from_mean_cv(200.0 * 1.66, 0.85, 2, 1200);
  return w;
}

WorkloadSpec WorkloadSpec::tiny() {
  WorkloadSpec w;
  w.name = "tiny";
  w.input = LengthDistribution::from_mean_cv(24.0, 0.6, 2, 96);
  w.output = LengthDistribution::from_mean_cv(12.0, 0.6, 1, 48);
  return w;
}

TraceBuilder::TraceBuilder(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

RequestSpec TraceBuilder::next_request(double arrival) {
  RequestSpec r;
  r.id = next_id_++;
  r.arrival = arrival;
  r.prompt_len = spec_.input.sample(rng_);
  r.output_len = spec_.output.sample(rng_);
  return r;
}

Trace TraceBuilder::generate_for_duration(const ArrivalProcess& arrivals, double duration) {
  Trace trace;
  double t = arrivals.next_gap(rng_);
  while (t <= duration) {
    trace.push_back(next_request(t));
    t += arrivals.next_gap(rng_);
  }
  return trace;
}

Trace TraceBuilder::generate_count(const ArrivalProcess& arrivals, std::size_t n) {
  Trace trace;
  trace.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += arrivals.next_gap(rng_);
    trace.push_back(next_request(t));
  }
  return trace;
}

Trace TraceBuilder::generate_burst(std::size_t n, double at) {
  Trace trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trace.push_back(next_request(at));
  return trace;
}

}  // namespace gllm::workload
