#pragma once

#include "sched/types.hpp"

namespace gllm::sched {

/// Orca-style iteration-level scheduler *without* chunked prefill: whole
/// prompts are processed in a single iteration, batched together with all
/// runnable decodes. Kept as the historical baseline that motivates
/// Sarathi-Serve — long prompts stall ongoing decodes (generation stalls),
/// which the comparison tests demonstrate.
struct FcfsParams {
  int max_prefill_tokens = 16384;  ///< safety cap on prompt tokens per batch
  int max_batch_seqs = 1024;
};

class FcfsScheduler final : public IScheduler {
 public:
  explicit FcfsScheduler(FcfsParams params = {});

  MicroBatchPlan plan(const ScheduleContext& ctx) override;
  std::string_view name() const override { return "orca-fcfs"; }

 private:
  FcfsParams params_;
};

}  // namespace gllm::sched
