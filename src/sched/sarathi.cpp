#include "sched/sarathi.hpp"

#include <algorithm>
#include <stdexcept>

namespace gllm::sched {

SarathiScheduler::SarathiScheduler(SarathiParams params) : params_(params) {
  if (params_.token_budget <= 0)
    throw std::invalid_argument("SarathiScheduler: token budget must be > 0");
  if (params_.max_batch_seqs <= 0)
    throw std::invalid_argument("SarathiScheduler: max_batch_seqs must be > 0");
}

MicroBatchPlan SarathiScheduler::plan(const ScheduleContext& ctx) {
  MicroBatchPlan out;
  int budget = params_.token_budget;
  std::int64_t kv_budget = ctx.kv_free_tokens;

  // Phase 1: all runnable decode tokens first ("Sarathi-Serve first schedules
  // all decode tokens"). Decodes proceed regardless of KV pressure; the
  // engine preempts on allocation failure, as vLLM does.
  for (const auto& d : ctx.runnable_decodes) {
    if (budget == 0) break;
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    out.items.push_back(BatchItem{d.seq, Phase::kDecode, 1, d.context, false});
    --budget;
    --kv_budget;
  }

  // Phase 2: maximise chunked prefill within the remaining budget, FCFS with
  // head-of-line blocking (a stalled head request stops admission).
  for (const auto& w : ctx.waiting) {
    if (budget <= 0 || kv_budget <= 0) break;
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    if (w.chunk_in_flight && !params_.chunk_pipelining) continue;
    const int chunk = static_cast<int>(std::min<std::int64_t>(
        {w.remaining_prefill, budget, kv_budget}));
    if (chunk <= 0) break;
    out.items.push_back(BatchItem{w.seq, Phase::kPrefill, chunk, w.context,
                                  chunk == w.remaining_prefill});
    budget -= chunk;
    kv_budget -= chunk;
  }
  return out;
}

}  // namespace gllm::sched
