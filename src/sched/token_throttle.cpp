#include "sched/token_throttle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace gllm::sched {

TokenThrottleScheduler::TokenThrottleScheduler(ThrottleParams params) : params_(params) {
  if (params_.iter_t <= 0) throw std::invalid_argument("TokenThrottle: #T must be > 0");
  if (params_.max_p <= 0) throw std::invalid_argument("TokenThrottle: #MaxP must be > 0");
  if (params_.min_p < 0) throw std::invalid_argument("TokenThrottle: #MinP must be >= 0");
  if (params_.min_p > params_.max_p)
    throw std::invalid_argument("TokenThrottle: #MinP must not exceed #MaxP");
  if (params_.kv_thresh < 0.0 || params_.kv_thresh >= 1.0)
    throw std::invalid_argument("TokenThrottle: KV_thresh must be in [0, 1)");
}

std::string_view TokenThrottleScheduler::name() const {
  if (!params_.enable_wt && !params_.enable_ut) return "token-throttle(no-wt,no-ut)";
  if (!params_.enable_wt) return "token-throttle(w/o WT)";
  if (!params_.enable_ut) return "token-throttle(w/o UT)";
  return "token-throttle";
}

std::int64_t TokenThrottleScheduler::decode_budget(const ScheduleContext& ctx) const {
  if (ctx.total_decode_seqs <= 0) return 0;
  const int depth = std::max(ctx.pipeline_depth, 1);
  // #D = #RD / #PP_depth (eq. 4), rounded up so the remainder is not starved.
  return (ctx.total_decode_seqs + depth - 1) / depth;
}

std::int64_t TokenThrottleScheduler::prefill_budget(const ScheduleContext& ctx) const {
  const std::int64_t wp = ctx.waiting_prefill_tokens();
  if (wp == 0) return 0;

  // KV idle-rate threshold (3.1.3): suspend prefill near capacity so ongoing
  // decodes are not preempted into costly recomputation.
  if (ctx.kv_free_rate < params_.kv_thresh) return 0;

  const double max_p = params_.max_p;
  const double min_p = params_.min_p;
  double p = 0.0;

  if (params_.enable_wt && params_.enable_ut) {
    // Combined form (eq. 3).
    const double scaled_cap =
        max_p * (ctx.kv_free_rate - params_.kv_thresh) / (1.0 - params_.kv_thresh);
    p = std::max(std::min(static_cast<double>(wp) / params_.iter_t, scaled_cap), min_p);
  } else if (params_.enable_wt) {
    // WT only (eq. 1).
    p = std::min(std::max(static_cast<double>(wp) / params_.iter_t, min_p), max_p);
  } else if (params_.enable_ut) {
    // UT only (eq. 2).
    p = std::max(max_p * ctx.kv_free_rate, min_p);
  } else {
    // Neither throttle: greedy up to #MaxP (degenerate variant for tests).
    p = max_p;
  }

  auto budget = static_cast<std::int64_t>(std::llround(p));
  budget = std::min(budget, wp);
  return std::max<std::int64_t>(budget, 0);
}

int TokenThrottleScheduler::max_chunk_for_budget(std::int64_t budget,
                                                 std::int64_t context) const {
  if (budget <= 0) return 0;
  if (!params_.context_aware) return static_cast<int>(std::min<std::int64_t>(budget, 1 << 30));
  // Solve n * (1 + (c + n/2) / e) <= B for n:
  //   n^2 / (2e) + n * (1 + c/e) - B <= 0.
  const double e = params_.ctx_equiv;
  const double a = 1.0 + static_cast<double>(context) / e;
  const double b = static_cast<double>(budget);
  const double n = e * (-a + std::sqrt(a * a + 2.0 * b / e));
  return std::max(static_cast<int>(n), 1);  // always make progress
}

MicroBatchPlan TokenThrottleScheduler::plan(const ScheduleContext& ctx) {
  MicroBatchPlan out;

  // --- Decode Token Throttling (3.2): an even share of all running decodes.
  // Under speculative decoding every decode step feeds 1 + k rows (the last
  // accepted token plus k draft tokens), and all of them are real per-stage
  // compute — so each item costs 1 + k against #D and the KV bound. An item
  // is admitted only when it fits the remaining budget, except the very
  // first (progress guarantee), so the per-step decode row bound is exactly
  // max(#D, 1 + k) — never exceeded beyond that.
  const std::int64_t d_budget = decode_budget(ctx);
  const std::int64_t d_cost = 1 + std::max(ctx.spec_lookahead, 0);
  std::int64_t kv_budget = ctx.kv_free_tokens;
  std::int64_t d_taken = 0;
  for (const auto& d : ctx.runnable_decodes) {
    if (d_taken > 0 && d_taken + d_cost > d_budget) break;
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    out.items.push_back(
        BatchItem{d.seq, Phase::kDecode, 1, d.context, false, ctx.spec_lookahead});
    d_taken += d_cost;
    kv_budget -= d_cost;
  }

  // --- Prefill Token Throttling (3.1): decoupled budget, FCFS chunk fill.
  // With context_aware, the budget is in attention-adjusted tokens and each
  // chunk's cost reflects its quadratic attention share (paper §6).
  std::int64_t p_budget = std::min(prefill_budget(ctx), std::max<std::int64_t>(kv_budget, 0));
  for (const auto& w : ctx.waiting) {
    if (p_budget <= 0) break;
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    if (w.chunk_in_flight && !params_.chunk_pipelining) continue;
    const int chunk =
        std::min(w.remaining_prefill, max_chunk_for_budget(p_budget, w.context));
    if (chunk <= 0) continue;
    out.items.push_back(BatchItem{w.seq, Phase::kPrefill, chunk, w.context,
                                  chunk == w.remaining_prefill});
    if (params_.context_aware) {
      const double eff = chunk * (1.0 + (static_cast<double>(w.context) + chunk / 2.0) /
                                            params_.ctx_equiv);
      p_budget -= static_cast<std::int64_t>(std::llround(eff));
    } else {
      p_budget -= chunk;
    }
  }

  // One decision instant per non-empty plan: the eq. 1-4 inputs (#WP,
  // KV_free) and outputs (#P, #D). Empty plans are skipped so the decision
  // stream is identical between the DES engines and the threaded runtime
  // (idle-poll counts differ; committed decisions cannot, by AdmissionCore
  // parity).
  if (obs_ != nullptr && !out.items.empty()) {
    obs_->tracer().instant(
        track_, "throttle.decision",
        {{"wp", static_cast<double>(ctx.waiting_prefill_tokens())},
         {"kv_free", ctx.kv_free_rate},
         {"p", static_cast<double>(out.prefill_tokens())},
         {"d", static_cast<double>(out.decode_tokens())}});
  }
  return out;
}

}  // namespace gllm::sched
