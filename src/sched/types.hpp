#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "kv/kv_manager.hpp"

namespace gllm::obs {
class Observability;
}

namespace gllm::sched {

enum class Phase { kPrefill, kDecode };

/// One sequence's slice of a planned micro-batch.
struct BatchItem {
  kv::SeqId seq = 0;
  Phase phase = Phase::kDecode;
  int n_tokens = 0;               ///< chunk size (1 for a decode step)
  std::int64_t context = 0;       ///< KV tokens already cached
  bool last_prefill_chunk = false;///< this chunk completes the prompt
  /// Speculative lookahead budgeted for this decode step: the step feeds
  /// `1 + spec_tokens` rows, all of which count against the throttle's #D
  /// (decode only; always 0 for prefill chunks).
  int spec_tokens = 0;
};

/// What the scheduler hands the engine each iteration.
struct MicroBatchPlan {
  std::vector<BatchItem> items;

  int prefill_tokens() const;
  int decode_tokens() const;
  int total_tokens() const { return prefill_tokens() + decode_tokens(); }
  bool empty() const { return items.empty(); }
};

/// A plan item as actually *committed* by the engine's admission layer: KV is
/// allocated, the sequence is locked in flight, and — unlike the planned
/// BatchItem — the chunk size and context reflect what really happened
/// (prefix-cache adoption may shrink a chunk; `last_prefill_chunk` is
/// recomputed from the sequence, not trusted from the policy).
struct CommittedItem {
  BatchItem item;
  std::int64_t context = 0;  ///< KV tokens cached before this step ran
};

/// The materialization result: the slice of a MicroBatchPlan that survived KV
/// allocation (items the pool could not back are dropped, possibly after
/// recompute preemption). This is what executors run and later retire.
struct CommittedPlan {
  std::vector<CommittedItem> items;
  int total_new_tokens = 0;

  bool empty() const { return items.empty(); }
  int prefill_tokens() const;
  int decode_tokens() const;
};

/// A request still holding un-prefilled prompt tokens (FCFS order preserved
/// by the engine; preempted sequences re-enter at the front).
struct WaitingSeq {
  kv::SeqId seq = 0;
  int remaining_prefill = 0;     ///< prompt tokens not yet scheduled
  std::int64_t context = 0;      ///< KV tokens already cached (chunked progress)
  double arrival = 0.0;
  bool chunk_in_flight = false;  ///< an earlier chunk is still in the pipeline
};

/// A decode-phase sequence available this iteration (not in flight).
struct DecodeSeq {
  kv::SeqId seq = 0;
  std::int64_t context = 0;
};

/// Global snapshot the engine exposes to the scheduler — "leveraging global
/// information from the inference system" is the paper's framing of Token
/// Throttling, and this struct is that information.
struct ScheduleContext {
  double now = 0.0;
  int pipeline_depth = 1;
  std::vector<WaitingSeq> waiting;          ///< FCFS
  std::vector<DecodeSeq> runnable_decodes;  ///< not currently in flight
  std::int64_t total_decode_seqs = 0;       ///< #RD: running decodes incl. in-flight
  double kv_free_rate = 1.0;                ///< KV_free in [0, 1]
  std::int64_t kv_free_tokens = 0;          ///< admissible new KV tokens (planning bound)
  /// Speculative-decoding lookahead k: every decode step may carry up to k
  /// draft tokens, so planners must cost a decode item as `1 + k` tokens
  /// against #D and the KV bound (0 = speculation off).
  int spec_lookahead = 0;

  /// Total tokens awaiting prefill (#WP), counting only schedulable requests.
  std::int64_t waiting_prefill_tokens() const;
};

/// Scheduling policy interface. Implementations must be pure planners: they
/// read the context and emit a plan; KV allocation, preemption and sequence
/// state transitions belong to the engine.
class IScheduler {
 public:
  virtual ~IScheduler() = default;
  virtual MicroBatchPlan plan(const ScheduleContext& ctx) = 0;
  virtual std::string_view name() const = 0;
  /// Attach an observability sink; decision-aware policies emit one trace
  /// instant per non-empty plan on `track`. Default: ignore (policies without
  /// interesting decisions stay silent).
  virtual void set_observability(obs::Observability* /*obs*/, int /*track*/) {}
};

}  // namespace gllm::sched
