#pragma once

#include "sched/types.hpp"

namespace gllm::sched {

/// TD-Pipe-style temporally-disaggregated scheduling (Zhang et al. 2025,
/// discussed in the paper's §2.4/§5): instead of mixing prefill and decode
/// tokens in every batch, the engine alternates between a *prefill phase*
/// (large prompt-only chunks, accumulating decodable sequences) and a
/// *decode phase* (decode-only batches draining them). This eliminates
/// prefill/decode interference — the second bubble type — and maximizes
/// offline throughput, at the cost of decode stalls during prefill phases
/// (poor TPOT in online serving), which is exactly the contrast the paper
/// draws with gLLM.
struct TdPipeParams {
  int prefill_chunk = 2048;       ///< chunk size during prefill phases
  /// Switch to decoding when accumulated decodable sequences reach this
  /// count (or when prefill work/KV space runs out).
  int decode_entry_batch = 256;
  /// Return to prefilling when the decode pool drains below this fraction
  /// of its entry size.
  double decode_exit_fraction = 0.25;
  double kv_thresh = 0.05;        ///< suspend prefill below this KV idle rate
  int max_batch_seqs = 1024;
};

class TdPipeScheduler final : public IScheduler {
 public:
  explicit TdPipeScheduler(TdPipeParams params = {});

  MicroBatchPlan plan(const ScheduleContext& ctx) override;
  std::string_view name() const override { return "td-pipe"; }

  enum class Mode { kPrefill, kDecode };
  Mode mode() const { return mode_; }

 private:
  bool should_enter_decode(const ScheduleContext& ctx) const;
  bool should_exit_decode(const ScheduleContext& ctx) const;
  MicroBatchPlan plan_prefill(const ScheduleContext& ctx) const;
  MicroBatchPlan plan_decode(const ScheduleContext& ctx) const;

  TdPipeParams params_;
  Mode mode_ = Mode::kPrefill;
  std::int64_t decode_entry_size_ = 0;
};

}  // namespace gllm::sched
