#include "sched/td_pipe.hpp"

#include <algorithm>
#include <stdexcept>

namespace gllm::sched {

TdPipeScheduler::TdPipeScheduler(TdPipeParams params) : params_(params) {
  if (params_.prefill_chunk <= 0)
    throw std::invalid_argument("TdPipeScheduler: prefill_chunk must be > 0");
  if (params_.decode_entry_batch <= 0)
    throw std::invalid_argument("TdPipeScheduler: decode_entry_batch must be > 0");
  if (params_.decode_exit_fraction < 0.0 || params_.decode_exit_fraction >= 1.0)
    throw std::invalid_argument("TdPipeScheduler: exit fraction must be in [0, 1)");
}

bool TdPipeScheduler::should_enter_decode(const ScheduleContext& ctx) const {
  // Enough decodable sequences accumulated, or prefill cannot proceed
  // (nothing waiting / KV exhausted) while decodes are available.
  if (ctx.total_decode_seqs >= params_.decode_entry_batch) return true;
  const bool prefill_blocked = ctx.waiting_prefill_tokens() == 0 ||
                               ctx.kv_free_rate < params_.kv_thresh ||
                               ctx.kv_free_tokens <= 0;
  return prefill_blocked && ctx.total_decode_seqs > 0;
}

bool TdPipeScheduler::should_exit_decode(const ScheduleContext& ctx) const {
  if (ctx.total_decode_seqs == 0) return true;
  const auto exit_below = static_cast<std::int64_t>(
      params_.decode_exit_fraction * static_cast<double>(decode_entry_size_));
  // Only return to prefilling if there is prefill work and room for it.
  const bool prefill_possible = ctx.waiting_prefill_tokens() > 0 &&
                                ctx.kv_free_rate >= params_.kv_thresh &&
                                ctx.kv_free_tokens > 0;
  return prefill_possible && ctx.total_decode_seqs <= exit_below;
}

MicroBatchPlan TdPipeScheduler::plan_prefill(const ScheduleContext& ctx) const {
  MicroBatchPlan out;
  if (ctx.kv_free_rate < params_.kv_thresh) return out;
  std::int64_t budget = std::min<std::int64_t>(params_.prefill_chunk, ctx.kv_free_tokens);
  for (const auto& w : ctx.waiting) {
    if (budget <= 0) break;
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    if (w.chunk_in_flight) continue;
    const int chunk = static_cast<int>(std::min<std::int64_t>(w.remaining_prefill, budget));
    if (chunk <= 0) continue;
    out.items.push_back(BatchItem{w.seq, Phase::kPrefill, chunk, w.context,
                                  chunk == w.remaining_prefill});
    budget -= chunk;
  }
  return out;
}

MicroBatchPlan TdPipeScheduler::plan_decode(const ScheduleContext& ctx) const {
  MicroBatchPlan out;
  // Spread decodes over pipeline-depth cohorts like gLLM's eq. 4 — temporal
  // disaggregation still needs balanced decode micro-batches to fill the
  // pipeline.
  const int depth = std::max(ctx.pipeline_depth, 1);
  const std::int64_t share = (ctx.total_decode_seqs + depth - 1) / depth;
  std::int64_t taken = 0;
  for (const auto& d : ctx.runnable_decodes) {
    if (taken >= share) break;
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    out.items.push_back(BatchItem{d.seq, Phase::kDecode, 1, d.context, false});
    ++taken;
  }
  return out;
}

MicroBatchPlan TdPipeScheduler::plan(const ScheduleContext& ctx) {
  if (mode_ == Mode::kPrefill && should_enter_decode(ctx)) {
    mode_ = Mode::kDecode;
    decode_entry_size_ = ctx.total_decode_seqs;
  } else if (mode_ == Mode::kDecode && should_exit_decode(ctx)) {
    mode_ = Mode::kPrefill;
  }

  MicroBatchPlan out =
      mode_ == Mode::kPrefill ? plan_prefill(ctx) : plan_decode(ctx);
  // Never idle the pipeline if the other phase has runnable work.
  if (out.empty()) {
    out = mode_ == Mode::kPrefill ? plan_decode(ctx) : plan_prefill(ctx);
  }
  return out;
}

}  // namespace gllm::sched
