#include "sched/fcfs.hpp"

#include <algorithm>
#include <stdexcept>

namespace gllm::sched {

FcfsScheduler::FcfsScheduler(FcfsParams params) : params_(params) {
  if (params_.max_prefill_tokens <= 0)
    throw std::invalid_argument("FcfsScheduler: max_prefill_tokens must be > 0");
}

MicroBatchPlan FcfsScheduler::plan(const ScheduleContext& ctx) {
  MicroBatchPlan out;
  std::int64_t kv_budget = ctx.kv_free_tokens;

  for (const auto& d : ctx.runnable_decodes) {
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    out.items.push_back(BatchItem{d.seq, Phase::kDecode, 1, d.context, false});
    --kv_budget;
  }

  int prefill_budget = params_.max_prefill_tokens;
  for (const auto& w : ctx.waiting) {
    if (static_cast<int>(out.items.size()) >= params_.max_batch_seqs) break;
    if (w.chunk_in_flight) continue;
    // Whole prompt or nothing — no chunking in Orca.
    if (w.remaining_prefill > prefill_budget ||
        static_cast<std::int64_t>(w.remaining_prefill) > kv_budget) {
      break;  // head-of-line blocking
    }
    out.items.push_back(
        BatchItem{w.seq, Phase::kPrefill, w.remaining_prefill, w.context, true});
    prefill_budget -= w.remaining_prefill;
    kv_budget -= w.remaining_prefill;
  }
  return out;
}

}  // namespace gllm::sched
