#pragma once

#include "sched/types.hpp"

namespace gllm::sched {

/// Sarathi-Serve hybrid scheduling (the paper's baseline, used by both vLLM
/// and SGLang): first admit every runnable decode, then fill the remainder of
/// a *fixed token budget* with FCFS chunked prefill, stopping when the budget
/// or the KV cache runs out.
///
/// The coupling of the two phases under one budget is exactly what Section
/// 2.5 criticises: when decodes are scarce the batch under-fills (insufficient
/// prefill available), and when prefill is scarce batches carry only the
/// decode remainder — both produce the token-count volatility of Figure 1.
struct SarathiParams {
  int token_budget = 2048;
  int max_batch_seqs = 1024;
  /// Allow a prompt's next chunk while a previous chunk is still in flight
  /// (CPP / Mooncake-style intra-request pipelining). vLLM's scheduler does
  /// not do this, so the faithful baseline keeps it off.
  bool chunk_pipelining = false;
};

class SarathiScheduler final : public IScheduler {
 public:
  explicit SarathiScheduler(SarathiParams params = {});

  MicroBatchPlan plan(const ScheduleContext& ctx) override;
  std::string_view name() const override { return "sarathi"; }

  const SarathiParams& params() const { return params_; }

 private:
  SarathiParams params_;
};

}  // namespace gllm::sched
