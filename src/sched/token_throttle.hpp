#pragma once

#include "sched/types.hpp"

namespace gllm::sched {

/// Hyper-parameters of gLLM Token Throttling (paper Section 3.1-3.2).
/// Defaults are the paper's evaluation settings (4.1).
struct ThrottleParams {
  int iter_t = 8;          ///< #T: iterations to drain all waiting prefill tokens
  int max_p = 2048;        ///< #MaxP: max batched prefill tokens
  int min_p = 32;          ///< #MinP: min batched prefill tokens
  double kv_thresh = 0.05; ///< KV_thresh: idle-rate floor below which prefill halts
  bool enable_wt = true;   ///< throttle by tokens awaiting prefill (3.1.1, eq. 1)
  bool enable_ut = true;   ///< throttle by KV utilisation (3.1.2, eq. 2)
  int max_batch_seqs = 1024;
  /// CPP-style intra-request chunk pipelining (the paper integrates CPP, 3.4).
  bool chunk_pipelining = true;

  /// Context-aware cost estimation — the paper's stated future work (§6):
  /// "to better balance the computational load across micro-batches, we
  /// should incorporate the context length of each sequence". When enabled,
  /// the prefill budget is interpreted in *attention-adjusted* tokens: a
  /// chunk of n tokens at context c costs n * (1 + (c + n/2) / ctx_equiv),
  /// so chunks shrink as a long prompt's attention grows quadratic.
  bool context_aware = false;
  /// Context length whose attention work equals one token of GEMM work.
  double ctx_equiv = 8192.0;
};

/// gLLM's Token Throttling scheduler: decoupled, dynamic regulation of
/// prefill and decode token counts from global system state.
///
///  * Decode (eq. 4): spread the #RD running decodes evenly over the
///    #PP_depth concurrently live micro-batches: #D = ceil(#RD / depth).
///  * Prefill (eqs. 1-3): throttle by the waiting-token volume (#WP / #T),
///    capped by a KV-pressure-scaled maximum, floored at #MinP, and suspended
///    entirely below the KV idle threshold.
///
/// Setting enable_wt / enable_ut false yields the paper's ablation variants
/// "gLLM w/o WT" and "gLLM w/o UT" (Figure 15).
class TokenThrottleScheduler final : public IScheduler {
 public:
  explicit TokenThrottleScheduler(ThrottleParams params = {});

  MicroBatchPlan plan(const ScheduleContext& ctx) override;
  std::string_view name() const override;
  void set_observability(obs::Observability* obs, int track) override {
    obs_ = obs;
    track_ = track;
  }

  /// The #P value of eqs. 1-3 before chunk assignment; exposed for tests and
  /// the sensitivity study.
  std::int64_t prefill_budget(const ScheduleContext& ctx) const;

  /// The #D value of eq. 4.
  std::int64_t decode_budget(const ScheduleContext& ctx) const;

  /// Largest chunk whose attention-adjusted cost fits `budget` effective
  /// tokens at context `context` (== budget when context_aware is off).
  int max_chunk_for_budget(std::int64_t budget, std::int64_t context) const;

  const ThrottleParams& params() const { return params_; }

 private:
  ThrottleParams params_;
  obs::Observability* obs_ = nullptr;
  int track_ = 0;
};

}  // namespace gllm::sched
