#include "sched/types.hpp"

namespace gllm::sched {

int MicroBatchPlan::prefill_tokens() const {
  int n = 0;
  for (const auto& item : items) {
    if (item.phase == Phase::kPrefill) n += item.n_tokens;
  }
  return n;
}

int MicroBatchPlan::decode_tokens() const {
  int n = 0;
  for (const auto& item : items) {
    if (item.phase == Phase::kDecode) n += item.n_tokens;
  }
  return n;
}

int CommittedPlan::prefill_tokens() const {
  int n = 0;
  for (const auto& c : items) {
    if (c.item.phase == Phase::kPrefill) n += c.item.n_tokens;
  }
  return n;
}

int CommittedPlan::decode_tokens() const {
  int n = 0;
  for (const auto& c : items) {
    if (c.item.phase == Phase::kDecode) n += c.item.n_tokens;
  }
  return n;
}

std::int64_t ScheduleContext::waiting_prefill_tokens() const {
  std::int64_t n = 0;
  for (const auto& w : waiting) n += w.remaining_prefill;
  return n;
}

}  // namespace gllm::sched
