#include "nn/allreduce.hpp"

#include <stdexcept>

#include "util/threadpool.hpp"

namespace gllm::nn {

AllReduce::AllReduce(int tp) : tp_(tp) {
  if (tp < 1) throw std::invalid_argument("AllReduce: tp must be >= 1");
}

void AllReduce::run_sharded(const std::function<void(int)>& fn) const {
  if (tp_ == 1) {
    fn(0);
    return;
  }
  // grain 1: one lane per shard. With fewer pool threads than shards the
  // chunks merge and a lane runs several shards serially — same result,
  // because every shard's work is self-contained.
  util::ThreadPool::shared().parallel_for(
      0, static_cast<std::size_t>(tp_),
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) fn(static_cast<int>(r));
      },
      /*grain=*/1);
}

void AllReduce::reduce(std::span<const float> partials, int chunks,
                       std::span<float> out) {
  const std::size_t n = out.size();
  if (chunks < 1 || partials.size() != n * static_cast<std::size_t>(chunks))
    throw std::invalid_argument("AllReduce::reduce: partials/out size mismatch");
  for (std::size_t j = 0; j < n; ++j) {
    float acc = partials[j];
    for (int c = 1; c < chunks; ++c)
      acc += partials[static_cast<std::size_t>(c) * n + j];
    out[j] = acc;
  }
  ++ops_;
  bytes_ += static_cast<std::int64_t>(n) * chunks *
            static_cast<std::int64_t>(sizeof(float));
}

}  // namespace gllm::nn
