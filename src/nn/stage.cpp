#include "nn/stage.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace gllm::nn {

namespace {

/// Deterministic per-tensor weight stream: the same (seed, layer, slot)
/// always yields the same tensor, so different partitionings agree.
tensor::Tensor init_tensor(std::uint64_t seed, int layer, int slot,
                           std::vector<std::int64_t> shape, double fan_in) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(layer + 1)) ^
                (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(slot + 1)));
  const auto scale = static_cast<float>(1.0 / std::sqrt(fan_in));
  for (float& v : t.flat()) v = static_cast<float>(rng.normal()) * scale;
  return t;
}

tensor::Tensor ones(std::vector<std::int64_t> shape) {
  tensor::Tensor t(std::move(shape));
  t.fill(1.0f);
  return t;
}

constexpr float kNormEps = 1e-5f;
constexpr int kEmbedSlot = 100;
constexpr int kHeadSlot = 101;

}  // namespace

TransformerStage::TransformerStage(model::ModelConfig cfg, model::StageShape shape,
                                   std::uint64_t seed, std::int32_t kv_blocks,
                                   int kv_block_size)
    : cfg_(std::move(cfg)),
      shape_(shape),
      pool_(cfg_, shape.first_layer, shape.n_layers, kv_blocks, kv_block_size) {
  cfg_.validate();
  const std::int64_t h = cfg_.hidden;
  const std::int64_t q_dim = static_cast<std::int64_t>(cfg_.n_heads) * cfg_.head_dim;
  const std::int64_t kv_dim = static_cast<std::int64_t>(cfg_.n_kv_heads) * cfg_.head_dim;
  const std::int64_t inter = cfg_.intermediate;

  layers_.reserve(static_cast<std::size_t>(shape.n_layers));
  for (int l = shape.first_layer; l < shape.last_layer_exclusive(); ++l) {
    LayerWeights w;
    w.wq = init_tensor(seed, l, 0, {q_dim, h}, h);
    w.wk = init_tensor(seed, l, 1, {kv_dim, h}, h);
    w.wv = init_tensor(seed, l, 2, {kv_dim, h}, h);
    w.wo = init_tensor(seed, l, 3, {h, q_dim}, q_dim);
    w.w_gate = init_tensor(seed, l, 4, {inter, h}, h);
    w.w_up = init_tensor(seed, l, 5, {inter, h}, h);
    w.w_down = init_tensor(seed, l, 6, {h, inter}, inter);
    w.norm_attn = ones({h});
    w.norm_mlp = ones({h});
    layers_.push_back(std::move(w));
  }
  if (shape.has_embedding) {
    embedding_ = init_tensor(seed, -1, kEmbedSlot, {cfg_.vocab, h}, h);
  }
  if (shape.has_lm_head) {
    final_norm_ = ones({h});
    lm_head_ = init_tensor(seed, -1, kHeadSlot, {cfg_.vocab, h}, h);
  }
}

tensor::Tensor TransformerStage::embed(std::span<const TokenId> tokens) const {
  if (!shape_.has_embedding)
    throw std::logic_error("TransformerStage::embed: stage has no embedding");
  tensor::Tensor hidden({static_cast<std::int64_t>(tokens.size()), cfg_.hidden});
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const TokenId t = tokens[i];
    if (t < 0 || t >= cfg_.vocab)
      throw std::out_of_range("TransformerStage::embed: token id out of vocab");
    const auto src = embedding_.row(t);
    auto dst = hidden.row(static_cast<std::int64_t>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return hidden;
}

void TransformerStage::forward(tensor::Tensor& hidden, std::span<const ItemView> items) {
  std::int64_t rows = 0;
  for (const auto& item : items) rows += item.n_tokens;
  if (hidden.rank() != 2 || hidden.dim(0) != rows || hidden.dim(1) != cfg_.hidden)
    throw std::invalid_argument("TransformerStage::forward: hidden shape mismatch");

  for (int l = shape_.first_layer; l < shape_.last_layer_exclusive(); ++l) {
    attention(l, hidden, items);
    mlp(l, hidden);
  }
}

void TransformerStage::attention(int layer, tensor::Tensor& hidden,
                                 std::span<const ItemView> items) {
  const LayerWeights& w = layers_[static_cast<std::size_t>(layer - shape_.first_layer)];
  const std::int64_t rows = hidden.dim(0);
  const std::int64_t h = cfg_.hidden;
  const std::int64_t q_dim = static_cast<std::int64_t>(cfg_.n_heads) * cfg_.head_dim;
  const std::int64_t kv_dim = static_cast<std::int64_t>(cfg_.n_kv_heads) * cfg_.head_dim;
  const int group = cfg_.n_heads / cfg_.n_kv_heads;
  const auto inv_sqrt_d = static_cast<float>(1.0 / std::sqrt(cfg_.head_dim));
  const int bs = pool_.block_size();

  xn_ = tensor::Tensor({rows, h});
  for (std::int64_t r = 0; r < rows; ++r)
    tensor::rmsnorm_row(hidden.row(r), w.norm_attn.flat(), kNormEps, xn_.row(r));

  q_ = tensor::Tensor({rows, q_dim});
  k_ = tensor::Tensor({rows, kv_dim});
  v_ = tensor::Tensor({rows, kv_dim});
  tensor::matmul_nt(xn_, w.wq, q_);
  tensor::matmul_nt(xn_, w.wk, k_);
  tensor::matmul_nt(xn_, w.wv, v_);

  attn_ = tensor::Tensor({rows, q_dim});

  std::int64_t row0 = 0;
  for (const ItemView& item : items) {
    // RoPE + KV write for the item's new tokens.
    for (int i = 0; i < item.n_tokens; ++i) {
      const std::int64_t pos = item.context + i;
      tensor::rope_row(q_.row(row0 + i), cfg_.n_heads, cfg_.head_dim, pos);
      tensor::rope_row(k_.row(row0 + i), cfg_.n_kv_heads, cfg_.head_dim, pos);
      const kv::BlockId block = item.blocks.at(static_cast<std::size_t>(pos / bs));
      const int slot = static_cast<int>(pos % bs);
      auto kdst = pool_.k_slot(layer, block, slot);
      auto vdst = pool_.v_slot(layer, block, slot);
      const auto ksrc = k_.row(row0 + i);
      const auto vsrc = v_.row(row0 + i);
      std::copy(ksrc.begin(), ksrc.end(), kdst.begin());
      std::copy(vsrc.begin(), vsrc.end(), vdst.begin());
    }
    // Causal attention over the paged cache (deterministic sequential
    // reduction in logical position order).
    for (int i = 0; i < item.n_tokens; ++i) {
      const std::int64_t pos = item.context + i;
      const auto qrow = q_.row(row0 + i);
      auto orow = attn_.row(row0 + i);
      std::vector<float> scores(static_cast<std::size_t>(pos) + 1);
      for (int head = 0; head < cfg_.n_heads; ++head) {
        const int kv_head = head / group;
        const float* qh = qrow.data() + static_cast<std::size_t>(head) * cfg_.head_dim;
        for (std::int64_t p = 0; p <= pos; ++p) {
          const kv::BlockId block = item.blocks.at(static_cast<std::size_t>(p / bs));
          const auto krow = pool_.k_slot(layer, block, static_cast<int>(p % bs));
          const float* kh = krow.data() + static_cast<std::size_t>(kv_head) * cfg_.head_dim;
          float dot = 0.0f;
          for (int d = 0; d < cfg_.head_dim; ++d) dot += qh[d] * kh[d];
          scores[static_cast<std::size_t>(p)] = dot * inv_sqrt_d;
        }
        tensor::softmax_inplace(scores);
        float* oh = orow.data() + static_cast<std::size_t>(head) * cfg_.head_dim;
        std::fill(oh, oh + cfg_.head_dim, 0.0f);
        for (std::int64_t p = 0; p <= pos; ++p) {
          const kv::BlockId block = item.blocks.at(static_cast<std::size_t>(p / bs));
          const auto vrow = pool_.v_slot(layer, block, static_cast<int>(p % bs));
          const float* vh = vrow.data() + static_cast<std::size_t>(kv_head) * cfg_.head_dim;
          const float prob = scores[static_cast<std::size_t>(p)];
          for (int d = 0; d < cfg_.head_dim; ++d) oh[d] += prob * vh[d];
        }
      }
    }
    row0 += item.n_tokens;
  }

  proj_ = tensor::Tensor({rows, h});
  tensor::matmul_nt(attn_, w.wo, proj_);
  for (std::int64_t r = 0; r < rows; ++r) tensor::add_inplace(hidden.row(r), proj_.row(r));
}

void TransformerStage::mlp(int layer, tensor::Tensor& hidden) {
  const LayerWeights& w = layers_[static_cast<std::size_t>(layer - shape_.first_layer)];
  const std::int64_t rows = hidden.dim(0);
  const std::int64_t h = cfg_.hidden;
  const std::int64_t inter = cfg_.intermediate;

  xn_ = tensor::Tensor({rows, h});
  for (std::int64_t r = 0; r < rows; ++r)
    tensor::rmsnorm_row(hidden.row(r), w.norm_mlp.flat(), kNormEps, xn_.row(r));

  gate_ = tensor::Tensor({rows, inter});
  up_ = tensor::Tensor({rows, inter});
  act_ = tensor::Tensor({rows, inter});
  down_ = tensor::Tensor({rows, h});
  tensor::matmul_nt(xn_, w.w_gate, gate_);
  tensor::matmul_nt(xn_, w.w_up, up_);
  for (std::int64_t r = 0; r < rows; ++r)
    tensor::swiglu_row(gate_.row(r), up_.row(r), act_.row(r));
  tensor::matmul_nt(act_, w.w_down, down_);
  for (std::int64_t r = 0; r < rows; ++r) tensor::add_inplace(hidden.row(r), down_.row(r));
}

tensor::Tensor TransformerStage::logits(const tensor::Tensor& hidden,
                                        std::span<const ItemView> items) const {
  if (!shape_.has_lm_head)
    throw std::logic_error("TransformerStage::logits: stage has no LM head");
  std::int64_t wanting = 0;
  for (const auto& item : items) wanting += item.wants_logits ? 1 : 0;

  tensor::Tensor sampled({wanting, cfg_.hidden});
  std::int64_t row0 = 0, out = 0;
  for (const ItemView& item : items) {
    if (item.wants_logits) {
      tensor::rmsnorm_row(hidden.row(row0 + item.n_tokens - 1), final_norm_.flat(),
                          kNormEps, sampled.row(out++));
    }
    row0 += item.n_tokens;
  }
  tensor::Tensor logits({wanting, cfg_.vocab});
  tensor::matmul_nt(sampled, lm_head_, logits);
  return logits;
}

}  // namespace gllm::nn
