#include "nn/stage.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace gllm::nn {

namespace {

/// Deterministic per-tensor weight stream: the same (seed, layer, slot)
/// always yields the same tensor, so different partitionings agree.
tensor::Tensor init_tensor(std::uint64_t seed, int layer, int slot,
                           std::vector<std::int64_t> shape, double fan_in) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(layer + 1)) ^
                (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(slot + 1)));
  const auto scale = static_cast<float>(1.0 / std::sqrt(fan_in));
  for (float& v : t.flat()) v = static_cast<float>(rng.normal()) * scale;
  return t;
}

tensor::Tensor ones(std::vector<std::int64_t> shape) {
  tensor::Tensor t(std::move(shape));
  t.fill(1.0f);
  return t;
}

/// Rows [row0, row0 + n) of `src` as a fresh tensor.
tensor::Tensor slice_rows(const tensor::Tensor& src, std::int64_t row0, std::int64_t n) {
  tensor::Tensor out({n, src.dim(1)});
  for (std::int64_t r = 0; r < n; ++r) {
    const auto s = src.row(row0 + r);
    auto d = out.row(r);
    std::copy(s.begin(), s.end(), d.begin());
  }
  return out;
}

constexpr float kNormEps = 1e-5f;
constexpr int kEmbedSlot = 100;
constexpr int kHeadSlot = 101;

}  // namespace

TransformerStage::TransformerStage(model::ModelConfig cfg, model::StageShape shape,
                                   std::uint64_t seed, std::int32_t kv_blocks,
                                   int kv_block_size, int tp,
                                   std::optional<kernels::Config> kcfg)
    : cfg_(std::move(cfg)), shape_(shape), tp_(tp), allreduce_(tp) {
  cfg_.validate();
  model::validate_tp(cfg_, tp);
  kcfg_ = kcfg ? *kcfg : kernels::Config::resolve(cfg_.quant);
  cfg_.quant = kcfg_.quant;  // explicit kernel config wins; keep accounting honest
  if (!kernels::isa_available(kcfg_.isa))
    throw std::runtime_error("TransformerStage: requested ISA not available on this host");
  heads_per_shard_ = cfg_.n_heads / tp_;
  kv_heads_per_shard_ = cfg_.n_kv_heads / tp_;
  group_ = cfg_.n_heads / cfg_.n_kv_heads;

  const std::int64_t h = cfg_.hidden;
  const std::int64_t q_dim = static_cast<std::int64_t>(cfg_.n_heads) * cfg_.head_dim;
  const std::int64_t kv_dim = static_cast<std::int64_t>(cfg_.n_kv_heads) * cfg_.head_dim;
  const std::int64_t inter = cfg_.intermediate;

  // Fixed reduction chunking over `intermediate`: n_kv_heads nearly-even
  // contiguous ranges, remainder to the earliest chunks. Shard boundaries
  // always fall on chunk boundaries (tp divides n_kv_heads).
  const int chunks = cfg_.n_kv_heads;
  inter_chunk_begin_.resize(static_cast<std::size_t>(chunks) + 1);
  const std::int64_t base = inter / chunks;
  const std::int64_t extra = inter % chunks;
  std::int64_t at = 0;
  for (int c = 0; c <= chunks; ++c) {
    inter_chunk_begin_[static_cast<std::size_t>(c)] = at;
    if (c < chunks) at += base + (c < extra ? 1 : 0);
  }

  const model::QuantMode quant = kcfg_.quant;
  const std::int64_t chunk_q = static_cast<std::int64_t>(group_) * cfg_.head_dim;

  layers_.reserve(static_cast<std::size_t>(shape.n_layers));
  for (int l = shape.first_layer; l < shape.last_layer_exclusive(); ++l) {
    // Build the full deterministic tensors, then pack each shard's slice —
    // shard rows are bitwise-equal to the unsharded weights, and the
    // column-sharded projections pack per canonical chunk so int8 scales are
    // computed over identical (row, chunk) slices for every tp.
    const tensor::Tensor wq = init_tensor(seed, l, 0, {q_dim, h}, h);
    const tensor::Tensor wk = init_tensor(seed, l, 1, {kv_dim, h}, h);
    const tensor::Tensor wv = init_tensor(seed, l, 2, {kv_dim, h}, h);
    const tensor::Tensor wo = init_tensor(seed, l, 3, {h, q_dim}, q_dim);
    const tensor::Tensor w_gate = init_tensor(seed, l, 4, {inter, h}, h);
    const tensor::Tensor w_up = init_tensor(seed, l, 5, {inter, h}, h);
    const tensor::Tensor w_down = init_tensor(seed, l, 6, {h, inter}, inter);

    LayerWeights w;
    w.norm_attn = ones({h});
    w.norm_mlp = ones({h});
    w.shards.reserve(static_cast<std::size_t>(tp_));
    for (int r = 0; r < tp_; ++r) {
      const std::int64_t q0 = static_cast<std::int64_t>(r) * q_shard_dim();
      const std::int64_t kv0 = static_cast<std::int64_t>(r) * kv_shard_dim();
      const std::int64_t i0 =
          inter_chunk_begin_[static_cast<std::size_t>(r * kv_heads_per_shard_)];
      const std::int64_t i1 =
          inter_chunk_begin_[static_cast<std::size_t>((r + 1) * kv_heads_per_shard_)];
      ShardWeights sw;
      sw.wq = kernels::PackedWeights::pack(slice_rows(wq, q0, q_shard_dim()), quant);
      sw.wk = kernels::PackedWeights::pack(slice_rows(wk, kv0, kv_shard_dim()), quant);
      sw.wv = kernels::PackedWeights::pack(slice_rows(wv, kv0, kv_shard_dim()), quant);
      sw.w_gate = kernels::PackedWeights::pack(slice_rows(w_gate, i0, i1 - i0), quant);
      sw.w_up = kernels::PackedWeights::pack(slice_rows(w_up, i0, i1 - i0), quant);
      sw.wo.reserve(static_cast<std::size_t>(kv_heads_per_shard_));
      sw.w_down.reserve(static_cast<std::size_t>(kv_heads_per_shard_));
      for (int c = r * kv_heads_per_shard_; c < (r + 1) * kv_heads_per_shard_; ++c) {
        const std::int64_t c0 = inter_chunk_begin_[static_cast<std::size_t>(c)];
        const std::int64_t cw = inter_chunk_begin_[static_cast<std::size_t>(c) + 1] - c0;
        sw.wo.push_back(kernels::PackedWeights::pack(
            wo, static_cast<std::int64_t>(c) * chunk_q, chunk_q, quant));
        sw.w_down.push_back(kernels::PackedWeights::pack(w_down, c0, cw, quant));
      }
      packed_bytes_ += sw.wq.packed_bytes() + sw.wk.packed_bytes() +
                       sw.wv.packed_bytes() + sw.w_gate.packed_bytes() +
                       sw.w_up.packed_bytes();
      for (const auto& p : sw.wo) packed_bytes_ += p.packed_bytes();
      for (const auto& p : sw.w_down) packed_bytes_ += p.packed_bytes();
      w.shards.push_back(std::move(sw));
    }
    layers_.push_back(std::move(w));
  }
  if (shape.has_embedding) {
    embedding_ = init_tensor(seed, -1, kEmbedSlot, {cfg_.vocab, h}, h);
  }
  if (shape.has_lm_head) {
    final_norm_ = ones({h});
    lm_head_ = kernels::PackedWeights::pack(
        init_tensor(seed, -1, kHeadSlot, {cfg_.vocab, h}, h), quant);
    packed_bytes_ += lm_head_.packed_bytes();
  }

  pools_.reserve(static_cast<std::size_t>(tp_));
  for (int r = 0; r < tp_; ++r)
    pools_.emplace_back(cfg_, shape.first_layer, shape.n_layers, kv_blocks,
                        kv_block_size, kv_heads_per_shard_);
}

tensor::Tensor TransformerStage::embed(std::span<const TokenId> tokens) const {
  if (!shape_.has_embedding)
    throw std::logic_error("TransformerStage::embed: stage has no embedding");
  tensor::Tensor hidden({static_cast<std::int64_t>(tokens.size()), cfg_.hidden});
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const TokenId t = tokens[i];
    if (t < 0 || t >= cfg_.vocab)
      throw std::out_of_range("TransformerStage::embed: token id out of vocab");
    const auto src = embedding_.row(t);
    auto dst = hidden.row(static_cast<std::int64_t>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return hidden;
}

void TransformerStage::forward(tensor::Tensor& hidden, std::span<const ItemView> items) {
  std::int64_t rows = 0;
  for (const auto& item : items) rows += item.n_tokens;
  if (hidden.rank() != 2 || hidden.dim(0) != rows || hidden.dim(1) != cfg_.hidden)
    throw std::invalid_argument("TransformerStage::forward: hidden shape mismatch");

  for (int l = shape_.first_layer; l < shape_.last_layer_exclusive(); ++l) {
    attention(l, hidden, items);
    mlp(l, hidden);
  }
}

void TransformerStage::attention(int layer, tensor::Tensor& hidden,
                                 std::span<const ItemView> items) {
  const LayerWeights& w = layers_[static_cast<std::size_t>(layer - shape_.first_layer)];
  const std::int64_t rows = hidden.dim(0);
  const std::int64_t h = cfg_.hidden;
  const std::int64_t q_dim = static_cast<std::int64_t>(cfg_.n_heads) * cfg_.head_dim;
  const std::int64_t kv_dim = static_cast<std::int64_t>(cfg_.n_kv_heads) * cfg_.head_dim;
  const int hd = cfg_.head_dim;
  const auto inv_sqrt_d = static_cast<float>(1.0 / std::sqrt(cfg_.head_dim));
  const int bs = pools_.front().block_size();
  const int chunks = cfg_.n_kv_heads;
  const std::int64_t chunk_q = static_cast<std::int64_t>(group_) * hd;
  // Intra-op GEMM threading only when this stage is unsharded: with tp > 1
  // the AllReduce fork-join already owns the pool lanes (see kernels.hpp).
  const bool par = tp_ == 1;
  if (rows == 0) return;

  xn_ = tensor::Tensor({rows, h});
  for (std::int64_t r = 0; r < rows; ++r)
    tensor::rmsnorm_row(hidden.row(r), w.norm_attn.flat(), kNormEps, xn_.row(r));

  q_ = tensor::Tensor({rows, q_dim});
  k_ = tensor::Tensor({rows, kv_dim});
  v_ = tensor::Tensor({rows, kv_dim});
  attn_ = tensor::Tensor({rows, q_dim});
  partial_ = tensor::Tensor({static_cast<std::int64_t>(chunks) * rows, h});

  // Shard phase: each lane computes its own Q/K/V columns, applies RoPE to
  // its own heads, writes its own KV pool, runs attention for its own query
  // heads (the matching KV head is local — GQA groups stay intact) and emits
  // per-chunk partial sums of the output projection. All writes are to
  // shard-private columns/slabs, so lanes never race.
  allreduce_.run_sharded([&](int shard) {
    const ShardWeights& sw = w.shards[static_cast<std::size_t>(shard)];
    KvPool& pool = pools_[static_cast<std::size_t>(shard)];
    const std::int64_t q0 = static_cast<std::int64_t>(shard) * q_shard_dim();
    const std::int64_t kv0 = static_cast<std::int64_t>(shard) * kv_shard_dim();

    // Q/K/V projections: blocked GEMMs writing this shard's column ranges of
    // the shared scratch tensors (ldx/ldy stride over the full row width).
    const float* x0 = xn_.row(0).data();
    kernels::Gemm::run(kcfg_.isa, x0, h, rows, sw.wq, q_.row(0).data() + q0, q_dim, par);
    kernels::Gemm::run(kcfg_.isa, x0, h, rows, sw.wk, k_.row(0).data() + kv0, kv_dim, par);
    kernels::Gemm::run(kcfg_.isa, x0, h, rows, sw.wv, v_.row(0).data() + kv0, kv_dim, par);

    std::int64_t row0 = 0;
    for (const ItemView& item : items) {
      // RoPE + KV write for the item's new tokens (this shard's heads only).
      for (int i = 0; i < item.n_tokens; ++i) {
        const std::int64_t pos = item.context + i;
        const std::int64_t m = row0 + i;
        tensor::rope_row(q_.row(m).subspan(static_cast<std::size_t>(q0),
                                           static_cast<std::size_t>(q_shard_dim())),
                         heads_per_shard_, hd, pos);
        tensor::rope_row(k_.row(m).subspan(static_cast<std::size_t>(kv0),
                                           static_cast<std::size_t>(kv_shard_dim())),
                         kv_heads_per_shard_, hd, pos);
        const kv::BlockId block = item.blocks.at(static_cast<std::size_t>(pos / bs));
        const int slot = static_cast<int>(pos % bs);
        auto kdst = pool.k_slot(layer, block, slot);
        auto vdst = pool.v_slot(layer, block, slot);
        std::copy(k_.row(m).begin() + kv0, k_.row(m).begin() + kv0 + kv_shard_dim(),
                  kdst.begin());
        std::copy(v_.row(m).begin() + kv0, v_.row(m).begin() + kv0 + kv_shard_dim(),
                  vdst.begin());
      }
      // Causal attention over the shard's paged cache (deterministic
      // sequential reduction in logical position order).
      for (int i = 0; i < item.n_tokens; ++i) {
        const std::int64_t pos = item.context + i;
        const float* qrow = q_.row(row0 + i).data();
        float* orow = attn_.row(row0 + i).data();
        std::vector<float> scores(static_cast<std::size_t>(pos) + 1);
        for (int hl = 0; hl < heads_per_shard_; ++hl) {
          const int head = shard * heads_per_shard_ + hl;
          const int kv_local = hl / group_;
          const float* qh = qrow + static_cast<std::size_t>(head) * hd;
          for (std::int64_t p = 0; p <= pos; ++p) {
            const kv::BlockId block = item.blocks.at(static_cast<std::size_t>(p / bs));
            const auto kslot = pool.k_slot(layer, block, static_cast<int>(p % bs));
            const float* kh = kslot.data() + static_cast<std::size_t>(kv_local) * hd;
            scores[static_cast<std::size_t>(p)] =
                kernels::DotSoftmax::dot(kcfg_.isa, qh, kh, hd) * inv_sqrt_d;
          }
          kernels::DotSoftmax::softmax(scores);
          float* oh = orow + static_cast<std::size_t>(head) * hd;
          std::fill(oh, oh + hd, 0.0f);
          for (std::int64_t p = 0; p <= pos; ++p) {
            const kv::BlockId block = item.blocks.at(static_cast<std::size_t>(p / bs));
            const auto vslot = pool.v_slot(layer, block, static_cast<int>(p % bs));
            const float* vh = vslot.data() + static_cast<std::size_t>(kv_local) * hd;
            kernels::DotSoftmax::axpy(kcfg_.isa, scores[static_cast<std::size_t>(p)],
                                      vh, oh, hd);
          }
        }
      }
      row0 += item.n_tokens;
    }

    // Output projection: one partial slab per owned chunk (chunk = one KV
    // head's group of query columns), never merged locally — the reduce
    // phase folds all chunks in fixed order for every tp.
    for (int c = shard * kv_heads_per_shard_; c < (shard + 1) * kv_heads_per_shard_;
         ++c) {
      const std::int64_t col0 = static_cast<std::int64_t>(c) * chunk_q;
      const kernels::PackedWeights& wo_c =
          sw.wo[static_cast<std::size_t>(c - shard * kv_heads_per_shard_)];
      kernels::Gemm::run(kcfg_.isa, attn_.row(0).data() + col0, q_dim, rows, wo_c,
                         partial_.row(static_cast<std::int64_t>(c) * rows).data(), h,
                         par);
    }
  });

  proj_ = tensor::Tensor({rows, h});
  {
    obs::SpanGuard span(tracer_, track_, "stage.allreduce");
    allreduce_.reduce(partial_.flat(), chunks, proj_.flat());
  }
  for (std::int64_t r = 0; r < rows; ++r) tensor::add_inplace(hidden.row(r), proj_.row(r));
}

void TransformerStage::mlp(int layer, tensor::Tensor& hidden) {
  const LayerWeights& w = layers_[static_cast<std::size_t>(layer - shape_.first_layer)];
  const std::int64_t rows = hidden.dim(0);
  const std::int64_t h = cfg_.hidden;
  const std::int64_t inter = cfg_.intermediate;
  const int chunks = cfg_.n_kv_heads;
  const bool par = tp_ == 1;
  if (rows == 0) return;

  xn_ = tensor::Tensor({rows, h});
  for (std::int64_t r = 0; r < rows; ++r)
    tensor::rmsnorm_row(hidden.row(r), w.norm_mlp.flat(), kNormEps, xn_.row(r));

  gate_ = tensor::Tensor({rows, inter});
  up_ = tensor::Tensor({rows, inter});
  act_ = tensor::Tensor({rows, inter});
  partial_ = tensor::Tensor({static_cast<std::int64_t>(chunks) * rows, h});

  // Shard phase: gate/up are row-sharded over the shard's intermediate
  // range, SwiGLU is elementwise on that range, and the down projection
  // emits per-chunk partials exactly like the attention output.
  allreduce_.run_sharded([&](int shard) {
    const ShardWeights& sw = w.shards[static_cast<std::size_t>(shard)];
    const std::int64_t i0 =
        inter_chunk_begin_[static_cast<std::size_t>(shard * kv_heads_per_shard_)];
    const std::int64_t i1 =
        inter_chunk_begin_[static_cast<std::size_t>((shard + 1) * kv_heads_per_shard_)];

    kernels::Gemm::run(kcfg_.isa, xn_.row(0).data(), h, rows, sw.w_gate,
                       gate_.row(0).data() + i0, inter, par);
    kernels::Gemm::run(kcfg_.isa, xn_.row(0).data(), h, rows, sw.w_up,
                       up_.row(0).data() + i0, inter, par);
    for (std::int64_t m = 0; m < rows; ++m) {
      tensor::swiglu_row(
          gate_.row(m).subspan(static_cast<std::size_t>(i0),
                               static_cast<std::size_t>(i1 - i0)),
          up_.row(m).subspan(static_cast<std::size_t>(i0),
                             static_cast<std::size_t>(i1 - i0)),
          act_.row(m).subspan(static_cast<std::size_t>(i0),
                              static_cast<std::size_t>(i1 - i0)));
    }

    for (int c = shard * kv_heads_per_shard_; c < (shard + 1) * kv_heads_per_shard_;
         ++c) {
      const std::int64_t c0 = inter_chunk_begin_[static_cast<std::size_t>(c)];
      const kernels::PackedWeights& wd_c =
          sw.w_down[static_cast<std::size_t>(c - shard * kv_heads_per_shard_)];
      kernels::Gemm::run(kcfg_.isa, act_.row(0).data() + c0, inter, rows, wd_c,
                         partial_.row(static_cast<std::int64_t>(c) * rows).data(), h,
                         par);
    }
  });

  down_ = tensor::Tensor({rows, h});
  {
    obs::SpanGuard span(tracer_, track_, "stage.allreduce");
    allreduce_.reduce(partial_.flat(), chunks, down_.flat());
  }
  for (std::int64_t r = 0; r < rows; ++r) tensor::add_inplace(hidden.row(r), down_.row(r));
}

tensor::Tensor TransformerStage::logits(const tensor::Tensor& hidden,
                                        std::span<const ItemView> items) const {
  if (!shape_.has_lm_head)
    throw std::logic_error("TransformerStage::logits: stage has no LM head");
  std::int64_t wanting = 0;
  for (const auto& item : items) {
    if (!item.wants_logits) continue;
    if (item.logit_rows < 1 || item.logit_rows > item.n_tokens)
      throw std::invalid_argument("TransformerStage::logits: bad logit_rows");
    wanting += item.logit_rows;
  }

  tensor::Tensor sampled({wanting, cfg_.hidden});
  std::int64_t row0 = 0, out = 0;
  for (const ItemView& item : items) {
    if (item.wants_logits) {
      // The trailing logit_rows rows, in feed order — a speculative step
      // reads one greedy target per fed row (position C+i for row i).
      for (int r = item.n_tokens - item.logit_rows; r < item.n_tokens; ++r) {
        tensor::rmsnorm_row(hidden.row(row0 + r), final_norm_.flat(), kNormEps,
                            sampled.row(out++));
      }
    }
    row0 += item.n_tokens;
  }
  tensor::Tensor logits({wanting, cfg_.vocab});
  // The LM head runs outside any AllReduce fork-join (forward has returned),
  // so intra-op threading is always safe here.
  if (wanting > 0)
    kernels::Gemm::run(kcfg_.isa, sampled.row(0).data(), cfg_.hidden, wanting,
                       lm_head_, logits.row(0).data(), cfg_.vocab, /*parallel=*/true);
  return logits;
}

}  // namespace gllm::nn
