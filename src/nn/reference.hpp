#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "nn/stage.hpp"

namespace gllm::nn {

/// One generation request against the real CPU model.
struct GenRequest {
  std::int64_t id = 0;
  std::vector<TokenId> prompt;
  int max_new_tokens = 16;
  double arrival = 0.0;  ///< submission time (seconds); the reference ignores it
};

/// Single-stage, one-request-at-a-time greedy generation — the ground truth
/// the pipeline runtime's outputs must match token-for-token (the strict
/// version of the paper's MMLU-pro output-parity check, Table 1).
std::vector<std::vector<TokenId>> generate_reference(const model::ModelConfig& cfg,
                                                     std::uint64_t weight_seed,
                                                     const std::vector<GenRequest>& requests,
                                                     int kv_block_size = 8);

/// Deterministic synthetic prompt (token ids) for tests and examples.
std::vector<TokenId> synthetic_prompt(const model::ModelConfig& cfg, std::uint64_t seed,
                                      int length);

}  // namespace gllm::nn
