#include "nn/kv_pool.hpp"

#include <stdexcept>

namespace gllm::nn {

KvPool::KvPool(const model::ModelConfig& cfg, int first_layer, int n_layers,
               std::int32_t n_blocks, int block_size, int n_kv_heads)
    : first_layer_(first_layer),
      n_layers_(n_layers),
      block_size_(block_size),
      n_blocks_(n_blocks),
      kv_dim_((n_kv_heads > 0 ? n_kv_heads : cfg.n_kv_heads) * cfg.head_dim) {
  if (n_layers <= 0 || n_blocks < 0 || block_size <= 0)
    throw std::invalid_argument("KvPool: invalid geometry");
  if (n_kv_heads < 0 || n_kv_heads > cfg.n_kv_heads)
    throw std::invalid_argument("KvPool: n_kv_heads override out of range");
  const std::int64_t rows =
      static_cast<std::int64_t>(n_layers) * n_blocks * block_size;
  k_ = tensor::Tensor({rows, kv_dim_});
  v_ = tensor::Tensor({rows, kv_dim_});
}

std::size_t KvPool::offset(int layer, kv::BlockId block, int slot) const {
  const int local = layer - first_layer_;
  if (local < 0 || local >= n_layers_) throw std::out_of_range("KvPool: layer not in pool");
  if (block < 0 || block >= n_blocks_) throw std::out_of_range("KvPool: bad block id");
  if (slot < 0 || slot >= block_size_) throw std::out_of_range("KvPool: bad slot");
  return (static_cast<std::size_t>(local) * n_blocks_ + static_cast<std::size_t>(block)) *
             block_size_ +
         static_cast<std::size_t>(slot);
}

std::span<float> KvPool::k_slot(int layer, kv::BlockId block, int slot) {
  return k_.row(static_cast<std::int64_t>(offset(layer, block, slot)));
}
std::span<float> KvPool::v_slot(int layer, kv::BlockId block, int slot) {
  return v_.row(static_cast<std::int64_t>(offset(layer, block, slot)));
}
std::span<const float> KvPool::k_slot(int layer, kv::BlockId block, int slot) const {
  return k_.row(static_cast<std::int64_t>(offset(layer, block, slot)));
}
std::span<const float> KvPool::v_slot(int layer, kv::BlockId block, int slot) const {
  return v_.row(static_cast<std::int64_t>(offset(layer, block, slot)));
}

}  // namespace gllm::nn
