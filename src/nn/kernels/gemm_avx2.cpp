// AVX2/FMA microkernels — the only TU compiled with -mavx2 -mfma (see
// src/CMakeLists.txt). Everything here is reached exclusively through the
// runtime dispatcher in kernels.cpp after a cpuid probe, so the rest of the
// binary stays executable on any x86-64.
//
// Determinism-per-path rule: every output element folds its K products the
// same way regardless of blocking, threading or sharding — 8 lane
// accumulators over floor(K/8)*8 (lane j holds the partial sum of indices
// congruent to j mod 8), a fixed pairwise horizontal fold
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then the sequential scalar tail.
// The 4-row unrolling below only shares x loads across independent
// accumulators; it never changes any element's fold.

#if !defined(GLLM_KERNELS_NO_AVX2)

#include <immintrin.h>

#include "nn/kernels/kernels_internal.hpp"

namespace gllm::nn::kernels::avx2 {

namespace {

/// The fixed pairwise fold of one 8-lane accumulator.
inline float hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);            // lanes i + i+4
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));   // (0+2, 1+3, ..)
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));  // (0+2) + (1+3)
  return _mm_cvtss_f32(s);
}

/// Widen 8 int8 weights to fp32 lanes.
inline __m256 load8_i8(const std::int8_t* p) {
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

}  // namespace

float dot_f32(const float* a, const float* b, std::int64_t n) {
  const std::int64_t n8 = n & ~std::int64_t{7};
  __m256 acc = _mm256_setzero_ps();
  for (std::int64_t i = 0; i < n8; i += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  float s = hsum(acc);
  for (std::int64_t i = n8; i < n; ++i) s += a[i] * b[i];
  return s;
}

void axpy_f32(float a, const float* x, float* y, std::int64_t n) {
  const std::int64_t n8 = n & ~std::int64_t{7};
  const __m256 av = _mm256_set1_ps(a);
  for (std::int64_t i = 0; i < n8; i += 8) {
    const __m256 yv =
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, yv);
  }
  for (std::int64_t i = n8; i < n; ++i) y[i] += a * x[i];
}

void gemm_f32(const float* x, std::int64_t ldx, std::int64_t m, const PackedWeights& w,
              float* y, std::int64_t ldy, std::int64_t n0, std::int64_t n1) {
  const std::int64_t k = w.k();
  const std::int64_t k8 = k & ~std::int64_t{7};
  for (std::int64_t mi = 0; mi < m; ++mi) {
    const float* xrow = x + mi * ldx;
    float* yrow = y + mi * ldy;
    std::int64_t ni = n0;
    for (; ni + 4 <= n1; ni += 4) {
      const float* w0 = w.f32_row(ni);
      const float* w1 = w.f32_row(ni + 1);
      const float* w2 = w.f32_row(ni + 2);
      const float* w3 = w.f32_row(ni + 3);
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      for (std::int64_t kk = 0; kk < k8; kk += 8) {
        const __m256 xv = _mm256_loadu_ps(xrow + kk);
        a0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w0 + kk), a0);
        a1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w1 + kk), a1);
        a2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w2 + kk), a2);
        a3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w3 + kk), a3);
      }
      float s0 = hsum(a0), s1 = hsum(a1), s2 = hsum(a2), s3 = hsum(a3);
      for (std::int64_t kk = k8; kk < k; ++kk) {
        const float xv = xrow[kk];
        s0 += xv * w0[kk];
        s1 += xv * w1[kk];
        s2 += xv * w2[kk];
        s3 += xv * w3[kk];
      }
      yrow[ni] = s0;
      yrow[ni + 1] = s1;
      yrow[ni + 2] = s2;
      yrow[ni + 3] = s3;
    }
    for (; ni < n1; ++ni) {
      const float* wr = w.f32_row(ni);
      __m256 acc = _mm256_setzero_ps();
      for (std::int64_t kk = 0; kk < k8; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + kk), _mm256_loadu_ps(wr + kk), acc);
      float s = hsum(acc);
      for (std::int64_t kk = k8; kk < k; ++kk) s += xrow[kk] * wr[kk];
      yrow[ni] = s;
    }
  }
}

void gemm_i8(const float* x, std::int64_t ldx, std::int64_t m, const PackedWeights& w,
             float* y, std::int64_t ldy, std::int64_t n0, std::int64_t n1) {
  const std::int64_t k = w.k();
  const std::int64_t k8 = k & ~std::int64_t{7};
  for (std::int64_t mi = 0; mi < m; ++mi) {
    const float* xrow = x + mi * ldx;
    float* yrow = y + mi * ldy;
    std::int64_t ni = n0;
    for (; ni + 4 <= n1; ni += 4) {
      const std::int8_t* w0 = w.i8_row(ni);
      const std::int8_t* w1 = w.i8_row(ni + 1);
      const std::int8_t* w2 = w.i8_row(ni + 2);
      const std::int8_t* w3 = w.i8_row(ni + 3);
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      for (std::int64_t kk = 0; kk < k8; kk += 8) {
        const __m256 xv = _mm256_loadu_ps(xrow + kk);
        a0 = _mm256_fmadd_ps(xv, load8_i8(w0 + kk), a0);
        a1 = _mm256_fmadd_ps(xv, load8_i8(w1 + kk), a1);
        a2 = _mm256_fmadd_ps(xv, load8_i8(w2 + kk), a2);
        a3 = _mm256_fmadd_ps(xv, load8_i8(w3 + kk), a3);
      }
      float s0 = hsum(a0), s1 = hsum(a1), s2 = hsum(a2), s3 = hsum(a3);
      for (std::int64_t kk = k8; kk < k; ++kk) {
        const float xv = xrow[kk];
        s0 += xv * static_cast<float>(w0[kk]);
        s1 += xv * static_cast<float>(w1[kk]);
        s2 += xv * static_cast<float>(w2[kk]);
        s3 += xv * static_cast<float>(w3[kk]);
      }
      yrow[ni] = s0 * w.scale(ni);
      yrow[ni + 1] = s1 * w.scale(ni + 1);
      yrow[ni + 2] = s2 * w.scale(ni + 2);
      yrow[ni + 3] = s3 * w.scale(ni + 3);
    }
    for (; ni < n1; ++ni) {
      const std::int8_t* wr = w.i8_row(ni);
      __m256 acc = _mm256_setzero_ps();
      for (std::int64_t kk = 0; kk < k8; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + kk), load8_i8(wr + kk), acc);
      float s = hsum(acc);
      for (std::int64_t kk = k8; kk < k; ++kk)
        s += xrow[kk] * static_cast<float>(wr[kk]);
      yrow[ni] = s * w.scale(ni);
    }
  }
}

}  // namespace gllm::nn::kernels::avx2

#endif  // !GLLM_KERNELS_NO_AVX2
