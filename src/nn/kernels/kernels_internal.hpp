#pragma once

// Internal seam between the generic dispatch TU (kernels.cpp) and the AVX2
// microkernel TU (gemm_avx2.cpp, compiled with -mavx2 -mfma). Only the
// kernels implementation includes this.

#include <cstdint>

#include "nn/kernels/kernels.hpp"

namespace gllm::nn::kernels::avx2 {

// Defined in gemm_avx2.cpp when the toolchain can build AVX2 code; the
// dispatcher never calls them unless isa_available(Isa::kAvx2), which also
// requires the cpuid probe to pass at runtime.
float dot_f32(const float* a, const float* b, std::int64_t n);
void axpy_f32(float a, const float* x, float* y, std::int64_t n);
/// Output features [n0, n1) of the packed GEMM for all m rows of x.
void gemm_f32(const float* x, std::int64_t ldx, std::int64_t m, const PackedWeights& w,
              float* y, std::int64_t ldy, std::int64_t n0, std::int64_t n1);
void gemm_i8(const float* x, std::int64_t ldx, std::int64_t m, const PackedWeights& w,
             float* y, std::int64_t ldy, std::int64_t n0, std::int64_t n1);

}  // namespace gllm::nn::kernels::avx2
