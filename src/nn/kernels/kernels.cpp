#include "nn/kernels/kernels.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "nn/kernels/kernels_internal.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace gllm::nn::kernels {

namespace {

/// Scalar GEMM over output features [n0, n1): the strict sequential K-fold,
/// bit-identical to the historical per-element `dot` in nn/stage.cpp.
void gemm_scalar(const float* x, std::int64_t ldx, std::int64_t m,
                 const PackedWeights& w, float* y, std::int64_t ldy, std::int64_t n0,
                 std::int64_t n1) {
  const std::int64_t k = w.k();
  const bool int8 = w.quant() == model::QuantMode::kInt8;
  for (std::int64_t mi = 0; mi < m; ++mi) {
    const float* xrow = x + mi * ldx;
    float* yrow = y + mi * ldy;
    if (int8) {
      for (std::int64_t ni = n0; ni < n1; ++ni) {
        const std::int8_t* wr = w.i8_row(ni);
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk)
          acc += xrow[kk] * static_cast<float>(wr[kk]);
        yrow[ni] = acc * w.scale(ni);
      }
    } else {
      for (std::int64_t ni = n0; ni < n1; ++ni) {
        const float* wr = w.f32_row(ni);
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += xrow[kk] * wr[kk];
        yrow[ni] = acc;
      }
    }
  }
}

void gemm_tile(Isa isa, const float* x, std::int64_t ldx, std::int64_t m,
               const PackedWeights& w, float* y, std::int64_t ldy, std::int64_t n0,
               std::int64_t n1) {
  if (isa == Isa::kAvx2) {
#if !defined(GLLM_KERNELS_NO_AVX2)
    if (w.quant() == model::QuantMode::kInt8)
      avx2::gemm_i8(x, ldx, m, w, y, ldy, n0, n1);
    else
      avx2::gemm_f32(x, ldx, m, w, y, ldy, n0, n1);
    return;
#else
    throw std::runtime_error("kernels::Gemm: AVX2 path not compiled into this binary");
#endif
  }
  gemm_scalar(x, ldx, m, w, y, ldy, n0, n1);
}

bool cpu_has_avx2_fma() {
#if defined(GLLM_KERNELS_NO_AVX2)
  return false;
#elif defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
  }
  return "unknown";
}

const char* quant_name(model::QuantMode q) { return model::to_string(q); }

bool isa_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return cpu_has_avx2_fma();
  }
  return false;
}

Isa best_isa() { return cpu_has_avx2_fma() ? Isa::kAvx2 : Isa::kScalar; }

Isa resolve_isa() {
  const char* env = std::getenv("GLLM_ISA");
  if (env == nullptr || *env == '\0') return best_isa();
  const std::string v(env);
  if (v == "auto") return best_isa();
  if (v == "scalar") return Isa::kScalar;
  if (v == "avx2") {
    if (!isa_available(Isa::kAvx2))
      throw std::runtime_error("GLLM_ISA=avx2 but this host cannot execute AVX2+FMA");
    return Isa::kAvx2;
  }
  throw std::invalid_argument("GLLM_ISA must be scalar, avx2 or auto; got '" + v + "'");
}

PackedWeights PackedWeights::pack(const tensor::Tensor& w, model::QuantMode quant) {
  return pack(w, 0, w.rank() == 2 ? w.dim(1) : 0, quant);
}

PackedWeights PackedWeights::pack(const tensor::Tensor& w, std::int64_t k0,
                                  std::int64_t k, model::QuantMode quant) {
  if (w.rank() != 2) throw std::invalid_argument("PackedWeights: weight must be 2-D");
  if (k0 < 0 || k <= 0 || k0 + k > w.dim(1))
    throw std::invalid_argument("PackedWeights: column slice out of range");

  PackedWeights p;
  p.n_ = w.dim(0);
  p.k_ = k;
  p.stride_ = (k + 7) / 8 * 8;  // pad rows to 8 elements for aligned-ish tiles
  p.quant_ = quant;
  if (quant == model::QuantMode::kInt8) {
    p.i8_.assign(static_cast<std::size_t>(p.n_ * p.stride_), 0);
    p.scales_.resize(static_cast<std::size_t>(p.n_));
    for (std::int64_t i = 0; i < p.n_; ++i) {
      const float* src = w.row(i).data() + k0;
      float maxabs = 0.0f;
      for (std::int64_t j = 0; j < k; ++j) maxabs = std::max(maxabs, std::fabs(src[j]));
      const float scale = maxabs > 0.0f ? maxabs / 127.0f : 0.0f;
      p.scales_[static_cast<std::size_t>(i)] = scale;
      std::int8_t* dst = p.i8_.data() + i * p.stride_;
      if (scale > 0.0f) {
        const float inv = 1.0f / scale;
        for (std::int64_t j = 0; j < k; ++j) {
          // lrintf = round to nearest even (default FP env) — deterministic.
          long q = std::lrintf(src[j] * inv);
          if (q > 127) q = 127;
          if (q < -127) q = -127;
          dst[j] = static_cast<std::int8_t>(q);
        }
      }
    }
  } else {
    p.f32_.assign(static_cast<std::size_t>(p.n_ * p.stride_), 0.0f);
    for (std::int64_t i = 0; i < p.n_; ++i) {
      const float* src = w.row(i).data() + k0;
      float* dst = p.f32_.data() + i * p.stride_;
      for (std::int64_t j = 0; j < k; ++j) dst[j] = src[j];
    }
  }
  return p;
}

std::int64_t PackedWeights::packed_bytes() const {
  return static_cast<std::int64_t>(f32_.size() * sizeof(float)) +
         static_cast<std::int64_t>(i8_.size()) +
         static_cast<std::int64_t>(scales_.size() * sizeof(float));
}

void Gemm::run(Isa isa, const float* x, std::int64_t ldx, std::int64_t m,
               const PackedWeights& w, float* y, std::int64_t ldy, bool parallel) {
  if (w.empty() || m <= 0) return;
  const std::int64_t n = w.n();
  if (!parallel) {
    gemm_tile(isa, x, ldx, m, w, y, ldy, 0, n);
    return;
  }
  // Intra-op threading: tile the *output features* across the shared pool.
  // Each element's K-fold is fixed per path, so any split is bit-identical
  // to the inline run. Grain keeps tiles big enough to amortize dispatch.
  util::ThreadPool::shared().parallel_for(
      0, static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        gemm_tile(isa, x, ldx, m, w, y, ldy, static_cast<std::int64_t>(begin),
                  static_cast<std::int64_t>(end));
      },
      /*grain=*/16);
}

float DotSoftmax::dot(Isa isa, const float* a, const float* b, std::int64_t n) {
#if !defined(GLLM_KERNELS_NO_AVX2)
  if (isa == Isa::kAvx2) return avx2::dot_f32(a, b, n);
#else
  if (isa == Isa::kAvx2)
    throw std::runtime_error("kernels::DotSoftmax: AVX2 path not compiled in");
#endif
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void DotSoftmax::axpy(Isa isa, float a, const float* x, float* y, std::int64_t n) {
#if !defined(GLLM_KERNELS_NO_AVX2)
  if (isa == Isa::kAvx2) {
    avx2::axpy_f32(a, x, y, n);
    return;
  }
#else
  if (isa == Isa::kAvx2)
    throw std::runtime_error("kernels::DotSoftmax: AVX2 path not compiled in");
#endif
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void DotSoftmax::softmax(std::span<float> row) { tensor::softmax_inplace(row); }

}  // namespace gllm::nn::kernels
