#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace gllm::nn::kernels {

/// Compute microkernel dispatch paths for the CPU transformer.
///
/// Determinism contract (the rule that keeps every token-identity proof bar
/// intact): within one path, the reduction order over K for an output element
/// is a pure function of K — identical for every element, every (M, N)
/// blocking, every thread split and every tensor-parallel sharding. The
/// scalar path is the plain sequential fold (bit-identical to the historical
/// `nn` implementation); the AVX2 path is 8 lane accumulators over
/// floor(K/8)*8 folded pairwise in fixed order, then a sequential tail.
/// Cross-path outputs agree only to rounding (tested ulp bounds in
/// tests/test_nn_kernels.cpp), so an ISA is a *numeric mode*: streams are
/// bit-deterministic per path, not across paths.
enum class Isa { kScalar, kAvx2 };

const char* isa_name(Isa isa);
const char* quant_name(model::QuantMode q);

/// True when this binary can execute `isa` on this host: the AVX2 translation
/// unit was compiled in (x86 toolchain) and cpuid reports AVX2 + FMA.
/// kScalar is always available.
bool isa_available(Isa isa);

/// Best ISA the host supports (cpuid probe).
Isa best_isa();

/// Dispatch resolution: the GLLM_ISA environment variable (`scalar`, `avx2`,
/// or `auto`/unset) overrides the cpuid pick. Read at every call — stages
/// resolve at construction, so tests can force a path per pipeline. Throws
/// std::runtime_error when the override names an ISA this host cannot run,
/// or std::invalid_argument for an unrecognized value.
Isa resolve_isa();

/// Resolved dispatch configuration of one stage: which microkernel path and
/// which weight numeric mode its packed caches use.
struct Config {
  Isa isa = Isa::kScalar;
  model::QuantMode quant = model::QuantMode::kFp32;

  static Config resolve(model::QuantMode quant) { return Config{resolve_isa(), quant}; }
};

/// Packed (and optionally int8-quantized) weight cache for the GEMM
/// y[m, n] = sum_k x[m, k] * w[n, k]. Packing copies rows of a [N, K_full]
/// row-major tensor — optionally a column slice [k0, k0 + k), i.e. one
/// reduction chunk — into padded storage owned by the stage, so the hot loop
/// never touches the original tensor.
///
/// int8 mode: symmetric per-output-channel quantization at the granularity of
/// the packed slice — scale_n = max|w[n, k0..k0+k)| / 127, values rounded to
/// nearest and clamped to [-127, 127], fp32 accumulation at dispatch time.
/// Because stages pack per reduction chunk (the same canonical chunk grid for
/// every tp), every tensor-parallel width quantizes identical (row, chunk)
/// slices and produces bit-identical packed weights.
class PackedWeights {
 public:
  PackedWeights() = default;

  /// Pack all of `w` ([N, K] row-major).
  static PackedWeights pack(const tensor::Tensor& w, model::QuantMode quant);
  /// Pack the column slice [k0, k0 + k) of every row of `w`.
  static PackedWeights pack(const tensor::Tensor& w, std::int64_t k0, std::int64_t k,
                            model::QuantMode quant);

  std::int64_t n() const { return n_; }
  std::int64_t k() const { return k_; }
  model::QuantMode quant() const { return quant_; }
  bool empty() const { return n_ == 0; }

  /// Resident bytes of the packed representation (values + scales), for
  /// stats-style reporting.
  std::int64_t packed_bytes() const;

  // Row accessors for the microkernels (padded stride, zero-filled tail).
  const float* f32_row(std::int64_t i) const { return f32_.data() + i * stride_; }
  const std::int8_t* i8_row(std::int64_t i) const { return i8_.data() + i * stride_; }
  float scale(std::int64_t i) const { return scales_[static_cast<std::size_t>(i)]; }

 private:
  std::int64_t n_ = 0;
  std::int64_t k_ = 0;
  std::int64_t stride_ = 0;  ///< row stride in elements, K rounded up to 8
  model::QuantMode quant_ = model::QuantMode::kFp32;
  std::vector<float> f32_;        // fp32 mode values
  std::vector<std::int8_t> i8_;   // int8 mode values
  std::vector<float> scales_;     // int8 per-output-channel scales
};

/// Blocked GEMM over a packed weight cache: y[m, n] = sum_k x[m, k] * w[n, k]
/// (int8: * scale_n). `x` rows live at stride `ldx`, `y` rows at stride
/// `ldy` — both may point into larger scratch tensors, which is how stages
/// write shard-private column ranges.
///
/// `parallel` spreads output-feature tiles across the shared thread pool's
/// idle workers (intra-op threading). Stages pass tp == 1 here: with tp > 1
/// the AllReduce fork-join already owns the pool lanes and nesting would
/// deadlock-or-oversubscribe, so sharded stages run their tiles inline.
/// Threading never changes results: the split is over output elements only,
/// and each element's K-fold is fixed per path.
struct Gemm {
  static void run(Isa isa, const float* x, std::int64_t ldx, std::int64_t m,
                  const PackedWeights& w, float* y, std::int64_t ldy,
                  bool parallel = false);
};

/// Attention inner kernels: the score dot product, the numerically-stable
/// softmax and the probability-weighted V accumulation (axpy). softmax is
/// shared scalar code on every path — its cost is linear and tiny next to the
/// dots — so softmax outputs are bit-identical across ISAs.
struct DotSoftmax {
  static float dot(Isa isa, const float* a, const float* b, std::int64_t n);
  static void axpy(Isa isa, float a, const float* x, float* y, std::int64_t n);
  static void softmax(std::span<float> row);
};

}  // namespace gllm::nn::kernels
