#pragma once

#include <span>

#include "kv/prefix_cache.hpp"  // TokenId
#include "util/rng.hpp"

namespace gllm::nn {

/// Token selection from a logits row. Greedy is the default everywhere token
/// equality matters; top-k/temperature exists for the interactive example.
class Sampler {
 public:
  /// Greedy sampler.
  Sampler() = default;
  /// Top-k with temperature; k <= 0 means full distribution.
  Sampler(int top_k, float temperature, std::uint64_t seed);

  kv::TokenId sample(std::span<const float> logits);

  bool greedy() const { return greedy_; }

 private:
  bool greedy_ = true;
  int top_k_ = 0;
  float temperature_ = 1.0f;
  util::Rng rng_{0};
};

}  // namespace gllm::nn
