#include "nn/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "tensor/ops.hpp"

namespace gllm::nn {

Sampler::Sampler(int top_k, float temperature, std::uint64_t seed)
    : greedy_(false), top_k_(top_k), temperature_(temperature), rng_(seed) {
  if (temperature <= 0.0f) throw std::invalid_argument("Sampler: temperature must be > 0");
}

kv::TokenId Sampler::sample(std::span<const float> logits) {
  if (greedy_) return static_cast<kv::TokenId>(tensor::argmax(logits));

  std::vector<std::size_t> order(logits.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t k =
      top_k_ > 0 ? std::min<std::size_t>(static_cast<std::size_t>(top_k_), logits.size())
                 : logits.size();
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(),
                    [&](std::size_t a, std::size_t b) { return logits[a] > logits[b]; });

  std::vector<double> probs(k);
  const double mx = logits[order[0]];
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    probs[i] = std::exp((logits[order[i]] - mx) / temperature_);
    sum += probs[i];
  }
  double r = rng_.uniform() * sum;
  for (std::size_t i = 0; i < k; ++i) {
    r -= probs[i];
    if (r <= 0.0) return static_cast<kv::TokenId>(order[i]);
  }
  return static_cast<kv::TokenId>(order[k - 1]);
}

}  // namespace gllm::nn
