#include "nn/reference.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace gllm::nn {

std::vector<std::vector<TokenId>> generate_reference(const model::ModelConfig& cfg,
                                                     std::uint64_t weight_seed,
                                                     const std::vector<GenRequest>& requests,
                                                     int kv_block_size) {
  // One stage spanning the whole model.
  model::StageShape shape;
  shape.first_layer = 0;
  shape.n_layers = cfg.n_layers;
  shape.has_embedding = true;
  shape.has_lm_head = true;

  // Size the pool for the longest single request (requests run one at a time).
  std::int64_t max_tokens = 1;
  for (const auto& r : requests) {
    max_tokens = std::max<std::int64_t>(
        max_tokens, static_cast<std::int64_t>(r.prompt.size()) + r.max_new_tokens);
  }
  const auto blocks =
      static_cast<std::int32_t>((max_tokens + kv_block_size - 1) / kv_block_size);
  TransformerStage stage(cfg, shape, weight_seed, blocks, kv_block_size);

  std::vector<std::vector<TokenId>> outputs;
  outputs.reserve(requests.size());

  for (const auto& request : requests) {
    if (request.prompt.empty())
      throw std::invalid_argument("generate_reference: empty prompt");
    // Identity page table: logical block i -> physical block i. Requests are
    // processed one at a time, so the pool is reused wholesale.
    std::vector<kv::BlockId> table(static_cast<std::size_t>(blocks));
    for (std::size_t i = 0; i < table.size(); ++i) table[i] = static_cast<kv::BlockId>(i);

    std::vector<TokenId> generated;
    std::vector<TokenId> context = request.prompt;

    // Prefill the whole prompt in one pass.
    ItemView item;
    item.context = 0;
    item.n_tokens = static_cast<int>(context.size());
    item.blocks = table;
    item.wants_logits = true;

    tensor::Tensor hidden = stage.embed(context);
    stage.forward(hidden, {&item, 1});
    tensor::Tensor logits = stage.logits(hidden, {&item, 1});
    TokenId next = static_cast<TokenId>(tensor::argmax(logits.row(0)));
    generated.push_back(next);

    // Greedy decode.
    while (static_cast<int>(generated.size()) < request.max_new_tokens) {
      ItemView step;
      step.context = static_cast<std::int64_t>(context.size()) +
                     static_cast<std::int64_t>(generated.size()) - 1;
      step.n_tokens = 1;
      step.blocks = table;
      step.wants_logits = true;

      const TokenId input = generated.back();
      tensor::Tensor h = stage.embed({&input, 1});
      stage.forward(h, {&step, 1});
      tensor::Tensor lg = stage.logits(h, {&step, 1});
      generated.push_back(static_cast<TokenId>(tensor::argmax(lg.row(0))));
    }
    outputs.push_back(std::move(generated));
  }
  return outputs;
}

std::vector<TokenId> synthetic_prompt(const model::ModelConfig& cfg, std::uint64_t seed,
                                      int length) {
  util::Rng rng(seed);
  std::vector<TokenId> prompt;
  prompt.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    prompt.push_back(static_cast<TokenId>(rng.uniform_int(0, cfg.vocab - 1)));
  }
  return prompt;
}

}  // namespace gllm::nn
