#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/prefix_cache.hpp"  // TokenId
#include "model/config.hpp"
#include "model/partition.hpp"
#include "nn/kv_pool.hpp"
#include "tensor/tensor.hpp"

namespace gllm::nn {

using kv::TokenId;

/// One item of a forward micro-batch, as seen by a stage: `n_tokens` new rows
/// with `context` tokens already cached, mapped to physical blocks by the
/// shared page table snapshot.
struct ItemView {
  std::int64_t context = 0;
  int n_tokens = 0;
  std::vector<kv::BlockId> blocks;  ///< page table covering context + n_tokens
  bool wants_logits = false;        ///< sample from this item's last new row
};

/// Weights of one decoder layer (GQA attention + SwiGLU MLP, RMSNorm).
struct LayerWeights {
  tensor::Tensor wq, wk, wv, wo;          // projections, [out, in]
  tensor::Tensor norm_attn, norm_mlp;     // RMSNorm gammas
  tensor::Tensor w_gate, w_up, w_down;    // MLP
};

/// A contiguous slice of a decoder-only transformer with paged-KV attention —
/// what one pipeline-stage worker executes. Holding the whole model in a
/// single stage gives the reference engine used for token-equality checks.
///
/// Weights are generated deterministically from (seed, layer, tensor) so any
/// partitioning of the same model id produces identical layer weights.
class TransformerStage {
 public:
  TransformerStage(model::ModelConfig cfg, model::StageShape shape, std::uint64_t seed,
                   std::int32_t kv_blocks, int kv_block_size);

  const model::ModelConfig& config() const { return cfg_; }
  const model::StageShape& shape() const { return shape_; }
  KvPool& kv_pool() { return pool_; }

  /// Embed token ids into hidden states (first stage only).
  tensor::Tensor embed(std::span<const TokenId> tokens) const;

  /// Run this stage's layers in-place over `hidden` ([sum n_tokens, hidden]),
  /// writing new K/V into the pool. Rows are ordered item-by-item.
  void forward(tensor::Tensor& hidden, std::span<const ItemView> items);

  /// Final norm + LM head over the last new row of each logits-wanting item
  /// (last stage only). Returns [n_wanting, vocab].
  tensor::Tensor logits(const tensor::Tensor& hidden, std::span<const ItemView> items) const;

 private:
  void attention(int layer, tensor::Tensor& hidden, std::span<const ItemView> items);
  void mlp(int layer, tensor::Tensor& hidden);

  model::ModelConfig cfg_;
  model::StageShape shape_;
  std::vector<LayerWeights> layers_;
  tensor::Tensor embedding_;   // [vocab, hidden], first stage
  tensor::Tensor final_norm_;  // [hidden], last stage
  tensor::Tensor lm_head_;     // [vocab, hidden], last stage
  KvPool pool_;

  // scratch buffers reused across forwards
  tensor::Tensor xn_, q_, k_, v_, attn_, proj_, gate_, up_, act_, down_;
};

}  // namespace gllm::nn
