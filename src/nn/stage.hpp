#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "kv/prefix_cache.hpp"  // TokenId
#include "model/config.hpp"
#include "model/partition.hpp"
#include "nn/allreduce.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/kv_pool.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace gllm::nn {

using kv::TokenId;

/// One item of a forward micro-batch, as seen by a stage: `n_tokens` new rows
/// with `context` tokens already cached, mapped to physical blocks by the
/// shared page table snapshot.
struct ItemView {
  std::int64_t context = 0;
  int n_tokens = 0;
  std::vector<kv::BlockId> blocks;  ///< page table covering context + n_tokens
  bool wants_logits = false;        ///< sample from this item's trailing rows
  /// Trailing rows to produce logits for when wants_logits is set. 1 for
  /// ordinary steps; a speculative decode step wants one target token per fed
  /// row (the last accepted token plus every draft token), so k + 1.
  int logit_rows = 1;
};

/// One tensor-parallel shard's slice of a decoder layer (Megatron layout):
/// Q/K/V and gate/up are row-sharded (the shard computes its own output
/// columns from the full input), O and down are column-sharded (the shard
/// contributes partial sums over its own input columns, combined by the
/// deterministic all-reduce).
/// All projections live as packed (optionally int8-quantized) kernel caches,
/// built once at construction from the full deterministic tensors. The
/// column-sharded projections (O, down) are packed *per reduction chunk* on
/// the canonical n_kv_heads grid, so every tp width quantizes identical
/// (row, chunk) slices and the packed bytes are bit-identical across tp.
struct ShardWeights {
  kernels::PackedWeights wq, wk, wv;    // [q_shard|kv_shard, hidden]
  kernels::PackedWeights w_gate, w_up;  // [inter_shard, hidden]
  std::vector<kernels::PackedWeights> wo;      // per owned chunk: [hidden, chunk_q]
  std::vector<kernels::PackedWeights> w_down;  // per owned chunk: [hidden, chunk_w]
};

/// Weights of one decoder layer (GQA attention + SwiGLU MLP, RMSNorm).
/// Norm gammas are replicated; everything else lives in per-shard slices
/// (a single slice covering the whole layer when tp == 1).
struct LayerWeights {
  tensor::Tensor norm_attn, norm_mlp;  // RMSNorm gammas, replicated
  std::vector<ShardWeights> shards;    // size tp
};

/// A contiguous slice of a decoder-only transformer with paged-KV attention —
/// what one pipeline-stage worker executes, optionally sharded `tp` ways
/// across the shared thread pool. Holding the whole model in a single stage
/// gives the reference engine used for token-equality checks.
///
/// Weights are generated deterministically from (seed, layer, tensor) so any
/// partitioning of the same model id produces identical layer weights; shard
/// slices are cut from the full deterministic tensors, so a shard's rows are
/// bitwise-equal to the corresponding rows of the unsharded weights.
///
/// Bit-reproducibility across tp: every row-sharded projection runs through
/// `nn::kernels`, whose per-element K-fold is a pure function of K within a
/// dispatch path (identical no matter which shard or pool thread computes
/// it), and both column-sharded projections (attention output, MLP down)
/// always accumulate per-chunk partial sums at the finest sharding
/// granularity — `n_kv_heads` chunks — which AllReduce::reduce folds in fixed
/// chunk order. Any tp dividing n_kv_heads owns whole chunks, so tp 1/2/4
/// and the single-stage reference produce bit-identical activations *per
/// path*; switching ISA or quant mode is a declared numeric-mode change.
class TransformerStage {
 public:
  /// `kcfg` pins the microkernel dispatch (ISA + quant mode); by default it
  /// resolves from cpuid/GLLM_ISA and cfg.quant. When given explicitly its
  /// quant mode wins and is written back to config().quant so weight-byte
  /// accounting stays consistent with the packed caches.
  TransformerStage(model::ModelConfig cfg, model::StageShape shape, std::uint64_t seed,
                   std::int32_t kv_blocks, int kv_block_size, int tp = 1,
                   std::optional<kernels::Config> kcfg = std::nullopt);

  const model::ModelConfig& config() const { return cfg_; }
  const model::StageShape& shape() const { return shape_; }
  int tp() const { return tp_; }
  const kernels::Config& kernel_config() const { return kcfg_; }
  /// Resident bytes of all packed weight caches (values + int8 scales).
  std::int64_t packed_weight_bytes() const { return packed_bytes_; }
  KvPool& kv_pool() { return pools_.front(); }
  KvPool& kv_pool(int shard) { return pools_.at(static_cast<std::size_t>(shard)); }

  /// Emit `stage.allreduce` spans on `tracer` track `track` (null disables).
  void set_tracer(obs::Tracer* tracer, int track) {
    tracer_ = tracer;
    track_ = track;
  }

  /// Collective counters (reduce-phase invocations / folded bytes).
  std::int64_t allreduce_ops() const { return allreduce_.ops(); }
  std::int64_t allreduce_bytes() const { return allreduce_.bytes(); }

  /// Embed token ids into hidden states (first stage only).
  tensor::Tensor embed(std::span<const TokenId> tokens) const;

  /// Run this stage's layers in-place over `hidden` ([sum n_tokens, hidden]),
  /// writing new K/V into the per-shard pools. Rows are ordered item-by-item.
  void forward(tensor::Tensor& hidden, std::span<const ItemView> items);

  /// Final norm + LM head over the last new row of each logits-wanting item
  /// (last stage only). Returns [n_wanting, vocab].
  tensor::Tensor logits(const tensor::Tensor& hidden, std::span<const ItemView> items) const;

 private:
  void attention(int layer, tensor::Tensor& hidden, std::span<const ItemView> items);
  void mlp(int layer, tensor::Tensor& hidden);

  // Shard geometry (see the class comment for the chunk invariants).
  std::int64_t q_shard_dim() const { return heads_per_shard_ * cfg_.head_dim; }
  std::int64_t kv_shard_dim() const { return kv_heads_per_shard_ * cfg_.head_dim; }

  model::ModelConfig cfg_;
  model::StageShape shape_;
  int tp_ = 1;
  int heads_per_shard_ = 0;
  int kv_heads_per_shard_ = 0;
  int group_ = 1;  ///< query heads per KV head (GQA group width)
  /// Reduction chunk boundaries over `intermediate`: n_kv_heads nearly-even
  /// contiguous ranges (remainder to the earliest), shared by every tp.
  std::vector<std::int64_t> inter_chunk_begin_;
  kernels::Config kcfg_;          ///< resolved microkernel path + quant mode
  std::int64_t packed_bytes_ = 0;
  std::vector<LayerWeights> layers_;
  tensor::Tensor embedding_;           // [vocab, hidden], first stage
  tensor::Tensor final_norm_;          // [hidden], last stage
  kernels::PackedWeights lm_head_;     // [vocab, hidden], last stage
  std::vector<KvPool> pools_;  // one per shard, each holding its own KV heads
  AllReduce allreduce_;
  obs::Tracer* tracer_ = nullptr;
  int track_ = 0;

  // scratch buffers reused across forwards
  tensor::Tensor xn_, q_, k_, v_, attn_, proj_, gate_, up_, act_, down_, partial_;
};

}  // namespace gllm::nn
