#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace gllm::nn {

/// In-process tensor-parallel collective for the shard-major CPU runtime.
///
/// Two halves, mirroring a real TP group:
///  * `run_sharded(fn)` is the fork-join: fn(shard) runs for every shard in
///    [0, tp) on the shared thread pool, one execution lane per shard, and
///    returns when all lanes finish. Shards must touch disjoint state — each
///    writes only its own weight slice, KV pool and scratch columns.
///  * `reduce(...)` is the deterministic summation: per-chunk partial sums
///    are folded in fixed ascending chunk order. Float addition is not
///    associative, so the *chunk order*, never the thread schedule, defines
///    the result — any shard count that owns whole chunks produces
///    bit-identical outputs (the token-equality proof bar across tp).
class AllReduce {
 public:
  explicit AllReduce(int tp);

  int tp() const { return tp_; }

  /// Fork-join over the shards. Safe to call from any thread; must not be
  /// nested inside another shared-pool parallel_for.
  void run_sharded(const std::function<void(int shard)>& fn) const;

  /// out[j] = partials[0*n + j] + partials[1*n + j] + ... for j in [0, n),
  /// n = out.size(), `partials` chunk-major with `chunks` slabs of n floats.
  /// Counts one collective and `chunks * n * sizeof(float)` reduced bytes.
  void reduce(std::span<const float> partials, int chunks, std::span<float> out);

  /// Collective counters, for /v1/stats-style reporting and tests.
  std::int64_t ops() const { return ops_; }
  std::int64_t bytes() const { return bytes_; }

 private:
  int tp_ = 1;
  std::int64_t ops_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace gllm::nn
