#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/block_allocator.hpp"
#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace gllm::nn {

/// Physical paged KV storage for a contiguous range of layers — the CPU
/// analogue of one pipeline stage's device KV cache. Slots are addressed by
/// (layer, physical block id, in-block slot); the logical-to-physical mapping
/// comes from the shared kv::PageTable, mirroring the paper's unified page
/// tables across workers.
class KvPool {
 public:
  /// `n_kv_heads` overrides the model's KV head count (a tensor-parallel
  /// shard's pool holds only its own heads); 0 means all of them.
  KvPool(const model::ModelConfig& cfg, int first_layer, int n_layers,
         std::int32_t n_blocks, int block_size, int n_kv_heads = 0);

  int first_layer() const { return first_layer_; }
  int n_layers() const { return n_layers_; }
  int block_size() const { return block_size_; }
  std::int32_t n_blocks() const { return n_blocks_; }
  int kv_dim() const { return kv_dim_; }

  /// K row for one token slot in one of this pool's layers (absolute layer
  /// index). Writable span of kv_heads*head_dim floats.
  std::span<float> k_slot(int layer, kv::BlockId block, int slot);
  std::span<float> v_slot(int layer, kv::BlockId block, int slot);
  std::span<const float> k_slot(int layer, kv::BlockId block, int slot) const;
  std::span<const float> v_slot(int layer, kv::BlockId block, int slot) const;

 private:
  std::size_t offset(int layer, kv::BlockId block, int slot) const;

  int first_layer_;
  int n_layers_;
  int block_size_;
  std::int32_t n_blocks_;
  int kv_dim_;
  tensor::Tensor k_;  // [n_layers * n_blocks * block_size, kv_dim]
  tensor::Tensor v_;
};

}  // namespace gllm::nn
