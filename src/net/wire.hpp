#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "runtime/messages.hpp"

namespace gllm::net {

/// Wire protocol version, carried in every frame header and in the Hello
/// handshake. Bump on any incompatible change to the encodings below.
/// v2: StreamEvent carries a terminal error code.
/// v3: HelloAck carries the tensor-parallel width.
/// v4: ItemMeta carries the speculative draft-token count.
/// v5: ModelConfig carries the weight quantization mode.
inline constexpr std::uint16_t kWireVersion = 5;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the per-frame checksum.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Append-only little-endian byte writer. All multi-byte integers are
/// serialized explicitly byte-by-byte so the wire format is identical on any
/// host endianness; floats go as their IEEE-754 bit patterns.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  /// Raw IEEE-754 little-endian floats, no length prefix (caller encodes the
  /// count separately, e.g. as tensor dims).
  void f32_span(std::span<const float> v);

  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. Every getter
/// returns false (leaving the cursor unchanged) instead of reading past the
/// end, so decoding adversarial input can fail but never over-read.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i32(std::int32_t& v);
  bool i64(std::int64_t& v);
  bool f32(float& v);
  bool f64(double& v);
  bool boolean(bool& v);
  bool str(std::string& s, std::size_t max_len = 1 << 16);
  bool f32_vec(std::vector<float>& v, std::size_t count);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// True once the cursor consumed the whole buffer (strict decoders check
  /// this to reject trailing garbage).
  bool done() const { return pos_ == data_.size(); }

 private:
  bool take(void* out, std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- runtime message codecs -------------------------------------------------
// decode() returns false on truncated/malformed input; the out-param may be
// partially filled in that case and must be discarded. Strict: a successful
// decode consumes the reader exactly when the message is the whole payload
// (checked by the frame-level helpers in transport.cpp, not here, so messages
// can also be embedded in larger payloads).

void encode(WireWriter& w, const runtime::StepMetadata& m);
bool decode(WireReader& r, runtime::StepMetadata& m);

void encode(WireWriter& w, const runtime::Activations& a);
bool decode(WireReader& r, runtime::Activations& a);

void encode(WireWriter& w, const runtime::SampleResult& s);
bool decode(WireReader& r, runtime::SampleResult& s);

void encode(WireWriter& w, const runtime::StreamEvent& e);
bool decode(WireReader& r, runtime::StreamEvent& e);

// --- control-plane messages -------------------------------------------------

/// Worker -> driver, first frame on the control connection.
struct Hello {
  std::uint16_t wire_version = kWireVersion;
  std::int32_t requested_stage = -1;  ///< -1 = assign me any stage
  std::uint16_t act_in_port = 0;      ///< my listener for predecessor activations
};

/// Driver -> worker: everything the worker needs to host its stage — the
/// model config + partition + weight-seed agreement of the handshake.
struct HelloAck {
  std::int32_t stage = 0;
  std::int32_t pp = 1;
  std::int32_t tp = 1;  ///< tensor-parallel width of every stage (v3)
  model::ModelConfig model;
  std::uint64_t weight_seed = 0;
  std::int64_t kv_capacity_tokens = 0;
  std::int32_t kv_block_size = 8;
  bool greedy_sampling = true;
  std::int32_t top_k = 0;
  float temperature = 1.0f;
  std::uint64_t sampler_seed = 0;
  std::string next_host;        ///< successor's activation listener ("" on last stage)
  std::uint16_t next_port = 0;
  double heartbeat_interval_s = 0.25;
  double heartbeat_timeout_s = 10.0;
};

void encode(WireWriter& w, const Hello& h);
bool decode(WireReader& r, Hello& h);

void encode(WireWriter& w, const HelloAck& a);
bool decode(WireReader& r, HelloAck& a);

}  // namespace gllm::net
