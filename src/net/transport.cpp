#include "net/transport.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "model/partition.hpp"
#include "net/fault.hpp"
#include "net/socket.hpp"
#include "runtime/worker.hpp"
#include "util/log.hpp"

namespace gllm::net {
namespace {

template <typename T>
std::vector<std::uint8_t> encode_payload(const T& msg) {
  WireWriter w;
  encode(w, msg);
  return w.take();
}

/// Strict frame-payload decode: the message must consume the payload exactly.
template <typename T>
bool decode_payload(const Frame& f, T& out) {
  WireReader r(f.payload);
  return decode(r, out) && r.done();
}

obs::NetChannelMetrics* channel_for(obs::NetMetrics* m, MsgType type) {
  if (m == nullptr) return nullptr;
  switch (type) {
    case MsgType::kStepMetadata: return &m->meta;
    case MsgType::kActivations: return &m->act;
    case MsgType::kSampleResult:
    case MsgType::kStreamEvent: return &m->sample;
    default: return &m->ctrl;
  }
}

ChannelStats sent_stats(obs::NetMetrics* m, MsgType type) {
  auto* ch = channel_for(m, type);
  return ch != nullptr ? ChannelStats{ch->frames_sent, ch->bytes_sent} : ChannelStats{};
}

ChannelStats recvd_stats(obs::NetMetrics* m, MsgType type) {
  auto* ch = channel_for(m, type);
  return ch != nullptr ? ChannelStats{ch->frames_recv, ch->bytes_recv} : ChannelStats{};
}

/// Close every descriptor >= lowfd. A forked worker inherits whatever the
/// driver process had open — server listen sockets, accepted client
/// connections, the previous pipeline generation's links. A worker holding a
/// copy of such a descriptor keeps the socket alive past the driver's own
/// close, so a peer waiting for EOF waits forever.
void close_fds_from(int lowfd) {
#ifdef SYS_close_range
  if (::syscall(SYS_close_range, static_cast<unsigned>(lowfd), ~0U, 0U) == 0) return;
#endif
  const long open_max = ::sysconf(_SC_OPEN_MAX);
  const int limit = open_max > 0 ? static_cast<int>(open_max) : 1024;
  for (int fd = lowfd; fd < limit; ++fd) ::close(fd);
}

const char* to_string(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kClosed: return "closed";
    case RecvStatus::kTimeout: return "timeout";
    case RecvStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

/// Wall-clock countdown for the handshake deadline.
class Deadline {
 public:
  explicit Deadline(double seconds)
      : end_(std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(seconds))) {}
  double remaining() const {
    const std::chrono::duration<double> left = end_ - std::chrono::steady_clock::now();
    return left.count() > 0.0 ? left.count() : 0.0;
  }

 private:
  std::chrono::steady_clock::time_point end_;
};

}  // namespace

// --- Conn -------------------------------------------------------------------

Conn::~Conn() {
  if (fd_ >= 0) close_fd(fd_);
}

bool Conn::send(MsgType type, std::span<const std::uint8_t> payload,
                const ChannelStats& stats) {
  std::lock_guard lock(write_mu_);
  return send_frame(fd_, type, payload, stats);
}

RecvStatus Conn::recv(Frame& out, double timeout_s, const ChannelStats& stats) {
  return recv_frame(fd_, out, timeout_s, stats);
}

std::string Conn::peer() const { return peer_host(fd_); }

void Conn::shutdown() { shutdown_fd(fd_); }

// --- DriverTransport --------------------------------------------------------

DriverTransport::DriverTransport(runtime::RuntimeOptions options)
    : options_(std::move(options)) {
  if (options_.obs != nullptr) {
    net_metrics_ = &options_.obs->net();
    fault_metrics_ = &options_.obs->fault();
    tracer_ = &options_.obs->tracer();
  }
  injector_ = options_.deployment.fault_injector;
  stall_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(options_.pp));
  for (int s = 0; s < options_.pp; ++s) stall_[static_cast<std::size_t>(s)] = false;
  const bool any = options_.deployment.mode == runtime::DeploymentOptions::Mode::kRemote;
  listen_fd_ = listen_tcp(options_.deployment.worker_port, any);
  port_ = local_port(listen_fd_);
  GLLM_LOG_INFO("driver transport listening on port " << port_ << " for " << options_.pp
                                                      << " workers");
}

DriverTransport::~DriverTransport() { shutdown(); }

void DriverTransport::fork_local_workers() {
  for (int s = 0; s < options_.pp; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      kill_children();
      reap_children(2.0);
      throw std::runtime_error("gllm::net: fork() failed");
    }
    if (pid == 0) {
      // Child: become the stage-s worker process. _exit (not exit) skips
      // atexit handlers and sanitizer leak checks inherited from the parent.
      // Recovery re-forks from a driver with live server sockets, so every
      // inherited descriptor beyond stdio must go (see close_fds_from).
      close_fds_from(3);
      WorkerOptions wopt;
      wopt.driver_host = "127.0.0.1";
      wopt.driver_port = port_;
      wopt.requested_stage = s;
      wopt.connect_timeout_s = options_.deployment.handshake_timeout_s;
      ::_exit(run_worker(wopt));
    }
    children_.push_back(ChildProc{pid, s, false, 0});
  }
}

void DriverTransport::wait_ready() {
  const auto& dep = options_.deployment;
  const int pp = options_.pp;
  Deadline deadline(dep.handshake_timeout_s);

  const auto fail = [&](const std::string& why) -> void {
    kill_children();
    reap_children(2.0);
    throw std::runtime_error("gllm::net handshake failed: " + why);
  };

  // Phase 1: accept pp control connections and read their Hellos.
  struct PendingWorker {
    std::unique_ptr<Conn> conn;
    Hello hello;
  };
  std::vector<PendingWorker> pending;
  for (;;) {
    // Drop pending workers that died while we waited for the rest. A worker
    // that times out waiting for its HelloAck leaves a dead connection
    // behind; assigning it a stage dooms the round at the Ready barrier —
    // and with per-worker relaunch loops outside, every retry round would
    // again pair one live connection with the previous attempt's corpse, a
    // phase-locked failure that burns the whole restart budget. After Hello
    // a live worker sends nothing until its ack, so a readable-with-EOF (or
    // errored) connection is unambiguously dead.
    std::erase_if(pending, [](const PendingWorker& p) {
      char probe;
      const ssize_t n = ::recv(p.conn->fd(), &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0) return true;                                   // EOF
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
      return false;
    });
    if (static_cast<int>(pending.size()) >= pp) break;
    if (!wait_readable(listen_fd_, deadline.remaining()))
      fail("timed out waiting for worker " + std::to_string(pending.size()) + " of " +
           std::to_string(pp) + " to connect");
    const int fd = accept_conn(listen_fd_);
    if (fd < 0) fail("accept failed");
    auto conn = std::make_unique<Conn>(fd);
    Frame f;
    const RecvStatus st = conn->recv(f, deadline.remaining());
    if (st != RecvStatus::kOk || f.type != MsgType::kHello)
      fail(std::string("bad hello (") + to_string(st) + ")");
    recvd_stats(net_metrics_, f.type).count(kFrameHeaderBytes + f.payload.size());
    Hello hello;
    if (!decode_payload(f, hello)) fail("malformed hello payload");
    if (hello.wire_version != kWireVersion)
      fail("wire version mismatch: worker speaks v" + std::to_string(hello.wire_version) +
           ", driver v" + std::to_string(kWireVersion));
    pending.push_back(PendingWorker{std::move(conn), hello});
  }

  // Phase 2: assign stages — honour explicit requests first, hand the
  // remaining stages out in connection order.
  conns_.resize(static_cast<std::size_t>(pp));
  std::vector<Hello> hello_of(static_cast<std::size_t>(pp));
  std::vector<bool> taken(static_cast<std::size_t>(pp), false);
  for (auto& p : pending) {
    const std::int32_t req = p.hello.requested_stage;
    if (req < 0) continue;
    if (req >= pp) fail("worker requested stage " + std::to_string(req) +
                        " of a " + std::to_string(pp) + "-stage pipeline");
    if (taken[static_cast<std::size_t>(req)])
      fail("two workers requested stage " + std::to_string(req));
    taken[static_cast<std::size_t>(req)] = true;
    conns_[static_cast<std::size_t>(req)] = std::move(p.conn);
    hello_of[static_cast<std::size_t>(req)] = p.hello;
  }
  int next_free = 0;
  for (auto& p : pending) {
    if (p.conn == nullptr) continue;  // already placed
    while (taken[static_cast<std::size_t>(next_free)]) ++next_free;
    taken[static_cast<std::size_t>(next_free)] = true;
    conns_[static_cast<std::size_t>(next_free)] = std::move(p.conn);
    hello_of[static_cast<std::size_t>(next_free)] = p.hello;
  }

  // Phase 3: HelloAck carries the full stage-hosting agreement — model
  // config, partition width, weight seed, KV + sampler config, and the
  // successor's activation listener so workers can wire the ring themselves.
  for (int s = 0; s < pp; ++s) {
    HelloAck ack;
    ack.stage = s;
    ack.pp = pp;
    ack.tp = options_.tp;
    ack.model = options_.model;
    ack.weight_seed = options_.weight_seed;
    ack.kv_capacity_tokens = options_.kv_capacity_tokens;
    ack.kv_block_size = options_.kv_block_size;
    ack.greedy_sampling = options_.greedy_sampling;
    ack.top_k = options_.top_k;
    ack.temperature = options_.temperature;
    ack.sampler_seed = options_.sampler_seed;
    ack.heartbeat_interval_s = dep.heartbeat_interval_s;
    ack.heartbeat_timeout_s = dep.heartbeat_timeout_s;
    if (s + 1 < pp) {
      ack.next_host = conns_[static_cast<std::size_t>(s + 1)]->peer();
      ack.next_port = hello_of[static_cast<std::size_t>(s + 1)].act_in_port;
      if (ack.next_host.empty()) fail("cannot resolve successor address");
    }
    if (!conns_[static_cast<std::size_t>(s)]->send(MsgType::kHelloAck, encode_payload(ack),
                                                   sent_stats(net_metrics_, MsgType::kHelloAck)))
      fail("worker for stage " + std::to_string(s) + " vanished during handshake");
  }

  // Phase 4: Ready barrier — each worker has built its weights and wired its
  // activation links before the driver starts pumping metadata.
  for (int s = 0; s < pp; ++s) {
    Frame f;
    const RecvStatus st = conns_[static_cast<std::size_t>(s)]->recv(f, deadline.remaining());
    if (st != RecvStatus::kOk || f.type != MsgType::kReady)
      fail("stage " + std::to_string(s) + " never became ready (" + to_string(st) + ")");
    recvd_stats(net_metrics_, f.type).count(kFrameHeaderBytes + f.payload.size());
  }
  GLLM_LOG_INFO("driver transport: all " << pp << " stages ready");

  // Phase 5: present the in-process channel surface. Pump threads bridge the
  // per-stage metadata queues onto the wire; reader threads bridge sample
  // results (and peer death) back.
  meta_channels_.reserve(static_cast<std::size_t>(pp));
  for (int s = 0; s < pp; ++s) {
    meta_channels_.push_back(std::make_unique<runtime::MetaChannel>(1024));
    meta_channel_ptrs_.push_back(meta_channels_.back().get());
  }
  for (int s = 0; s < pp; ++s) pumps_.emplace_back([this, s] { pump_loop(s); });
  for (int s = 0; s < pp; ++s) readers_.emplace_back([this, s] { reader_loop(s); });
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
  ready_ = true;
}

void DriverTransport::pump_loop(int stage) {
  auto& q = *meta_channels_[static_cast<std::size_t>(stage)];
  auto& conn = *conns_[static_cast<std::size_t>(stage)];
  const int driver_track = options_.pp;
  std::uint64_t frame_index = 0;
  while (true) {
    std::optional<runtime::StepMetadata> meta = q.pop();
    if (!meta.has_value()) break;  // closed + drained: clean shutdown
    std::vector<std::uint8_t> payload;
    {
      obs::SpanGuard span(tracer_, driver_track, "net.encode");
      payload = encode_payload(*meta);
    }
    if (injector_ != nullptr) {
      const FiredFaults fired = injector_->on_metadata_frame(stage, frame_index);
      ++frame_index;
      if (fired.any()) {
        GLLM_LOG_WARN("fault injection at stage " << stage << " frame " << frame_index - 1
                                                  << (fired.kill ? " [kill]" : "")
                                                  << (fired.drop ? " [drop]" : "")
                                                  << (fired.corrupt ? " [corrupt]" : "")
                                                  << (fired.stall ? " [stall]" : ""));
        if (fault_metrics_ != nullptr) {
          fault_metrics_->injected->inc(static_cast<int>(fired.kill) + fired.drop +
                                        fired.corrupt + fired.stall);
        }
      }
      if (fired.stall) stall_[static_cast<std::size_t>(stage)].store(true);
      if (fired.kill) kill_stage(stage);
      // The CRC is computed over the corrupted bytes, so the frame survives
      // transport validation and fails at the worker's codec — exercising the
      // bounds-checked decode path, which treats it as fatal.
      if (fired.corrupt && !payload.empty()) payload[payload.size() / 2] ^= 0x40u;
      if (fired.drop) continue;  // the batch wedges; the driver watchdog fires
    } else {
      ++frame_index;
    }
    if (!conn.send(MsgType::kStepMetadata, payload,
                   sent_stats(net_metrics_, MsgType::kStepMetadata))) {
      on_peer_dead(stage, "metadata send failed");
      return;
    }
  }
  conn.send(MsgType::kShutdown, {}, sent_stats(net_metrics_, MsgType::kShutdown));
}

void DriverTransport::reader_loop(int stage) {
  auto& conn = *conns_[static_cast<std::size_t>(stage)];
  const int driver_track = options_.pp;
  while (true) {
    Frame f;
    const RecvStatus st = conn.recv(f, options_.deployment.heartbeat_timeout_s);
    if (st != RecvStatus::kOk) {
      if (!shutting_down_.load()) on_peer_dead(stage, to_string(st));
      return;
    }
    recvd_stats(net_metrics_, f.type).count(kFrameHeaderBytes + f.payload.size());
    switch (f.type) {
      case MsgType::kSampleResult: {
        runtime::SampleResult result;
        bool ok;
        {
          obs::SpanGuard span(tracer_, driver_track, "net.decode");
          ok = decode_payload(f, result);
        }
        if (!ok) {
          on_peer_dead(stage, "malformed sample result");
          return;
        }
        samples_.push(std::move(result));
        break;
      }
      case MsgType::kHeartbeat:
        break;  // the worker echoing our heartbeat — liveness already noted
      default:
        GLLM_LOG_WARN("driver transport: unexpected frame type "
                      << static_cast<int>(f.type) << " from stage " << stage);
        break;
    }
  }
}

void DriverTransport::heartbeat_loop() {
  std::unique_lock lock(heartbeat_mu_);
  while (!shutting_down_.load()) {
    heartbeat_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.deployment.heartbeat_interval_s));
    if (shutting_down_.load()) break;
    for (int s = 0; s < options_.pp; ++s) {
      if (stall_[static_cast<std::size_t>(s)].load()) continue;  // injected stall
      if (!conns_[static_cast<std::size_t>(s)]->send(
              MsgType::kHeartbeat, {}, sent_stats(net_metrics_, MsgType::kHeartbeat))) {
        on_peer_dead(s, "heartbeat send failed");
      }
    }
  }
}

void DriverTransport::on_peer_dead(int stage, const char* why) {
  if (shutting_down_.load()) return;
  const bool first = !peer_died_.exchange(true);
  if (first) {
    GLLM_LOG_ERROR("driver transport: stage " << stage << " worker died (" << why
                                              << "); failing the pipeline");
    if (fault_metrics_ != nullptr) fault_metrics_->worker_failures->inc();
    if (tracer_ != nullptr)
      tracer_->instant(options_.pp, "fault.peer_dead",
                       {{"stage", static_cast<double>(stage)}});
    // Closing the sample channel is the death signal the driver loop observes
    // (its blocking pop returns nullopt); it then tears the transport down.
    samples_.close();
  }
}

void DriverTransport::kill_stage(int stage) {
  for (auto& child : children_) {
    if (child.stage != stage) continue;
    if (!child.reaped && child.pid > 0) ::kill(child.pid, SIGKILL);
    return;
  }
  // Remote worker: hard-close its control connection; the worker treats a
  // dead driver link as fatal and exits, and our reader sees the close.
  conns_[static_cast<std::size_t>(stage)]->shutdown();
}

void DriverTransport::kill_children() {
  for (auto& child : children_) {
    if (!child.reaped && child.pid > 0) ::kill(child.pid, SIGKILL);
  }
}

void DriverTransport::reap_children(double timeout_s) {
  Deadline deadline(timeout_s);
  while (true) {
    bool pending = false;
    for (auto& child : children_) {
      if (child.reaped || child.pid <= 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(child.pid, &status, WNOHANG);
      if (got == child.pid || (got < 0 && errno == ECHILD)) {
        child.reaped = true;
        child.status = status;
      } else {
        pending = true;
      }
    }
    if (!pending) return;
    if (deadline.remaining() <= 0.0) break;
    ::usleep(10'000);
  }
  // Stragglers past the deadline: SIGKILL, then reap for certain.
  for (auto& child : children_) {
    if (child.reaped || child.pid <= 0) continue;
    GLLM_LOG_WARN("driver transport: SIGKILL straggler worker pid " << child.pid);
    ::kill(child.pid, SIGKILL);
    int status = 0;
    if (::waitpid(child.pid, &status, 0) == child.pid) child.status = status;
    child.reaped = true;
  }
}

void DriverTransport::shutdown() {
  if (shut_) return;
  shut_ = true;
  shutting_down_.store(true);

  // Close the metadata queues: pumps drain what is left, send kShutdown to
  // their worker, and exit. Workers then tear down and close their control
  // connections, which is what lets the reader threads finish.
  for (auto& q : meta_channels_) q->close();
  for (auto& t : pumps_) t.join();
  {
    std::lock_guard lock(heartbeat_mu_);
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  for (auto& t : readers_) t.join();
  samples_.close();

  reap_children(options_.deployment.heartbeat_timeout_s);
  conns_.clear();
  if (listen_fd_ >= 0) {
    close_fd(listen_fd_);
    listen_fd_ = -1;
  }
}

// --- worker endpoint --------------------------------------------------------

int run_worker(const WorkerOptions& opt) {
  obs::NetMetrics* net_metrics = opt.obs != nullptr ? &opt.obs->net() : nullptr;
  obs::Tracer* tracer = opt.obs != nullptr ? &opt.obs->tracer() : nullptr;

  // The activation listener opens before Hello is sent, so the predecessor's
  // connect (triggered by its HelloAck) can never race an unbound port.
  int act_listen_fd = -1;
  try {
    act_listen_fd = listen_tcp(0, opt.listen_any);
  } catch (const std::exception& e) {
    GLLM_LOG_ERROR("worker: cannot open activation listener: " << e.what());
    return 1;
  }
  const int act_port = local_port(act_listen_fd);

  const int driver_fd = connect_tcp(opt.driver_host, opt.driver_port, opt.connect_timeout_s);
  if (driver_fd < 0) {
    GLLM_LOG_ERROR("worker: cannot reach driver at " << opt.driver_host << ":"
                                                     << opt.driver_port);
    close_fd(act_listen_fd);
    return 1;
  }
  Conn driver(driver_fd);

  Hello hello;
  hello.requested_stage = opt.requested_stage;
  hello.act_in_port = static_cast<std::uint16_t>(act_port);
  if (!driver.send(MsgType::kHello, encode_payload(hello),
                   sent_stats(net_metrics, MsgType::kHello))) {
    GLLM_LOG_ERROR("worker: hello send failed");
    close_fd(act_listen_fd);
    return 1;
  }

  Frame f;
  HelloAck ack;
  const RecvStatus hs = driver.recv(f, opt.connect_timeout_s);
  if (hs != RecvStatus::kOk || f.type != MsgType::kHelloAck || !decode_payload(f, ack)) {
    GLLM_LOG_ERROR("worker: handshake failed (no valid hello-ack)");
    close_fd(act_listen_fd);
    return 1;
  }
  recvd_stats(net_metrics, f.type).count(kFrameHeaderBytes + f.payload.size());

  const int stage = ack.stage;
  const int pp = ack.pp;
  std::unique_ptr<Conn> pred;  // activations in, from stage-1
  std::unique_ptr<Conn> next;  // activations out, to stage+1
  try {
    ack.model.validate();
    model::validate_tp(ack.model, ack.tp);
    if (stage < 0 || stage >= pp) throw std::invalid_argument("stage out of range");
    if (ack.kv_block_size <= 0 || ack.kv_capacity_tokens <= 0)
      throw std::invalid_argument("bad kv config");

    // Wire the activation ring: connect downstream first (the successor's
    // listener pre-dates its Hello, so this cannot block), then accept the
    // predecessor.
    if (stage + 1 < pp) {
      const int fd = connect_tcp(ack.next_host, static_cast<int>(ack.next_port),
                                 opt.connect_timeout_s);
      if (fd < 0) throw std::runtime_error("cannot connect successor activation link");
      next = std::make_unique<Conn>(fd);
    }
    if (stage > 0) {
      if (!wait_readable(act_listen_fd, opt.connect_timeout_s))
        throw std::runtime_error("predecessor activation link never arrived");
      const int fd = accept_conn(act_listen_fd);
      if (fd < 0) throw std::runtime_error("activation accept failed");
      pred = std::make_unique<Conn>(fd);
    }
  } catch (const std::exception& e) {
    GLLM_LOG_ERROR("worker stage " << stage << ": handshake rejected: " << e.what());
    close_fd(act_listen_fd);
    return 1;
  }
  close_fd(act_listen_fd);

  const model::PartitionPlan plan(ack.model, pp);
  const model::StageShape shape = plan.stage(stage);
  const auto kv_blocks =
      static_cast<std::int32_t>(ack.kv_capacity_tokens / ack.kv_block_size);
  const nn::Sampler sampler = ack.greedy_sampling
                                  ? nn::Sampler{}
                                  : nn::Sampler(ack.top_k, ack.temperature, ack.sampler_seed);

  // The stage worker runs unmodified over local BoundedQueues; the threads
  // below bridge those queues to the TCP links (same capacities as the
  // in-process pipeline in assemble_pipeline()).
  runtime::MetaChannel meta_q(1024);
  runtime::ActChannel act_in_q(64);
  runtime::ActChannel act_out_q(64);
  runtime::SampleChannel sample_q(1024);
  const bool last = stage == pp - 1;
  runtime::StageWorker worker(ack.model, shape, ack.weight_seed, kv_blocks,
                              ack.kv_block_size, meta_q, stage > 0 ? &act_in_q : nullptr,
                              !last ? &act_out_q : nullptr, last ? &sample_q : nullptr,
                              sampler, tracer, stage, ack.tp);
  worker.start();

  if (!driver.send(MsgType::kReady, {}, sent_stats(net_metrics, MsgType::kReady))) {
    GLLM_LOG_ERROR("worker stage " << stage << ": ready send failed");
    meta_q.close();
    worker.join();
    return 1;
  }
  GLLM_LOG_INFO("worker pid " << ::getpid() << " hosting stage " << stage << "/" << pp
                              << " (layers " << shape.first_layer << ".."
                              << shape.last_layer_exclusive() - 1 << ")");

  std::thread act_reader;
  if (pred != nullptr) {
    act_reader = std::thread([&] {
      while (true) {
        Frame af;
        const RecvStatus st =
            pred->recv(af, -1.0, recvd_stats(net_metrics, MsgType::kActivations));
        if (st != RecvStatus::kOk || af.type != MsgType::kActivations) {
          act_in_q.close();  // EOF (or corruption) cascades down the ring
          return;
        }
        runtime::Activations acts;
        bool ok;
        {
          obs::SpanGuard span(tracer, stage, "net.decode");
          ok = decode_payload(af, acts);
        }
        if (!ok || !act_in_q.push(std::move(acts))) {
          act_in_q.close();
          return;
        }
      }
    });
  }

  std::thread act_writer;
  if (next != nullptr) {
    act_writer = std::thread([&] {
      while (true) {
        std::optional<runtime::Activations> acts = act_out_q.pop();
        if (!acts.has_value()) break;
        std::vector<std::uint8_t> payload;
        {
          obs::SpanGuard span(tracer, stage, "net.encode");
          payload = encode_payload(*acts);
        }
        if (!next->send(MsgType::kActivations, payload,
                        sent_stats(net_metrics, MsgType::kActivations)))
          break;
      }
      next->shutdown();  // frame-boundary EOF for the successor's reader
    });
  }

  std::thread sample_writer;
  if (last) {
    sample_writer = std::thread([&] {
      while (true) {
        std::optional<runtime::SampleResult> result = sample_q.pop();
        if (!result.has_value()) return;
        std::vector<std::uint8_t> payload;
        {
          obs::SpanGuard span(tracer, stage, "net.encode");
          payload = encode_payload(*result);
        }
        if (!driver.send(MsgType::kSampleResult, payload,
                         sent_stats(net_metrics, MsgType::kSampleResult)))
          return;
      }
    });
  }

  // Control loop: metadata in, heartbeats echoed, Shutdown (or peer death)
  // ends the stage. No frame at all within the heartbeat timeout means the
  // driver is gone even if the TCP connection still looks healthy.
  bool clean = false;
  while (true) {
    Frame cf;
    const RecvStatus st = driver.recv(cf, ack.heartbeat_timeout_s);
    if (st != RecvStatus::kOk) {
      GLLM_LOG_ERROR("worker stage " << stage << ": driver link " << to_string(st)
                                     << "; aborting");
      break;
    }
    recvd_stats(net_metrics, cf.type).count(kFrameHeaderBytes + cf.payload.size());
    if (cf.type == MsgType::kStepMetadata) {
      runtime::StepMetadata meta;
      bool ok;
      {
        obs::SpanGuard span(tracer, stage, "net.decode");
        ok = decode_payload(cf, meta);
      }
      if (!ok) {
        GLLM_LOG_ERROR("worker stage " << stage << ": malformed metadata frame");
        break;
      }
      meta_q.push(std::move(meta));
    } else if (cf.type == MsgType::kHeartbeat) {
      driver.send(MsgType::kHeartbeat, {}, sent_stats(net_metrics, MsgType::kHeartbeat));
    } else if (cf.type == MsgType::kShutdown) {
      clean = true;
      break;
    } else {
      GLLM_LOG_WARN("worker stage " << stage << ": unexpected frame type "
                                    << static_cast<int>(cf.type));
    }
  }

  meta_q.close();
  if (!clean) {
    // Peer death: unblock the stage worker wherever it sits — a shut-down
    // link makes the act reader close act_in_q, and sends fail fast.
    if (pred != nullptr) pred->shutdown();
    if (next != nullptr) next->shutdown();
  }
  worker.join();
  act_out_q.close();
  sample_q.close();
  if (act_writer.joinable()) act_writer.join();
  if (sample_writer.joinable()) sample_writer.join();
  if (pred != nullptr) pred->shutdown();
  if (act_reader.joinable()) act_reader.join();
  driver.shutdown();
  GLLM_LOG_INFO("worker stage " << stage << " exiting " << (clean ? "cleanly" : "dirty"));
  return clean ? 0 : 1;
}

// --- backend facade ---------------------------------------------------------

PipelineBackend make_pipeline_backend(const runtime::RuntimeOptions& opt,
                                      nn::Sampler sampler, obs::Tracer* tracer) {
  PipelineBackend backend;
  if (!opt.deployment.multi_process()) {
    backend.local =
        runtime::assemble_pipeline(opt.model, opt.pp, opt.weight_seed,
                                   opt.kv_capacity_tokens, opt.kv_block_size,
                                   std::move(sampler), tracer, opt.tp);
    return backend;
  }
  backend.remote = std::make_unique<DriverTransport>(opt);
  if (opt.deployment.mode == runtime::DeploymentOptions::Mode::kFork)
    backend.remote->fork_local_workers();
  backend.remote->wait_ready();
  return backend;
}

}  // namespace gllm::net
