#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "obs/obs.hpp"
#include "runtime/driver_state.hpp"
#include "runtime/pipeline_runtime.hpp"

namespace gllm::net {

class FaultInjector;

/// A framed connection shared by multiple sender threads: sends are
/// serialized by a write mutex (one coalesced send_frame each, so frames
/// never interleave); receiving is single-reader by convention. Closes the
/// fd on destruction.
class Conn {
 public:
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  bool send(MsgType type, std::span<const std::uint8_t> payload,
            const ChannelStats& stats = {});
  RecvStatus recv(Frame& out, double timeout_s = -1.0, const ChannelStats& stats = {});

  int fd() const { return fd_; }
  std::string peer() const;
  /// shutdown(SHUT_RDWR): unblocks a thread inside recv().
  void shutdown();

 private:
  int fd_;
  std::mutex write_mu_;
};

/// One forked local worker process.
struct ChildProc {
  pid_t pid = -1;
  int stage = -1;
  bool reaped = false;
  int status = 0;
};

/// Driver side of the multi-process deployment: listens for worker control
/// connections, runs the handshake (stage assignment, model/partition/seed
/// agreement, activation-ring wiring), then presents the exact channel
/// surface of the in-process pipeline — per-stage StepMetadata queues whose
/// pump threads broadcast frames, and a SampleResult queue fed by the last
/// stage — so DriverState and the PipelineRuntime/PipelineService driver
/// loops run unmodified over TCP. Heartbeats detect dead peers; shutdown()
/// closes everything and reaps forked children, leaving no orphans.
class DriverTransport {
 public:
  /// Starts listening immediately (worker_port of opt.deployment; 0 =
  /// ephemeral, see port()). No threads yet.
  explicit DriverTransport(runtime::RuntimeOptions options);
  ~DriverTransport();

  DriverTransport(const DriverTransport&) = delete;
  DriverTransport& operator=(const DriverTransport&) = delete;

  int port() const { return port_; }

  /// fork() one local worker process per stage, each connecting back over
  /// loopback. Must be called before any thread exists in the calling
  /// process (the children never return — they _exit from run_worker).
  void fork_local_workers();

  /// Accept pp workers, complete the handshake, start pumps + heartbeats.
  /// Throws on handshake timeout/protocol error (after killing children).
  void wait_ready();

  const std::vector<runtime::MetaChannel*>& meta_channels() const {
    return meta_channel_ptrs_;
  }
  runtime::SampleChannel& samples() { return samples_; }

  /// True once any worker connection died outside of shutdown.
  bool peer_died() const { return peer_died_.load(); }
  const std::vector<ChildProc>& children() const { return children_; }

  /// Idempotent: broadcast Shutdown, close channels, join all transport
  /// threads, reap forked children (SIGKILL stragglers past the heartbeat
  /// timeout).
  void shutdown();

 private:
  void pump_loop(int stage);
  void reader_loop(int stage);
  void heartbeat_loop();
  void on_peer_dead(int stage, const char* why);
  void kill_children();
  void reap_children(double timeout_s);
  /// Fault injection: take the stage's worker down hard — SIGKILL the forked
  /// child, or hard-close the control connection of a remote worker.
  void kill_stage(int stage);

  runtime::RuntimeOptions options_;
  obs::NetMetrics* net_metrics_ = nullptr;
  obs::FaultMetrics* fault_metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::shared_ptr<FaultInjector> injector_;
  /// Per-stage heartbeat suppression (kStallHeartbeat), set by the stage's
  /// pump thread, read by the heartbeat thread. Scoped to this transport
  /// instance so a rebuilt pipeline starts unstalled.
  std::unique_ptr<std::atomic<bool>[]> stall_;

  int listen_fd_ = -1;
  int port_ = 0;

  std::vector<std::unique_ptr<Conn>> conns_;  ///< control conns, index = stage
  std::vector<std::unique_ptr<runtime::MetaChannel>> meta_channels_;
  std::vector<runtime::MetaChannel*> meta_channel_ptrs_;
  runtime::SampleChannel samples_{1024};

  std::vector<std::thread> pumps_;
  std::vector<std::thread> readers_;
  std::thread heartbeat_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> peer_died_{false};
  std::mutex heartbeat_mu_;
  std::condition_variable heartbeat_cv_;

  std::vector<ChildProc> children_;
  bool ready_ = false;
  bool shut_ = false;
};

/// Options for one worker-process endpoint (tools/gllm_worker, or the forked
/// children of a kFork deployment).
struct WorkerOptions {
  std::string driver_host = "127.0.0.1";
  int driver_port = 0;
  int requested_stage = -1;     ///< -1 = let the driver assign one
  bool listen_any = false;      ///< activation listener binds 0.0.0.0
  double connect_timeout_s = 30.0;
  obs::Observability* obs = nullptr;  ///< this process's sink (may be null)
};

/// Host one pipeline stage: connect to the driver, handshake, wire the
/// activation ring, and bridge TCP frames to the local BoundedQueues a
/// runtime::StageWorker consumes — the worker logic itself runs unmodified.
/// Returns 0 on clean (Shutdown-frame) exit, 1 on peer death or error.
int run_worker(const WorkerOptions& opt);

/// Either an in-process pipeline (threads over BoundedQueues) or a TCP
/// DriverTransport, behind the one surface the driver loops need.
struct PipelineBackend {
  runtime::PipelineHandles local;            ///< kThreads mode
  std::unique_ptr<DriverTransport> remote;   ///< multi-process modes

  const std::vector<runtime::MetaChannel*>& channels() const {
    return remote != nullptr ? remote->meta_channels() : local.channel_ptrs;
  }
  runtime::SampleChannel* samples() {
    return remote != nullptr ? &remote->samples() : local.samples.get();
  }
  void shutdown() {
    if (remote != nullptr) {
      remote->shutdown();
    } else {
      local.shutdown();
    }
  }
};

/// Assemble the pipeline for `opt.deployment.mode`: spawn in-process workers,
/// fork local worker processes, or wait for remote ones. Blocks until the
/// pipeline is ready to execute micro-batches.
PipelineBackend make_pipeline_backend(const runtime::RuntimeOptions& opt,
                                      nn::Sampler sampler, obs::Tracer* tracer);

}  // namespace gllm::net
