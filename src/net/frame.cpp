#include "net/frame.hpp"

#include <cstring>

#include "net/socket.hpp"

namespace gllm::net {

const char* to_string(FrameDecodeStatus s) {
  switch (s) {
    case FrameDecodeStatus::kOk: return "ok";
    case FrameDecodeStatus::kNeedMore: return "truncated";
    case FrameDecodeStatus::kBadMagic: return "bad magic";
    case FrameDecodeStatus::kBadVersion: return "bad version";
    case FrameDecodeStatus::kTooLarge: return "oversized";
    case FrameDecodeStatus::kBadChecksum: return "bad checksum";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(MsgType type, std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.u32(kFrameMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  auto buf = w.take();
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

FrameDecodeStatus decode_frame(std::span<const std::uint8_t> buf, Frame& out,
                               std::size_t& consumed) {
  if (buf.size() < kFrameHeaderBytes) return FrameDecodeStatus::kNeedMore;
  WireReader r(buf);
  std::uint32_t magic, len, crc;
  std::uint16_t version, type;
  r.u32(magic);
  r.u16(version);
  r.u16(type);
  r.u32(len);
  r.u32(crc);
  if (magic != kFrameMagic) return FrameDecodeStatus::kBadMagic;
  if (version != kWireVersion) return FrameDecodeStatus::kBadVersion;
  if (len > kMaxFramePayload) return FrameDecodeStatus::kTooLarge;
  if (buf.size() - kFrameHeaderBytes < len) return FrameDecodeStatus::kNeedMore;
  const auto payload = buf.subspan(kFrameHeaderBytes, len);
  if (crc32(payload) != crc) return FrameDecodeStatus::kBadChecksum;
  out.type = static_cast<MsgType>(type);
  out.payload.assign(payload.begin(), payload.end());
  consumed = kFrameHeaderBytes + len;
  return FrameDecodeStatus::kOk;
}

bool send_frame(int fd, MsgType type, std::span<const std::uint8_t> payload,
                const ChannelStats& stats) {
  const auto buf = encode_frame(type, payload);
  if (!send_all(fd, buf.data(), buf.size())) return false;
  stats.count(buf.size());
  return true;
}

RecvStatus recv_frame(int fd, Frame& out, double timeout_s, const ChannelStats& stats) {
  if (timeout_s >= 0 && !wait_readable(fd, timeout_s)) return RecvStatus::kTimeout;

  std::uint8_t header[kFrameHeaderBytes];
  // First byte separately: an orderly close before any header byte is a clean
  // frame-boundary EOF, while EOF mid-frame is corruption.
  const ssize_t first = recv_some(fd, header, 1);
  if (first == 0) return RecvStatus::kClosed;
  if (first < 0) return RecvStatus::kCorrupt;
  if (!recv_all(fd, header + 1, kFrameHeaderBytes - 1)) return RecvStatus::kCorrupt;

  WireReader r(std::span<const std::uint8_t>(header, kFrameHeaderBytes));
  std::uint32_t magic, len, crc;
  std::uint16_t version, type;
  r.u32(magic);
  r.u16(version);
  r.u16(type);
  r.u32(len);
  r.u32(crc);
  if (magic != kFrameMagic || version != kWireVersion || len > kMaxFramePayload)
    return RecvStatus::kCorrupt;

  out.type = static_cast<MsgType>(type);
  out.payload.resize(len);
  if (len > 0 && !recv_all(fd, out.payload.data(), len)) return RecvStatus::kCorrupt;
  if (crc32(out.payload) != crc) return RecvStatus::kCorrupt;
  stats.count(kFrameHeaderBytes + static_cast<std::size_t>(len));
  return RecvStatus::kOk;
}

}  // namespace gllm::net
