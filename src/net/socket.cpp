#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>

namespace gllm::net {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("net: ") + what + ": " + std::strerror(errno));
}

bool resolve_ipv4(const std::string& host, in_addr& out) {
  if (host.empty() || host == "localhost") {
    out.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &out) == 1;
}

}  // namespace

int listen_tcp(int port, bool any_interface, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket()");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(any_interface ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("bind()");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    fail("listen()");
  }
  return fd;
}

int local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname()");
  return ntohs(addr.sin_port);
}

int accept_conn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

int connect_tcp(const std::string& host, int port, double timeout_s) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (!resolve_ipv4(host, addr.sin_addr)) return -1;

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) return fd;
    ::close(fd);
    if (errno != ECONNREFUSED && errno != ETIMEDOUT) return -1;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

int connect_tcp_nonblocking(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (!resolve_ipv4(host, addr.sin_addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc == 0 || errno == EINPROGRESS) return fd;
  // Synchronous refusal (possible on loopback): connect() already consumed
  // the error, so SO_ERROR would read 0 — report failure here instead.
  ::close(fd);
  return -1;
}

int socket_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

bool send_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t recv_some(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

ssize_t send_some(int fd, const void* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool wait_readable(int fd, double timeout_s) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  for (;;) {
    int ms = -1;
    if (timeout_s >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      ms = left > 0 ? static_cast<int>(left) : 0;
    }
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return true;  // readable, or HUP/ERR — recv will report it
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

std::string peer_host(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return "";
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) return "";
  return buf;
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace gllm::net
