#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace gllm::net {

/// Frame types multiplexed over one connection. Control frames share the
/// driver<->worker connection with metadata/sample traffic; activations flow
/// on dedicated stage-to-stage links.
enum class MsgType : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kReady = 3,
  kHeartbeat = 4,
  kShutdown = 5,
  kStepMetadata = 16,
  kActivations = 17,
  kSampleResult = 18,
  kStreamEvent = 19,
};

/// Length-prefixed binary framing:
///   magic u32 ("GLLM" little-endian) | version u16 | type u16 |
///   payload_len u32 | crc32(payload) u32 | payload bytes
inline constexpr std::uint32_t kFrameMagic = 0x4D4C4C47u;  // "GLLM"
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard payload cap: anything larger is corrupt (tiny-model activations are
/// kilobytes; this guards allocation on a garbage length field).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;

struct Frame {
  MsgType type = MsgType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

enum class FrameDecodeStatus {
  kOk,
  kNeedMore,      ///< buffer ends before the full header + payload (truncated)
  kBadMagic,
  kBadVersion,
  kTooLarge,      ///< length field beyond kMaxFramePayload
  kBadChecksum,
};

const char* to_string(FrameDecodeStatus s);

/// Serialize one frame (header + payload) into a fresh buffer.
std::vector<std::uint8_t> encode_frame(MsgType type, std::span<const std::uint8_t> payload);

/// Decode the frame starting at buf[0]. On kOk, `consumed` is the total
/// frame size; every other status leaves `out`/`consumed` unspecified. Never
/// reads past `buf`, never allocates from an unvalidated length.
FrameDecodeStatus decode_frame(std::span<const std::uint8_t> buf, Frame& out,
                               std::size_t& consumed);

/// Per-channel transfer counters (frames + bytes); null members = off.
struct ChannelStats {
  obs::Counter* frames = nullptr;
  obs::Counter* bytes = nullptr;
  void count(std::size_t n_bytes) const {
    if (frames != nullptr) frames->inc();
    if (bytes != nullptr) bytes->inc(static_cast<std::int64_t>(n_bytes));
  }
};

/// Write one frame with a single send (header and payload coalesced so
/// concurrent senders — serialized by the caller — never interleave).
bool send_frame(int fd, MsgType type, std::span<const std::uint8_t> payload,
                const ChannelStats& stats = {});

enum class RecvStatus {
  kOk,
  kClosed,   ///< orderly peer close on a frame boundary
  kTimeout,  ///< no frame started within the timeout (heartbeat death signal)
  kCorrupt,  ///< bad header/checksum or EOF mid-frame
};

/// Blocking read of the next frame. `timeout_s >= 0` bounds the wait for the
/// frame to *start* (an idle-connection watchdog); once a header byte arrived
/// the rest is read to completion.
RecvStatus recv_frame(int fd, Frame& out, double timeout_s = -1.0,
                      const ChannelStats& stats = {});

}  // namespace gllm::net
