#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace gllm::net {

/// EINTR-safe POSIX TCP primitives — the repo's single socket-primitive
/// implementation, shared by the gllm::net transport and the HTTP server.
/// Every loop retries on EINTR instead of treating an interrupted syscall as
/// a peer close, and sends use MSG_NOSIGNAL so a dead peer surfaces as EPIPE
/// rather than killing the process with SIGPIPE.

/// Bind + listen on `port` (0 = kernel-assigned ephemeral port; read it back
/// with local_port()). Binds loopback unless `any_interface`. Throws
/// std::runtime_error on failure.
int listen_tcp(int port, bool any_interface = false, int backlog = 64);

/// The locally bound port of a socket (ephemeral-port resolution via
/// getsockname). Throws on failure.
int local_port(int fd);

/// Accept one connection, retrying on EINTR. Returns -1 once the listening
/// socket has been shut down / closed.
int accept_conn(int listen_fd);

/// Connect to host:port, retrying refused connections until `timeout_s`
/// elapses (covers racing a peer that is still binding). `host` is a dotted
/// IPv4 address or "localhost". Returns the fd, or -1 on timeout/error.
int connect_tcp(const std::string& host, int port, double timeout_s = 5.0);

/// Begin a non-blocking connect to host:port (event-loop upstreams): returns
/// an O_NONBLOCK fd with the connect completed or in progress — register it
/// for EPOLLOUT and read the outcome with socket_error() once writable.
/// Returns -1 only on immediate, definitive failure (bad address, no fds).
int connect_tcp_nonblocking(const std::string& host, int port);

/// Pending SO_ERROR of a socket (0 = none), cleared by the call: the
/// completion status of a non-blocking connect once EPOLLOUT fires.
int socket_error(int fd);

/// Write exactly `len` bytes, retrying short writes and EINTR.
bool send_all(int fd, const void* data, std::size_t len);

/// Read exactly `len` bytes, retrying short reads and EINTR. False on
/// EOF/error before `len` bytes arrived.
bool recv_all(int fd, void* data, std::size_t len);

/// One recv() with EINTR retry: >0 bytes read, 0 on orderly close, -1 error.
ssize_t recv_some(int fd, void* buf, std::size_t len);

/// One send() with EINTR retry and MSG_NOSIGNAL: >=0 bytes written, -1 on
/// error. On a non-blocking socket a full kernel buffer returns -1 with
/// errno EAGAIN/EWOULDBLOCK — the event-loop backpressure signal.
ssize_t send_some(int fd, const void* data, std::size_t len);

/// Set O_NONBLOCK on `fd` (event-loop sockets). False on fcntl failure.
bool set_nonblocking(int fd, bool nonblocking = true);

/// Block until `fd` is readable (or error/hup). False on timeout.
/// `timeout_s < 0` waits forever.
bool wait_readable(int fd, double timeout_s);

/// Numeric address of the connected peer ("" on failure).
std::string peer_host(int fd);

/// shutdown(SHUT_RDWR): unblocks any thread inside recv/accept on `fd`.
void shutdown_fd(int fd);

void close_fd(int fd);

}  // namespace gllm::net
