#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gllm::net {

/// Injectable transport faults. Every kind funnels into one of the two
/// failure signals the driver already handles: peer death (the sample channel
/// closes) or a wedged micro-batch (the driver's sample-wait watchdog fires).
enum class FaultKind : std::uint8_t {
  kDropFrame,       ///< swallow one driver->worker StepMetadata frame
  kCorruptFrame,    ///< flip a payload byte (CRC re-covers it, codec rejects)
  kKillWorker,      ///< SIGKILL the stage's process / hard-close its conn
  kStallHeartbeat,  ///< stop heartbeating the stage until the pipeline rebuilds
};

const char* to_string(FaultKind kind);

/// One scheduled fault: fires when the driver is about to send the
/// `at_frame`-th StepMetadata frame (0-based) to `stage`.
struct FaultSpec {
  FaultKind kind = FaultKind::kKillWorker;
  int stage = 0;
  std::uint64_t at_frame = 0;
};

/// The faults that fired at one (stage, frame) injection point.
struct FiredFaults {
  bool drop = false;
  bool corrupt = false;
  bool kill = false;
  bool stall = false;
  bool any() const { return drop || corrupt || kill || stall; }
};

/// Deterministic fault scheduler for chaos runs. Faults are keyed on the
/// per-stage *outgoing metadata frame count* — the driver broadcasts frames in
/// a deterministic order, so a (stage, frame) coordinate pins the same fault
/// to the same point of every run, which is what makes the recovery proof bar
/// (byte-identical token streams vs. a fault-free reference) checkable.
///
/// Each spec is one-shot. A rebuilt pipeline (post-recovery DriverTransport)
/// restarts its frame counters at zero, so scheduling the same (stage, frame)
/// twice arms one fault per pipeline generation; at most one spec per kind
/// fires at a single injection point.
///
/// Thread-safe: the driver's per-stage pump threads all consult one injector.
class FaultInjector {
 public:
  void schedule(FaultSpec spec);

  /// Driver pump hook, called once per outgoing StepMetadata frame (before
  /// the send). Marks matched specs as spent.
  FiredFaults on_metadata_frame(int stage, std::uint64_t frame_index);

  std::int64_t fired_count() const;
  std::size_t pending_count() const;

  /// Parse a comma-separated plan: "kill:1@4,drop:0@2" means SIGKILL stage
  /// 1's worker at its metadata frame 4 and swallow stage 0's frame 2. Kinds:
  /// kill, drop, corrupt, stall. Throws std::invalid_argument on bad syntax.
  static std::shared_ptr<FaultInjector> parse(const std::string& plan);

  /// Seeded chaos plan: `n_faults` faults with uniformly drawn kind, stage in
  /// [0, pp) and frame in [0, frame_window). Same seed, same plan.
  static std::shared_ptr<FaultInjector> random_plan(std::uint64_t seed, int pp,
                                                    int n_faults,
                                                    std::uint64_t frame_window = 32);

 private:
  struct Armed {
    FaultSpec spec;
    bool fired = false;
  };

  mutable std::mutex mu_;
  std::vector<Armed> armed_;
  std::int64_t fired_ = 0;
};

}  // namespace gllm::net
