#include "net/fault.hpp"

#include <stdexcept>

namespace gllm::net {

namespace {

/// splitmix64: tiny, seedable, and stable across platforms — the plan must be
/// identical for identical seeds or chaos runs stop being reproducible.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

FaultKind parse_kind(const std::string& word) {
  if (word == "drop") return FaultKind::kDropFrame;
  if (word == "corrupt") return FaultKind::kCorruptFrame;
  if (word == "kill") return FaultKind::kKillWorker;
  if (word == "stall") return FaultKind::kStallHeartbeat;
  throw std::invalid_argument("FaultInjector: unknown fault kind '" + word +
                              "' (want kill|drop|corrupt|stall)");
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropFrame: return "drop";
    case FaultKind::kCorruptFrame: return "corrupt";
    case FaultKind::kKillWorker: return "kill";
    case FaultKind::kStallHeartbeat: return "stall";
  }
  return "unknown";
}

void FaultInjector::schedule(FaultSpec spec) {
  if (spec.stage < 0) throw std::invalid_argument("FaultInjector: negative stage");
  std::lock_guard lock(mu_);
  armed_.push_back(Armed{spec, false});
}

FiredFaults FaultInjector::on_metadata_frame(int stage, std::uint64_t frame_index) {
  FiredFaults fired;
  std::lock_guard lock(mu_);
  for (Armed& a : armed_) {
    if (a.fired || a.spec.stage != stage || a.spec.at_frame != frame_index) continue;
    bool* flag = nullptr;
    switch (a.spec.kind) {
      case FaultKind::kDropFrame: flag = &fired.drop; break;
      case FaultKind::kCorruptFrame: flag = &fired.corrupt; break;
      case FaultKind::kKillWorker: flag = &fired.kill; break;
      case FaultKind::kStallHeartbeat: flag = &fired.stall; break;
    }
    if (flag == nullptr || *flag) continue;  // one spec per kind per point
    *flag = true;
    a.fired = true;
    ++fired_;
  }
  return fired;
}

std::int64_t FaultInjector::fired_count() const {
  std::lock_guard lock(mu_);
  return fired_;
}

std::size_t FaultInjector::pending_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Armed& a : armed_)
    if (!a.fired) ++n;
  return n;
}

std::shared_ptr<FaultInjector> FaultInjector::parse(const std::string& plan) {
  auto injector = std::make_shared<FaultInjector>();
  std::size_t pos = 0;
  while (pos < plan.size()) {
    std::size_t end = plan.find(',', pos);
    if (end == std::string::npos) end = plan.size();
    const std::string item = plan.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    const std::size_t colon = item.find(':');
    const std::size_t at = item.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon)
      throw std::invalid_argument("FaultInjector: want kind:stage@frame, got '" + item +
                                  "'");
    FaultSpec spec;
    spec.kind = parse_kind(item.substr(0, colon));
    try {
      spec.stage = std::stoi(item.substr(colon + 1, at - colon - 1));
      spec.at_frame = std::stoull(item.substr(at + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("FaultInjector: bad numbers in '" + item + "'");
    }
    injector->schedule(spec);
  }
  if (injector->pending_count() == 0)
    throw std::invalid_argument("FaultInjector: empty fault plan");
  return injector;
}

std::shared_ptr<FaultInjector> FaultInjector::random_plan(std::uint64_t seed, int pp,
                                                          int n_faults,
                                                          std::uint64_t frame_window) {
  if (pp <= 0) throw std::invalid_argument("FaultInjector: pp must be > 0");
  if (frame_window == 0) frame_window = 1;
  auto injector = std::make_shared<FaultInjector>();
  std::uint64_t state = seed;
  for (int i = 0; i < n_faults; ++i) {
    FaultSpec spec;
    spec.kind = static_cast<FaultKind>(splitmix64(state) % 4);
    spec.stage = static_cast<int>(splitmix64(state) % static_cast<std::uint64_t>(pp));
    spec.at_frame = splitmix64(state) % frame_window;
    injector->schedule(spec);
  }
  return injector;
}

}  // namespace gllm::net
