#include "net/wire.hpp"

#include <array>
#include <cstring>

namespace gllm::net {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// --- WireWriter -------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::f32_span(std::span<const float> v) {
  buf_.reserve(buf_.size() + v.size() * 4);
  for (const float x : v) f32(x);
}

// --- WireReader -------------------------------------------------------------

bool WireReader::take(void* out, std::size_t n) {
  if (data_.size() - pos_ < n) return false;
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::u8(std::uint8_t& v) { return take(&v, 1); }

bool WireReader::u16(std::uint16_t& v) {
  std::uint8_t b[2];
  if (!take(b, 2)) return false;
  v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool WireReader::u32(std::uint32_t& v) {
  std::uint8_t b[4];
  if (!take(b, 4)) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

bool WireReader::u64(std::uint64_t& v) {
  std::uint8_t b[8];
  if (!take(b, 8)) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

bool WireReader::i32(std::int32_t& v) {
  std::uint32_t u;
  if (!u32(u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}

bool WireReader::i64(std::int64_t& v) {
  std::uint64_t u;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool WireReader::f32(float& v) {
  std::uint32_t bits;
  if (!u32(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool WireReader::f64(double& v) {
  std::uint64_t bits;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool WireReader::boolean(bool& v) {
  std::uint8_t b;
  if (!u8(b)) return false;
  if (b > 1) return false;  // strict: anything else is a malformed stream
  v = b != 0;
  return true;
}

bool WireReader::str(std::string& s, std::size_t max_len) {
  std::uint32_t len;
  if (!u32(len)) return false;
  if (len > max_len || len > remaining()) return false;
  s.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return true;
}

bool WireReader::f32_vec(std::vector<float>& v, std::size_t count) {
  if (count > remaining() / 4) return false;
  v.resize(count);
  for (auto& x : v) {
    if (!f32(x)) return false;
  }
  return true;
}

// --- runtime message codecs -------------------------------------------------

namespace {

void encode_item(WireWriter& w, const runtime::ItemMeta& im) {
  w.i64(im.seq);
  w.i32(im.n_tokens);
  w.i64(im.context);
  w.u32(static_cast<std::uint32_t>(im.blocks.size()));
  for (const kv::BlockId b : im.blocks) w.i32(b);
  w.boolean(im.is_prefill);
  w.boolean(im.last_chunk);
  w.boolean(im.wants_logits);
  w.i32(im.spec_tokens);
  w.u32(static_cast<std::uint32_t>(im.input_tokens.size()));
  for (const nn::TokenId t : im.input_tokens) w.i32(t);
}

bool decode_item(WireReader& r, runtime::ItemMeta& im) {
  if (!r.i64(im.seq) || !r.i32(im.n_tokens) || !r.i64(im.context)) return false;
  std::uint32_t n_blocks;
  if (!r.u32(n_blocks) || n_blocks > r.remaining() / 4) return false;
  im.blocks.resize(n_blocks);
  for (auto& b : im.blocks) {
    if (!r.i32(b)) return false;
  }
  if (!r.boolean(im.is_prefill) || !r.boolean(im.last_chunk) ||
      !r.boolean(im.wants_logits))
    return false;
  // Draft rows are a strict subset of the fed rows (n_tokens = 1 + spec for
  // speculative decode items), so anything else is a malformed stream.
  if (!r.i32(im.spec_tokens) || im.spec_tokens < 0 ||
      (im.spec_tokens > 0 && im.spec_tokens >= im.n_tokens))
    return false;
  std::uint32_t n_tokens;
  if (!r.u32(n_tokens) || n_tokens > r.remaining() / 4) return false;
  im.input_tokens.resize(n_tokens);
  for (auto& t : im.input_tokens) {
    if (!r.i32(t)) return false;
  }
  return true;
}

/// Smallest possible encoded ItemMeta: guards the pre-reserve of the items
/// vector against absurd counts in corrupt input.
constexpr std::size_t kMinItemBytes = 8 + 4 + 8 + 4 + 3 + 4 + 4;

}  // namespace

void encode(WireWriter& w, const runtime::StepMetadata& m) {
  w.u64(m.batch_id);
  w.u32(static_cast<std::uint32_t>(m.items.size()));
  for (const auto& im : m.items) encode_item(w, im);
}

bool decode(WireReader& r, runtime::StepMetadata& m) {
  if (!r.u64(m.batch_id)) return false;
  std::uint32_t n;
  if (!r.u32(n) || n > r.remaining() / kMinItemBytes) return false;
  m.items.resize(n);
  for (auto& im : m.items) {
    if (!decode_item(r, im)) return false;
  }
  return true;
}

void encode(WireWriter& w, const runtime::Activations& a) {
  w.u64(a.batch_id);
  const auto& shape = a.hidden.shape();
  w.u8(static_cast<std::uint8_t>(shape.size()));
  for (const std::int64_t d : shape) w.i64(d);
  w.f32_span(a.hidden.flat());
}

bool decode(WireReader& r, runtime::Activations& a) {
  if (!r.u64(a.batch_id)) return false;
  std::uint8_t rank;
  if (!r.u8(rank) || rank > 3) return false;
  if (rank == 0) {
    a.hidden = tensor::Tensor();
    return true;
  }
  std::vector<std::int64_t> shape(rank);
  std::int64_t numel = 1;
  for (auto& d : shape) {
    if (!r.i64(d) || d < 0) return false;
    // Overflow-safe running product, bounded by what could possibly fit.
    if (d != 0 && numel > static_cast<std::int64_t>(r.remaining() / 4) / d) return false;
    numel *= d;
  }
  if (static_cast<std::size_t>(numel) > r.remaining() / 4) return false;
  tensor::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < numel; ++i) {
    if (!r.f32(t.data()[i])) return false;
  }
  a.hidden = std::move(t);
  return true;
}

void encode(WireWriter& w, const runtime::SampleResult& s) {
  w.u64(s.batch_id);
  w.u32(static_cast<std::uint32_t>(s.tokens.size()));
  for (const auto& [seq, token] : s.tokens) {
    w.i64(seq);
    w.i32(token);
  }
}

bool decode(WireReader& r, runtime::SampleResult& s) {
  if (!r.u64(s.batch_id)) return false;
  std::uint32_t n;
  if (!r.u32(n) || n > r.remaining() / 12) return false;
  s.tokens.resize(n);
  for (auto& [seq, token] : s.tokens) {
    if (!r.i64(seq) || !r.i32(token)) return false;
  }
  return true;
}

void encode(WireWriter& w, const runtime::StreamEvent& e) {
  w.i64(e.request_id);
  w.i32(e.token);
  w.boolean(e.is_last);
  w.u8(static_cast<std::uint8_t>(e.error));
}

bool decode(WireReader& r, runtime::StreamEvent& e) {
  std::uint8_t error;
  if (!r.i64(e.request_id) || !r.i32(e.token) || !r.boolean(e.is_last) || !r.u8(error))
    return false;
  if (error > static_cast<std::uint8_t>(runtime::StreamError::kWorkerFailure))
    return false;
  e.error = static_cast<runtime::StreamError>(error);
  return true;
}

// --- control-plane codecs ---------------------------------------------------

void encode(WireWriter& w, const Hello& h) {
  w.u16(h.wire_version);
  w.i32(h.requested_stage);
  w.u16(h.act_in_port);
}

bool decode(WireReader& r, Hello& h) {
  return r.u16(h.wire_version) && r.i32(h.requested_stage) && r.u16(h.act_in_port);
}

namespace {

void encode_model(WireWriter& w, const model::ModelConfig& m) {
  w.str(m.name);
  w.i32(m.n_layers);
  w.i32(m.hidden);
  w.i32(m.n_heads);
  w.i32(m.n_kv_heads);
  w.i32(m.head_dim);
  w.i32(m.intermediate);
  w.i32(m.vocab);
  w.i32(m.dtype_bytes);
  w.boolean(m.tie_embeddings);
  w.i32(m.n_experts);
  w.i32(m.experts_per_token);
  w.u8(static_cast<std::uint8_t>(m.quant));  // v5
}

bool decode_model(WireReader& r, model::ModelConfig& m) {
  std::uint8_t quant = 0;
  if (!(r.str(m.name, 256) && r.i32(m.n_layers) && r.i32(m.hidden) &&
        r.i32(m.n_heads) && r.i32(m.n_kv_heads) && r.i32(m.head_dim) &&
        r.i32(m.intermediate) && r.i32(m.vocab) && r.i32(m.dtype_bytes) &&
        r.boolean(m.tie_embeddings) && r.i32(m.n_experts) &&
        r.i32(m.experts_per_token) && r.u8(quant)))
    return false;
  if (quant > static_cast<std::uint8_t>(model::QuantMode::kInt8)) return false;
  m.quant = static_cast<model::QuantMode>(quant);
  return true;
}

}  // namespace

void encode(WireWriter& w, const HelloAck& a) {
  w.i32(a.stage);
  w.i32(a.pp);
  w.i32(a.tp);
  encode_model(w, a.model);
  w.u64(a.weight_seed);
  w.i64(a.kv_capacity_tokens);
  w.i32(a.kv_block_size);
  w.boolean(a.greedy_sampling);
  w.i32(a.top_k);
  w.f32(a.temperature);
  w.u64(a.sampler_seed);
  w.str(a.next_host);
  w.u16(a.next_port);
  w.f64(a.heartbeat_interval_s);
  w.f64(a.heartbeat_timeout_s);
}

bool decode(WireReader& r, HelloAck& a) {
  return r.i32(a.stage) && r.i32(a.pp) && r.i32(a.tp) && decode_model(r, a.model) &&
         r.u64(a.weight_seed) && r.i64(a.kv_capacity_tokens) &&
         r.i32(a.kv_block_size) && r.boolean(a.greedy_sampling) && r.i32(a.top_k) &&
         r.f32(a.temperature) && r.u64(a.sampler_seed) && r.str(a.next_host, 256) &&
         r.u16(a.next_port) && r.f64(a.heartbeat_interval_s) &&
         r.f64(a.heartbeat_timeout_s);
}

}  // namespace gllm::net
