#pragma once

#include <string>

namespace gllm::hw {

/// Point-to-point link in the standard alpha-beta model:
/// transfer time = alpha (latency) + bytes / beta (bandwidth).
struct LinkSpec {
  std::string name;
  double bandwidth = 0;  ///< bytes/s for point-to-point (effective, as measured).
  double latency = 0;    ///< one-way latency, seconds.
  bool cross_node = false;
  /// Fraction of p2p bandwidth achieved by multi-rank collectives. PCIe
  /// rings without P2P bounce through host memory and contend on the root
  /// complex, so NCCL all-reduce algbw lands well below the p2p number.
  double collective_efficiency = 1.0;
};

/// Collective/point-to-point timing built on alpha-beta links. These model
/// NCCL-style algorithms (ring all-reduce, tree broadcast); the paper's TP
/// baseline and PP activation transfers are all expressible with these ops.
class CommModel {
 public:
  explicit CommModel(LinkSpec link) : link_(std::move(link)) {}

  const LinkSpec& link() const { return link_; }

  /// Send `bytes` from one rank to a neighbour.
  double p2p_time(double bytes) const;

  /// Ring all-reduce over `n` ranks: 2(n-1)/n * bytes of traffic per rank.
  double allreduce_time(double bytes, int n) const;

  /// All-gather over `n` ranks: (n-1)/n * bytes per rank.
  double allgather_time(double bytes, int n) const;

  /// Binary-tree broadcast of `bytes` to `n-1` receivers.
  double broadcast_time(double bytes, int n) const;

 private:
  double collective_bw() const { return link_.bandwidth * link_.collective_efficiency; }

  LinkSpec link_;
};

/// Presets mirroring the paper's measured interconnects.
namespace links {
LinkSpec pcie4();        ///< Measured PCIe-based p2p: 20.79 GB/s (paper 4.1).
LinkSpec nvlink();       ///< NVLink 3 class, extension studies.
LinkSpec sim_network();  ///< Simulated network: 73.28 Gbps (paper 4.1).
LinkSpec loopback();     ///< Same-device; near-zero cost (TP degree 1 etc).
}  // namespace links

}  // namespace gllm::hw
