#include "hw/gpu.hpp"

#include "util/units.hpp"

namespace gllm::hw::gpus {

using util::kGiB;
using util::kTera;

GpuSpec l20_48g() {
  GpuSpec g;
  g.name = "L20-48G";
  g.memory_bytes = 48.0 * kGiB;
  g.memory_bw = 864e9;
  g.peak_flops = 59.8 * kTera;  // dense BF16
  return g;
}

GpuSpec a100_40g() {
  GpuSpec g;
  g.name = "A100-40G";
  g.memory_bytes = 40.0 * kGiB;
  g.memory_bw = 1555e9;
  g.peak_flops = 312.0 * kTera;
  return g;
}

GpuSpec a800_80g() {
  GpuSpec g;
  g.name = "A800-80G";
  g.memory_bytes = 80.0 * kGiB;
  g.memory_bw = 2039e9;
  g.peak_flops = 312.0 * kTera;
  return g;
}

GpuSpec h100_80g() {
  GpuSpec g;
  g.name = "H100-80G";
  g.memory_bytes = 80.0 * kGiB;
  g.memory_bw = 3350e9;
  g.peak_flops = 989.0 * kTera;
  return g;
}

}  // namespace gllm::hw::gpus
