#pragma once

#include <string>

namespace gllm::hw {

/// Static description of one accelerator, the knobs the roofline cost model
/// needs. Peak numbers are dense (non-sparse) BF16 tensor-core throughput and
/// vendor HBM bandwidth; achievable fractions are modelled separately so the
/// presets stay recognisable against spec sheets.
struct GpuSpec {
  std::string name;
  double memory_bytes = 0;       ///< Total device memory.
  double memory_bw = 0;          ///< HBM bandwidth, bytes/s.
  double peak_flops = 0;         ///< Dense BF16 FLOP/s.
  double max_mfu = 0.62;         ///< Achievable fraction of peak at saturation.
  double mem_efficiency = 0.82;  ///< Achievable fraction of HBM bandwidth.
  double sat_tokens = 48.0;      ///< Tokens at which FLOP efficiency reaches half max.
  double kernel_overhead = 4e-6; ///< Launch/dispatch overhead per layer, seconds.
  double iteration_overhead = 1.5e-4;  ///< Fixed per-forward overhead, seconds.

  /// Saturating model-FLOPs-utilisation curve. Small decode batches achieve a
  /// small fraction of peak; 2k-token prefill chunks approach max_mfu.
  double flops_efficiency(double tokens) const {
    if (tokens <= 0.0) return 0.0;
    return max_mfu * tokens / (tokens + sat_tokens);
  }

  double effective_mem_bw() const { return memory_bw * mem_efficiency; }
};

/// Presets matching the paper's three testbeds plus one extra for headroom
/// studies. All values are public spec-sheet numbers.
namespace gpus {
GpuSpec l20_48g();    ///< NVIDIA L20 48 GB (paper intra-node testbed).
GpuSpec a100_40g();   ///< NVIDIA A100 40 GB (paper cross-node testbed).
GpuSpec a800_80g();   ///< NVIDIA A800 80 GB (paper cross-node 100B testbed).
GpuSpec h100_80g();   ///< NVIDIA H100 SXM (extension studies).
}  // namespace gpus

}  // namespace gllm::hw
