#pragma once

#include <stdexcept>
#include <string>

#include "hw/gpu.hpp"
#include "hw/interconnect.hpp"

namespace gllm::hw {

/// Homogeneous cluster: `nodes` machines with `gpus_per_node` identical GPUs,
/// an intra-node link between GPUs on the same machine and an inter-node link
/// otherwise. This matches the paper's three testbed configurations.
struct ClusterSpec {
  std::string name;
  GpuSpec gpu;
  int nodes = 1;
  int gpus_per_node = 1;
  LinkSpec intra_node;
  LinkSpec inter_node;

  int total_gpus() const { return nodes * gpus_per_node; }
  int node_of(int gpu_index) const {
    if (gpu_index < 0 || gpu_index >= total_gpus())
      throw std::out_of_range("ClusterSpec::node_of: gpu index out of range");
    return gpu_index / gpus_per_node;
  }

  /// Link used between two distinct GPUs.
  const LinkSpec& link_between(int a, int b) const {
    return node_of(a) == node_of(b) ? intra_node : inter_node;
  }

  /// Worst link spanning all GPUs — what a TP all-reduce is bottlenecked by.
  const LinkSpec& spanning_link() const { return nodes > 1 ? inter_node : intra_node; }
};

namespace clusters {
/// 1 node, 4x L20-48G over PCIe (paper intra-node testbed).
ClusterSpec l20_node(int gpus = 4);
/// `nodes` nodes, 1x A100-40G each over the simulated 73 Gbps network.
ClusterSpec a100_cross_node(int nodes = 4);
/// `nodes` nodes, 1x A800-80G each over the simulated 73 Gbps network.
ClusterSpec a800_cross_node(int nodes = 4);
}  // namespace clusters

}  // namespace gllm::hw
