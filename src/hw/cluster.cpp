#include "hw/cluster.hpp"

namespace gllm::hw::clusters {

ClusterSpec l20_node(int gpus) {
  ClusterSpec c;
  c.name = "1x" + std::to_string(gpus) + "xL20";
  c.gpu = gpus::l20_48g();
  c.nodes = 1;
  c.gpus_per_node = gpus;
  c.intra_node = links::pcie4();
  c.inter_node = links::sim_network();
  return c;
}

ClusterSpec a100_cross_node(int nodes) {
  ClusterSpec c;
  c.name = std::to_string(nodes) + "x1xA100";
  c.gpu = gpus::a100_40g();
  c.nodes = nodes;
  c.gpus_per_node = 1;
  c.intra_node = links::pcie4();
  c.inter_node = links::sim_network();
  return c;
}

ClusterSpec a800_cross_node(int nodes) {
  ClusterSpec c;
  c.name = std::to_string(nodes) + "x1xA800";
  c.gpu = gpus::a800_80g();
  c.nodes = nodes;
  c.gpus_per_node = 1;
  c.intra_node = links::pcie4();
  c.inter_node = links::sim_network();
  return c;
}

}  // namespace gllm::hw::clusters
