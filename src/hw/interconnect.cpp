#include "hw/interconnect.hpp"

#include <cmath>
#include <stdexcept>

namespace gllm::hw {

double CommModel::p2p_time(double bytes) const {
  if (bytes < 0) throw std::invalid_argument("p2p_time: negative bytes");
  if (bytes == 0) return 0.0;
  return link_.latency + bytes / link_.bandwidth;
}

double CommModel::allreduce_time(double bytes, int n) const {
  if (n < 1) throw std::invalid_argument("allreduce_time: n must be >= 1");
  if (n == 1 || bytes == 0) return 0.0;
  const double steps = 2.0 * (n - 1);
  const double traffic = 2.0 * (n - 1) / n * bytes;
  return steps * link_.latency + traffic / collective_bw();
}

double CommModel::allgather_time(double bytes, int n) const {
  if (n < 1) throw std::invalid_argument("allgather_time: n must be >= 1");
  if (n == 1 || bytes == 0) return 0.0;
  const double steps = static_cast<double>(n - 1);
  const double traffic = static_cast<double>(n - 1) / n * bytes;
  return steps * link_.latency + traffic / collective_bw();
}

double CommModel::broadcast_time(double bytes, int n) const {
  if (n < 1) throw std::invalid_argument("broadcast_time: n must be >= 1");
  if (n == 1 || bytes == 0) return 0.0;
  const double hops = std::ceil(std::log2(static_cast<double>(n)));
  return hops * (link_.latency + bytes / link_.bandwidth);
}

namespace links {

LinkSpec pcie4() {
  // The paper measures 20.79 GB/s for PCIe-based p2p on their testbed.
  // Collectives over PCIe (rings through host memory, root-complex
  // contention) achieve roughly 0.45x of p2p in NCCL algbw terms.
  return LinkSpec{"PCIe4", 20.79e9, 8e-6, /*cross_node=*/false,
                  /*collective_efficiency=*/0.45};
}

LinkSpec nvlink() {
  return LinkSpec{"NVLink", 300e9, 3e-6, /*cross_node=*/false,
                  /*collective_efficiency=*/0.90};
}

LinkSpec sim_network() {
  // 73.28 Gbps measured with NCCL_SHM_DISABLE=1, NCCL_P2P_DISABLE=1.
  return LinkSpec{"SimNet-73Gbps", 73.28e9 / 8.0, 5e-5, /*cross_node=*/true,
                  /*collective_efficiency=*/0.70};
}

LinkSpec loopback() {
  return LinkSpec{"loopback", 1e15, 0.0, /*cross_node=*/false,
                  /*collective_efficiency=*/1.0};
}

}  // namespace links

}  // namespace gllm::hw
