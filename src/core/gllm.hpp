#pragma once

/// Umbrella header for the gLLM reproduction library.
///
/// Layering (bottom to top):
///   util     - logging, RNG, stats, tables, queues, thread pool
///   sim      - discrete-event simulation core
///   hw       - GPU / interconnect / cluster models
///   model    - transformer configs, PP partitioning, roofline cost model
///   kv       - paged KV cache (allocator, page tables, prefix cache)
///   workload - synthetic ShareGPT / Azure traces
///   sched    - scheduling policies (Sarathi-Serve, Token Throttling, FCFS)
///   engine   - pipeline/tensor-parallel serving engine (DES)
///   serve    - system presets, rate sweeps, max-throughput protocol
///
/// The real multi-threaded runtime executing a CPU transformer lives in
/// tensor/, nn/ and runtime/ and has its own headers.

#include "engine/metrics.hpp"
#include "engine/pipeline_engine.hpp"
#include "hw/cluster.hpp"
#include "model/config.hpp"
#include "model/cost.hpp"
#include "sched/fcfs.hpp"
#include "sched/sarathi.hpp"
#include "sched/token_throttle.hpp"
#include "serve/options.hpp"
#include "serve/sweep.hpp"
#include "serve/system.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace gllm {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace gllm
