#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace gllm::obs {

std::size_t thread_shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: needs >= 1 bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  const std::size_t cells = kMetricShards * (bounds_.size() + 1);
  cells_ = std::make_unique<std::atomic<std::int64_t>[]>(cells);
  for (std::size_t i = 0; i < cells; ++i) cells_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // Prometheus `le` buckets: upper bounds are inclusive, so a value equal to
  // a bound lands in that bound's bucket (first bound >= v).
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = thread_shard_index();
  cells_[shard * (bounds_.size() + 1) + bucket].fetch_add(1, std::memory_order_relaxed);
  auto& sum = sums_[shard].sum;
  double cur = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < kMetricShards; ++s)
    for (std::size_t b = 0; b < out.size(); ++b)
      out[b] += cells_[s * out.size() + b].load(std::memory_order_relaxed);
  return out;
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (const auto c : bucket_counts()) total += c;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : sums_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, int count) {
  if (start <= 0 || factor <= 1.0 || count <= 0)
    throw std::invalid_argument("Histogram: bad exponential bounds");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i, b *= factor) out.push_back(b);
  return out;
}

std::vector<double> Histogram::linear_bounds(double start, double width, int count) {
  if (width <= 0 || count <= 0) throw std::invalid_argument("Histogram: bad linear bounds");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(start + width * i);
  return out;
}

// --- Registry ----------------------------------------------------------------

void Registry::check_name(std::string_view name) const {
  // Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
  auto ok_head = [](char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':'; };
  auto ok_tail = [&](char c) { return ok_head(c) || std::isdigit(static_cast<unsigned char>(c)); };
  if (name.empty() || !ok_head(name.front()) ||
      !std::all_of(name.begin() + 1, name.end(), ok_tail))
    throw std::invalid_argument("Registry: invalid metric name '" + std::string(name) + "'");
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  check_name(name);
  std::lock_guard lock(mu_);
  if (gauges_.count(name) || histograms_.count(name))
    throw std::invalid_argument("Registry: '" + std::string(name) + "' is not a counter");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           Named<Counter>{std::unique_ptr<Counter>(new Counter()),
                                          std::string(help)})
             .first;
  }
  return *it->second.instrument;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  check_name(name);
  std::lock_guard lock(mu_);
  if (counters_.count(name) || histograms_.count(name))
    throw std::invalid_argument("Registry: '" + std::string(name) + "' is not a gauge");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Named<Gauge>{std::unique_ptr<Gauge>(new Gauge()),
                                                         std::string(help)})
             .first;
  }
  return *it->second.instrument;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  check_name(name);
  std::lock_guard lock(mu_);
  if (counters_.count(name) || gauges_.count(name))
    throw std::invalid_argument("Registry: '" + std::string(name) + "' is not a histogram");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      Named<Histogram>{
                          std::unique_ptr<Histogram>(new Histogram(std::move(bounds))),
                          std::string(help)})
             .first;
  }
  return *it->second.instrument;
}

const Counter* Registry::find_counter(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.instrument.get();
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.instrument.get();
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.instrument.get();
}

std::string Registry::render_prometheus() const {
  std::lock_guard lock(mu_);
  std::ostringstream oss;
  for (const auto& [name, c] : counters_) {
    oss << "# HELP " << name << " " << c.help << "\n"
        << "# TYPE " << name << " counter\n"
        << name << " " << c.instrument->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    oss << "# HELP " << name << " " << g.help << "\n"
        << "# TYPE " << name << " gauge\n"
        << name << " " << g.instrument->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    oss << "# HELP " << name << " " << h.help << "\n"
        << "# TYPE " << name << " histogram\n";
    const auto counts = h.instrument->bucket_counts();
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < h.instrument->bounds().size(); ++b) {
      cumulative += counts[b];
      oss << name << "_bucket{le=\"" << h.instrument->bounds()[b] << "\"} " << cumulative
          << "\n";
    }
    cumulative += counts.back();
    oss << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
        << name << "_sum " << h.instrument->sum() << "\n"
        << name << "_count " << cumulative << "\n";
  }
  return oss.str();
}

std::string Registry::render_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    oss << (first ? "" : ",") << "\"" << name << "\":" << c.instrument->value();
    first = false;
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    oss << (first ? "" : ",") << "\"" << name << "\":" << g.instrument->value();
    first = false;
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto count = h.instrument->count();
    const auto sum = h.instrument->sum();
    oss << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << count
        << ",\"sum\":" << sum << ",\"mean\":" << (count ? sum / static_cast<double>(count) : 0.0)
        << "}";
    first = false;
  }
  oss << "}}";
  return oss.str();
}

}  // namespace gllm::obs
