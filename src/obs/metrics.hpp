#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gllm::obs {

/// Number of cache-line-separated shards each instrument spreads its updates
/// over. Threads are assigned shards round-robin on first use, so increments
/// from different threads rarely touch the same line; reads fold all shards.
inline constexpr std::size_t kMetricShards = 16;

/// Index of the calling thread's shard (stable for the thread's lifetime).
std::size_t thread_shard_index();

/// Monotone event count. Increments are relaxed atomics on a per-thread
/// shard; value() folds the shards, so concurrent totals are exact.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    shards_[thread_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class Registry;
  Counter() = default;
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value (e.g. KV free rate).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds, with
/// an implicit +Inf overflow bucket. observe() is one relaxed fetch_add on a
/// per-thread shard plus a CAS on the shard's running sum; scrapes fold.
class Histogram {
 public:
  void observe(double v);

  std::int64_t count() const;
  double sum() const;
  /// Per-bucket (non-cumulative) folded counts, one per bound plus +Inf last.
  std::vector<std::int64_t> bucket_counts() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor, int count);
  /// `count` bounds `start, start+width, ...`.
  static std::vector<double> linear_bounds(double start, double width, int count);

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> sums_{};
  /// kMetricShards consecutive blocks of bounds_.size()+1 relaxed cells.
  std::unique_ptr<std::atomic<std::int64_t>[]> cells_;
};

/// Named-instrument registry with Prometheus text exposition. Instrument
/// creation is mutex-protected and idempotent (same name returns the same
/// object; a name reused across kinds throws); the returned references stay
/// valid for the registry's lifetime, so hot paths hold plain pointers and
/// never touch the lock again.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Prometheus text exposition format 0.0.4 (# HELP / # TYPE headers,
  /// cumulative `_bucket{le=...}` lines, `_sum` / `_count`).
  std::string render_prometheus() const;
  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  std::string render_json() const;

 private:
  template <typename T>
  struct Named {
    std::unique_ptr<T> instrument;
    std::string help;
  };
  void check_name(std::string_view name) const;

  mutable std::mutex mu_;
  std::map<std::string, Named<Counter>, std::less<>> counters_;
  std::map<std::string, Named<Gauge>, std::less<>> gauges_;
  std::map<std::string, Named<Histogram>, std::less<>> histograms_;
};

}  // namespace gllm::obs
