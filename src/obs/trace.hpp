#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gllm::obs {

enum class EventPhase { kBegin, kEnd, kInstant };

/// One named numeric annotation on a trace event (rendered into Chrome
/// trace-event `args`). Keys must be string literals / static strings — the
/// tracer stores the pointer, not a copy.
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// One span edge or instant event. `name` must be a static string. `track` is
/// the logical timeline the event belongs to (a pipeline stage, the driver);
/// it is exported as the Chrome trace `tid`, with `pid` fixed to 1.
struct TraceEvent {
  const char* name = nullptr;
  EventPhase phase = EventPhase::kInstant;
  int track = 0;
  double ts = 0.0;  ///< seconds on the tracer's clock
  int n_args = 0;
  std::array<TraceArg, 4> args{};

  double arg(const char* key, double fallback = 0.0) const;
};

/// Span/instant recorder with bounded memory: events land in per-thread ring
/// buffers (oldest dropped on overflow, counted); a scrape folds all buffers
/// into one time-sorted snapshot or a Chrome trace-event JSON file loadable
/// in chrome://tracing or Perfetto.
///
/// Dual clock: by default timestamps are wall-clock seconds since
/// construction (steady_clock); a discrete-event engine injects its simulated
/// clock with set_clock() before recording (single-threaded setup only —
/// swapping the clock while other threads record is undefined).
///
/// Disabled (the default) every recording call is one relaxed load + branch.
class Tracer {
 public:
  explicit Tracer(std::size_t ring_capacity = 1 << 14);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Inject a clock (e.g. DES sim time). nullptr restores the wall clock.
  void set_clock(std::function<double()> clock);
  double now() const;

  /// Label a track in the exported trace (Chrome thread_name metadata).
  void set_track_name(int track, std::string name);

  void begin(int track, const char* name) {
    if (enabled()) record(TraceEvent{name, EventPhase::kBegin, track, now(), 0, {}});
  }
  /// Begin with annotations (shown on the span in Perfetto).
  void begin(int track, const char* name, std::initializer_list<TraceArg> args);
  void end(int track, const char* name) {
    if (enabled()) record(TraceEvent{name, EventPhase::kEnd, track, now(), 0, {}});
  }
  void instant(int track, const char* name, std::initializer_list<TraceArg> args = {});

  /// Events dropped to ring-buffer overflow, across all threads.
  std::uint64_t dropped() const;
  /// All buffered events, folded across threads and sorted by timestamp.
  std::vector<TraceEvent> snapshot() const;
  /// Chrome trace-event JSON (one {"traceEvents":[...]} object, ts in µs).
  void write_chrome_trace(std::ostream& os) const;
  void clear();

 private:
  struct Buffer {
    explicit Buffer(std::size_t capacity) : slots(capacity) {}
    mutable std::mutex mu;
    std::vector<TraceEvent> slots;
    std::size_t start = 0;  ///< oldest event
    std::size_t size = 0;
    std::uint64_t dropped = 0;
  };

  Buffer& local_buffer();
  void record(const TraceEvent& ev);

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::function<double()> clock_;  ///< null = wall clock
  std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::map<int, std::string> track_names_;
};

/// RAII span: begin on construction, end on destruction. A null tracer (or a
/// disabled one) makes both ends no-ops.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, int track, const char* name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        track_(track),
        name_(name) {
    if (tracer_ != nullptr) tracer_->begin(track_, name_);
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->end(track_, name_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  int track_;
  const char* name_;
};

}  // namespace gllm::obs
