#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gllm::obs {

/// Construction-time switches for one Observability instance.
struct ObsConfig {
  /// Record spans / instant events (metrics are always live once an
  /// Observability exists; tracing is the memory-heavy part).
  bool tracing = false;
  /// Per-thread trace ring capacity, in events.
  std::size_t trace_ring_capacity = 1 << 14;
};

/// Pre-registered instrument handles for the serving pipeline, resolved once
/// at construction so hot paths never touch the registry lock. Every executor
/// (DES engines, threaded runtime) increments the same names, which is what
/// makes `GET /metrics` and the figure-style dashboards executor-agnostic.
struct ServingMetrics {
  Counter* requests_admitted = nullptr;       ///< entered the waiting queue
  Counter* requests_completed = nullptr;      ///< finished generating
  Counter* preemptions = nullptr;             ///< recompute preemptions
  Counter* stalled_prefill_resets = nullptr;  ///< KV-deadlock resets
  Counter* tokens_scheduled = nullptr;        ///< committed prefill+decode tokens
  Gauge* kv_free_rate = nullptr;              ///< KV_free of eq. 2/3, last scheduled batch
  Histogram* ttft_seconds = nullptr;
  Histogram* tpot_seconds = nullptr;
  Histogram* iteration_tokens = nullptr;  ///< per-micro-batch scheduled tokens
};

/// Transfer counters of one gllm::net channel kind (frames and bytes in each
/// direction). A process plays one role per channel — the driver sends
/// metadata and receives samples, a stage worker the reverse — so the unused
/// direction simply stays zero.
struct NetChannelMetrics {
  Counter* frames_sent = nullptr;
  Counter* bytes_sent = nullptr;
  Counter* frames_recv = nullptr;
  Counter* bytes_recv = nullptr;
};

/// Pre-registered gllm::net instruments, one channel kind per runtime message
/// class plus the control plane (hello/heartbeat/shutdown). Surfaced through
/// the same registry as the serving metrics, so `/v1/stats` and `/metrics`
/// report transport traffic alongside scheduling behaviour.
struct NetMetrics {
  NetChannelMetrics meta;    ///< driver -> workers StepMetadata broadcast
  NetChannelMetrics act;     ///< stage i -> i+1 activations ring
  NetChannelMetrics sample;  ///< last stage -> driver sampled tokens
  NetChannelMetrics ctrl;    ///< handshake, heartbeats, shutdown
};

/// Pre-registered HTTP front-end instruments: connection lifecycle, request
/// outcomes and the event loop's backpressure/shedding decisions. Surfaced in
/// `/v1/stats` and `/metrics` so a load generator can watch the server's
/// admission behaviour while it drives it.
struct HttpMetrics {
  Counter* conns_accepted = nullptr;       ///< accepted TCP connections
  Counter* conns_closed = nullptr;         ///< closed (any reason)
  Gauge* conns_active = nullptr;           ///< currently open connections
  Counter* requests = nullptr;             ///< complete requests parsed
  Counter* responses = nullptr;            ///< responses fully queued
  Counter* shed = nullptr;                 ///< 503s from SLO-aware shedding
  Counter* parse_errors = nullptr;         ///< 400/413/431/501 rejections
  Counter* timeouts = nullptr;             ///< idle/read-timeout disconnects
  Counter* slow_client_disconnects = nullptr;  ///< backpressure-policy kills
  Counter* backpressure_events = nullptr;  ///< kernel-buffer-full (EAGAIN) stalls
  Counter* bytes_in = nullptr;
  Counter* bytes_out = nullptr;
  Counter* stream_events = nullptr;        ///< SSE events written
};

/// Pre-registered fleet-router instruments: placement decisions, cross-replica
/// shed escalation and failover activity of the gllm::router front door.
/// Surfaced through the router's own /metrics and /v1/stats, so the fleet's
/// routing behaviour is observable separately from any one replica's load.
struct RouterMetrics {
  Counter* requests_routed = nullptr;     ///< completions dispatched to a replica
  Counter* prefix_hits = nullptr;         ///< placements won by prefix affinity
  Counter* sheds_retried = nullptr;       ///< upstream 503s retried on a sibling
  Counter* sheds_exhausted = nullptr;     ///< 503s returned (every replica saturated/dead)
  Counter* failovers = nullptr;           ///< in-flight requests replayed on a sibling
  Counter* replica_deaths = nullptr;      ///< replicas marked dead (poll or proxy error)
  Gauge* replicas_alive = nullptr;        ///< replicas currently routable
};

/// Pre-registered fault-tolerance instruments: injected faults, detected
/// worker failures, pipeline restarts and the request-level outcomes of
/// recovery (folded back vs. declared failed), plus a degraded-mode gauge.
/// Surfaced through /metrics and /v1/stats like every other instrument, so a
/// chaos run's recovery behaviour is externally observable.
struct FaultMetrics {
  Counter* injected = nullptr;           ///< faults fired by the injector
  Counter* worker_failures = nullptr;    ///< pipeline failures detected
  Counter* pipeline_restarts = nullptr;  ///< respawn/re-handshake attempts
  Counter* requests_folded = nullptr;    ///< sequences folded back to prefill
  Counter* requests_failed = nullptr;    ///< requests terminated with an error
  Gauge* degraded = nullptr;             ///< 1 while recovering or failed
};

/// Pre-registered speculative-decoding instruments: proposal/acceptance
/// volume, the per-step acceptance-rate distribution, and KV rows/blocks
/// rolled back for rejected drafts. Incremented by AdmissionCore at step
/// retirement, so the DES engines and the threaded runtime report through the
/// same names in `/v1/stats` and `/metrics`.
struct SpecMetrics {
  Counter* tokens_proposed = nullptr;  ///< draft tokens fed for verification
  Counter* tokens_accepted = nullptr;  ///< draft tokens the target agreed with
  Counter* tokens_rejected = nullptr;  ///< draft tokens rolled back
  Counter* rollback_blocks = nullptr;  ///< KV blocks freed by spec rollback
  Histogram* acceptance_rate = nullptr;  ///< accepted/proposed per spec step
};

/// The unified observability handle threaded through the serving layers:
/// one metrics registry + one span tracer + the pre-registered serving
/// instruments. Layers hold an `Observability*` that defaults to nullptr —
/// the disabled path is a single pointer test.
class Observability {
 public:
  explicit Observability(ObsConfig cfg = {});

  Registry& metrics() { return registry_; }
  const Registry& metrics() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  ServingMetrics& serving() { return serving_; }
  const ServingMetrics& serving() const { return serving_; }
  NetMetrics& net() { return net_; }
  const NetMetrics& net() const { return net_; }
  HttpMetrics& http() { return http_; }
  const HttpMetrics& http() const { return http_; }
  FaultMetrics& fault() { return fault_; }
  const FaultMetrics& fault() const { return fault_; }
  RouterMetrics& router() { return router_; }
  const RouterMetrics& router() const { return router_; }
  SpecMetrics& spec() { return spec_; }
  const SpecMetrics& spec() const { return spec_; }

  /// JSON summary of every registered instrument (the /v1/stats body).
  std::string stats_json() const { return registry_.render_json(); }

 private:
  Registry registry_;
  Tracer tracer_;
  ServingMetrics serving_;
  NetMetrics net_;
  HttpMetrics http_;
  FaultMetrics fault_;
  RouterMetrics router_;
  SpecMetrics spec_;
};

}  // namespace gllm::obs
