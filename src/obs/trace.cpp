#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>
#include <stdexcept>

namespace gllm::obs {

namespace {
std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// JSON number: integral values print without a fraction so Perfetto shows
/// token counts as integers.
void write_number(std::ostream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}
}  // namespace

double TraceEvent::arg(const char* key, double fallback) const {
  for (int i = 0; i < n_args; ++i) {
    if (std::strcmp(args[static_cast<std::size_t>(i)].key, key) == 0)
      return args[static_cast<std::size_t>(i)].value;
  }
  return fallback;
}

Tracer::Tracer(std::size_t ring_capacity)
    : id_(next_tracer_id()),
      capacity_(ring_capacity),
      t0_(std::chrono::steady_clock::now()) {
  if (capacity_ == 0) throw std::invalid_argument("Tracer: ring capacity must be > 0");
}

void Tracer::set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

double Tracer::now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

void Tracer::set_track_name(int track, std::string name) {
  std::lock_guard lock(mu_);
  track_names_[track] = std::move(name);
}

void Tracer::begin(int track, const char* name, std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev{name, EventPhase::kBegin, track, now(), 0, {}};
  for (const TraceArg& a : args) {
    if (ev.n_args >= static_cast<int>(ev.args.size())) break;
    ev.args[static_cast<std::size_t>(ev.n_args++)] = a;
  }
  record(ev);
}

void Tracer::instant(int track, const char* name, std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev{name, EventPhase::kInstant, track, now(), 0, {}};
  for (const TraceArg& a : args) {
    if (ev.n_args >= static_cast<int>(ev.args.size())) break;
    ev.args[static_cast<std::size_t>(ev.n_args++)] = a;
  }
  record(ev);
}

Tracer::Buffer& Tracer::local_buffer() {
  struct CacheEntry {
    std::uint64_t tracer_id;
    Buffer* buffer;
  };
  // Keyed by the process-unique tracer id, so an entry can never resolve to a
  // buffer of a destroyed-and-reallocated tracer.
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.tracer_id == id_) return *e.buffer;
  }
  auto owned = std::make_unique<Buffer>(capacity_);
  Buffer* buffer = owned.get();
  {
    std::lock_guard lock(mu_);
    buffers_.push_back(std::move(owned));
  }
  cache.push_back(CacheEntry{id_, buffer});
  return *buffer;
}

void Tracer::record(const TraceEvent& ev) {
  Buffer& b = local_buffer();
  std::lock_guard lock(b.mu);
  if (b.size == b.slots.size()) {
    // Full: overwrite the oldest event (bounded memory, drop counter).
    b.slots[b.start] = ev;
    b.start = (b.start + 1) % b.slots.size();
    ++b.dropped;
  } else {
    b.slots[(b.start + b.size) % b.slots.size()] = ev;
    ++b.size;
  }
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_) {
    std::lock_guard buffer_lock(b->mu);
    total += b->dropped;
  }
  return total;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& b : buffers_) {
      std::lock_guard buffer_lock(b->mu);
      for (std::size_t i = 0; i < b->size; ++i)
        out.push_back(b->slots[(b->start + i) % b->slots.size()]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  return out;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const auto events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard lock(mu_);
    for (const auto& [track, name] : track_names_) {
      os << (first ? "" : ",")
         << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << track
         << ",\"args\":{\"name\":\"";
      write_escaped(os, name.c_str());
      os << "\"}}";
      first = false;
    }
  }
  for (const TraceEvent& ev : events) {
    const char* ph = ev.phase == EventPhase::kBegin  ? "B"
                     : ev.phase == EventPhase::kEnd  ? "E"
                                                     : "i";
    os << (first ? "" : ",") << "{\"name\":\"";
    write_escaped(os, ev.name);
    os << "\",\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << ev.track << ",\"ts\":"
       << ev.ts * 1e6;
    if (ev.phase == EventPhase::kInstant) os << ",\"s\":\"t\"";
    if (ev.n_args > 0) {
      os << ",\"args\":{";
      for (int i = 0; i < ev.n_args; ++i) {
        if (i) os << ",";
        os << "\"";
        write_escaped(os, ev.args[static_cast<std::size_t>(i)].key);
        os << "\":";
        write_number(os, ev.args[static_cast<std::size_t>(i)].value);
      }
      os << "}";
    }
    os << "}";
    first = false;
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  for (const auto& b : buffers_) {
    std::lock_guard buffer_lock(b->mu);
    b->start = 0;
    b->size = 0;
    b->dropped = 0;
  }
}

}  // namespace gllm::obs
