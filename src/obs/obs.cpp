#include "obs/obs.hpp"

namespace gllm::obs {

Observability::Observability(ObsConfig cfg) : tracer_(cfg.trace_ring_capacity) {
  tracer_.set_enabled(cfg.tracing);

  serving_.requests_admitted =
      &registry_.counter("gllm_requests_admitted_total", "Requests admitted to the waiting queue");
  serving_.requests_completed =
      &registry_.counter("gllm_requests_completed_total", "Requests that finished generating");
  serving_.preemptions =
      &registry_.counter("gllm_preemptions_total", "Recompute preemptions (KV pressure)");
  serving_.stalled_prefill_resets = &registry_.counter(
      "gllm_stalled_prefill_resets_total", "Half-admitted prompts reset to break KV deadlocks");
  serving_.tokens_scheduled = &registry_.counter(
      "gllm_tokens_scheduled_total", "Prefill+decode tokens committed into micro-batches");
  serving_.kv_free_rate =
      &registry_.gauge("gllm_kv_free_rate", "KV cache free rate at the last scheduled batch");
  serving_.ttft_seconds =
      &registry_.histogram("gllm_ttft_seconds", "Time to first token (s)",
                           Histogram::exponential_bounds(0.001, 2.0, 17));  // 1 ms .. ~65 s
  serving_.tpot_seconds =
      &registry_.histogram("gllm_tpot_seconds", "Time per output token after the first (s)",
                           Histogram::exponential_bounds(0.0001, 2.0, 16));  // 0.1 ms .. ~3 s
  serving_.iteration_tokens = &registry_.histogram(
      "gllm_iteration_tokens", "Scheduled tokens per micro-batch",
      Histogram::linear_bounds(256.0, 256.0, 16));  // 256 .. 4096, +Inf beyond

  const auto net_channel = [this](NetChannelMetrics& ch, const char* name,
                                  const char* what) {
    const std::string prefix = std::string("gllm_net_") + name;
    ch.frames_sent = &registry_.counter(prefix + "_frames_sent_total",
                                        std::string(what) + " frames sent");
    ch.bytes_sent = &registry_.counter(prefix + "_bytes_sent_total",
                                       std::string(what) + " bytes sent (incl. headers)");
    ch.frames_recv = &registry_.counter(prefix + "_frames_recv_total",
                                        std::string(what) + " frames received");
    ch.bytes_recv =
        &registry_.counter(prefix + "_bytes_recv_total",
                           std::string(what) + " bytes received (incl. headers)");
  };
  net_channel(net_.meta, "meta", "StepMetadata broadcast");
  net_channel(net_.act, "act", "Stage-to-stage activation");
  net_channel(net_.sample, "sample", "SampleResult");
  net_channel(net_.ctrl, "ctrl", "Control-plane (hello/heartbeat/shutdown)");

  http_.conns_accepted =
      &registry_.counter("gllm_http_conns_accepted_total", "TCP connections accepted");
  http_.conns_closed =
      &registry_.counter("gllm_http_conns_closed_total", "HTTP connections closed");
  http_.conns_active =
      &registry_.gauge("gllm_http_conns_active", "Currently open HTTP connections");
  http_.requests =
      &registry_.counter("gllm_http_requests_total", "Complete HTTP requests parsed");
  http_.responses =
      &registry_.counter("gllm_http_responses_total", "HTTP responses queued for send");
  http_.shed = &registry_.counter(
      "gllm_http_shed_total", "Completions shed with 503 + Retry-After (queue depth)");
  http_.parse_errors = &registry_.counter(
      "gllm_http_parse_errors_total", "Requests rejected by the parser (400/413/431/501)");
  http_.timeouts =
      &registry_.counter("gllm_http_timeouts_total", "Idle/read-timeout disconnects");
  http_.slow_client_disconnects = &registry_.counter(
      "gllm_http_slow_client_disconnects_total",
      "Streaming clients disconnected by the write-backpressure policy");
  http_.backpressure_events = &registry_.counter(
      "gllm_http_backpressure_events_total",
      "Writes deferred on a full kernel socket buffer (EAGAIN)");
  http_.bytes_in = &registry_.counter("gllm_http_bytes_in_total", "Request bytes read");
  http_.bytes_out =
      &registry_.counter("gllm_http_bytes_out_total", "Response bytes written");
  http_.stream_events =
      &registry_.counter("gllm_http_stream_events_total", "SSE events written");

  fault_.injected =
      &registry_.counter("gllm_fault_injected_total", "Faults fired by the injector");
  fault_.worker_failures = &registry_.counter("gllm_fault_worker_failures_total",
                                              "Pipeline failures detected by the driver");
  fault_.pipeline_restarts = &registry_.counter(
      "gllm_fault_pipeline_restarts_total", "Pipeline respawn/re-handshake attempts");
  fault_.requests_folded = &registry_.counter(
      "gllm_fault_requests_folded_total",
      "Sequences folded back into pending prefill after a pipeline failure");
  fault_.requests_failed = &registry_.counter(
      "gllm_fault_requests_failed_total",
      "Requests terminated with an explicit error event");
  fault_.degraded = &registry_.gauge(
      "gllm_fault_degraded", "1 while the service is recovering or failed, else 0");

  router_.requests_routed = &registry_.counter(
      "gllm_router_requests_routed_total", "Completions dispatched to a replica");
  router_.prefix_hits = &registry_.counter(
      "gllm_router_prefix_hits_total", "Placements won by prompt-prefix affinity");
  router_.sheds_retried = &registry_.counter(
      "gllm_router_sheds_retried_total", "Upstream 503s escalated to a sibling replica");
  router_.sheds_exhausted = &registry_.counter(
      "gllm_router_sheds_exhausted_total",
      "503s returned to clients (every replica saturated or dead)");
  router_.failovers = &registry_.counter(
      "gllm_router_failovers_total",
      "In-flight requests replayed from scratch on a sibling after a replica died");
  router_.replica_deaths = &registry_.counter(
      "gllm_router_replica_deaths_total", "Replicas marked dead (poll or proxy error)");
  router_.replicas_alive =
      &registry_.gauge("gllm_router_replicas_alive", "Replicas currently routable");

  spec_.tokens_proposed = &registry_.counter(
      "gllm_spec_tokens_proposed_total", "Draft tokens fed through verification");
  spec_.tokens_accepted = &registry_.counter(
      "gllm_spec_tokens_accepted_total", "Draft tokens the target model agreed with");
  spec_.tokens_rejected = &registry_.counter(
      "gllm_spec_tokens_rejected_total", "Draft tokens rejected and rolled back");
  spec_.rollback_blocks = &registry_.counter(
      "gllm_spec_rollback_blocks_total", "KV blocks freed by speculative rollback");
  spec_.acceptance_rate = &registry_.histogram(
      "gllm_spec_acceptance_rate", "Accepted/proposed draft fraction per spec step",
      Histogram::linear_bounds(0.125, 0.125, 8));  // 0.125 .. 1.0
}

}  // namespace gllm::obs
