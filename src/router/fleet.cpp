#include "router/fleet.hpp"

#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "net/socket.hpp"
#include "util/log.hpp"

namespace gllm::router {

namespace {

/// Kernel-assigned free loopback port: bind 0, read it back, release.
int allocate_port() {
  const int fd = net::listen_tcp(0);
  const int port = net::local_port(fd);
  net::close_fd(fd);
  return port;
}

bool wait_health(int port, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = net::connect_tcp("127.0.0.1", port, 0.5);
    if (fd >= 0) {
      const std::string req =
          "GET /health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
      std::string resp;
      if (net::send_all(fd, req.data(), req.size())) {
        char buf[512];
        while (net::wait_readable(fd, 1.0)) {
          const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
          if (n <= 0) break;
          resp.append(buf, static_cast<std::size_t>(n));
        }
      }
      net::close_fd(fd);
      if (resp.compare(0, 12, "HTTP/1.1 200") == 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

}  // namespace

FleetSupervisor::FleetSupervisor(FleetOptions options)
    : options_(std::move(options)) {}

FleetSupervisor::~FleetSupervisor() { stop(); }

pid_t FleetSupervisor::exec_replica(int port) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fleet: fork() failed");
  if (pid == 0) {
    std::vector<std::string> args;
    args.push_back(options_.server_bin);
    args.push_back("--port");
    args.push_back(std::to_string(port));
    for (const auto& a : options_.replica_args) args.push_back(a);
    std::vector<char*> argv;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(options_.server_bin.c_str(), argv.data());
    ::perror("fleet: execv gllm_server");
    ::_exit(127);
  }
  return pid;
}

std::vector<std::pair<std::string, int>> FleetSupervisor::spawn() {
  std::vector<std::pair<std::string, int>> endpoints;
  for (int i = 0; i < options_.replicas; ++i) {
    const int port = allocate_port();
    const pid_t pid = exec_replica(port);
    pids_.push_back(pid);
    ports_.push_back(port);
    endpoints.emplace_back("127.0.0.1", port);
  }
  for (int i = 0; i < options_.replicas; ++i) {
    if (!wait_health(ports_[static_cast<std::size_t>(i)],
                     options_.health_timeout_s)) {
      GLLM_LOG_WARN("fleet: replica " << i << " (pid "
                                      << pids_[static_cast<std::size_t>(i)]
                                      << ") not healthy after "
                                      << options_.health_timeout_s << "s");
      continue;
    }
    // Parsed by tools/smoke_router.sh to pick a victim for the chaos kill.
    GLLM_LOG_INFO("fleet: replica " << i << ": pid "
                                    << pids_[static_cast<std::size_t>(i)]
                                    << " port "
                                    << ports_[static_cast<std::size_t>(i)]);
  }
  return endpoints;
}

void FleetSupervisor::start_respawn_loop() {
  if (!options_.respawn || running_.exchange(true)) return;
  respawn_thread_ = std::thread([this] {
    while (running_.load()) {
      for (std::size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] <= 0) continue;
        int status = 0;
        const pid_t r = ::waitpid(pids_[i], &status, WNOHANG);
        if (r != pids_[i]) continue;
        GLLM_LOG_WARN("fleet: replica " << i << " (pid " << pids_[i]
                                        << ") exited; respawning on port "
                                        << ports_[i]);
        // fork+exec only — safe with the router's threads running.
        pids_[i] = exec_replica(ports_[i]);
        GLLM_LOG_INFO("fleet: replica " << i << ": pid " << pids_[i] << " port "
                                        << ports_[i]);
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.reap_interval_s));
    }
  });
}

void FleetSupervisor::stop() {
  running_.store(false);
  if (respawn_thread_.joinable()) respawn_thread_.join();
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] <= 0) continue;
    ::kill(pids_[i], SIGTERM);
  }
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] <= 0) continue;
    int status = 0;
    ::waitpid(pids_[i], &status, 0);
    pids_[i] = -1;
  }
}

pid_t FleetSupervisor::pid(std::size_t i) const {
  return i < pids_.size() ? pids_[i] : -1;
}

int FleetSupervisor::port(std::size_t i) const {
  return i < ports_.size() ? ports_[i] : -1;
}

}  // namespace gllm::router
