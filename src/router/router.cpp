#include "router/router.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "kv/prefix_cache.hpp"
#include "net/socket.hpp"
#include "server/http_server.hpp"
#include "util/log.hpp"

namespace gllm::router {

namespace {

constexpr std::uint64_t kListenKey = 0;

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void inc(obs::Counter* c) {
  if (c != nullptr) c->inc();
}

}  // namespace

FleetRouter::FleetRouter(RouterOptions options)
    : options_(std::move(options)),
      table_(options_.backends),
      poller_(table_, options_.poll_interval_s, options_.stats_timeout_s),
      policy_(options_.affinity_capacity) {}

FleetRouter::~FleetRouter() { stop(); }

obs::RouterMetrics* FleetRouter::metrics() const {
  return options_.obs != nullptr ? &options_.obs->router() : nullptr;
}

void FleetRouter::refresh_alive_gauge() {
  if (options_.obs != nullptr)
    options_.obs->router().replicas_alive->set(
        static_cast<double>(table_.alive_count()));
}

void FleetRouter::start() {
  if (running_.load()) return;

  listen_fd_ = net::listen_tcp(options_.port);
  port_ = net::local_port(listen_fd_);
  net::set_nonblocking(listen_fd_);

  // Seed the table before accepting traffic so the first placements already
  // see real queue depths (and so dead backends are known up front).
  poller_.poll_once();
  refresh_alive_gauge();
  poller_.start();

  running_.store(true);
  loop_ = std::make_unique<server::EventLoop>();
  loop_->add(listen_fd_, EPOLLIN, kListenKey);
  loop_thread_ = std::thread([this] { event_loop(); });
  GLLM_LOG_INFO("fleet router listening on 127.0.0.1:" << port_ << " ("
                                                       << table_.size()
                                                       << " replicas)");
}

void FleetRouter::stop() {
  if (!running_.exchange(false)) return;
  poller_.stop();
  loop_->wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  loop_.reset();
}

// --- event loop --------------------------------------------------------------

void FleetRouter::event_loop() {
  std::vector<server::EventLoop::Event> events;
  while (running_.load()) {
    loop_->wait(events, 100);
    const double now = mono_seconds();
    for (const auto& ev : events) {
      if (ev.key == kListenKey)
        accept_ready(now);
      else if (clients_.find(ev.key) != clients_.end())
        client_event(ev.key, ev.events, now);
      else if (upstreams_.find(ev.key) != upstreams_.end())
        upstream_event(ev.key, ev.events, now);
      // else: key already closed by an earlier event this round
    }
    sweep_timeouts(now);
  }
  for (auto& [key, c] : clients_) {
    loop_->del(c->fd);
    net::close_fd(c->fd);
  }
  clients_.clear();
  for (auto& [key, u] : upstreams_) {
    loop_->del(u->fd);
    net::close_fd(u->fd);
  }
  upstreams_.clear();
  loop_->del(listen_fd_);
  net::close_fd(listen_fd_);
  listen_fd_ = -1;
}

void FleetRouter::accept_ready(double now) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone
    }
    if (static_cast<int>(clients_.size()) >= options_.max_conns) {
      net::close_fd(fd);
      continue;
    }
    net::set_nonblocking(fd);
    const std::uint64_t key = next_key_++;
    auto c = std::make_unique<Client>();
    c->fd = fd;
    c->key = key;
    c->last_activity = now;
    loop_->add(fd, EPOLLIN, key);
    clients_.emplace(key, std::move(c));
  }
}

void FleetRouter::client_event(std::uint64_t key, std::uint32_t events, double now) {
  const auto it = clients_.find(key);
  if (it == clients_.end()) return;
  Client& c = *it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    close_client(key);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_client(c);
    if (clients_.find(key) == clients_.end()) return;
  }
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) {
    char buf[16384];
    bool peer_closed = false;
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        c.last_activity = now;
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    process_client_input(c, now);
    if (clients_.find(key) == clients_.end()) return;
    if (peer_closed) {
      // A proxied stream the client no longer reads is pure waste: tear down
      // both sides instead of generating into a void.
      close_client(key);
    }
  }
}

void FleetRouter::process_client_input(Client& c, double now) {
  const std::uint64_t key = c.key;
  // One completion at a time per connection: pipelined successors wait
  // unparsed in `in` until the active proxy attempt chain finishes.
  while (!c.proxying && !c.close_after_write) {
    if (c.in.empty()) break;
    server::HttpRequest request;
    std::size_t consumed = 0;
    server::ParseError error = server::ParseError::kNone;
    const server::ParseStatus status =
        server::parse_http_request(c.in, options_.limits, request, consumed, error);
    if (status == server::ParseStatus::kNeedMore) break;
    if (status == server::ParseStatus::kError) {
      c.keep_alive = false;
      c.in.clear();
      respond(c, server::http_status(error),
              std::string("{\"error\":\"") + server::to_string(error) + "\"}");
      break;
    }
    c.in.erase(0, consumed);
    c.keep_alive = request.keep_alive;
    if (request.method == "POST" && request.target == "/v1/completions")
      begin_completion(c, request, now);
    else
      handle_local(c, request);
    if (clients_.find(key) == clients_.end()) return;
  }
  flush_client(c);
}

void FleetRouter::handle_local(Client& c, const server::HttpRequest& request) {
  const std::string& path = request.target;
  const bool get_path = path == "/health" || path == "/metrics" || path == "/v1/stats";
  if (get_path && request.method != "GET") {
    respond(c, 405, "{\"error\":\"method not allowed\"}", 0, "application/json", "GET");
    return;
  }
  if (path == "/v1/completions") {  // wrong method (POST handled upstream)
    respond(c, 405, "{\"error\":\"method not allowed\"}", 0, "application/json",
            "POST");
    return;
  }
  if (!get_path) {
    respond(c, 404, "{\"error\":\"unknown endpoint\"}");
    return;
  }
  if (path == "/health") {
    const std::size_t alive = table_.alive_count();
    respond(c, alive > 0 ? 200 : 503,
            std::string("{\"status\":\"") + (alive > 0 ? "ok" : "down") +
                "\",\"role\":\"router\",\"replicas\":" +
                std::to_string(table_.size()) +
                ",\"alive\":" + std::to_string(alive) + "}");
    return;
  }
  if (path == "/v1/stats") {
    respond(c, 200, stats_body());
    return;
  }
  // /metrics
  if (options_.obs == nullptr) {
    respond(c, 503, "{\"error\":\"observability disabled\"}");
    return;
  }
  respond(c, 200, options_.obs->metrics().render_prometheus(), 0,
          "text/plain; version=0.0.4; charset=utf-8");
}

std::string FleetRouter::stats_body() const {
  const auto replicas = table_.snapshot();
  std::ostringstream oss;
  std::size_t alive = 0;
  for (const auto& r : replicas)
    if (r.alive) ++alive;
  oss << "{\"schema_version\":2,\"role\":\"router\",\"replicas_total\":"
      << replicas.size() << ",\"replicas_alive\":" << alive << ",\"replicas\":[";
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const Replica& r = replicas[i];
    if (i > 0) oss << ",";
    oss << "{\"index\":" << i << ",\"host\":\"" << r.host << "\",\"port\":" << r.port
        << ",\"alive\":" << (r.alive ? "true" : "false")
        << ",\"inflight\":" << r.inflight << ",\"dispatched\":" << r.dispatched
        << ",\"waiting_prefill\":" << r.stats.waiting_prefill
        << ",\"running_decodes\":" << r.stats.running_decodes
        << ",\"prefix_cache_blocks\":" << r.stats.prefix_cache_blocks
        << ",\"restart_budget_remaining\":" << r.stats.restart_budget_remaining
        << "}";
  }
  oss << "]";
  if (options_.obs != nullptr) oss << ",\"metrics\":" << options_.obs->stats_json();
  oss << "}";
  return oss.str();
}

// --- completion proxying -----------------------------------------------------

void FleetRouter::begin_completion(Client& c, const server::HttpRequest& request,
                                   double now) {
  const std::string& body = request.body;

  // Only what placement and failover need is parsed here; full request
  // validation stays replica-side so router and single-server deployments
  // reject identically.
  c.req_id = 0;
  server::json_int_field(body, "id", c.req_id);
  bool stream = false;
  server::json_bool_field(body, "stream", stream);
  c.streaming = stream;

  c.prefix_hash = 0;
  std::vector<std::int64_t> prompt;
  if (server::json_int_array_field(body, "prompt", prompt) && !prompt.empty()) {
    // Hash with the fleet's real block geometry when a replica has reported
    // it; the fallback only matters until the first successful poll.
    int block_size = options_.kv_block_size_fallback;
    for (const auto& r : table_.snapshot()) {
      if (r.ever_polled && r.stats.kv_block_size > 0) {
        block_size = r.stats.kv_block_size;
        break;
      }
    }
    std::vector<kv::TokenId> tokens(prompt.begin(), prompt.end());
    c.prefix_hash = kv::prompt_prefix_hash(tokens, block_size);
  }

  const Placement p = policy_.place(c.prefix_hash, table_.snapshot());
  c.candidates = p.candidates;
  c.cand_idx = 0;
  c.first_is_prefix_hit = p.prefix_hit;
  c.failovers = 0;
  c.shed_seen = false;
  c.head_forwarded = false;
  c.tokens_forwarded = 0;
  c.terminal_forwarded = false;

  // Rebuilt once and replayed VERBATIM on shed escalation and failover:
  // identical body -> identical greedy token stream on any sibling.
  c.upstream_request =
      "POST /v1/completions HTTP/1.1\r\nHost: gllm-router\r\n"
      "Content-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  c.proxying = true;
  start_attempt(c, now);
}

bool FleetRouter::start_attempt(Client& c, double now) {
  for (;;) {
    const auto snapshot = table_.snapshot();
    while (c.cand_idx < c.candidates.size() &&
           !snapshot[c.candidates[c.cand_idx]].alive)
      ++c.cand_idx;
    if (c.cand_idx >= c.candidates.size()) {
      attempt_failed(c, false, now);  // exhausted: 503 or synthesized terminal
      return false;
    }
    const std::size_t r = c.candidates[c.cand_idx];
    const int fd =
        net::connect_tcp_nonblocking(snapshot[r].host, snapshot[r].port);
    if (fd < 0) {
      // Synchronous refusal: the replica process is gone.
      table_.mark_dead(r);
      policy_.forget_replica(r);
      if (metrics() != nullptr) inc(metrics()->replica_deaths);
      refresh_alive_gauge();
      ++c.cand_idx;
      continue;
    }
    const std::uint64_t key = next_key_++;
    auto u = std::make_unique<Upstream>();
    u->fd = fd;
    u->key = key;
    u->client_key = c.key;
    u->replica = r;
    u->connecting = true;
    u->connect_deadline = now + options_.connect_timeout_s;
    u->out = c.upstream_request;
    loop_->add(fd, EPOLLOUT, key);
    upstreams_.emplace(key, std::move(u));

    c.upstream_key = key;
    c.current_replica = r;
    policy_.record(c.prefix_hash, r);
    table_.note_dispatch(r);
    if (metrics() != nullptr) {
      inc(metrics()->requests_routed);
      if (c.cand_idx == 0 && c.first_is_prefix_hit) inc(metrics()->prefix_hits);
    }
    return true;
  }
}

/// Terminal failure of the current attempt chain: every candidate is dead or
/// (when `from_shed`) saturated. Before any response byte reached the client
/// this is a plain 503 + Retry-After; mid-stream it becomes a synthesized
/// terminal SSE error event so the client unblocks with an explicit failure
/// instead of a silent EOF.
void FleetRouter::attempt_failed(Client& c, bool /*unused*/, double now) {
  if (c.head_forwarded) {
    if (!c.terminal_forwarded)
      queue_to_client(c, "data: {\"id\":" + std::to_string(c.req_id) +
                             ",\"done\":true,\"error\":\"worker failure\"}\n\n");
    queue_to_client(c, "data: [DONE]\n\n");
    if (metrics() != nullptr) inc(metrics()->sheds_exhausted);
    finish_request(c, true);
    return;
  }
  if (metrics() != nullptr) inc(metrics()->sheds_exhausted);
  respond(c, 503,
          c.shed_seen ? "{\"error\":\"all replicas saturated\"}"
                      : "{\"error\":\"no replica available\"}",
          options_.retry_after_s);
  finish_request(c, false);
  (void)now;
}

void FleetRouter::upstream_event(std::uint64_t key, std::uint32_t events,
                                 double now) {
  const auto it = upstreams_.find(key);
  if (it == upstreams_.end()) return;
  const std::uint64_t client_key = it->second->client_key;
  handle_upstream_event(*it->second, events, now);
  // The attempt chain may have finished without closing the client (e.g. a
  // keep-alive 503): a pipelined successor could already be buffered.
  const auto cit = clients_.find(client_key);
  if (cit != clients_.end() && !cit->second->proxying &&
      !cit->second->close_after_write && !cit->second->in.empty())
    process_client_input(*cit->second, now);
}

void FleetRouter::handle_upstream_event(Upstream& u, std::uint32_t events,
                                        double now) {
  const std::uint64_t key = u.key;
  if (clients_.find(u.client_key) == clients_.end()) {
    close_upstream(key, true);
    return;
  }

  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    upstream_dead(u, now);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (u.connecting) {
      if (net::socket_error(u.fd) != 0) {
        upstream_dead(u, now);
        return;
      }
      u.connecting = false;
    }
    while (u.out_off < u.out.size()) {
      const ssize_t n =
          net::send_some(u.fd, u.out.data() + u.out_off, u.out.size() - u.out_off);
      if (n >= 0) {
        u.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      upstream_dead(u, now);
      return;
    }
    if (u.out_off >= u.out.size()) loop_->mod(u.fd, EPOLLIN, key);
  }
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) {
    char buf[16384];
    bool eof = false;
    for (;;) {
      const ssize_t n = ::recv(u.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        u.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    process_upstream_input(u, now);
    // The attempt may have completed (upstream closed) inside.
    const auto again = upstreams_.find(key);
    if (again == upstreams_.end()) return;
    if (eof) upstream_dead(*again->second, now);
  }
}

void FleetRouter::process_upstream_input(Upstream& u, double now) {
  const auto cit = clients_.find(u.client_key);
  if (cit == clients_.end()) {
    close_upstream(u.key, true);
    return;
  }
  Client& c = *cit->second;

  if (!u.head_parsed) {
    const auto pos = u.in.find("\r\n\r\n");
    if (pos == std::string::npos) {
      if (u.in.size() > (64u << 10)) upstream_dead(u, now);  // runaway head
      return;
    }
    u.head = u.in.substr(0, pos + 4);
    u.in.erase(0, pos + 4);
    u.head_parsed = true;
    u.status = u.head.size() > 12 ? std::atoi(u.head.c_str() + 9) : 0;
    u.is_sse = u.head.find("text/event-stream") != std::string::npos;
    const auto cl = u.head.find("Content-Length:");
    if (cl != std::string::npos) {
      u.content_length =
          static_cast<std::size_t>(std::atoll(u.head.c_str() + cl + 15));
      u.have_content_length = true;
    }

    if (u.status == 503) {
      // Replica-side shed (queue over shed-depth, or recovering): escalate
      // to the next-best candidate instead of bouncing the client.
      close_upstream(u.key, true);
      c.shed_seen = true;
      ++c.cand_idx;
      if (start_attempt(c, now) && metrics() != nullptr)
        inc(metrics()->sheds_retried);
      return;
    }
  }

  if (u.status == 200 && u.is_sse) {
    if (!c.head_forwarded) {
      queue_to_client(c, u.head);
      c.head_forwarded = true;
    }
    // Forward complete SSE events only — a client never holds a torn event,
    // which is what makes skip-replay failover byte-exact.
    for (;;) {
      const auto pos = u.in.find("\n\n");
      if (pos == std::string::npos) break;
      std::string event = u.in.substr(0, pos + 2);
      u.in.erase(0, pos + 2);
      if (event.find("\"token\":") != std::string::npos) {
        ++u.tokens_seen;
        // Replay skip: this attempt re-decodes from scratch; only tokens the
        // client has not already seen are forwarded.
        if (u.tokens_seen > c.tokens_forwarded) {
          queue_to_client(c, std::move(event));
          c.tokens_forwarded = u.tokens_seen;
        }
      } else if (event.find("\"done\":true") != std::string::npos) {
        if (!c.terminal_forwarded) {
          queue_to_client(c, std::move(event));
          c.terminal_forwarded = true;
        }
      } else if (event.find("[DONE]") != std::string::npos) {
        queue_to_client(c, std::move(event));
        close_upstream(u.key, true);
        finish_request(c, true);  // SSE responses delimit by close
        return;
      } else {
        queue_to_client(c, std::move(event));  // future event kinds: pass through
      }
    }
    // Slow-client policy: a reader this far behind wedges router memory.
    if (c.out.size() - c.out_off > options_.max_write_buffer) {
      close_client(c.key);
      return;
    }
    flush_client(c);
    return;
  }

  // Unary response (200 JSON, or a 4xx/5xx other than the shed 503):
  // buffered whole and forwarded verbatim, so failover before completion
  // never leaves the client with a partial body.
  if (u.have_content_length && u.in.size() >= u.content_length) {
    queue_to_client(c, u.head + u.in.substr(0, u.content_length));
    close_upstream(u.key, true);
    finish_request(c, true);  // upstream head says Connection: close
  }
  (void)now;
}

void FleetRouter::upstream_dead(Upstream& u, double now) {
  const std::uint64_t ukey = u.key;
  const std::size_t replica = u.replica;
  const auto cit = clients_.find(u.client_key);

  // A length-less response (not our replicas' dialect, but legal HTTP) is
  // delimited by EOF: that EOF is completion, not death.
  if (cit != clients_.end() && u.head_parsed && u.status != 503 && !u.is_sse &&
      !u.have_content_length) {
    Client& c = *cit->second;
    queue_to_client(c, u.head + u.in);
    close_upstream(ukey, true);
    finish_request(c, true);
    return;
  }

  close_upstream(ukey, true);
  table_.mark_dead(replica);
  policy_.forget_replica(replica);
  if (metrics() != nullptr) inc(metrics()->replica_deaths);
  refresh_alive_gauge();
  if (cit == clients_.end()) return;
  Client& c = *cit->second;

  ++c.failovers;
  if (c.failovers > options_.max_failovers) {
    attempt_failed(c, false, now);
    return;
  }
  // Replay from scratch on a sibling: fresh placement (the dead replica's
  // affinity entries are gone), full request re-sent, head/token skip state
  // in the Client carries over.
  const Placement p = policy_.place(c.prefix_hash, table_.snapshot());
  c.candidates = p.candidates;
  c.cand_idx = 0;
  c.first_is_prefix_hit = p.prefix_hit;
  if (start_attempt(c, now) && metrics() != nullptr) inc(metrics()->failovers);
}

void FleetRouter::finish_request(Client& c, bool close_client_after) {
  if (c.current_replica != SIZE_MAX) c.current_replica = SIZE_MAX;
  c.proxying = false;
  c.upstream_key = 0;
  if (close_client_after) c.close_after_write = true;
  flush_client(c);
  // A buffered pipelined successor is picked up by the caller's
  // process_client_input pass (client_event / upstream_event epilogue).
}

// --- client plumbing ---------------------------------------------------------

void FleetRouter::respond(Client& c, int status, const std::string& body,
                          int retry_after, const std::string& content_type,
                          const std::string& allow) {
  std::ostringstream oss;
  oss << "HTTP/1.1 " << status << " " << status_text(status) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n";
  if (!allow.empty()) oss << "Allow: " << allow << "\r\n";
  if (retry_after > 0) oss << "Retry-After: " << retry_after << "\r\n";
  oss << "Connection: " << (c.keep_alive ? "keep-alive" : "close") << "\r\n\r\n"
      << body;
  queue_to_client(c, oss.str());
  if (!c.keep_alive) c.close_after_write = true;
}

void FleetRouter::queue_to_client(Client& c, std::string bytes) {
  if (c.out.empty()) {
    c.out = std::move(bytes);
    c.out_off = 0;
  } else {
    c.out += bytes;
  }
}

void FleetRouter::flush_client(Client& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n =
        net::send_some(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off);
    if (n >= 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (c.out_off > 0) {
        c.out.erase(0, c.out_off);
        c.out_off = 0;
      }
      if (!c.want_write) {
        c.want_write = true;
        update_interest(c);
      }
      return;
    }
    close_client(c.key);
    return;
  }
  c.out.clear();
  c.out_off = 0;
  if (c.want_write) {
    c.want_write = false;
    update_interest(c);
  }
  if (c.close_after_write && !c.proxying) close_client(c.key);
}

void FleetRouter::update_interest(Client& c) {
  std::uint32_t events = EPOLLIN;
  if (c.want_write) events |= EPOLLOUT;
  loop_->mod(c.fd, events, c.key);
}

void FleetRouter::close_client(std::uint64_t key) {
  const auto it = clients_.find(key);
  if (it == clients_.end()) return;
  const std::uint64_t ukey = it->second->upstream_key;
  loop_->del(it->second->fd);
  net::close_fd(it->second->fd);
  clients_.erase(it);
  if (ukey != 0) close_upstream(ukey, true);
}

void FleetRouter::close_upstream(std::uint64_t key, bool note_done) {
  const auto it = upstreams_.find(key);
  if (it == upstreams_.end()) return;
  Upstream& u = *it->second;
  if (note_done) table_.note_done(u.replica);
  const auto cit = clients_.find(u.client_key);
  if (cit != clients_.end() && cit->second->upstream_key == key)
    cit->second->upstream_key = 0;
  loop_->del(u.fd);
  net::close_fd(u.fd);
  upstreams_.erase(it);
}

void FleetRouter::sweep_timeouts(double now) {
  // Stalled connects fail over; idle non-proxying clients are dropped.
  std::vector<std::uint64_t> stalled;
  for (const auto& [key, u] : upstreams_)
    if (u->connecting && now > u->connect_deadline) stalled.push_back(key);
  for (const std::uint64_t key : stalled) {
    const auto it = upstreams_.find(key);
    if (it != upstreams_.end()) upstream_dead(*it->second, now);
  }

  if (options_.client_timeout_s <= 0.0) return;
  std::vector<std::uint64_t> idle;
  for (const auto& [key, c] : clients_)
    if (!c->proxying && now - c->last_activity > options_.client_timeout_s &&
        c->out.size() == c->out_off)
      idle.push_back(key);
  for (const std::uint64_t key : idle) close_client(key);
}

}  // namespace gllm::router
