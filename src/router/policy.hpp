#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "router/stats.hpp"

namespace gllm::router {

/// Ordered placement decision for one request: candidate replica indices,
/// best first. The proxy tries them in order — dead/saturated candidates
/// escalate to the next — and only answers 503 once the list is exhausted.
struct Placement {
  std::vector<std::size_t> candidates;
  bool prefix_hit = false;  ///< first candidate won by prompt-prefix affinity
};

/// Prefix-cache-aware, load-balanced placement (paper §3.4: the API frontend
/// routes across data-parallel replicas).
///
/// Two signals, in priority order:
///   1. Prompt-prefix affinity: requests whose prompt shares a cached prefix
///      with an earlier request are steered to the replica that served it, so
///      the replica's kv::PrefixCache can skip the shared prefill. The key is
///      kv::prompt_prefix_hash — process-independent, so the router's hash of
///      the prompt equals what any replica's cache would compute.
///   2. Least-waiting-prefill: everything else sorts by the replica's polled
///      waiting_prefill depth plus the router's own in-flight count (the
///      in-flight term covers dispatches newer than the last poll).
///
/// The affinity map is a bounded LRU keyed by prefix hash; capacity bounds
/// router memory, and an evicted entry merely costs a replica-side prefill.
/// Single-threaded: owned and called only by the router's event-loop thread.
class PlacementPolicy {
 public:
  explicit PlacementPolicy(std::size_t affinity_capacity = 4096);

  /// Rank all alive replicas for a request with prompt-prefix hash `hash`
  /// (0 = no usable prefix: skip affinity). `replicas` is a fresh snapshot.
  /// Reconciles death epochs first: any replica whose `deaths` moved since the
  /// last call has its affinity entries purged, so poller-detected deaths (and
  /// respawns behind them) can't leave stale steering in the LRU.
  Placement place(std::uint64_t hash, const std::vector<Replica>& replicas);

  /// Record that the request with prefix hash `hash` was dispatched to
  /// `replica` — future prompts sharing the prefix will prefer it.
  void record(std::uint64_t hash, std::size_t replica);

  /// Drop every affinity entry pointing at `replica` (it died; its prefix
  /// cache is gone, so steering there is pure cost once it respawns).
  void forget_replica(std::size_t replica);

  std::size_t affinity_size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  /// Last-seen Replica::deaths per replica index (grown on demand).
  std::vector<std::int64_t> seen_deaths_;
  // LRU: list holds (hash, replica) most-recent-first; map points into it.
  mutable std::list<std::pair<std::uint64_t, std::size_t>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, std::size_t>>::iterator>
      map_;
};

}  // namespace gllm::router
