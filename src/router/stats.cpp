#include "router/stats.hpp"

#include <poll.h>

#include <chrono>
#include <utility>

#include "net/socket.hpp"
#include "server/http_server.hpp"

namespace gllm::router {

namespace {

/// Extract a JSON string field ("key": "value", no escape handling — the
/// stats schema never emits escapes in the fields we read).
bool json_string_field(const std::string& json, const std::string& key,
                       std::string& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  pos = json.find('"', pos + 1);
  if (pos == std::string::npos) return false;
  const auto end = json.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = json.substr(pos + 1, end - pos - 1);
  return true;
}

double mono_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Single-shot connect with a hard deadline — unlike net::connect_tcp this
/// does NOT retry a refused connection, so a dead replica costs one round
/// trip per poll instead of the full timeout.
int connect_once(const std::string& host, int port, double timeout_s) {
  const int fd = net::connect_tcp_nonblocking(host, port);
  if (fd < 0) return -1;
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  const int ms = timeout_s > 0 ? static_cast<int>(timeout_s * 1000.0) : 0;
  const int rc = ::poll(&pfd, 1, ms > 0 ? ms : 1);
  if (rc <= 0 || net::socket_error(fd) != 0) {
    net::close_fd(fd);
    return -1;
  }
  return fd;
}

}  // namespace

bool parse_stats_json(const std::string& json, ReplicaStats& out) {
  if (!json_string_field(json, "model", out.model)) return false;
  std::int64_t v = 0;
  if (server::json_int_field(json, "schema_version", v))
    out.schema_version = static_cast<int>(v);
  if (server::json_int_field(json, "pp", v)) out.pp = static_cast<int>(v);
  if (server::json_int_field(json, "tp", v)) out.tp = static_cast<int>(v);
  if (server::json_int_field(json, "kv_block_size", v))
    out.kv_block_size = static_cast<int>(v);
  server::json_int_field(json, "waiting_prefill", out.waiting_prefill);
  server::json_int_field(json, "running_decodes", out.running_decodes);
  server::json_int_field(json, "prefix_cache_blocks", out.prefix_cache_blocks);
  server::json_int_field(json, "restart_budget_remaining",
                         out.restart_budget_remaining);
  return true;
}

bool fetch_stats(const std::string& host, int port, double timeout_s,
                 ReplicaStats& out) {
  const double deadline = mono_now() + timeout_s;
  const int fd = connect_once(host, port, timeout_s);
  if (fd < 0) return false;
  net::set_nonblocking(fd, false);

  const std::string request =
      "GET /v1/stats HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: close\r\n\r\n";
  if (!net::send_all(fd, request.data(), request.size())) {
    net::close_fd(fd);
    return false;
  }

  // Connection: close — read to EOF, bounded by the deadline.
  std::string response;
  char buf[4096];
  bool ok = false;
  for (;;) {
    const double left = deadline - mono_now();
    if (left <= 0 || !net::wait_readable(fd, left)) break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n < 0) break;
    if (n == 0) {
      ok = true;
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
    if (response.size() > (1u << 20)) break;  // runaway guard
  }
  net::close_fd(fd);
  if (!ok) return false;

  if (response.compare(0, 12, "HTTP/1.1 200") != 0) return false;
  const auto header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  return parse_stats_json(response.substr(header_end + 4), out);
}

// --- ReplicaTable ------------------------------------------------------------

ReplicaTable::ReplicaTable(std::vector<std::pair<std::string, int>> endpoints)
    : n_(endpoints.size()) {
  replicas_.reserve(n_);
  for (auto& [host, port] : endpoints) {
    Replica r;
    r.host = std::move(host);
    r.port = port;
    replicas_.push_back(std::move(r));
  }
}

std::vector<Replica> ReplicaTable::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_;
}

std::size_t ReplicaTable::alive_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& r : replicas_)
    if (r.alive) ++n;
  return n;
}

void ReplicaTable::poll_success(std::size_t i, const ReplicaStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= n_) return;
  replicas_[i].stats = stats;
  replicas_[i].alive = true;
  replicas_[i].ever_polled = true;
  replicas_[i].poll_failures = 0;
}

void ReplicaTable::poll_failure(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= n_) return;
  if (++replicas_[i].poll_failures >= kDeadAfterFailures) {
    if (replicas_[i].alive) ++replicas_[i].deaths;
    replicas_[i].alive = false;
  }
}

void ReplicaTable::mark_dead(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= n_) return;
  if (replicas_[i].alive) ++replicas_[i].deaths;
  replicas_[i].alive = false;
  replicas_[i].poll_failures = kDeadAfterFailures;
}

void ReplicaTable::note_dispatch(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= n_) return;
  ++replicas_[i].inflight;
  ++replicas_[i].dispatched;
}

void ReplicaTable::note_done(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= n_) return;
  if (replicas_[i].inflight > 0) --replicas_[i].inflight;
}

// --- StatsPoller -------------------------------------------------------------

StatsPoller::StatsPoller(ReplicaTable& table, double interval_s, double timeout_s)
    : table_(table), interval_s_(interval_s), timeout_s_(timeout_s) {}

StatsPoller::~StatsPoller() { stop(); }

void StatsPoller::poll_once() {
  const auto replicas = table_.snapshot();
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    ReplicaStats stats;
    if (fetch_stats(replicas[i].host, replicas[i].port, timeout_s_, stats))
      table_.poll_success(i, stats);
    else
      table_.poll_failure(i);
  }
}

void StatsPoller::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    while (running_.load()) {
      poll_once();
      // Sleep in small slices so stop() takes effect promptly.
      const int slices = interval_s_ > 0 ? static_cast<int>(interval_s_ * 20) : 1;
      for (int s = 0; s < (slices > 0 ? slices : 1) && running_.load(); ++s)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
}

void StatsPoller::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace gllm::router
