#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "router/policy.hpp"
#include "router/stats.hpp"
#include "server/event_loop.hpp"
#include "server/http_parser.hpp"

namespace gllm::router {

struct RouterOptions {
  int port = 0;  ///< 0 = ephemeral; read back via FleetRouter::port()

  /// Replica endpoints (host, port). The router never starts replicas itself;
  /// FleetSupervisor (fleet.hpp) or the operator provides live endpoints.
  std::vector<std::pair<std::string, int>> backends;

  double poll_interval_s = 0.5;   ///< /v1/stats poll cadence
  double stats_timeout_s = 0.5;   ///< per-replica poll deadline
  double connect_timeout_s = 2.0;  ///< upstream non-blocking connect deadline

  int max_conns = 1024;        ///< client-accept cap; beyond it refused
  int retry_after_s = 1;       ///< Retry-After on router-origin 503s
  double client_timeout_s = 60.0;  ///< idle client disconnect

  /// Failover budget: how many times one request may be replayed on a
  /// sibling after its serving replica died. Shed (503) escalation is
  /// bounded separately by the candidate list and does not consume this.
  int max_failovers = 3;

  server::HttpLimits limits;           ///< client-side parser budgets
  std::size_t max_write_buffer = 1 << 20;  ///< slow-client disconnect threshold

  /// Block size for kv::prompt_prefix_hash when no replica has reported one
  /// yet (v1 replicas never report it). Must match the fleet's
  /// --kv-block-size for affinity to line up with replica caches.
  int kv_block_size_fallback = 8;
  std::size_t affinity_capacity = 4096;  ///< prefix-affinity LRU entries

  obs::Observability* obs = nullptr;  ///< router-side metrics (optional)
};

/// Multi-replica fleet front door (paper §3.4: the API frontend dispatching
/// across data-parallel pipeline replicas).
///
/// One epoll thread proxies `POST /v1/completions` to a replica chosen by
/// PlacementPolicy (prefix-cache affinity, then least-waiting-prefill from
/// the background stats poll), relaying the replica's response byte-for-byte
/// — SSE streams are forwarded event-at-a-time, so a client never receives a
/// torn event. `GET /health`, `/v1/stats` and `/metrics` are answered locally
/// with fleet-level views.
///
/// Shed escalation: a replica's 503 sends the request to the next-best
/// candidate; the client only sees 503 (+ Retry-After) once every alive
/// replica has refused.
///
/// Failover: a replica dying mid-request (connect refused, EOF mid-stream) is
/// marked dead immediately and the request is replayed FROM SCRATCH on a
/// sibling. Because replicas share the model preset and weight seed, greedy
/// decoding reproduces the identical token sequence, so the router replays
/// the stream and skips exactly the response head and the first n token
/// events the client already holds — the client-observed byte stream is
/// identical to a fault-free run (DESIGN decision 11).
class FleetRouter {
 public:
  explicit FleetRouter(RouterOptions options);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  void start();
  void stop();
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  ReplicaTable& table() { return table_; }
  const RouterOptions& options() const { return options_; }

 private:
  /// One client connection. `proxying` gates pipelining: buffered successor
  /// requests wait until the active completion finishes.
  struct Client {
    int fd = -1;
    std::uint64_t key = 0;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    bool want_write = false;
    bool close_after_write = false;
    bool keep_alive = true;
    double last_activity = 0;

    // Active proxied completion (valid while proxying).
    bool proxying = false;
    std::uint64_t upstream_key = 0;  ///< 0 = between attempts
    std::string upstream_request;    ///< rebuilt request, replayed verbatim
    bool streaming = false;
    std::int64_t req_id = 0;  ///< for synthesized terminal events
    std::uint64_t prefix_hash = 0;
    std::vector<std::size_t> candidates;  ///< remaining shed-escalation order
    std::size_t cand_idx = 0;
    bool first_is_prefix_hit = false;
    std::size_t current_replica = SIZE_MAX;
    int failovers = 0;
    bool shed_seen = false;  ///< at least one upstream 503 this request

    // Forwarding state — the failover skip-replay bookkeeping.
    bool head_forwarded = false;      ///< response head already sent to client
    std::size_t tokens_forwarded = 0;  ///< SSE token events already sent
    bool terminal_forwarded = false;   ///< the {"done":true} event
  };

  /// One upstream (router -> replica) connection serving a single attempt.
  struct Upstream {
    int fd = -1;
    std::uint64_t key = 0;
    std::uint64_t client_key = 0;
    std::size_t replica = 0;
    bool connecting = true;
    double connect_deadline = 0;
    std::string out;  ///< request bytes still to send
    std::size_t out_off = 0;
    std::string in;  ///< unprocessed response bytes
    bool head_parsed = false;
    int status = 0;
    std::string head;  ///< raw header block incl. blank line
    bool is_sse = false;
    std::size_t content_length = 0;
    bool have_content_length = false;
    std::size_t tokens_seen = 0;  ///< token events parsed this attempt
  };

  void event_loop();
  void accept_ready(double now);
  void client_event(std::uint64_t key, std::uint32_t events, double now);
  void upstream_event(std::uint64_t key, std::uint32_t events, double now);
  void process_client_input(Client& c, double now);
  void handle_local(Client& c, const server::HttpRequest& request);
  void begin_completion(Client& c, const server::HttpRequest& request, double now);
  /// Dispatch to the next alive candidate; false when the chain is exhausted
  /// (attempt_failed already answered the client).
  bool start_attempt(Client& c, double now);
  void attempt_failed(Client& c, bool replica_died, double now);
  void handle_upstream_event(Upstream& u, std::uint32_t events, double now);
  void process_upstream_input(Upstream& u, double now);
  void upstream_dead(Upstream& u, double now);
  void finish_request(Client& c, bool close_client_after);
  void respond(Client& c, int status, const std::string& body, int retry_after = 0,
               const std::string& content_type = "application/json",
               const std::string& allow = "");
  void queue_to_client(Client& c, std::string bytes);
  void flush_client(Client& c);
  void update_interest(Client& c);
  void close_client(std::uint64_t key);
  void close_upstream(std::uint64_t key, bool note_done);
  void sweep_timeouts(double now);
  std::string stats_body() const;
  void refresh_alive_gauge();
  obs::RouterMetrics* metrics() const;

  RouterOptions options_;
  ReplicaTable table_;
  StatsPoller poller_;
  PlacementPolicy policy_;

  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread loop_thread_;

  // Loop-thread state.
  std::unique_ptr<server::EventLoop> loop_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Client>> clients_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Upstream>> upstreams_;
  std::uint64_t next_key_ = 1;
};

}  // namespace gllm::router
