#include "router/policy.hpp"

#include <algorithm>

namespace gllm::router {

PlacementPolicy::PlacementPolicy(std::size_t affinity_capacity)
    : capacity_(affinity_capacity > 0 ? affinity_capacity : 1) {}

Placement PlacementPolicy::place(std::uint64_t hash,
                                 const std::vector<Replica>& replicas) {
  Placement out;

  // Purge affinity for every replica that died since the last placement. The
  // proxy calls forget_replica on the failures it sees itself; this catches
  // the poller-detected deaths, which land in the snapshot only.
  if (seen_deaths_.size() < replicas.size()) seen_deaths_.resize(replicas.size(), 0);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].deaths != seen_deaths_[i]) {
      forget_replica(i);
      seen_deaths_[i] = replicas[i].deaths;
    }
  }

  // Load score: polled backlog + our own unacknowledged dispatches. A replica
  // that has never answered a poll scores as empty (it just started; the
  // in-flight term still spreads load while the first poll is pending).
  const auto score = [](const Replica& r) -> std::int64_t {
    return (r.ever_polled ? r.stats.waiting_prefill : 0) + r.inflight;
  };

  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < replicas.size(); ++i)
    if (replicas[i].alive) alive.push_back(i);
  std::stable_sort(alive.begin(), alive.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score(replicas[a]) < score(replicas[b]);
                   });

  std::size_t affinity = replicas.size();  // sentinel: none
  if (hash != 0) {
    const auto it = map_.find(hash);
    if (it != map_.end()) {
      const std::size_t r = it->second->second;
      if (r < replicas.size() && replicas[r].alive) {
        affinity = r;
        // LRU touch: reading an entry keeps it hot.
        lru_.splice(lru_.begin(), lru_, it->second);
      }
    }
  }

  if (affinity < replicas.size()) {
    out.candidates.push_back(affinity);
    out.prefix_hit = true;
  }
  for (const std::size_t i : alive)
    if (i != affinity) out.candidates.push_back(i);
  return out;
}

void PlacementPolicy::record(std::uint64_t hash, std::size_t replica) {
  if (hash == 0) return;
  const auto it = map_.find(hash);
  if (it != map_.end()) {
    it->second->second = replica;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(hash, replica);
  map_[hash] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void PlacementPolicy::forget_replica(std::size_t replica) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second == replica) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gllm::router
