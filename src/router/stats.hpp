#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gllm::router {

/// One replica's self-reported load, parsed from its `GET /v1/stats` payload
/// (schema v2, src/server/http_server.cpp). Parsing is forward- and
/// backward-compatible by construction: unknown keys are ignored and absent
/// keys keep their defaults, so a v1 payload (no "schema_version") and a
/// future v3 payload both produce a usable snapshot.
struct ReplicaStats {
  int schema_version = 1;  ///< v1 payloads predate the key
  std::string model;
  int pp = 0;
  int tp = 0;
  int kv_block_size = 0;                    ///< 0 = unreported (v1)
  std::int64_t waiting_prefill = 0;         ///< prefill backlog incl. inbox
  std::int64_t running_decodes = 0;         ///< decode-queue depth
  std::int64_t prefix_cache_blocks = 0;     ///< cached prompt-prefix blocks
  std::int64_t restart_budget_remaining = 0;  ///< pipeline respawns left
};

/// Parse a /v1/stats JSON body into `out`. Returns false only when the text
/// is not recognisably a stats payload (no "model" key) — missing numeric
/// fields are not an error, they keep their defaults.
bool parse_stats_json(const std::string& json, ReplicaStats& out);

/// One replica endpoint plus the router's live view of it. `alive` flips on
/// poll failures (kDeadAfterFailures consecutive) or immediately on a proxy
/// error, and flips back on the next successful poll — which is how a
/// supervisor-respawned or self-recovered replica rejoins the rotation.
struct Replica {
  std::string host;
  int port = 0;
  ReplicaStats stats;
  bool alive = true;
  bool ever_polled = false;  ///< stats are meaningless until the first poll
  int poll_failures = 0;     ///< consecutive; reset on success
  /// Death epoch: bumped on every alive -> dead transition (poller or proxy
  /// detected). A respawned replica starts with an empty prefix cache, so
  /// consumers holding per-replica caches (the placement policy's affinity
  /// LRU) purge their entries whenever this moves.
  std::int64_t deaths = 0;
  std::int64_t inflight = 0;  ///< router-side: dispatched, not yet finished
  std::int64_t dispatched = 0;  ///< router-side: total completions sent here
};

/// Thread-safe table of the fleet's replicas, shared between the stats
/// poller (writer) and the proxy loop (reader + inflight accounting).
class ReplicaTable {
 public:
  static constexpr int kDeadAfterFailures = 2;

  ReplicaTable(std::vector<std::pair<std::string, int>> endpoints);

  std::size_t size() const { return n_; }
  std::vector<Replica> snapshot() const;
  std::size_t alive_count() const;

  /// Poller outcomes.
  void poll_success(std::size_t i, const ReplicaStats& stats);
  void poll_failure(std::size_t i);

  /// Proxy outcomes. mark_dead is immediate (a refused connect or a mid-
  /// stream EOF is stronger evidence than a missed poll).
  void mark_dead(std::size_t i);
  void note_dispatch(std::size_t i);
  void note_done(std::size_t i);

 private:
  mutable std::mutex mu_;
  std::vector<Replica> replicas_;
  std::size_t n_;
};

/// Fetch + parse one replica's /v1/stats with a hard deadline on every
/// phase (connect, send, read). Exposed for tests; the poller calls it.
bool fetch_stats(const std::string& host, int port, double timeout_s,
                 ReplicaStats& out);

/// Background /v1/stats poller: one thread sweeping every replica each
/// `interval_s`, updating the shared table. Death detection here is the slow
/// path (kDeadAfterFailures missed polls); the proxy's connection errors are
/// the fast path. Start/stop bracketed by the router.
class StatsPoller {
 public:
  StatsPoller(ReplicaTable& table, double interval_s, double timeout_s = 0.5);
  ~StatsPoller();

  void start();
  void stop();

  /// Sweep every replica once, synchronously (also used by tests and by the
  /// router's startup to seed the table before accepting traffic).
  void poll_once();

 private:
  ReplicaTable& table_;
  double interval_s_;
  double timeout_s_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace gllm::router
