#pragma once

#include <atomic>
#include <string>
#include <sys/types.h>
#include <thread>
#include <utility>
#include <vector>

namespace gllm::router {

struct FleetOptions {
  std::string server_bin;  ///< path to the gllm_server executable
  int replicas = 1;
  std::vector<std::string> replica_args;  ///< passed through after --port
  double health_timeout_s = 30.0;  ///< per-replica /health wait at spawn
  bool respawn = false;  ///< re-exec a replica whose process exits
  double reap_interval_s = 0.5;
};

/// Spawns and supervises N gllm_server replica processes on ephemeral
/// loopback ports (fork+execv — the same single-binary-many-processes shape
/// as the multiprocess pipeline runtime). Ports are allocated by binding
/// port 0, reading the assignment back, and closing — the replica re-binds
/// it; the race window is harmless on a loopback dev box and irrelevant in
/// tests, which attach to in-process servers instead.
///
/// IMPORTANT: spawn() forks, so it must run before the caller starts any
/// threads (the router's poller/event loop). Respawns later are fork+exec,
/// which is safe in a threaded process.
class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetOptions options);
  ~FleetSupervisor();

  /// Fork+exec every replica and wait until each answers /health (or the
  /// per-replica timeout lapses — a replica that never comes up is left to
  /// the router's death detection). Returns the endpoints in replica order.
  std::vector<std::pair<std::string, int>> spawn();

  /// Begin the reap/respawn loop (only useful with options.respawn; no-op
  /// otherwise). Call after the router is up.
  void start_respawn_loop();

  /// SIGTERM + waitpid every live replica.
  void stop();

  pid_t pid(std::size_t i) const;
  int port(std::size_t i) const;
  std::size_t size() const { return pids_.size(); }

 private:
  pid_t exec_replica(int port);

  FleetOptions options_;
  std::vector<pid_t> pids_;
  std::vector<int> ports_;
  std::thread respawn_thread_;
  std::atomic<bool> running_{false};
};

}  // namespace gllm::router
