#include "engine/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace gllm::engine {

std::size_t RunResult::completed_requests() const {
  std::size_t n = 0;
  for (const auto& r : requests) n += r.completed ? 1 : 0;
  return n;
}

std::int64_t RunResult::total_tokens() const {
  std::int64_t n = 0;
  for (const auto& r : requests) {
    if (r.completed) n += r.prompt_len + r.output_len;
  }
  return n;
}

std::int64_t RunResult::output_tokens() const {
  std::int64_t n = 0;
  for (const auto& r : requests) {
    if (r.completed) n += r.output_len;
  }
  return n;
}

double RunResult::mean_ttft() const {
  util::OnlineStats s;
  for (const auto& r : requests) {
    if (r.completed) s.add(r.ttft);
  }
  return s.mean();
}

double RunResult::mean_tpot() const {
  util::OnlineStats s;
  for (const auto& r : requests) {
    if (r.completed && r.output_len > 1) s.add(r.tpot);
  }
  return s.mean();
}

double RunResult::mean_e2el() const {
  util::OnlineStats s;
  for (const auto& r : requests) {
    if (r.completed) s.add(r.e2e);
  }
  return s.mean();
}

double RunResult::p99_ttft() const { return percentile(Latency::kTtft, 99.0); }

double RunResult::percentile(Latency metric, double p) const {
  util::SampleStats s;
  for (const auto& r : requests) {
    if (!r.completed) continue;
    switch (metric) {
      case Latency::kTtft:
        s.add(r.ttft);
        break;
      case Latency::kTpot:
        if (r.output_len > 1) s.add(r.tpot);
        break;
      case Latency::kE2el:
        s.add(r.e2e);
        break;
    }
  }
  return s.percentile(p);
}

double RunResult::throughput() const {
  const double span = makespan();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(total_tokens()) / span;
}

double RunResult::slo_attainment(double ttft_limit, double tpot_limit) const {
  if (requests.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& r : requests) {
    if (r.completed && r.ttft <= ttft_limit && r.tpot <= tpot_limit) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(requests.size());
}

double RunResult::goodput(double ttft_limit, double tpot_limit) const {
  const double span = makespan();
  if (span <= 0.0) return 0.0;
  std::int64_t tokens = 0;
  for (const auto& r : requests) {
    if (r.completed && r.ttft <= ttft_limit && r.tpot <= tpot_limit)
      tokens += r.prompt_len + r.output_len;
  }
  return static_cast<double>(tokens) / span;
}

double RunResult::mean_stage_utilization() const {
  const double span = makespan();
  if (span <= 0.0 || stage_busy_seconds.empty()) return 0.0;
  double total = 0.0;
  for (double b : stage_busy_seconds) total += b / span;
  return total / static_cast<double>(stage_busy_seconds.size());
}

double RunResult::token_count_cv() const {
  util::OnlineStats s;
  for (const auto& it : iterations) s.add(it.prefill_tokens + it.decode_tokens);
  return s.cv();
}

std::vector<double> RunResult::utilization_timeline(double t0, double t1,
                                                    double window) const {
  if (!(t1 > t0) || window <= 0.0 || stage_busy_seconds.empty()) return {};
  const auto n_windows = static_cast<std::size_t>((t1 - t0) / window) + 1;
  std::vector<double> busy(n_windows, 0.0);
  for (const auto& interval : busy_intervals) {
    // Spread the interval's busy time over the windows it overlaps.
    double begin = std::max(interval.start, t0);
    const double end = std::min(interval.start + interval.duration, t1);
    while (begin < end) {
      const auto w = static_cast<std::size_t>((begin - t0) / window);
      if (w >= n_windows) break;
      const double w_end = t0 + (static_cast<double>(w) + 1.0) * window;
      const double piece = std::min(end, w_end) - begin;
      busy[w] += piece;
      begin += piece;
    }
  }
  const double denom = window * static_cast<double>(stage_busy_seconds.size());
  for (double& b : busy) b /= denom;
  return busy;
}

}  // namespace gllm::engine
