#pragma once

#include <cstdint>

#include "engine/runtime_model.hpp"
#include "hw/cluster.hpp"
#include "model/config.hpp"

namespace gllm::obs {
class Observability;
}

namespace gllm::engine {

/// Deployment description for one engine instance: which model, on which
/// cluster, with which parallelism mapping and runtime.
///
/// Parallelism mapping: `pp * tp` GPUs are used; stage `s` occupies GPUs
/// `[s*tp, (s+1)*tp)`. Pure PP (the gLLM/vLLM configuration) is `pp=N, tp=1`;
/// pure TP (the SGLang configuration) is `pp=1, tp=N` — with pp=1 the engine
/// degenerates to continuous batching with no micro-batch overlap.
struct EngineConfig {
  model::ModelConfig model;
  hw::ClusterSpec cluster;
  int pp = 1;
  int tp = 1;
  /// Fraction of GPU memory usable (weights + KV), as in vLLM's
  /// --gpu-memory-utilization.
  double gpu_memory_util = 0.90;
  int kv_block_size = 16;
  bool prefix_caching = false;  ///< disabled in paper-matching benchmarks
  RuntimeModel runtime = RuntimeModel::gllm_async();
  bool record_iterations = true;
  /// Record every stage-occupancy interval (memory-heavy; Figure 4 only).
  bool record_busy_intervals = false;
  /// vLLM-V0 fidelity option: pin each request to the virtual engine
  /// (admission cohort) it first prefilled in, so its decode steps only ride
  /// that cohort's micro-batches. This reproduces Figure 8's decode clumping
  /// even more strongly; off by default (our vLLM baseline is the globally
  /// scheduled, baseline-favourable variant).
  bool cohort_pinning = false;
  /// Observability sink (metrics always; spans when its tracer is enabled).
  /// Null disables. Must outlive the engine; the engine installs a sim-time
  /// clock on the tracer at run(), so scrape traces only while the engine that
  /// produced them is alive.
  obs::Observability* obs = nullptr;

  /// Speculative decoding, acceptance-rate-parameterized (the DES carries no
  /// real tokens, so acceptance is modelled instead of computed): every
  /// decode step feeds 1 + spec_lookahead rows — charged as real per-stage
  /// compute and counted against the throttle's #D — and emits a
  /// deterministic pseudo-random number of tokens with per-draft acceptance
  /// probability `spec_acceptance`. 0 = off.
  int spec_lookahead = 0;
  double spec_acceptance = 0.0;
  std::uint64_t spec_seed = 1;  ///< seeds the acceptance draws (reproducible)

  void validate() const;
};

}  // namespace gllm::engine
