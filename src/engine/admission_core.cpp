#include "engine/admission_core.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::engine {

AdmissionCore::AdmissionCore(AdmissionConfig cfg) : cfg_(cfg) {
  if (cfg_.kv_capacity_tokens < cfg_.kv_block_size)
    throw std::invalid_argument("AdmissionCore: KV pool smaller than one block");
  prefill_kv_ = std::make_unique<kv::KvManager>(cfg_.kv_capacity_tokens,
                                                cfg_.kv_block_size, cfg_.prefix_caching);
  if (cfg_.decode_kv_capacity_tokens >= 0) {
    if (cfg_.decode_kv_capacity_tokens < cfg_.kv_block_size)
      throw std::invalid_argument("AdmissionCore: decode KV pool smaller than one block");
    decode_kv_ = std::make_unique<kv::KvManager>(cfg_.decode_kv_capacity_tokens,
                                                 cfg_.kv_block_size, false);
  }
}

Sequence* AdmissionCore::add(const workload::RequestSpec& spec) {
  return add(spec, {});
}

Sequence* AdmissionCore::add(const workload::RequestSpec& spec,
                             std::vector<kv::TokenId> prompt) {
  Entry e;
  e.seq = std::make_unique<Sequence>(spec);
  e.tokens = std::move(prompt);
  Sequence* ptr = e.seq.get();
  if (!seqs_.emplace(spec.id, std::move(e)).second)
    throw std::invalid_argument("AdmissionCore: duplicate request id");
  return ptr;
}

void AdmissionCore::enqueue(Sequence* seq) {
  waiting_.push_back(seq);
  if (cfg_.obs != nullptr) cfg_.obs->serving().requests_admitted->inc();
}

AdmissionCore::Entry& AdmissionCore::entry(kv::SeqId id) {
  const auto it = seqs_.find(id);
  if (it == seqs_.end()) throw std::logic_error("AdmissionCore: unknown sequence id");
  return it->second;
}

Sequence& AdmissionCore::seq(kv::SeqId id) { return *entry(id).seq; }

const Sequence& AdmissionCore::seq(kv::SeqId id) const {
  const auto it = seqs_.find(id);
  if (it == seqs_.end()) throw std::logic_error("AdmissionCore: unknown sequence id");
  return *it->second.seq;
}

const std::vector<kv::TokenId>& AdmissionCore::tokens(kv::SeqId id) const {
  const auto it = seqs_.find(id);
  if (it == seqs_.end()) throw std::logic_error("AdmissionCore: unknown sequence id");
  return it->second.tokens;
}

const std::vector<int>& AdmissionCore::scheduled_chunks(kv::SeqId id) const {
  const auto it = seqs_.find(id);
  if (it == seqs_.end()) throw std::logic_error("AdmissionCore: unknown sequence id");
  return it->second.chunks;
}

sched::ScheduleContext AdmissionCore::build_context(double now, int cohort) const {
  sched::ScheduleContext ctx;
  ctx.now = now;
  ctx.pipeline_depth = cfg_.pipeline_depth;
  ctx.kv_free_rate = decode_kv().free_rate();
  ctx.kv_free_tokens = decode_kv().free_token_capacity();
  ctx.total_decode_seqs = static_cast<std::int64_t>(decoding_.size());
  ctx.spec_lookahead = cfg_.spec_lookahead;

  // cohort < 0: global view. Otherwise only this virtual engine's sequences
  // (plus unassigned prompts, which the engine pins on first admission).
  ctx.waiting.reserve(waiting_.size());
  for (const Sequence* s : waiting_) {
    if (s->remaining_prefill() <= 0) continue;  // final chunk in flight
    if (cohort >= 0 && s->cohort() >= 0 && s->cohort() != cohort) continue;
    ctx.waiting.push_back(sched::WaitingSeq{s->id(), s->remaining_prefill(),
                                            prefill_kv().seq_tokens(s->id()), s->arrival(),
                                            s->outstanding_chunks() > 0});
  }
  ctx.runnable_decodes.reserve(decoding_.size());
  for (const Sequence* s : decoding_) {
    if (s->in_flight()) continue;
    if (cohort >= 0 && s->cohort() != cohort) continue;
    ctx.runnable_decodes.push_back(sched::DecodeSeq{s->id(), decode_kv().seq_tokens(s->id())});
  }
  return ctx;
}

Sequence* AdmissionCore::youngest_idle_victim(kv::SeqId exclude) {
  for (auto it = decoding_.rbegin(); it != decoding_.rend(); ++it) {
    Sequence* cand = *it;
    if (cand->in_flight() || cand->id() == exclude) continue;
    return cand;
  }
  return nullptr;
}

bool AdmissionCore::allocate_decode_with_preemption(kv::SeqId id, std::int64_t n_tokens,
                                                    double now) {
  while (!decode_kv().allocate(id, n_tokens)) {
    Sequence* victim = youngest_idle_victim(id);
    if (victim == nullptr) return false;
    decode_kv().free_seq(victim->id());
    victim->preempt(now);
    decoding_.erase(std::find(decoding_.begin(), decoding_.end(), victim));
    waiting_.push_front(victim);
    ++preemptions_;
    if (cfg_.obs != nullptr) {
      cfg_.obs->serving().preemptions->inc();
      cfg_.obs->tracer().instant(cfg_.trace_track, "preempt",
                                 {{"seq", static_cast<double>(victim->id())}});
    }
    GLLM_LOG_DEBUG("preempted seq " << victim->id() << " at t=" << now);
  }
  return true;
}

AdmittedBatch AdmissionCore::materialize(const sched::MicroBatchPlan& plan, double now) {
  AdmittedBatch batch;

  for (const sched::BatchItem& planned : plan.items) {
    Entry& e = entry(planned.seq);
    Sequence& s = *e.seq;

    if (planned.phase == sched::Phase::kDecode) {
      // The sequence may have been recompute-preempted while an earlier item
      // of this very plan was materialised — it is Waiting now, skip it.
      if (s.state() != SeqState::kDecoding || s.in_flight()) continue;
      const std::int64_t ctx_before = decode_kv().seq_tokens(planned.seq);

      // Speculative lookahead: the proposer may shorten (or skip) the planned
      // window. The cap keeps accepted tokens inside the output budget — at
      // most output_len - generated tokens can still be emitted, one of which
      // is always the verified/bonus token.
      int proposed = 0;
      const int max_k =
          std::min(planned.spec_tokens, s.output_len() - s.generated() - 1);
      if (max_k > 0) {
        proposed = spec_propose_ ? spec_propose_(s, max_k) : max_k;
        proposed = std::clamp(proposed, 0, max_k);
      }
      // All 1 + proposed rows allocate up front; under KV pressure degrade to
      // a plain decode step before giving up on the item entirely.
      if (!allocate_decode_with_preemption(planned.seq, 1 + proposed, now)) {
        if (proposed == 0 || !allocate_decode_with_preemption(planned.seq, 1, now))
          continue;  // skip this step
        proposed = 0;
      }
      s.on_decode_scheduled();
      sched::BatchItem step = planned;
      step.spec_tokens = proposed;
      batch.plan.items.push_back(sched::CommittedItem{step, ctx_before});
      batch.work.push_back(model::WorkItem{1 + proposed, ctx_before, false, true});
      batch.plan.total_new_tokens += 1 + proposed;
    } else {
      if (s.state() != SeqState::kWaiting || planned.n_tokens > s.remaining_prefill())
        throw std::logic_error("AdmissionCore: scheduler planned an invalid prefill chunk");

      sched::BatchItem chunk = planned;
      std::int64_t context = prefill_kv().seq_tokens(planned.seq);
      // Prefix-cache adoption at first admission: reuse cached KV blocks of
      // this prompt's prefix and skip their computation (the final target
      // token is always computed so logits exist). Requires real token ids.
      if (cfg_.prefix_caching && context == 0 && s.scheduled_prefill() == 0 &&
          !e.tokens.empty()) {
        const auto reused = prefill_kv().adopt_cached_prefix(
            planned.seq, e.tokens, static_cast<std::int64_t>(s.prefill_target()) - 1);
        if (reused > 0) {
          s.skip_prefill(static_cast<int>(reused));
          context = reused;
          chunk.n_tokens = std::min(chunk.n_tokens, s.remaining_prefill());
        }
      }
      if (!prefill_kv().allocate(chunk.seq, chunk.n_tokens)) continue;  // no preemption
      s.on_chunk_scheduled(chunk.n_tokens);
      chunk.context = context;
      chunk.last_prefill_chunk = s.remaining_prefill() == 0;
      e.chunks.push_back(chunk.n_tokens);
      batch.plan.items.push_back(sched::CommittedItem{chunk, context});
      batch.work.push_back(
          model::WorkItem{chunk.n_tokens, context, true, chunk.last_prefill_chunk});
      batch.plan.total_new_tokens += chunk.n_tokens;
    }
  }

  if (batch.empty()) return batch;
  batch.id = next_batch_id_++;
  if (cfg_.obs != nullptr) {
    auto& m = cfg_.obs->serving();
    m.tokens_scheduled->inc(batch.plan.total_new_tokens);
    m.iteration_tokens->observe(batch.plan.total_new_tokens);
    m.kv_free_rate->set(decode_kv().free_rate());
  }
  std::vector<sched::BatchItem> committed;
  committed.reserve(batch.plan.items.size());
  for (const auto& c : batch.plan.items) committed.push_back(c.item);
  in_flight_.emplace(batch.id, std::move(committed));
  return batch;
}

int AdmissionCore::complete(std::uint64_t batch_id, double now,
                            const CompletionHooks* hooks) {
  const auto node = in_flight_.extract(batch_id);
  if (node.empty()) throw std::logic_error("AdmissionCore: completing unknown batch");

  int finished = 0;
  for (const sched::BatchItem& item : node.mapped()) {
    Entry& e = entry(item.seq);
    Sequence& s = *e.seq;

    if (item.phase == sched::Phase::kDecode && hooks != nullptr && hooks->verify) {
      // Speculative retirement: the step fed 1 + spec_tokens rows through the
      // pipeline; the hook reports how many tokens leave it (accepted prefix
      // plus the corrected/bonus token). Rejected rows roll back out of the
      // decode pool so their blocks are reusable immediately.
      VerifyOutcome outcome = hooks->verify(s, item.spec_tokens);
      int emitted = std::clamp(outcome.emitted, 1, 1 + item.spec_tokens);
      emitted = std::min(emitted, s.output_len() - s.generated());
      const int accepted = std::min(emitted - 1, item.spec_tokens);
      if (!outcome.tokens.empty()) {
        if (static_cast<int>(outcome.tokens.size()) < emitted)
          throw std::logic_error("AdmissionCore: verify outcome short of emitted tokens");
        e.tokens.insert(e.tokens.end(), outcome.tokens.begin(),
                        outcome.tokens.begin() + emitted);
      }
      const bool done = s.on_decode_completed(now, emitted);
      if (done) {
        decode_kv().free_seq(s.id());
        decoding_.erase(std::find(decoding_.begin(), decoding_.end(), &s));
        ++finished;
      } else if (1 + item.spec_tokens > emitted) {
        const std::int64_t freed =
            decode_kv().rollback(s.id(), 1 + item.spec_tokens - emitted);
        if (cfg_.obs != nullptr && freed > 0)
          cfg_.obs->spec().rollback_blocks->inc(freed);
      }
      if (cfg_.obs != nullptr) {
        auto& sp = cfg_.obs->spec();
        sp.tokens_proposed->inc(item.spec_tokens);
        sp.tokens_accepted->inc(accepted);
        sp.tokens_rejected->inc(item.spec_tokens - accepted);
        if (item.spec_tokens > 0) {
          sp.acceptance_rate->observe(static_cast<double>(accepted) / item.spec_tokens);
          cfg_.obs->tracer().instant(cfg_.trace_track, "spec.verify",
                                     {{"seq", static_cast<double>(s.id())},
                                      {"proposed", static_cast<double>(item.spec_tokens)},
                                      {"accepted", static_cast<double>(accepted)}});
        }
        if (done) {
          auto& m = cfg_.obs->serving();
          m.requests_completed->inc();
          m.ttft_seconds->observe(s.ttft());
          m.tpot_seconds->observe(s.tpot());
        }
      }
      if (hooks->on_token) {
        for (int i = 0; i < emitted; ++i) {
          const kv::TokenId token =
              i < static_cast<int>(outcome.tokens.size()) ? outcome.tokens[i] : -1;
          hooks->on_token(s, token, done && i == emitted - 1);
        }
      }
      continue;
    }

    const bool samples_token =
        item.phase == sched::Phase::kDecode || item.last_prefill_chunk;
    kv::TokenId token = -1;
    if (samples_token && hooks != nullptr && hooks->sample) {
      token = hooks->sample(s);
      e.tokens.push_back(token);
    }

    bool done = false;
    if (item.phase == sched::Phase::kDecode) {
      done = s.on_decode_completed(now);
      if (done) {
        decode_kv().free_seq(s.id());
        decoding_.erase(std::find(decoding_.begin(), decoding_.end(), &s));
      } else if (item.spec_tokens > 0) {
        // Speculative rows scheduled but retired without a verifier (no
        // verify hook): drop them so the KV row count stays one past context.
        decode_kv().rollback(s.id(), item.spec_tokens);
      }
    } else {
      const bool prompt_done = s.on_chunk_completed(item.last_prefill_chunk, now);
      if (prompt_done) {
        if (cfg_.prefix_caching && !e.tokens.empty()) {
          const auto target = static_cast<std::size_t>(s.prefill_target());
          prefill_kv().register_prefix(item.seq, {e.tokens.data(), target});
        }
        const auto it = std::find(waiting_.begin(), waiting_.end(), &s);
        if (it != waiting_.end()) waiting_.erase(it);
        if (s.state() == SeqState::kFinished) {
          prefill_kv().free_seq(s.id());
          done = true;
        } else if (on_prompt_ready_) {
          // Disaggregated: the adapter ships the KV cache, then enter_decode().
          on_prompt_ready_(&s);
        } else {
          decoding_.push_back(&s);
        }
      }
    }
    if (done) {
      ++finished;
      if (cfg_.obs != nullptr) {
        auto& m = cfg_.obs->serving();
        m.requests_completed->inc();
        m.ttft_seconds->observe(s.ttft());
        m.tpot_seconds->observe(s.tpot());
      }
    }
    if (samples_token && hooks != nullptr && hooks->on_token) hooks->on_token(s, token, done);
  }
  return finished;
}

bool AdmissionCore::reset_stalled_prefill() {
  for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
    Sequence* cand = *it;
    if (cand == waiting_.front()) continue;  // keep the head's progress
    if (cand->outstanding_chunks() > 0 || cand->scheduled_prefill() == 0) continue;
    prefill_kv().free_seq(cand->id());
    cand->reset_prefill_progress();
    ++preemptions_;
    if (cfg_.obs != nullptr) {
      cfg_.obs->serving().stalled_prefill_resets->inc();
      cfg_.obs->tracer().instant(cfg_.trace_track, "stalled_prefill_reset",
                                 {{"seq", static_cast<double>(cand->id())}});
    }
    GLLM_LOG_DEBUG("reset stalled prefill of seq " << cand->id());
    return true;
  }
  return false;
}

int AdmissionCore::recover_all() {
  // Discard the in-flight ledger: those micro-batches died inside the
  // pipeline and will never complete.
  in_flight_.clear();

  // Rebuild the waiting queue deterministically: decoding sequences were all
  // admitted before anything still waiting (completion order is admission
  // order here), so they re-enter ahead of the old waiting set.
  std::deque<Sequence*> waiting;
  int folded = 0;
  for (Sequence* s : decoding_) {
    s->fold_back();
    waiting.push_back(s);
    ++folded;
  }
  decoding_.clear();
  for (Sequence* s : waiting_) {
    // A waiting sequence that never got a chunk scheduled lost nothing —
    // don't charge its failure budget for a crash it wasn't part of.
    if (s->scheduled_prefill() > 0 || s->generated() > 0 || s->in_flight()) {
      s->fold_back();
      ++folded;
    }
    waiting.push_back(s);
  }
  waiting_ = std::move(waiting);
  preemptions_ += folded;

  // Fresh KV pools: every page table referenced worker-side KV that no longer
  // exists, and cached prefixes point at the same dead blocks.
  prefill_kv_ = std::make_unique<kv::KvManager>(cfg_.kv_capacity_tokens,
                                                cfg_.kv_block_size, cfg_.prefix_caching);
  if (decode_kv_ != nullptr)
    decode_kv_ = std::make_unique<kv::KvManager>(cfg_.decode_kv_capacity_tokens,
                                                 cfg_.kv_block_size, false);

  if (cfg_.obs != nullptr && folded > 0) {
    cfg_.obs->fault().requests_folded->inc(folded);
    cfg_.obs->tracer().instant(cfg_.trace_track, "fault.fold_back",
                               {{"folded", static_cast<double>(folded)}});
  }
  return folded;
}

void AdmissionCore::abort_sequence(kv::SeqId id) {
  Sequence& s = seq(id);
  if (s.state() == SeqState::kFinished || s.state() == SeqState::kAborted)
    throw std::logic_error("AdmissionCore: aborting a terminal sequence");
  if (s.in_flight())
    throw std::logic_error("AdmissionCore: aborting an in-flight sequence");
  const auto wit = std::find(waiting_.begin(), waiting_.end(), &s);
  if (wit != waiting_.end()) waiting_.erase(wit);
  const auto dit = std::find(decoding_.begin(), decoding_.end(), &s);
  if (dit != decoding_.end()) decoding_.erase(dit);
  prefill_kv().free_seq(id);
  if (split()) decode_kv().free_seq(id);
  s.abort();
  // (gllm_fault_requests_failed_total is counted where the failure record is
  // written — the service layer — so rejections and aborts share one counter.)
  if (cfg_.obs != nullptr) {
    cfg_.obs->tracer().instant(cfg_.trace_track, "fault.abort",
                               {{"seq", static_cast<double>(id)}});
  }
}

void AdmissionCore::collect_requests(RunResult& result) const {
  result.requests.reserve(result.requests.size() + seqs_.size());
  for (const auto& [id, e] : seqs_) {
    const Sequence& s = *e.seq;
    RequestMetrics m;
    m.id = id;
    m.arrival = s.arrival();
    m.prompt_len = s.prompt_len();
    m.output_len = s.generated();
    m.preemptions = s.preemptions();
    m.completed = s.state() == SeqState::kFinished;
    m.scheduled_chunks = e.chunks;
    if (m.completed) {
      m.ttft = s.ttft();
      m.e2e = s.e2e_latency();
      m.tpot = s.tpot();
      result.end_time = std::max(result.end_time, s.finish_time());
    } else {
      GLLM_LOG_WARN("request " << id << " did not complete (state "
                               << static_cast<int>(s.state()) << ")");
    }
    result.requests.push_back(std::move(m));
  }
  std::sort(result.requests.begin(), result.requests.end(),
            [](const RequestMetrics& a, const RequestMetrics& b) { return a.id < b.id; });
  result.preemptions = preemptions_;
}

void AdmissionCore::for_each_sequence(
    const std::function<void(const Sequence&)>& fn) const {
  for (const auto& [id, e] : seqs_) fn(*e.seq);
}

}  // namespace gllm::engine
