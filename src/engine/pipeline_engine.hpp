#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/config.hpp"
#include "engine/metrics.hpp"
#include "engine/sequence.hpp"
#include "model/cost.hpp"
#include "model/partition.hpp"
#include "sched/types.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace gllm::engine {

/// Discrete-event pipeline-parallel serving engine.
///
/// Mechanics (mirroring the gLLM runtime of paper §3.3):
///  * A driver invokes the scheduler whenever stage 0 is idle and fewer than
///    `pp` micro-batches are in flight (inter-batch dependency: concurrency
///    is bounded by pipeline depth).
///  * A micro-batch occupies each stage for the cost model's forward time;
///    between stages its activations cross the corresponding interconnect
///    link. Pipeline bubbles are *emergent*: they appear exactly when
///    consecutive micro-batches have unequal stage times.
///  * Sequences are locked while in flight — a decode step cannot be
///    rescheduled until its sampled token returns from the last stage, which
///    is why decode distribution across micro-batches (eq. 4) matters.
///  * KV allocation failures trigger vLLM-style recompute preemption of the
///    youngest idle decoding sequence.
///
/// The engine is policy-agnostic: any sched::IScheduler plugs in, which is
/// how the vLLM baseline (Sarathi policy + serialized runtime), SGLang
/// baseline (pp=1/tp=N) and all gLLM ablation variants are expressed.
class PipelineEngine {
 public:
  PipelineEngine(EngineConfig cfg, std::shared_ptr<sched::IScheduler> scheduler);

  /// Simulate serving the whole trace; returns when every request has
  /// completed (or cannot make progress, in which case the stragglers are
  /// reported with completed=false).
  RunResult run(const workload::Trace& trace);

  const EngineConfig& config() const { return cfg_; }
  std::int64_t kv_capacity_tokens() const { return kv_capacity_; }
  const model::CostModel& cost_model() const { return cost_; }
  const model::PartitionPlan& partition() const { return plan_; }

 private:
  struct Batch {
    std::uint64_t id = 0;
    sched::MicroBatchPlan plan;
    std::vector<model::WorkItem> work;
    int total_new_tokens = 0;
  };

  // --- event handlers -----------------------------------------------------
  void on_arrival(Sequence* seq);
  void try_schedule();
  void enter_stage(std::uint64_t batch_id, int stage);
  void on_stage_done(std::uint64_t batch_id, int stage);
  void arrive_at_stage(std::uint64_t batch_id, int stage);
  void pump_stage(int stage);
  void complete_batch(std::uint64_t batch_id);

  // --- helpers --------------------------------------------------------------
  sched::ScheduleContext build_context(int cohort) const;
  /// Materialise a plan: allocate KV (with preemption fallback), lock
  /// sequences, build cost-model work items. Items that cannot get KV are
  /// dropped. Returns nullptr if everything was dropped.
  Batch* materialize(sched::MicroBatchPlan plan);
  bool allocate_with_preemption(kv::SeqId seq, std::int64_t tokens,
                                const std::vector<kv::SeqId>& untouchable);
  /// Break a KV deadlock among half-admitted prompts: reset the youngest
  /// idle, partially-prefilled waiting sequence (vLLM recomputes chunked
  /// prefills the same way). Returns true if progress was freed.
  bool reset_stalled_prefill();
  double stage_forward_time(const Batch& batch, int stage) const;
  double pp_hop_time(const Batch& batch, int from_stage) const;
  Sequence& seq_ref(kv::SeqId id);
  void finish_sequence(Sequence& seq);

  // --- immutable configuration ---------------------------------------------
  EngineConfig cfg_;
  std::shared_ptr<sched::IScheduler> scheduler_;
  model::PartitionPlan plan_;
  model::CostModel cost_;
  std::int64_t kv_capacity_ = 0;

  // --- per-run state ---------------------------------------------------------
  sim::Simulator sim_;
  std::unique_ptr<kv::KvManager> kv_;
  std::unordered_map<kv::SeqId, std::unique_ptr<Sequence>> sequences_;
  std::deque<Sequence*> waiting_;     ///< FCFS; preempted re-enter at the front
  std::vector<Sequence*> decoding_;   ///< completion order (oldest first)
  std::vector<bool> stage_free_;
  std::vector<std::deque<std::uint64_t>> stage_queue_;
  std::unordered_map<std::uint64_t, Batch> batches_;
  std::uint64_t next_batch_id_ = 1;
  int in_flight_batches_ = 0;
  int next_cohort_ = 0;  ///< round-robin virtual engine (cohort_pinning only)

  // --- per-run metrics ---------------------------------------------------------
  std::vector<double> stage_busy_;
  std::vector<IterationSample> iterations_;
  std::vector<BusyInterval> busy_intervals_;
  std::int64_t preemptions_ = 0;
  std::int64_t sched_invocations_ = 0;
};

}  // namespace gllm::engine
