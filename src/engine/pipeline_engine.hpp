#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/admission_core.hpp"
#include "engine/config.hpp"
#include "engine/metrics.hpp"
#include "engine/sequence.hpp"
#include "model/cost.hpp"
#include "model/partition.hpp"
#include "sched/types.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace gllm::engine {

/// Discrete-event pipeline-parallel serving engine.
///
/// Mechanics (mirroring the gLLM runtime of paper §3.3):
///  * A driver invokes the scheduler whenever stage 0 is idle and fewer than
///    `pp` micro-batches are in flight (inter-batch dependency: concurrency
///    is bounded by pipeline depth).
///  * A micro-batch occupies each stage for the cost model's forward time;
///    between stages its activations cross the corresponding interconnect
///    link. Pipeline bubbles are *emergent*: they appear exactly when
///    consecutive micro-batches have unequal stage times.
///  * Sequences are locked while in flight — a decode step cannot be
///    rescheduled until its sampled token returns from the last stage, which
///    is why decode distribution across micro-batches (eq. 4) matters.
///  * KV allocation failures trigger vLLM-style recompute preemption of the
///    youngest idle decoding sequence.
///
/// The engine is policy-agnostic: any sched::IScheduler plugs in, which is
/// how the vLLM baseline (Sarathi policy + serialized runtime), SGLang
/// baseline (pp=1/tp=N) and all gLLM ablation variants are expressed.
///
/// All sequence-lifecycle/admission semantics live in engine::AdmissionCore —
/// this class only adds the simulated-time event flow, the stage-occupancy
/// model and the cohort-pinning variant.
class PipelineEngine {
 public:
  PipelineEngine(EngineConfig cfg, std::shared_ptr<sched::IScheduler> scheduler);

  /// Simulate serving the whole trace; returns when every request has
  /// completed (or cannot make progress, in which case the stragglers are
  /// reported with completed=false).
  RunResult run(const workload::Trace& trace);

  const EngineConfig& config() const { return cfg_; }
  std::int64_t kv_capacity_tokens() const { return kv_capacity_; }
  const model::CostModel& cost_model() const { return cost_; }
  const model::PartitionPlan& partition() const { return plan_; }

 private:
  /// Executor-side remainder of a materialised batch: the cost-model work.
  struct Batch {
    std::vector<model::WorkItem> work;
    int total_new_tokens = 0;
  };

  // --- event handlers -----------------------------------------------------
  void on_arrival(Sequence* seq);
  void try_schedule();
  void enter_stage(std::uint64_t batch_id, int stage);
  void on_stage_done(std::uint64_t batch_id, int stage);
  void arrive_at_stage(std::uint64_t batch_id, int stage);
  void pump_stage(int stage);
  void complete_batch(std::uint64_t batch_id);

  // --- helpers --------------------------------------------------------------
  double stage_forward_time(const Batch& batch, int stage) const;
  double pp_hop_time(const Batch& batch, int from_stage) const;

  // --- immutable configuration ---------------------------------------------
  EngineConfig cfg_;
  std::shared_ptr<sched::IScheduler> scheduler_;
  model::PartitionPlan plan_;
  model::CostModel cost_;
  std::int64_t kv_capacity_ = 0;

  // --- per-run state ---------------------------------------------------------
  sim::Simulator sim_;
  std::optional<AdmissionCore> core_;
  std::vector<bool> stage_free_;
  std::vector<std::deque<std::uint64_t>> stage_queue_;
  std::unordered_map<std::uint64_t, Batch> batches_;
  int next_cohort_ = 0;  ///< round-robin virtual engine (cohort_pinning only)

  // --- per-run metrics ---------------------------------------------------------
  std::vector<double> stage_busy_;
  std::vector<IterationSample> iterations_;
  std::vector<BusyInterval> busy_intervals_;
  std::int64_t sched_invocations_ = 0;
};

}  // namespace gllm::engine
