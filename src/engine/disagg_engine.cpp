#include "engine/disagg_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "hw/interconnect.hpp"
#include "util/log.hpp"

namespace gllm::engine {

void DisaggConfig::validate() const {
  model.validate();
  if (prefill_gpus <= 0 || decode_gpus <= 0)
    throw std::invalid_argument("DisaggConfig: both instances need GPUs");
  if (prefill_gpus + decode_gpus > cluster.total_gpus())
    throw std::invalid_argument("DisaggConfig: instance sizes exceed cluster GPUs");
  if (gpu_memory_util <= 0.0 || gpu_memory_util > 1.0)
    throw std::invalid_argument("DisaggConfig: gpu_memory_util must be in (0, 1]");
  if (prefill_chunk <= 0) throw std::invalid_argument("DisaggConfig: prefill_chunk <= 0");
}

DisaggEngine::DisaggEngine(DisaggConfig cfg)
    : cfg_(std::move(cfg)), cost_(cfg_.model, cfg_.cluster.gpu) {
  cfg_.validate();
  prefill_.plan = model::PartitionPlan(cfg_.model, cfg_.prefill_gpus);
  decode_.plan = model::PartitionPlan(cfg_.model, cfg_.decode_gpus);
  prefill_.kv_capacity =
      model::kv_token_capacity(prefill_.plan, cfg_.cluster.gpu, cfg_.gpu_memory_util);
  decode_.kv_capacity =
      model::kv_token_capacity(decode_.plan, cfg_.cluster.gpu, cfg_.gpu_memory_util);
  if (prefill_.kv_capacity < cfg_.kv_block_size || decode_.kv_capacity < cfg_.kv_block_size)
    throw std::invalid_argument("DisaggEngine: model does not fit on an instance");
  prefill_.first_gpu = 0;
  decode_.first_gpu = cfg_.prefill_gpus;
}

RunResult DisaggEngine::run(const workload::Trace& trace) {
  sim_ = sim::Simulator{};
  for (Instance* inst : {&prefill_, &decode_}) {
    inst->kv = std::make_unique<kv::KvManager>(inst->kv_capacity, cfg_.kv_block_size);
    const int stages = inst == &prefill_ ? cfg_.prefill_gpus : cfg_.decode_gpus;
    inst->stage_free.assign(static_cast<std::size_t>(stages), true);
    inst->stage_queue.assign(static_cast<std::size_t>(stages), {});
    inst->stage_busy.assign(static_cast<std::size_t>(stages), 0.0);
    inst->in_flight = 0;
  }
  sequences_.clear();
  waiting_.clear();
  transfer_wait_.clear();
  decoding_.clear();
  batches_.clear();
  next_batch_id_ = 1;
  iterations_.clear();
  preemptions_ = 0;
  sched_invocations_ = 0;

  double first_arrival = 0.0;
  bool any = false;
  for (const auto& spec : trace) {
    auto seq = std::make_unique<Sequence>(spec);
    Sequence* ptr = seq.get();
    if (!sequences_.emplace(spec.id, std::move(seq)).second)
      throw std::invalid_argument("DisaggEngine: duplicate request id");
    sim_.call_at(spec.arrival, [this, ptr] { on_arrival(ptr); });
    first_arrival = any ? std::min(first_arrival, spec.arrival) : spec.arrival;
    any = true;
  }
  sim_.run();

  RunResult result;
  result.start_time = first_arrival;
  result.end_time = first_arrival;
  result.stage_busy_seconds = prefill_.stage_busy;
  result.stage_busy_seconds.insert(result.stage_busy_seconds.end(),
                                   decode_.stage_busy.begin(), decode_.stage_busy.end());
  result.iterations = std::move(iterations_);
  result.preemptions = preemptions_;
  result.scheduler_invocations = sched_invocations_;
  result.kv = decode_.kv->stats();

  for (const auto& [id, seq] : sequences_) {
    RequestMetrics m;
    m.id = id;
    m.arrival = seq->arrival();
    m.prompt_len = seq->prompt_len();
    m.output_len = seq->generated();
    m.preemptions = seq->preemptions();
    m.completed = seq->state() == SeqState::kFinished;
    if (m.completed) {
      m.ttft = seq->ttft();
      m.e2e = seq->e2e_latency();
      m.tpot = seq->tpot();
      result.end_time = std::max(result.end_time, seq->finish_time());
    } else {
      GLLM_LOG_WARN("disagg: request " << id << " did not complete");
    }
    result.requests.push_back(m);
  }
  std::sort(result.requests.begin(), result.requests.end(),
            [](const RequestMetrics& a, const RequestMetrics& b) { return a.id < b.id; });
  return result;
}

void DisaggEngine::on_arrival(Sequence* seq) {
  const std::int64_t needed = seq->prompt_len() + seq->output_len();
  if (seq->prompt_len() > prefill_.kv_capacity || needed > decode_.kv_capacity) {
    seq->abort();
    GLLM_LOG_WARN("disagg: rejecting oversized request " << seq->id());
    return;
  }
  waiting_.push_back(seq);
  try_schedule_prefill();
}

void DisaggEngine::try_schedule_prefill() {
  while (prefill_.stage_free[0] && prefill_.in_flight < cfg_.prefill_gpus) {
    ++sched_invocations_;
    Batch batch;
    batch.id = next_batch_id_;
    std::int64_t budget =
        std::min<std::int64_t>(cfg_.prefill_chunk, prefill_.kv->free_token_capacity());
    for (Sequence* seq : waiting_) {
      if (budget <= 0) break;
      if (seq->outstanding_chunks() > 0 || seq->remaining_prefill() <= 0) continue;
      const int chunk =
          static_cast<int>(std::min<std::int64_t>(seq->remaining_prefill(), budget));
      const std::int64_t ctx = prefill_.kv->seq_tokens(seq->id());
      if (!prefill_.kv->allocate(seq->id(), chunk)) break;
      seq->on_chunk_scheduled(chunk);
      batch.seqs.push_back(seq->id());
      batch.last_chunk.push_back(seq->remaining_prefill() == 0);
      batch.work.push_back(
          model::WorkItem{chunk, ctx, true, seq->remaining_prefill() == 0});
      batch.total_new_tokens += chunk;
      budget -= chunk;
    }
    if (batch.seqs.empty()) {
      // Same half-admitted-prompt deadlock hazard as the unified engine.
      if (prefill_.in_flight == 0) {
        for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
          Sequence* cand = *it;
          if (cand == waiting_.front() || cand->outstanding_chunks() > 0 ||
              cand->scheduled_prefill() == 0)
            continue;
          prefill_.kv->free_seq(cand->id());
          cand->reset_prefill_progress();
          ++preemptions_;
          return try_schedule_prefill();
        }
      }
      return;
    }
    ++next_batch_id_;
    ++prefill_.in_flight;
    if (cfg_.record_iterations) {
      iterations_.push_back(IterationSample{sim_.now(), batch.total_new_tokens, 0,
                                            prefill_.kv->free_rate(), 0.0});
    }
    const std::uint64_t id = batch.id;
    batches_.emplace(id, std::move(batch));
    enter_stage(prefill_, id, 0);
  }
}

void DisaggEngine::try_schedule_decode() {
  while (decode_.stage_free[0] && decode_.in_flight < cfg_.decode_gpus) {
    ++sched_invocations_;
    const auto depth = static_cast<std::int64_t>(cfg_.decode_gpus);
    const std::int64_t share =
        (static_cast<std::int64_t>(decoding_.size()) + depth - 1) / depth;
    Batch batch;
    batch.id = next_batch_id_;
    std::int64_t taken = 0;
    // Iterate a snapshot: preemption below erases from decoding_.
    const std::vector<Sequence*> candidates(decoding_.begin(), decoding_.end());
    for (Sequence* seq : candidates) {
      if (taken >= share) break;
      if (seq->decode_in_flight()) continue;
      // The sequence may have been preempted while handling an earlier item.
      if (std::find(decoding_.begin(), decoding_.end(), seq) == decoding_.end()) continue;
      const std::int64_t ctx = decode_.kv->seq_tokens(seq->id());
      if (!decode_.kv->allocate(seq->id(), 1)) {
        // Preempt the youngest idle decode (full recompute via prefill pool).
        Sequence* victim = nullptr;
        for (auto it = decoding_.rbegin(); it != decoding_.rend(); ++it) {
          Sequence* cand = *it;
          if (cand->decode_in_flight() || cand == seq) continue;
          if (std::find(batch.seqs.begin(), batch.seqs.end(), cand->id()) !=
              batch.seqs.end())
            continue;
          victim = cand;
          break;
        }
        if (victim == nullptr) continue;
        decode_.kv->free_seq(victim->id());
        victim->preempt(sim_.now());
        decoding_.erase(std::find(decoding_.begin(), decoding_.end(), victim));
        waiting_.push_front(victim);
        ++preemptions_;
        if (!decode_.kv->allocate(seq->id(), 1)) continue;
      }
      seq->on_decode_scheduled();
      batch.seqs.push_back(seq->id());
      batch.last_chunk.push_back(false);
      batch.work.push_back(model::WorkItem{1, ctx, false, true});
      batch.total_new_tokens += 1;
      ++taken;
    }
    if (batch.seqs.empty()) return;
    ++next_batch_id_;
    ++decode_.in_flight;
    if (cfg_.record_iterations) {
      iterations_.push_back(IterationSample{sim_.now(), 0, batch.total_new_tokens,
                                            decode_.kv->free_rate(), 0.0});
    }
    const std::uint64_t id = batch.id;
    batches_.emplace(id, std::move(batch));
    enter_stage(decode_, id, 0);
  }
}

double DisaggEngine::stage_time(const Instance& inst, const Batch& batch, int stage,
                                bool charge_sched) const {
  double t = cost_.stage_time(inst.plan.stage(stage), batch.work);
  t *= 1.0 + cfg_.runtime.serial_cpu_fraction;
  if (charge_sched) t += cfg_.runtime.sched_overhead;
  return t;
}

void DisaggEngine::enter_stage(Instance& inst, std::uint64_t batch_id, int stage) {
  if (!inst.stage_free[static_cast<std::size_t>(stage)])
    throw std::logic_error("DisaggEngine: entering a busy stage");
  inst.stage_free[static_cast<std::size_t>(stage)] = false;
  const Batch& batch = batches_.at(batch_id);
  const double dur = stage_time(inst, batch, stage, stage == 0);
  inst.stage_busy[static_cast<std::size_t>(stage)] += dur;
  const bool is_prefill = &inst == &prefill_;
  sim_.call_in(dur,
               [this, is_prefill, batch_id, stage] { on_stage_done(is_prefill, batch_id, stage); });
}

void DisaggEngine::on_stage_done(bool is_prefill, std::uint64_t batch_id, int stage) {
  Instance& inst = instance(is_prefill);
  inst.stage_free[static_cast<std::size_t>(stage)] = true;

  const int stages = static_cast<int>(inst.stage_free.size());
  if (stage + 1 < stages) {
    const Batch& batch = batches_.at(batch_id);
    const int from_gpu = inst.first_gpu + stage;
    const hw::CommModel comm(cfg_.cluster.link_between(from_gpu, from_gpu + 1));
    const double hop = comm.p2p_time(cost_.activation_bytes(batch.total_new_tokens));
    sim_.call_in(hop, [this, is_prefill, batch_id, stage] {
      Instance& target = instance(is_prefill);
      target.stage_queue[static_cast<std::size_t>(stage + 1)].push_back(batch_id);
      if (target.stage_free[static_cast<std::size_t>(stage + 1)]) {
        const std::uint64_t next = target.stage_queue[static_cast<std::size_t>(stage + 1)].front();
        target.stage_queue[static_cast<std::size_t>(stage + 1)].pop_front();
        enter_stage(target, next, stage + 1);
      }
    });
  } else if (is_prefill) {
    complete_prefill_batch(batch_id);
  } else {
    complete_decode_batch(batch_id);
  }

  // Pump this stage's queue, then admit fresh work at stage 0.
  auto& queue = inst.stage_queue[static_cast<std::size_t>(stage)];
  if (!queue.empty()) {
    const std::uint64_t next = queue.front();
    queue.pop_front();
    enter_stage(inst, next, stage);
  }
  if (is_prefill) {
    try_schedule_prefill();
  } else {
    try_schedule_decode();
  }
}

void DisaggEngine::complete_prefill_batch(std::uint64_t batch_id) {
  const auto node = batches_.extract(batch_id);
  const Batch& batch = node.mapped();
  for (std::size_t i = 0; i < batch.seqs.size(); ++i) {
    Sequence& seq = *sequences_.at(batch.seqs[i]);
    const bool prompt_done = seq.on_chunk_completed(batch.last_chunk[i], sim_.now());
    if (!prompt_done) continue;
    waiting_.erase(std::find(waiting_.begin(), waiting_.end(), &seq));
    if (seq.state() == SeqState::kFinished) {
      prefill_.kv->free_seq(seq.id());
      continue;
    }
    // Ship the KV cache to the decode instance (paper: "different nodes
    // connected via KV cache transmission").
    Sequence* ptr = &seq;
    transfer_wait_.push_back(ptr);
  }
  --prefill_.in_flight;
  pump_transfers();
  try_schedule_prefill();
}

void DisaggEngine::pump_transfers() {
  auto it = transfer_wait_.begin();
  while (it != transfer_wait_.end()) {
    Sequence* seq = *it;
    const std::int64_t tokens = prefill_.kv->seq_tokens(seq->id());
    if (!decode_.kv->can_allocate(seq->id(), tokens)) {
      ++it;
      continue;
    }
    decode_.kv->allocate(seq->id(), tokens);
    const double bytes =
        static_cast<double>(cfg_.model.kv_bytes_per_token()) * static_cast<double>(tokens);
    const hw::CommModel comm(
        cfg_.cluster.link_between(cfg_.prefill_gpus - 1, cfg_.prefill_gpus));
    sim_.call_in(comm.p2p_time(bytes), [this, seq] { on_transfer_done(seq); });
    it = transfer_wait_.erase(it);
  }
}

void DisaggEngine::on_transfer_done(Sequence* seq) {
  prefill_.kv->free_seq(seq->id());
  decoding_.push_back(seq);
  try_schedule_decode();
  try_schedule_prefill();  // freed prefill KV may unblock admission
}

void DisaggEngine::complete_decode_batch(std::uint64_t batch_id) {
  const auto node = batches_.extract(batch_id);
  const Batch& batch = node.mapped();
  for (const kv::SeqId id : batch.seqs) {
    Sequence& seq = *sequences_.at(id);
    if (seq.on_decode_completed(sim_.now())) {
      decode_.kv->free_seq(id);
      decoding_.erase(std::find(decoding_.begin(), decoding_.end(), &seq));
    }
  }
  --decode_.in_flight;
  try_schedule_decode();
  // Freed decode KV may admit queued transfers.
  pump_transfers();
}

}  // namespace gllm::engine
