#include "engine/disagg_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "hw/interconnect.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::engine {

void DisaggConfig::validate() const {
  model.validate();
  if (prefill_gpus <= 0 || decode_gpus <= 0)
    throw std::invalid_argument("DisaggConfig: both instances need GPUs");
  if (tp <= 0) throw std::invalid_argument("DisaggConfig: tp must be > 0");
  if ((prefill_gpus + decode_gpus) * tp > cluster.total_gpus())
    throw std::invalid_argument("DisaggConfig: instance sizes exceed cluster GPUs");
  model::validate_tp(model, tp);
  if (gpu_memory_util <= 0.0 || gpu_memory_util > 1.0)
    throw std::invalid_argument("DisaggConfig: gpu_memory_util must be in (0, 1]");
  if (prefill_chunk <= 0) throw std::invalid_argument("DisaggConfig: prefill_chunk <= 0");
}

DisaggEngine::DisaggEngine(DisaggConfig cfg)
    : cfg_(std::move(cfg)), cost_(cfg_.model, cfg_.cluster.gpu) {
  cfg_.validate();
  prefill_.plan = model::PartitionPlan(cfg_.model, cfg_.prefill_gpus);
  decode_.plan = model::PartitionPlan(cfg_.model, cfg_.decode_gpus);
  prefill_.kv_capacity = model::kv_token_capacity(prefill_.plan, cfg_.cluster.gpu,
                                                  cfg_.gpu_memory_util, cfg_.tp);
  decode_.kv_capacity = model::kv_token_capacity(decode_.plan, cfg_.cluster.gpu,
                                                 cfg_.gpu_memory_util, cfg_.tp);
  if (prefill_.kv_capacity < cfg_.kv_block_size || decode_.kv_capacity < cfg_.kv_block_size)
    throw std::invalid_argument("DisaggEngine: model does not fit on an instance");
  prefill_.first_gpu = 0;
  decode_.first_gpu = cfg_.prefill_gpus;
}

RunResult DisaggEngine::run(const workload::Trace& trace) {
  sim_ = sim::Simulator{};
  AdmissionConfig admission;
  admission.kv_capacity_tokens = prefill_.kv_capacity;
  admission.decode_kv_capacity_tokens = decode_.kv_capacity;
  admission.kv_block_size = cfg_.kv_block_size;
  admission.pipeline_depth = cfg_.decode_gpus;
  admission.obs = cfg_.obs;
  admission.trace_track = cfg_.prefill_gpus + cfg_.decode_gpus;
  core_.emplace(admission);
  if (cfg_.obs != nullptr) {
    cfg_.obs->tracer().set_clock([this] { return sim_.now(); });
    for (int s = 0; s < cfg_.prefill_gpus; ++s)
      cfg_.obs->tracer().set_track_name(s, "prefill stage " + std::to_string(s));
    for (int s = 0; s < cfg_.decode_gpus; ++s)
      cfg_.obs->tracer().set_track_name(cfg_.prefill_gpus + s,
                                        "decode stage " + std::to_string(s));
    cfg_.obs->tracer().set_track_name(cfg_.prefill_gpus + cfg_.decode_gpus, "driver");
  }
  // Finished prompts queue for a KV transfer instead of entering decode.
  core_->set_prompt_ready_hook([this](Sequence* seq) { transfer_wait_.push_back(seq); });
  for (Instance* inst : {&prefill_, &decode_}) {
    const int stages = inst == &prefill_ ? cfg_.prefill_gpus : cfg_.decode_gpus;
    inst->stage_free.assign(static_cast<std::size_t>(stages), true);
    inst->stage_queue.assign(static_cast<std::size_t>(stages), {});
    inst->stage_busy.assign(static_cast<std::size_t>(stages), 0.0);
    inst->in_flight = 0;
  }
  transfer_wait_.clear();
  batches_.clear();
  iterations_.clear();
  sched_invocations_ = 0;

  double first_arrival = 0.0;
  bool any = false;
  for (const auto& spec : trace) {
    Sequence* ptr;
    try {
      ptr = core_->add(spec);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("DisaggEngine: duplicate request id");
    }
    sim_.call_at(spec.arrival, [this, ptr] { on_arrival(ptr); });
    first_arrival = any ? std::min(first_arrival, spec.arrival) : spec.arrival;
    any = true;
  }
  sim_.run();

  RunResult result;
  result.start_time = first_arrival;
  result.end_time = first_arrival;
  result.stage_busy_seconds = prefill_.stage_busy;
  result.stage_busy_seconds.insert(result.stage_busy_seconds.end(),
                                   decode_.stage_busy.begin(), decode_.stage_busy.end());
  result.iterations = std::move(iterations_);
  result.scheduler_invocations = sched_invocations_;
  result.kv = core_->decode_kv().stats();
  core_->collect_requests(result);
  return result;
}

void DisaggEngine::on_arrival(Sequence* seq) {
  const std::int64_t needed = seq->prompt_len() + seq->output_len();
  if (seq->prompt_len() > prefill_.kv_capacity || needed > decode_.kv_capacity) {
    seq->abort();
    GLLM_LOG_WARN("disagg: rejecting oversized request " << seq->id());
    return;
  }
  core_->enqueue(seq);
  try_schedule_prefill();
}

void DisaggEngine::try_schedule_prefill() {
  while (prefill_.stage_free[0] && prefill_.in_flight < cfg_.prefill_gpus) {
    ++sched_invocations_;
    // Pack waiting prompts into one chunked-prefill batch, FCFS, bounded by
    // the chunk budget and the prefill pool's free space.
    sched::MicroBatchPlan plan;
    std::int64_t budget = std::min<std::int64_t>(
        cfg_.prefill_chunk, core_->prefill_kv().free_token_capacity());
    for (Sequence* seq : core_->waiting()) {
      if (budget <= 0) break;
      if (seq->outstanding_chunks() > 0 || seq->remaining_prefill() <= 0) continue;
      const int chunk =
          static_cast<int>(std::min<std::int64_t>(seq->remaining_prefill(), budget));
      plan.items.push_back(sched::BatchItem{seq->id(), sched::Phase::kPrefill, chunk});
      budget -= chunk;
    }

    const AdmittedBatch admitted = core_->materialize(plan, sim_.now());
    if (admitted.empty()) {
      // Same half-admitted-prompt deadlock hazard as the unified engine.
      if (prefill_.in_flight == 0 && core_->reset_stalled_prefill()) continue;
      return;
    }
    ++prefill_.in_flight;
    if (cfg_.record_iterations) {
      iterations_.push_back(IterationSample{sim_.now(), admitted.total_new_tokens(), 0,
                                            core_->prefill_kv().free_rate(), 0.0});
    }
    batches_.emplace(admitted.id, Batch{admitted.work, admitted.total_new_tokens()});
    enter_stage(prefill_, admitted.id, 0);
  }
}

void DisaggEngine::try_schedule_decode() {
  while (decode_.stage_free[0] && decode_.in_flight < cfg_.decode_gpus) {
    ++sched_invocations_;
    // Spread runnable decodes evenly over the decode pipeline's depth.
    const auto depth = static_cast<std::int64_t>(cfg_.decode_gpus);
    const std::int64_t share =
        (static_cast<std::int64_t>(core_->decoding().size()) + depth - 1) / depth;
    sched::MicroBatchPlan plan;
    for (Sequence* seq : core_->decoding()) {
      if (static_cast<std::int64_t>(plan.items.size()) >= share) break;
      if (seq->in_flight()) continue;
      plan.items.push_back(sched::BatchItem{seq->id(), sched::Phase::kDecode, 1});
    }

    const AdmittedBatch admitted = core_->materialize(plan, sim_.now());
    if (admitted.empty()) return;
    ++decode_.in_flight;
    if (cfg_.record_iterations) {
      iterations_.push_back(IterationSample{sim_.now(), 0, admitted.total_new_tokens(),
                                            core_->decode_kv().free_rate(), 0.0});
    }
    batches_.emplace(admitted.id, Batch{admitted.work, admitted.total_new_tokens()});
    enter_stage(decode_, admitted.id, 0);
  }
}

double DisaggEngine::stage_time(const Instance& inst, const Batch& batch, int stage,
                                bool charge_sched) const {
  // `first_gpu` is the instance's first stage slot; each stage occupies `tp`
  // consecutive devices, so device indices scale by tp.
  const int first_dev = (inst.first_gpu + stage) * cfg_.tp;
  const hw::CommModel comm(
      cfg_.tp > 1 ? cfg_.cluster.link_between(first_dev, first_dev + cfg_.tp - 1)
                  : hw::links::loopback());
  double t = cost_.stage_time(inst.plan.stage(stage), batch.work, cfg_.tp, comm);
  t *= 1.0 + cfg_.runtime.serial_cpu_fraction;
  if (charge_sched) t += cfg_.runtime.sched_overhead;
  return t;
}

void DisaggEngine::enter_stage(Instance& inst, std::uint64_t batch_id, int stage) {
  if (!inst.stage_free[static_cast<std::size_t>(stage)])
    throw std::logic_error("DisaggEngine: entering a busy stage");
  inst.stage_free[static_cast<std::size_t>(stage)] = false;
  const Batch& batch = batches_.at(batch_id);
  const double dur = stage_time(inst, batch, stage, stage == 0);
  inst.stage_busy[static_cast<std::size_t>(stage)] += dur;
  const bool is_prefill = &inst == &prefill_;
  if (cfg_.obs != nullptr)
    cfg_.obs->tracer().begin(inst.first_gpu + stage, "forward",
                             {{"batch", static_cast<double>(batch_id)},
                              {"tokens", static_cast<double>(batch.total_new_tokens)}});
  sim_.call_in(dur,
               [this, is_prefill, batch_id, stage] { on_stage_done(is_prefill, batch_id, stage); });
}

void DisaggEngine::on_stage_done(bool is_prefill, std::uint64_t batch_id, int stage) {
  Instance& inst = instance(is_prefill);
  inst.stage_free[static_cast<std::size_t>(stage)] = true;
  if (cfg_.obs != nullptr) cfg_.obs->tracer().end(inst.first_gpu + stage, "forward");

  const int stages = static_cast<int>(inst.stage_free.size());
  if (stage + 1 < stages) {
    const Batch& batch = batches_.at(batch_id);
    const int from_dev = (inst.first_gpu + stage) * cfg_.tp;
    const int to_dev = (inst.first_gpu + stage + 1) * cfg_.tp;
    const hw::CommModel comm(cfg_.cluster.link_between(from_dev, to_dev));
    const double hop = comm.p2p_time(cost_.activation_bytes(batch.total_new_tokens));
    sim_.call_in(hop, [this, is_prefill, batch_id, stage] {
      Instance& target = instance(is_prefill);
      target.stage_queue[static_cast<std::size_t>(stage + 1)].push_back(batch_id);
      if (target.stage_free[static_cast<std::size_t>(stage + 1)]) {
        const std::uint64_t next = target.stage_queue[static_cast<std::size_t>(stage + 1)].front();
        target.stage_queue[static_cast<std::size_t>(stage + 1)].pop_front();
        enter_stage(target, next, stage + 1);
      }
    });
  } else if (is_prefill) {
    complete_prefill_batch(batch_id);
  } else {
    complete_decode_batch(batch_id);
  }

  // Pump this stage's queue, then admit fresh work at stage 0.
  auto& queue = inst.stage_queue[static_cast<std::size_t>(stage)];
  if (!queue.empty()) {
    const std::uint64_t next = queue.front();
    queue.pop_front();
    enter_stage(inst, next, stage);
  }
  if (is_prefill) {
    try_schedule_prefill();
  } else {
    try_schedule_decode();
  }
}

void DisaggEngine::complete_prefill_batch(std::uint64_t batch_id) {
  if (batches_.erase(batch_id) == 0)
    throw std::logic_error("DisaggEngine: completing unknown batch");
  core_->complete(batch_id, sim_.now());  // finished prompts hit the transfer hook
  --prefill_.in_flight;
  pump_transfers();
  try_schedule_prefill();
}

void DisaggEngine::pump_transfers() {
  auto it = transfer_wait_.begin();
  while (it != transfer_wait_.end()) {
    Sequence* seq = *it;
    const std::int64_t tokens = core_->prefill_kv().seq_tokens(seq->id());
    if (!core_->decode_kv().can_allocate(seq->id(), tokens)) {
      ++it;
      continue;
    }
    core_->decode_kv().allocate(seq->id(), tokens);
    const double bytes =
        static_cast<double>(cfg_.model.kv_bytes_per_token()) * static_cast<double>(tokens);
    const hw::CommModel comm(cfg_.cluster.link_between(cfg_.prefill_gpus * cfg_.tp - 1,
                                                       cfg_.prefill_gpus * cfg_.tp));
    sim_.call_in(comm.p2p_time(bytes), [this, seq] { on_transfer_done(seq); });
    it = transfer_wait_.erase(it);
  }
}

void DisaggEngine::on_transfer_done(Sequence* seq) {
  core_->prefill_kv().free_seq(seq->id());
  core_->enter_decode(seq);
  try_schedule_decode();
  try_schedule_prefill();  // freed prefill KV may unblock admission
}

void DisaggEngine::complete_decode_batch(std::uint64_t batch_id) {
  if (batches_.erase(batch_id) == 0)
    throw std::logic_error("DisaggEngine: completing unknown batch");
  core_->complete(batch_id, sim_.now());
  --decode_.in_flight;
  try_schedule_decode();
  // Freed decode KV may admit queued transfers.
  pump_transfers();
}

}  // namespace gllm::engine
