#include "engine/pipeline_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::engine {

void EngineConfig::validate() const {
  model.validate();
  if (pp <= 0 || tp <= 0) throw std::invalid_argument("EngineConfig: pp/tp must be > 0");
  if (pp * tp > cluster.total_gpus())
    throw std::invalid_argument("EngineConfig: pp*tp exceeds cluster GPUs");
  model::validate_tp(model, tp);
  if (gpu_memory_util <= 0.0 || gpu_memory_util > 1.0)
    throw std::invalid_argument("EngineConfig: gpu_memory_util must be in (0, 1]");
  if (kv_block_size <= 0) throw std::invalid_argument("EngineConfig: block size must be > 0");
  if (spec_lookahead < 0)
    throw std::invalid_argument("EngineConfig: spec_lookahead must be >= 0");
  if (spec_acceptance < 0.0 || spec_acceptance > 1.0)
    throw std::invalid_argument("EngineConfig: spec_acceptance must be in [0, 1]");
}

PipelineEngine::PipelineEngine(EngineConfig cfg, std::shared_ptr<sched::IScheduler> scheduler)
    : cfg_(std::move(cfg)),
      scheduler_(std::move(scheduler)),
      plan_(cfg_.model, cfg_.pp),
      cost_(cfg_.model, cfg_.cluster.gpu) {
  cfg_.validate();
  if (!scheduler_) throw std::invalid_argument("PipelineEngine: scheduler required");
  kv_capacity_ = model::kv_token_capacity(plan_, cfg_.cluster.gpu, cfg_.gpu_memory_util,
                                          cfg_.tp);
  if (kv_capacity_ < cfg_.kv_block_size)
    throw std::invalid_argument("PipelineEngine: model does not fit (no KV capacity)");
}

RunResult PipelineEngine::run(const workload::Trace& trace) {
  // Reset per-run state.
  sim_ = sim::Simulator{};
  AdmissionConfig admission;
  admission.kv_capacity_tokens = kv_capacity_;
  admission.kv_block_size = cfg_.kv_block_size;
  admission.pipeline_depth = cfg_.pp;
  admission.prefix_caching = cfg_.prefix_caching;
  admission.obs = cfg_.obs;
  admission.trace_track = cfg_.pp;  // driver track sits after the stage tracks
  admission.spec_lookahead = cfg_.spec_lookahead;
  core_.emplace(admission);
  if (cfg_.obs != nullptr) {
    // Trace in simulated seconds: the tracer reads the DES clock, so spans
    // line up with the sim timeline (and with the runtime's wall timeline
    // when comparing shapes in Perfetto).
    cfg_.obs->tracer().set_clock([this] { return sim_.now(); });
    for (int s = 0; s < cfg_.pp; ++s)
      cfg_.obs->tracer().set_track_name(s, "stage " + std::to_string(s));
    cfg_.obs->tracer().set_track_name(cfg_.pp, "driver");
    scheduler_->set_observability(cfg_.obs, cfg_.pp);
  }
  stage_free_.assign(static_cast<std::size_t>(cfg_.pp), true);
  stage_queue_.assign(static_cast<std::size_t>(cfg_.pp), {});
  batches_.clear();
  next_cohort_ = 0;
  stage_busy_.assign(static_cast<std::size_t>(cfg_.pp), 0.0);
  iterations_.clear();
  busy_intervals_.clear();
  sched_invocations_ = 0;

  double first_arrival = 0.0;
  bool any = false;
  for (const auto& spec : trace) {
    Sequence* ptr;
    try {
      ptr = core_->add(spec);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("PipelineEngine: duplicate request id in trace");
    }
    sim_.call_at(spec.arrival, [this, ptr] { on_arrival(ptr); });
    first_arrival = any ? std::min(first_arrival, spec.arrival) : spec.arrival;
    any = true;
  }

  sim_.run();

  RunResult result;
  result.start_time = first_arrival;
  result.end_time = first_arrival;
  result.stage_busy_seconds = stage_busy_;
  result.iterations = std::move(iterations_);
  result.busy_intervals = std::move(busy_intervals_);
  result.scheduler_invocations = sched_invocations_;
  result.kv = core_->prefill_kv().stats();
  core_->collect_requests(result);
  return result;
}

void PipelineEngine::on_arrival(Sequence* seq) {
  // Requests that could never fit in the KV pool are rejected up front, as
  // real engines reject prompts beyond max_model_len.
  if (seq->prompt_len() + seq->output_len() > kv_capacity_) {
    seq->abort();
    GLLM_LOG_WARN("rejecting request " << seq->id() << ": needs "
                                       << seq->prompt_len() + seq->output_len()
                                       << " KV tokens, capacity " << kv_capacity_);
    return;
  }
  core_->enqueue(seq);
  try_schedule();
}

void PipelineEngine::try_schedule() {
  while (stage_free_[0] && core_->in_flight() < cfg_.pp) {
    // With cohort pinning, try the virtual engines round-robin, skipping
    // those with nothing runnable (vLLM V0 skips idle virtual engines).
    sched::MicroBatchPlan plan;
    int cohort = -1;
    const int attempts = cfg_.cohort_pinning ? cfg_.pp : 1;
    for (int i = 0; i < attempts; ++i) {
      cohort = cfg_.cohort_pinning ? next_cohort_ : -1;
      if (cfg_.cohort_pinning) next_cohort_ = (next_cohort_ + 1) % cfg_.pp;
      sched::ScheduleContext ctx = core_->build_context(sim_.now(), cohort);
      ++sched_invocations_;
      plan = scheduler_->plan(ctx);
      if (!plan.empty()) break;
    }
    if (plan.empty()) {
      // With nothing in flight and nothing schedulable, half-admitted prompts
      // may be squatting on the whole KV pool — recompute-preempt one.
      if (core_->in_flight() == 0 && core_->reset_stalled_prefill()) continue;
      return;
    }

    const AdmittedBatch admitted = core_->materialize(plan, sim_.now());
    if (admitted.empty()) {  // every item dropped (KV saturated)
      if (core_->in_flight() == 0 && core_->reset_stalled_prefill()) continue;
      return;
    }
    if (cfg_.cohort_pinning) {
      // Pin newly admitted prompts to this virtual engine.
      for (const sched::CommittedItem& c : admitted.plan.items) {
        Sequence& seq = core_->seq(c.item.seq);
        if (seq.cohort() < 0) seq.set_cohort(cohort);
      }
    }

    Batch batch{admitted.work, admitted.total_new_tokens()};
    if (cfg_.record_iterations) {
      iterations_.push_back(IterationSample{sim_.now(), admitted.plan.prefill_tokens(),
                                            admitted.plan.decode_tokens(),
                                            core_->prefill_kv().free_rate(),
                                            stage_forward_time(batch, 0)});
    }
    batches_.emplace(admitted.id, std::move(batch));
    enter_stage(admitted.id, 0);
  }
}

double PipelineEngine::stage_forward_time(const Batch& batch, int stage) const {
  // The cost model charges the TP-sharded compute plus the two per-layer
  // ring all-reduces over the stage's actual TP-group link.
  const int first_gpu = stage * cfg_.tp;
  const hw::CommModel comm(
      cfg_.tp > 1 ? cfg_.cluster.link_between(first_gpu, first_gpu + cfg_.tp - 1)
                  : hw::links::loopback());
  double t = cost_.stage_time(plan_.stage(stage), batch.work, cfg_.tp, comm);
  // Serialized CPU prep (vLLM-style coupled metadata) inflates every stage.
  t *= 1.0 + cfg_.runtime.serial_cpu_fraction;
  // Driver scheduling cost is serialized before stage-0 execution.
  if (stage == 0) t += cfg_.runtime.sched_overhead;
  return t;
}

double PipelineEngine::pp_hop_time(const Batch& batch, int from_stage) const {
  const int from_gpu = from_stage * cfg_.tp;
  const int to_gpu = (from_stage + 1) * cfg_.tp;
  const hw::CommModel comm(cfg_.cluster.link_between(from_gpu, to_gpu));
  return comm.p2p_time(cost_.activation_bytes(batch.total_new_tokens));
}

void PipelineEngine::enter_stage(std::uint64_t batch_id, int stage) {
  if (!stage_free_[static_cast<std::size_t>(stage)])
    throw std::logic_error("PipelineEngine: entering a busy stage");
  stage_free_[static_cast<std::size_t>(stage)] = false;

  const Batch& batch = batches_.at(batch_id);
  const double dur = stage_forward_time(batch, stage);
  stage_busy_[static_cast<std::size_t>(stage)] += dur;
  if (cfg_.record_busy_intervals)
    busy_intervals_.push_back(BusyInterval{stage, sim_.now(), dur});
  if (cfg_.obs != nullptr)
    cfg_.obs->tracer().begin(stage, "forward",
                             {{"batch", static_cast<double>(batch_id)},
                              {"tokens", static_cast<double>(batch.total_new_tokens)}});
  sim_.call_in(dur, [this, batch_id, stage] { on_stage_done(batch_id, stage); });
}

void PipelineEngine::on_stage_done(std::uint64_t batch_id, int stage) {
  stage_free_[static_cast<std::size_t>(stage)] = true;
  if (cfg_.obs != nullptr) cfg_.obs->tracer().end(stage, "forward");

  if (stage + 1 < cfg_.pp) {
    const double hop = pp_hop_time(batches_.at(batch_id), stage);
    sim_.call_in(hop, [this, batch_id, stage] { arrive_at_stage(batch_id, stage + 1); });
  } else {
    complete_batch(batch_id);
  }

  pump_stage(stage);
  if (stage == 0) try_schedule();
}

void PipelineEngine::arrive_at_stage(std::uint64_t batch_id, int stage) {
  stage_queue_[static_cast<std::size_t>(stage)].push_back(batch_id);
  pump_stage(stage);
}

void PipelineEngine::pump_stage(int stage) {
  auto& queue = stage_queue_[static_cast<std::size_t>(stage)];
  if (!stage_free_[static_cast<std::size_t>(stage)] || queue.empty()) return;
  const std::uint64_t batch_id = queue.front();
  queue.pop_front();
  enter_stage(batch_id, stage);
}

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void PipelineEngine::complete_batch(std::uint64_t batch_id) {
  if (batches_.erase(batch_id) == 0)
    throw std::logic_error("PipelineEngine: completing unknown batch");
  if (cfg_.spec_lookahead > 0) {
    // Acceptance-rate model: draft position i of a step is accepted with
    // probability spec_acceptance, independently, stopping at the first
    // rejection (greedy prefix acceptance). The draw is a pure hash of
    // (seed, seq, generated, i), so a run is reproducible event-order-free.
    CompletionHooks hooks;
    hooks.verify = [this](const Sequence& s, int proposed) {
      VerifyOutcome out;
      int accepted = 0;
      while (accepted < proposed) {
        const std::uint64_t draw = splitmix64(
            splitmix64(splitmix64(cfg_.spec_seed ^ static_cast<std::uint64_t>(s.id())) ^
                       static_cast<std::uint64_t>(s.generated())) ^
            static_cast<std::uint64_t>(accepted));
        const double u =
            static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
        if (u >= cfg_.spec_acceptance) break;
        ++accepted;
      }
      out.emitted = accepted + 1;
      return out;
    };
    core_->complete(batch_id, sim_.now(), &hooks);
  } else {
    core_->complete(batch_id, sim_.now());
  }
  try_schedule();
}

}  // namespace gllm::engine
