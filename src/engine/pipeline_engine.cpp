#include "engine/pipeline_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace gllm::engine {

void EngineConfig::validate() const {
  model.validate();
  if (pp <= 0 || tp <= 0) throw std::invalid_argument("EngineConfig: pp/tp must be > 0");
  if (pp * tp > cluster.total_gpus())
    throw std::invalid_argument("EngineConfig: pp*tp exceeds cluster GPUs");
  if (gpu_memory_util <= 0.0 || gpu_memory_util > 1.0)
    throw std::invalid_argument("EngineConfig: gpu_memory_util must be in (0, 1]");
  if (kv_block_size <= 0) throw std::invalid_argument("EngineConfig: block size must be > 0");
}

PipelineEngine::PipelineEngine(EngineConfig cfg, std::shared_ptr<sched::IScheduler> scheduler)
    : cfg_(std::move(cfg)),
      scheduler_(std::move(scheduler)),
      plan_(cfg_.model, cfg_.pp),
      cost_(cfg_.model, cfg_.cluster.gpu) {
  cfg_.validate();
  if (!scheduler_) throw std::invalid_argument("PipelineEngine: scheduler required");
  kv_capacity_ = model::kv_token_capacity(plan_, cfg_.cluster.gpu, cfg_.gpu_memory_util,
                                          cfg_.tp);
  if (kv_capacity_ < cfg_.kv_block_size)
    throw std::invalid_argument("PipelineEngine: model does not fit (no KV capacity)");
}

Sequence& PipelineEngine::seq_ref(kv::SeqId id) {
  const auto it = sequences_.find(id);
  if (it == sequences_.end()) throw std::logic_error("PipelineEngine: unknown sequence id");
  return *it->second;
}

RunResult PipelineEngine::run(const workload::Trace& trace) {
  // Reset per-run state.
  sim_ = sim::Simulator{};
  kv_ = std::make_unique<kv::KvManager>(kv_capacity_, cfg_.kv_block_size,
                                        cfg_.prefix_caching);
  sequences_.clear();
  waiting_.clear();
  decoding_.clear();
  stage_free_.assign(static_cast<std::size_t>(cfg_.pp), true);
  stage_queue_.assign(static_cast<std::size_t>(cfg_.pp), {});
  batches_.clear();
  next_batch_id_ = 1;
  in_flight_batches_ = 0;
  next_cohort_ = 0;
  stage_busy_.assign(static_cast<std::size_t>(cfg_.pp), 0.0);
  iterations_.clear();
  busy_intervals_.clear();
  preemptions_ = 0;
  sched_invocations_ = 0;

  double first_arrival = 0.0;
  bool any = false;
  for (const auto& spec : trace) {
    auto seq = std::make_unique<Sequence>(spec);
    Sequence* ptr = seq.get();
    if (sequences_.contains(spec.id))
      throw std::invalid_argument("PipelineEngine: duplicate request id in trace");
    sequences_.emplace(spec.id, std::move(seq));
    sim_.call_at(spec.arrival, [this, ptr] { on_arrival(ptr); });
    first_arrival = any ? std::min(first_arrival, spec.arrival) : spec.arrival;
    any = true;
  }

  sim_.run();

  RunResult result;
  result.start_time = first_arrival;
  result.end_time = first_arrival;
  result.stage_busy_seconds = stage_busy_;
  result.iterations = std::move(iterations_);
  result.busy_intervals = std::move(busy_intervals_);
  result.preemptions = preemptions_;
  result.scheduler_invocations = sched_invocations_;
  result.kv = kv_->stats();

  result.requests.reserve(sequences_.size());
  for (const auto& [id, seq] : sequences_) {
    RequestMetrics m;
    m.id = id;
    m.arrival = seq->arrival();
    m.prompt_len = seq->prompt_len();
    m.output_len = seq->generated();
    m.preemptions = seq->preemptions();
    m.completed = seq->state() == SeqState::kFinished;
    if (m.completed) {
      m.ttft = seq->ttft();
      m.e2e = seq->e2e_latency();
      m.tpot = seq->tpot();
      result.end_time = std::max(result.end_time, seq->finish_time());
    } else {
      GLLM_LOG_WARN("request " << id << " did not complete (state "
                               << static_cast<int>(seq->state()) << ")");
    }
    result.requests.push_back(m);
  }
  std::sort(result.requests.begin(), result.requests.end(),
            [](const RequestMetrics& a, const RequestMetrics& b) { return a.id < b.id; });
  return result;
}

void PipelineEngine::on_arrival(Sequence* seq) {
  // Requests that could never fit in the KV pool are rejected up front, as
  // real engines reject prompts beyond max_model_len.
  if (seq->prompt_len() + seq->output_len() > kv_capacity_) {
    seq->abort();
    GLLM_LOG_WARN("rejecting request " << seq->id() << ": needs "
                                       << seq->prompt_len() + seq->output_len()
                                       << " KV tokens, capacity " << kv_capacity_);
    return;
  }
  waiting_.push_back(seq);
  try_schedule();
}

bool PipelineEngine::reset_stalled_prefill() {
  for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
    Sequence* seq = *it;
    if (seq == waiting_.front()) continue;  // keep the head's progress
    if (seq->outstanding_chunks() > 0 || seq->scheduled_prefill() == 0) continue;
    kv_->free_seq(seq->id());
    seq->reset_prefill_progress();
    ++preemptions_;
    GLLM_LOG_DEBUG("reset stalled prefill of seq " << seq->id() << " at t=" << sim_.now());
    return true;
  }
  return false;
}

sched::ScheduleContext PipelineEngine::build_context(int cohort) const {
  sched::ScheduleContext ctx;
  ctx.now = sim_.now();
  ctx.pipeline_depth = cfg_.pp;
  ctx.kv_free_rate = kv_->free_rate();
  ctx.kv_free_tokens = kv_->free_token_capacity();
  ctx.total_decode_seqs = static_cast<std::int64_t>(decoding_.size());

  // cohort < 0: global view. Otherwise only this virtual engine's sequences
  // (plus unassigned prompts, which the engine pins on first admission).
  ctx.waiting.reserve(waiting_.size());
  for (const Sequence* seq : waiting_) {
    if (seq->remaining_prefill() <= 0) continue;  // final chunk in flight
    if (cohort >= 0 && seq->cohort() >= 0 && seq->cohort() != cohort) continue;
    ctx.waiting.push_back(sched::WaitingSeq{seq->id(), seq->remaining_prefill(),
                                            kv_->seq_tokens(seq->id()), seq->arrival(),
                                            seq->outstanding_chunks() > 0});
  }
  ctx.runnable_decodes.reserve(decoding_.size());
  for (const Sequence* seq : decoding_) {
    if (seq->decode_in_flight()) continue;
    if (cohort >= 0 && seq->cohort() != cohort) continue;
    ctx.runnable_decodes.push_back(sched::DecodeSeq{seq->id(), kv_->seq_tokens(seq->id())});
  }
  return ctx;
}

bool PipelineEngine::allocate_with_preemption(kv::SeqId seq, std::int64_t tokens,
                                              const std::vector<kv::SeqId>& untouchable) {
  while (!kv_->allocate(seq, tokens)) {
    // vLLM recompute preemption: evict the youngest idle decoding sequence
    // that is not part of the batch being built.
    Sequence* victim = nullptr;
    for (auto it = decoding_.rbegin(); it != decoding_.rend(); ++it) {
      Sequence* cand = *it;
      if (cand->decode_in_flight()) continue;
      if (cand->id() == seq) continue;
      if (std::find(untouchable.begin(), untouchable.end(), cand->id()) !=
          untouchable.end())
        continue;
      victim = cand;
      break;
    }
    if (victim == nullptr) return false;
    kv_->free_seq(victim->id());
    victim->preempt(sim_.now());
    decoding_.erase(std::find(decoding_.begin(), decoding_.end(), victim));
    waiting_.push_front(victim);
    ++preemptions_;
    GLLM_LOG_DEBUG("preempted seq " << victim->id() << " at t=" << sim_.now());
  }
  return true;
}

PipelineEngine::Batch* PipelineEngine::materialize(sched::MicroBatchPlan plan) {
  Batch batch;
  batch.id = next_batch_id_++;

  // Sequences already materialised into this batch must not be preempted;
  // later-planned ones may be (their item is then skipped gracefully below).
  std::vector<kv::SeqId> locked;
  locked.reserve(plan.items.size());

  for (const sched::BatchItem& item : plan.items) {
    Sequence& seq = seq_ref(item.seq);
    const std::int64_t ctx_before = kv_->seq_tokens(item.seq);

    if (item.phase == sched::Phase::kDecode) {
      // The sequence may have been recompute-preempted while an earlier item
      // of this very plan was materialised - it is Waiting now, skip it.
      if (seq.state() != SeqState::kDecoding || seq.decode_in_flight()) continue;
      if (!allocate_with_preemption(item.seq, 1, locked)) continue;  // skip this step
      seq.on_decode_scheduled();
      batch.plan.items.push_back(item);
      batch.work.push_back(model::WorkItem{1, ctx_before, false, true});
      batch.total_new_tokens += 1;
      locked.push_back(item.seq);
    } else {
      if (seq.state() != SeqState::kWaiting || item.n_tokens > seq.remaining_prefill())
        throw std::logic_error("scheduler planned an invalid prefill chunk");
      if (!kv_->allocate(item.seq, item.n_tokens)) continue;  // no preemption for prefill
      seq.on_chunk_scheduled(item.n_tokens);
      batch.plan.items.push_back(item);
      batch.work.push_back(
          model::WorkItem{item.n_tokens, ctx_before, true, item.last_prefill_chunk});
      batch.total_new_tokens += item.n_tokens;
      locked.push_back(item.seq);
    }
  }

  if (batch.plan.items.empty()) return nullptr;
  const auto [it, ok] = batches_.emplace(batch.id, std::move(batch));
  (void)ok;
  return &it->second;
}

void PipelineEngine::try_schedule() {
  while (stage_free_[0] && in_flight_batches_ < cfg_.pp) {
    // With cohort pinning, try the virtual engines round-robin, skipping
    // those with nothing runnable (vLLM V0 skips idle virtual engines).
    sched::MicroBatchPlan plan;
    int cohort = -1;
    const int attempts = cfg_.cohort_pinning ? cfg_.pp : 1;
    for (int i = 0; i < attempts; ++i) {
      cohort = cfg_.cohort_pinning ? next_cohort_ : -1;
      if (cfg_.cohort_pinning) next_cohort_ = (next_cohort_ + 1) % cfg_.pp;
      sched::ScheduleContext ctx = build_context(cohort);
      ++sched_invocations_;
      plan = scheduler_->plan(ctx);
      if (!plan.empty()) break;
    }
    if (plan.empty()) {
      // With nothing in flight and nothing schedulable, half-admitted prompts
      // may be squatting on the whole KV pool — recompute-preempt one.
      if (in_flight_batches_ == 0 && reset_stalled_prefill()) continue;
      return;
    }

    Batch* batch = materialize(std::move(plan));
    if (batch == nullptr) {  // every item dropped (KV saturated)
      if (in_flight_batches_ == 0 && reset_stalled_prefill()) continue;
      return;
    }
    if (cfg_.cohort_pinning) {
      // Pin newly admitted prompts to this virtual engine.
      for (const sched::BatchItem& item : batch->plan.items) {
        Sequence& seq = seq_ref(item.seq);
        if (seq.cohort() < 0) seq.set_cohort(cohort);
      }
    }

    ++in_flight_batches_;
    if (cfg_.record_iterations) {
      iterations_.push_back(IterationSample{sim_.now(), batch->plan.prefill_tokens(),
                                            batch->plan.decode_tokens(), kv_->free_rate(),
                                            stage_forward_time(*batch, 0)});
    }
    enter_stage(batch->id, 0);
  }
}

double PipelineEngine::stage_forward_time(const Batch& batch, int stage) const {
  double t = cost_.stage_time(plan_.stage(stage), batch.work, cfg_.tp);
  // Serialized CPU prep (vLLM-style coupled metadata) inflates every stage.
  t *= 1.0 + cfg_.runtime.serial_cpu_fraction;
  // Tensor-parallel collectives: two all-reduces per layer over the stage's
  // TP group link.
  if (cfg_.tp > 1) {
    const int first_gpu = stage * cfg_.tp;
    const hw::CommModel comm(cfg_.cluster.link_between(first_gpu, first_gpu + cfg_.tp - 1));
    const double bytes = cost_.activation_bytes(batch.total_new_tokens);
    t += 2.0 * plan_.stage(stage).n_layers * comm.allreduce_time(bytes, cfg_.tp);
  }
  // Driver scheduling cost is serialized before stage-0 execution.
  if (stage == 0) t += cfg_.runtime.sched_overhead;
  return t;
}

double PipelineEngine::pp_hop_time(const Batch& batch, int from_stage) const {
  const int from_gpu = from_stage * cfg_.tp;
  const int to_gpu = (from_stage + 1) * cfg_.tp;
  const hw::CommModel comm(cfg_.cluster.link_between(from_gpu, to_gpu));
  return comm.p2p_time(cost_.activation_bytes(batch.total_new_tokens));
}

void PipelineEngine::enter_stage(std::uint64_t batch_id, int stage) {
  if (!stage_free_[static_cast<std::size_t>(stage)])
    throw std::logic_error("PipelineEngine: entering a busy stage");
  stage_free_[static_cast<std::size_t>(stage)] = false;

  const Batch& batch = batches_.at(batch_id);
  const double dur = stage_forward_time(batch, stage);
  stage_busy_[static_cast<std::size_t>(stage)] += dur;
  if (cfg_.record_busy_intervals)
    busy_intervals_.push_back(BusyInterval{stage, sim_.now(), dur});
  sim_.call_in(dur, [this, batch_id, stage] { on_stage_done(batch_id, stage); });
}

void PipelineEngine::on_stage_done(std::uint64_t batch_id, int stage) {
  stage_free_[static_cast<std::size_t>(stage)] = true;

  if (stage + 1 < cfg_.pp) {
    const double hop = pp_hop_time(batches_.at(batch_id), stage);
    sim_.call_in(hop, [this, batch_id, stage] { arrive_at_stage(batch_id, stage + 1); });
  } else {
    complete_batch(batch_id);
  }

  pump_stage(stage);
  if (stage == 0) try_schedule();
}

void PipelineEngine::arrive_at_stage(std::uint64_t batch_id, int stage) {
  stage_queue_[static_cast<std::size_t>(stage)].push_back(batch_id);
  pump_stage(stage);
}

void PipelineEngine::pump_stage(int stage) {
  auto& queue = stage_queue_[static_cast<std::size_t>(stage)];
  if (!stage_free_[static_cast<std::size_t>(stage)] || queue.empty()) return;
  const std::uint64_t batch_id = queue.front();
  queue.pop_front();
  enter_stage(batch_id, stage);
}

void PipelineEngine::finish_sequence(Sequence& seq) {
  kv_->free_seq(seq.id());
  const auto it = std::find(decoding_.begin(), decoding_.end(), &seq);
  if (it != decoding_.end()) decoding_.erase(it);
}

void PipelineEngine::complete_batch(std::uint64_t batch_id) {
  const auto node = batches_.extract(batch_id);
  if (node.empty()) throw std::logic_error("PipelineEngine: completing unknown batch");
  const Batch& batch = node.mapped();

  for (const sched::BatchItem& item : batch.plan.items) {
    Sequence& seq = seq_ref(item.seq);
    if (item.phase == sched::Phase::kDecode) {
      if (seq.on_decode_completed(sim_.now())) finish_sequence(seq);
    } else {
      const bool prompt_done = seq.on_chunk_completed(item.last_prefill_chunk, sim_.now());
      if (prompt_done) {
        const auto it = std::find(waiting_.begin(), waiting_.end(), &seq);
        if (it != waiting_.end()) waiting_.erase(it);
        if (seq.state() == SeqState::kFinished) {
          kv_->free_seq(seq.id());
        } else {
          decoding_.push_back(&seq);
        }
      }
    }
  }

  --in_flight_batches_;
  try_schedule();
}

}  // namespace gllm::engine
