#pragma once

#include <cstdint>
#include <vector>

#include "engine/sequence.hpp"
#include "kv/kv_manager.hpp"

namespace gllm::engine {

/// Final per-request record (the benchmark client's view).
struct RequestMetrics {
  std::int64_t id = 0;
  double arrival = 0.0;
  int prompt_len = 0;
  int output_len = 0;   ///< tokens actually generated
  double ttft = 0.0;    ///< time to first token, seconds
  double e2e = 0.0;     ///< end-to-end latency, seconds
  double tpot = 0.0;    ///< time per output token after the first, seconds
  int preemptions = 0;
  bool completed = false;
  /// Prefill chunk sizes in the order they were committed (includes recompute
  /// chunks after preemption). Identical across executors for the same trace
  /// and scheduler — the cross-executor parity tests pin this.
  std::vector<int> scheduled_chunks;
};

/// One scheduled micro-batch, for the Figure 1/4 token-trace reproductions.
struct IterationSample {
  double time = 0.0;       ///< schedule instant
  int prefill_tokens = 0;
  int decode_tokens = 0;
  double kv_free_rate = 1.0;
  double stage0_time = 0.0;  ///< modelled stage-0 forward duration
};

/// One stage-occupancy interval (recorded only when the engine is configured
/// with record_busy_intervals; used by the Figure 4 utilization timelines).
struct BusyInterval {
  int stage = 0;
  double start = 0.0;
  double duration = 0.0;
};

/// Everything a single engine run produces.
struct RunResult {
  std::vector<RequestMetrics> requests;
  std::vector<IterationSample> iterations;
  std::vector<BusyInterval> busy_intervals;
  std::vector<double> stage_busy_seconds;  ///< per pipeline stage
  double start_time = 0.0;                 ///< first arrival
  double end_time = 0.0;                   ///< last completion
  std::int64_t preemptions = 0;
  std::int64_t scheduler_invocations = 0;
  kv::KvStats kv;

  double makespan() const { return end_time - start_time; }

  std::size_t completed_requests() const;
  std::int64_t total_tokens() const;   ///< prompt + generated of completed requests
  std::int64_t output_tokens() const;

  // Aggregate latency metrics over completed requests (paper's four metrics).
  double mean_ttft() const;
  double mean_tpot() const;
  double mean_e2el() const;
  double p99_ttft() const;
  /// Exact percentile of a latency metric over completed requests; p in
  /// [0, 100]. `metric` selects the RequestMetrics field.
  enum class Latency { kTtft, kTpot, kE2el };
  double percentile(Latency metric, double p) const;
  /// Input+output token throughput over the makespan.
  double throughput() const;
  /// Fraction of completed requests meeting both constraints; incomplete
  /// requests count as violations.
  double slo_attainment(double ttft_limit, double tpot_limit) const;
  /// Goodput (the DistServe metric the artifact's --goodput flag reports):
  /// input+output tokens of SLO-satisfying requests per second of makespan.
  double goodput(double ttft_limit, double tpot_limit) const;
  /// Mean busy fraction across stages over the makespan.
  double mean_stage_utilization() const;
  /// Coefficient of variation of per-iteration total token counts — the
  /// balance measure behind Figure 1.
  double token_count_cv() const;

  /// Per-window mean stage utilization over [t0, t1), from busy intervals.
  /// Returns one value per window of `window` seconds.
  std::vector<double> utilization_timeline(double t0, double t1, double window) const;
};

}  // namespace gllm::engine
