#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/admission_core.hpp"
#include "engine/config.hpp"
#include "engine/metrics.hpp"
#include "engine/sequence.hpp"
#include "model/cost.hpp"
#include "model/partition.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace gllm::engine {

/// Prefill/decode disaggregated serving (Splitwise / DistServe family, which
/// the paper discusses as the alternative answer to prefill-decode
/// interference). The cluster is split statically: `prefill_gpus` form a
/// pipeline instance that only prefills; `decode_gpus` form one that only
/// decodes. Finished prompts ship their KV cache across the interconnect.
struct DisaggConfig {
  model::ModelConfig model;
  hw::ClusterSpec cluster;
  int prefill_gpus = 2;  ///< PP depth of the prefill instance (GPUs [0, p*tp))
  int decode_gpus = 2;   ///< PP depth of the decode instance (GPUs [p*tp, (p+d)*tp))
  /// Tensor-parallel width of every stage in both instances; stage `s` of an
  /// instance occupies `tp` consecutive GPUs.
  int tp = 1;
  double gpu_memory_util = 0.90;
  int kv_block_size = 16;
  RuntimeModel runtime = RuntimeModel::gllm_async();
  int prefill_chunk = 2048;  ///< chunk size on the prefill instance
  bool record_iterations = true;
  /// Observability sink (see EngineConfig::obs). Tracks 0..p-1 are the
  /// prefill stages, p..p+d-1 the decode stages, p+d the driver.
  obs::Observability* obs = nullptr;

  void validate() const;
};

/// Discrete-event engine for the disaggregated architecture. Exists to
/// reproduce the paper's argument (§1): static GPU partitioning is efficient
/// when the prefill:decode ratio matches the split, and fragile when the
/// workload drifts — unlike Token Throttling, which rebalances per batch.
///
/// Sequence lifecycle (queues, split KV pools, recompute preemption, stalled-
/// prefill reset, completion bookkeeping) lives in the shared AdmissionCore;
/// this class only builds single-phase plans, runs the two stage pipelines,
/// and models the KV-cache transfer between the instances.
class DisaggEngine {
 public:
  explicit DisaggEngine(DisaggConfig cfg);

  RunResult run(const workload::Trace& trace);

  const DisaggConfig& config() const { return cfg_; }
  std::int64_t prefill_kv_capacity() const { return prefill_.kv_capacity; }
  std::int64_t decode_kv_capacity() const { return decode_.kv_capacity; }

 private:
  struct Batch {
    std::vector<model::WorkItem> work;
    int total_new_tokens = 0;
  };

  struct Instance {
    model::PartitionPlan plan{model::presets::tiny(), 1};  // re-set in ctor
    std::int64_t kv_capacity = 0;
    std::vector<bool> stage_free;
    std::vector<std::deque<std::uint64_t>> stage_queue;
    int in_flight = 0;
    int first_gpu = 0;
    std::vector<double> stage_busy;
  };

  // event handlers / flow
  void on_arrival(Sequence* seq);
  void try_schedule_prefill();
  void try_schedule_decode();
  void enter_stage(Instance& inst, std::uint64_t batch_id, int stage);
  void on_stage_done(bool is_prefill, std::uint64_t batch_id, int stage);
  void complete_prefill_batch(std::uint64_t batch_id);
  void complete_decode_batch(std::uint64_t batch_id);
  void on_transfer_done(Sequence* seq);
  /// Start KV transfers for queued sequences whose decode-side KV now fits.
  void pump_transfers();

  double stage_time(const Instance& inst, const Batch& batch, int stage,
                    bool charge_sched) const;
  Instance& instance(bool is_prefill) { return is_prefill ? prefill_ : decode_; }

  DisaggConfig cfg_;
  model::CostModel cost_;

  // per-run state
  sim::Simulator sim_;
  Instance prefill_;
  Instance decode_;
  std::optional<AdmissionCore> core_;
  std::deque<Sequence*> transfer_wait_;  ///< prefilled, waiting for decode KV space
  std::unordered_map<std::uint64_t, Batch> batches_;
  std::vector<IterationSample> iterations_;
  std::int64_t sched_invocations_ = 0;
};

}  // namespace gllm::engine
