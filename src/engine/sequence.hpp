#pragma once

#include <cstdint>

#include "kv/kv_manager.hpp"
#include "workload/trace.hpp"

namespace gllm::engine {

enum class SeqState {
  kWaiting,   ///< has un-prefilled prompt tokens (incl. preempted recompute)
  kDecoding,  ///< prompt fully prefilled, generating output tokens
  kFinished,
  kAborted,   ///< could not complete (capacity livelock guard)
};

/// Runtime state of one request inside an engine. Owns the scheduling
/// bookkeeping (chunk progress, in-flight locks, preemption recovery) and the
/// latency timestamps the metrics layer consumes.
class Sequence {
 public:
  explicit Sequence(const workload::RequestSpec& spec)
      : spec_(spec), prefill_target_(spec.prompt_len) {}

  kv::SeqId id() const { return spec_.id; }
  double arrival() const { return spec_.arrival; }
  int prompt_len() const { return spec_.prompt_len; }
  int output_len() const { return spec_.output_len; }

  SeqState state() const { return state_; }

  // ---- Prefill progress -------------------------------------------------

  /// Tokens whose KV must be computed before decoding can (re)start. Equals
  /// the prompt length initially; after a recompute preemption it also covers
  /// the already-generated tokens (their values are fixed, their KV is gone).
  int prefill_target() const { return prefill_target_; }
  int scheduled_prefill() const { return scheduled_prefill_; }
  int remaining_prefill() const { return prefill_target_ - scheduled_prefill_; }

  void on_chunk_scheduled(int tokens);
  /// Returns true when this completion finished the prompt (first token!).
  bool on_chunk_completed(bool last_chunk, double now);

  /// Mark `tokens` of the prefill target as already satisfied (prefix-cache
  /// reuse): they need no computation. Only valid before any chunk has been
  /// scheduled, and must leave at least one token to compute.
  void skip_prefill(int tokens);

  int outstanding_chunks() const { return outstanding_chunks_; }

  // ---- Decode progress ----------------------------------------------------

  int generated() const { return generated_; }
  bool decode_in_flight() const { return decode_in_flight_; }
  void on_decode_scheduled();
  /// Retire one decode step that emitted `emitted` tokens (1 without
  /// speculation; up to k+1 when a speculative window is accepted — the
  /// count is clamped to the remaining output budget). Returns true when the
  /// sequence reached its output length.
  bool on_decode_completed(double now, int emitted = 1);

  bool done() const { return generated_ >= spec_.output_len; }

  /// O(1) in-flight lock: true while any step of this sequence (decode token
  /// or prefill chunk) is inside the pipeline. A sequence materialised into
  /// the micro-batch currently being built is locked the moment its step is
  /// committed, which is what makes it ineligible as a preemption victim —
  /// the single victim-search loop in AdmissionCore relies on this instead of
  /// a linear membership scan over the batch under construction.
  bool in_flight() const { return decode_in_flight_ || outstanding_chunks_ > 0; }

  // ---- Preemption (recompute policy) --------------------------------------

  /// Drop all computed KV; generated tokens become forced prefill.
  void preempt(double now);
  /// Recompute-preempt a *waiting* sequence: discard its partial prefill
  /// progress (used to break KV deadlocks among half-admitted prompts).
  void reset_prefill_progress();
  int preemptions() const { return preemptions_; }

  /// Pipeline-failure recovery: drop in-flight locks and all computed KV
  /// progress, folding the sequence back into pending prefill so recompute
  /// resumes it from scratch. Unlike preempt()/reset_prefill_progress() this
  /// is valid with steps in flight — the pipeline that held them is gone.
  /// Only terminal states are off-limits.
  void fold_back();
  /// How many pipeline failures this sequence absorbed (per-request failure
  /// budget counter; preemptions_ also counts each fold).
  int fold_backs() const { return fold_backs_; }

  void abort() { state_ = SeqState::kAborted; }

  /// Virtual-engine cohort (vLLM-V0 pinning; -1 = unassigned / pinning off).
  int cohort() const { return cohort_; }
  void set_cohort(int cohort) { cohort_ = cohort; }

  // ---- Timestamps ----------------------------------------------------------

  double first_token_time() const { return first_token_time_; }
  double finish_time() const { return finish_time_; }
  double ttft() const { return first_token_time_ - spec_.arrival; }
  double e2e_latency() const { return finish_time_ - spec_.arrival; }
  /// Mean inter-token latency after the first token (0 for single-token outputs).
  double tpot() const;

 private:
  workload::RequestSpec spec_;
  SeqState state_ = SeqState::kWaiting;

  int prefill_target_;
  int scheduled_prefill_ = 0;
  int outstanding_chunks_ = 0;

  int generated_ = 0;
  bool decode_in_flight_ = false;

  int preemptions_ = 0;
  int fold_backs_ = 0;
  int cohort_ = -1;
  double first_token_time_ = -1.0;
  double finish_time_ = -1.0;
};

}  // namespace gllm::engine
