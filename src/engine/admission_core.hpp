#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/sequence.hpp"
#include "kv/kv_manager.hpp"
#include "model/cost.hpp"
#include "sched/types.hpp"
#include "workload/trace.hpp"

namespace gllm::obs {
class Observability;
}

namespace gllm::engine {

/// Configuration of the shared admission component.
struct AdmissionConfig {
  /// Capacity (tokens) of the pool prefill chunks allocate from. In unified
  /// mode this is the only pool.
  std::int64_t kv_capacity_tokens = 0;
  /// Capacity of a separate decode-side pool (spatially disaggregated
  /// engines). Negative = unified: prefill and decode share one pool.
  std::int64_t decode_kv_capacity_tokens = -1;
  int kv_block_size = 16;
  int pipeline_depth = 1;
  bool prefix_caching = false;
  /// Observability sink (serving counters/histograms + lifecycle trace
  /// instants). Null — the default — disables everything; the hot path then
  /// pays one pointer test per call site. Must outlive the core.
  obs::Observability* obs = nullptr;
  /// Trace track admission instants (preemption, stalled-prefill reset) are
  /// recorded on — by convention the executor's driver track.
  int trace_track = 0;
  /// Speculative-decoding lookahead k (0 = off). Every decode step may carry
  /// up to k draft tokens; they count against the throttle's #D via
  /// ScheduleContext.spec_lookahead and allocate KV rows up front, rolled
  /// back on rejection at completion.
  int spec_lookahead = 0;
};

/// Result of materialising one scheduler plan: the committed items plus the
/// cost-model view of each (parallel to `plan.items`). `id` is 0 when every
/// item was dropped (no batch was admitted).
struct AdmittedBatch {
  std::uint64_t id = 0;
  sched::CommittedPlan plan;
  std::vector<model::WorkItem> work;

  bool empty() const { return plan.empty(); }
  int total_new_tokens() const { return plan.total_new_tokens; }
};

/// Outcome of verifying one sequence's speculative decode step (see
/// spec::verify_greedy). `emitted` tokens leave the step (1 = every proposal
/// rejected, proposed + 1 = full acceptance plus bonus token); `tokens` holds
/// their ids for token-bearing executors and stays empty in the DES, whose
/// verify hook only models acceptance counts.
struct VerifyOutcome {
  int emitted = 1;
  std::vector<kv::TokenId> tokens;
};

/// Callbacks consumed while retiring a batch. The threaded runtime wires real
/// token ids through these; the DES engines pass none.
struct CompletionHooks {
  /// Resolve the sampled token for a token-bearing item (decode step or final
  /// prefill chunk). The token is appended to the sequence's stored token
  /// stream before state transitions run.
  std::function<kv::TokenId(const Sequence&)> sample;
  /// Speculative verification for decode steps. When set, every decode item
  /// retires through this instead of `sample`: the hook reports how many of
  /// the step's `proposed` draft tokens were accepted (emitted = accepted + 1).
  /// The core then rolls rejected rows back out of the decode KV pool.
  std::function<VerifyOutcome(const Sequence&, int proposed)> verify;
  /// Invoked after the item's transitions, once per emitted token, with
  /// done=true on the final token of a finished sequence.
  std::function<void(const Sequence&, kv::TokenId, bool done)> on_token;
};

/// The single sequence-lifecycle/admission implementation shared by every
/// executor: the DES PipelineEngine, the DES DisaggEngine and the threaded
/// runtime's DriverState are thin adapters over this class (DESIGN.md §5,
/// decision 5 — "the same IScheduler implementations drive both" extends to
/// admission/preemption semantics by construction, because there is only one
/// implementation to diverge from).
///
/// It owns:
///  * the sequence table (plus each sequence's token stream when the executor
///    carries real tokens) and the waiting/decoding queues,
///  * ScheduleContext snapshots (`build_context`),
///  * micro-batch materialisation: KV allocation, vLLM-style youngest-first
///    recompute preemption, stalled-prefill reset, prefix-cache adoption and
///    chunk/decode in-flight bookkeeping,
///  * completion handling and per-sequence metric accumulation.
///
/// Executor-specific concerns stay outside: simulated vs wall-clock time,
/// stage occupancy and cost models, metadata packets and channels, and the
/// disaggregated engine's KV-transfer machinery.
///
/// Thread safety: none. The threaded runtime serialises access from its
/// driver thread (as DriverState always did).
class AdmissionCore {
 public:
  explicit AdmissionCore(AdmissionConfig cfg);

  // --- registration and admission -----------------------------------------
  /// Register a request (throws on duplicate id). Not yet waiting.
  Sequence* add(const workload::RequestSpec& spec);
  /// Register with the real prompt token ids (threaded runtime). Enables
  /// prefix-cache adoption/registration and per-step input-token slicing.
  Sequence* add(const workload::RequestSpec& spec, std::vector<kv::TokenId> prompt);
  /// Move a registered sequence into the waiting queue.
  void enqueue(Sequence* seq);
  /// Disaggregated mode: enter the decode queue once the KV transfer landed.
  void enter_decode(Sequence* seq) { decoding_.push_back(seq); }

  /// Route finished prompts here instead of the decode queue (disaggregated
  /// engines ship the KV cache first). Unset = direct entry.
  void set_prompt_ready_hook(std::function<void(Sequence*)> hook) {
    on_prompt_ready_ = std::move(hook);
  }

  /// Speculative proposer hook: called while materialising a decode step with
  /// the per-step lookahead cap (already clamped so accepted tokens can never
  /// overshoot the output budget); returns how many draft tokens were
  /// actually proposed (0..max_k). Unset with spec_lookahead > 0 (the DES
  /// engines) assumes the full window is always proposed.
  void set_spec_proposer(std::function<int(const Sequence&, int max_k)> hook) {
    spec_propose_ = std::move(hook);
  }

  // --- scheduling ----------------------------------------------------------
  /// Global snapshot for the scheduler. cohort >= 0 restricts waiting/decode
  /// entries to that virtual engine (vLLM-V0 cohort pinning).
  sched::ScheduleContext build_context(double now, int cohort = -1) const;

  /// Materialise a plan: allocate KV (decode steps fall back to recompute
  /// preemption of the youngest idle decoding sequence), adopt cached
  /// prefixes, lock sequences in flight, and build the cost-model work items.
  /// Items the pool cannot back are dropped. A non-empty result is recorded
  /// in the in-flight ledger under its batch id.
  AdmittedBatch materialize(const sched::MicroBatchPlan& plan, double now);

  /// Retire a previously materialised batch: apply completions, move
  /// sequences between queues, free finished KV, register prefixes and fire
  /// the hooks. Returns the number of sequences that finished.
  int complete(std::uint64_t batch_id, double now, const CompletionHooks* hooks = nullptr);

  /// Break a KV deadlock among half-admitted prompts: recompute-preempt the
  /// youngest idle, partially prefilled waiting sequence (never the head).
  /// Returns true if progress was freed.
  bool reset_stalled_prefill();

  // --- failure recovery ----------------------------------------------------
  /// Pipeline-failure recovery: drop the in-flight ledger, fold every
  /// unfinished sequence back into pending prefill (recompute resumes it from
  /// its own token stream — the tokens survive in the entry, only their KV is
  /// gone), and rebuild the KV pools from scratch (the workers' physical KV
  /// died with them; fresh pools keep refcounts trivially balanced and drop
  /// the now-stale prefix cache). Former decoding sequences re-enter the
  /// waiting queue ahead of the old waiting set, preserving FCFS arrival
  /// order. Returns the number of sequences folded.
  int recover_all();

  /// Terminate a non-finished, non-in-flight sequence with an explicit
  /// failure: remove it from the queues, free its KV and mark it kAborted.
  void abort_sequence(kv::SeqId id);

  // --- introspection -------------------------------------------------------
  kv::KvManager& prefill_kv() { return *prefill_kv_; }
  const kv::KvManager& prefill_kv() const { return *prefill_kv_; }
  kv::KvManager& decode_kv() { return split() ? *decode_kv_ : *prefill_kv_; }
  const kv::KvManager& decode_kv() const { return split() ? *decode_kv_ : *prefill_kv_; }

  const std::deque<Sequence*>& waiting() const { return waiting_; }
  const std::vector<Sequence*>& decoding() const { return decoding_; }
  /// Micro-batches materialised but not yet completed.
  int in_flight() const { return static_cast<int>(in_flight_.size()); }
  std::int64_t preemptions() const { return preemptions_; }

  Sequence& seq(kv::SeqId id);
  const Sequence& seq(kv::SeqId id) const;
  bool has_seq(kv::SeqId id) const { return seqs_.contains(id); }
  std::size_t sequence_count() const { return seqs_.size(); }
  /// Prompt + generated token ids (empty unless registered with tokens).
  const std::vector<kv::TokenId>& tokens(kv::SeqId id) const;
  /// Prefill chunk sizes in commit order (the admission-parity fingerprint).
  const std::vector<int>& scheduled_chunks(kv::SeqId id) const;

  /// Per-request metrics for every registered sequence, sorted by id;
  /// advances `end_time` to the latest completion. Incomplete requests are
  /// reported with completed=false (and logged).
  void collect_requests(RunResult& result) const;
  /// Visit every registered sequence (unspecified order).
  void for_each_sequence(const std::function<void(const Sequence&)>& fn) const;

 private:
  struct Entry {
    std::unique_ptr<Sequence> seq;
    std::vector<kv::TokenId> tokens;  ///< prompt + generated (runtime only)
    std::vector<int> chunks;          ///< committed prefill chunk sizes
  };

  bool split() const { return decode_kv_ != nullptr; }
  Entry& entry(kv::SeqId id);
  /// The one preemption-victim search: youngest decoding sequence that is not
  /// in flight (Sequence::in_flight() covers steps committed into the batch
  /// under construction) and not `exclude` itself.
  Sequence* youngest_idle_victim(kv::SeqId exclude);
  /// Allocate `n_tokens` decode rows, evicting victims until they fit or no
  /// victim remains (vLLM recompute preemption).
  bool allocate_decode_with_preemption(kv::SeqId id, std::int64_t n_tokens, double now);

  AdmissionConfig cfg_;
  std::unique_ptr<kv::KvManager> prefill_kv_;
  std::unique_ptr<kv::KvManager> decode_kv_;  ///< null in unified mode
  std::function<void(Sequence*)> on_prompt_ready_;
  std::function<int(const Sequence&, int)> spec_propose_;

  std::unordered_map<kv::SeqId, Entry> seqs_;
  std::deque<Sequence*> waiting_;    ///< FCFS; preempted re-enter at the front
  std::vector<Sequence*> decoding_;  ///< completion order (oldest first)
  std::unordered_map<std::uint64_t, std::vector<sched::BatchItem>> in_flight_;
  std::uint64_t next_batch_id_ = 1;
  std::int64_t preemptions_ = 0;
};

}  // namespace gllm::engine
