#pragma once

#include <string>

namespace gllm::engine {

/// Timing model of an inference framework's CPU-side runtime, the knob that
/// separates "gLLM w/ CK" from vLLM in the paper's ablation (Figure 15).
///
/// * `serial_cpu_fraction` — CPU work (input preparation, metadata handling)
///   serialized on the critical path of every stage forward. The paper
///   measures ~17% of total execution for vLLM's coupled activation+metadata
///   transmission (§3.4), i.e. serialized prep = 0.17 / (1 - 0.17) of compute.
/// * `sched_overhead` — driver-side scheduling cost per iteration. Token
///   Throttling measures 0.045 ms; vLLM's Python scheduler is costlier.
///
/// gLLM's asynchronous runtime (§3.3) overlaps preparation with computation
/// (preemptive metadata scheduling), leaving only the scheduling cost.
struct RuntimeModel {
  std::string name;
  double serial_cpu_fraction = 0.0;
  double sched_overhead = 45e-6;

  static RuntimeModel vllm_like() {
    // 17% of total execution serialized => 0.17/(1-0.17) ~ 0.205 of compute.
    return RuntimeModel{"vllm-runtime", 0.205, 400e-6};
  }
  static RuntimeModel gllm_async() { return RuntimeModel{"gllm-runtime", 0.0, 45e-6}; }
  static RuntimeModel sglang_like() {
    // Lower CPU overhead than vLLM (paper 4.1), still a Python control plane.
    return RuntimeModel{"sglang-runtime", 0.05, 150e-6};
  }
};

}  // namespace gllm::engine
