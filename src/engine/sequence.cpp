#include "engine/sequence.hpp"

#include <algorithm>
#include <stdexcept>

namespace gllm::engine {

void Sequence::on_chunk_scheduled(int tokens) {
  if (state_ != SeqState::kWaiting)
    throw std::logic_error("Sequence: prefill chunk scheduled while not waiting");
  if (tokens <= 0 || tokens > remaining_prefill())
    throw std::invalid_argument("Sequence: chunk exceeds remaining prefill");
  scheduled_prefill_ += tokens;
  ++outstanding_chunks_;
}

bool Sequence::on_chunk_completed(bool last_chunk, double now) {
  if (outstanding_chunks_ <= 0)
    throw std::logic_error("Sequence: chunk completion without outstanding chunk");
  --outstanding_chunks_;
  if (!last_chunk) return false;

  if (remaining_prefill() != 0 || outstanding_chunks_ != 0)
    throw std::logic_error(
        "Sequence: final chunk completed with prefill remaining (seq " +
        std::to_string(spec_.id) + ", remaining " + std::to_string(remaining_prefill()) +
        ", outstanding " + std::to_string(outstanding_chunks_) + ")");
  // Prefill completion produces the first output token (or, after recompute
  // preemption, the next one).
  ++generated_;
  if (first_token_time_ < 0.0) first_token_time_ = now;
  if (done()) {
    state_ = SeqState::kFinished;
    finish_time_ = now;
  } else {
    state_ = SeqState::kDecoding;
  }
  return true;
}

void Sequence::skip_prefill(int tokens) {
  if (state_ != SeqState::kWaiting || scheduled_prefill_ != 0 || outstanding_chunks_ != 0)
    throw std::logic_error("Sequence: skip_prefill only valid before any chunk");
  if (tokens < 0 || tokens >= prefill_target_)
    throw std::invalid_argument("Sequence: skip_prefill must leave work to compute");
  scheduled_prefill_ = tokens;
}

void Sequence::on_decode_scheduled() {
  if (state_ != SeqState::kDecoding)
    throw std::logic_error("Sequence: decode scheduled while not decoding");
  if (decode_in_flight_) throw std::logic_error("Sequence: decode already in flight");
  decode_in_flight_ = true;
}

bool Sequence::on_decode_completed(double now, int emitted) {
  if (!decode_in_flight_) throw std::logic_error("Sequence: decode completion unexpected");
  if (emitted < 1) throw std::invalid_argument("Sequence: decode must emit >= 1 token");
  decode_in_flight_ = false;
  generated_ += std::min(emitted, spec_.output_len - generated_);
  if (done()) {
    state_ = SeqState::kFinished;
    finish_time_ = now;
    return true;
  }
  return false;
}

void Sequence::preempt(double) {
  if (state_ != SeqState::kDecoding || decode_in_flight_)
    throw std::logic_error("Sequence: can only preempt an idle decoding sequence");
  state_ = SeqState::kWaiting;
  prefill_target_ = spec_.prompt_len + generated_;
  scheduled_prefill_ = 0;
  ++preemptions_;
}

void Sequence::fold_back() {
  if (state_ == SeqState::kFinished || state_ == SeqState::kAborted)
    throw std::logic_error("Sequence: fold_back on a terminal sequence");
  outstanding_chunks_ = 0;
  decode_in_flight_ = false;
  state_ = SeqState::kWaiting;
  // Same recompute arithmetic as preempt(): every token generated so far has
  // a fixed value but its KV is gone, so it becomes forced prefill.
  prefill_target_ = spec_.prompt_len + generated_;
  scheduled_prefill_ = 0;
  ++preemptions_;
  ++fold_backs_;
}

void Sequence::reset_prefill_progress() {
  if (state_ != SeqState::kWaiting || outstanding_chunks_ != 0)
    throw std::logic_error("Sequence: can only reset an idle waiting sequence");
  scheduled_prefill_ = 0;
  ++preemptions_;
}

double Sequence::tpot() const {
  if (generated_ <= 1 || first_token_time_ < 0.0 || finish_time_ < 0.0) return 0.0;
  return (finish_time_ - first_token_time_) / static_cast<double>(generated_ - 1);
}

}  // namespace gllm::engine
