#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/kv_manager.hpp"

namespace gllm::spec {

using kv::SeqId;
using kv::TokenId;

/// Outcome of greedy verification for one sequence's speculative step.
struct VerifyResult {
  int accepted = 0;              ///< proposed tokens that matched (prefix)
  std::vector<TokenId> emitted;  ///< accepted tokens + 1 corrected/bonus token
};

/// Greedy acceptance rule. The speculative step fed rows for
/// [last_token, d_1..d_k] through the target pipeline, producing the target
/// model's greedy token after each row: `target` = t_0..t_k (size k+1).
/// Accept the longest prefix of proposals the target agrees with, then emit
/// one more target token — the correction after the first mismatch, or the
/// bonus token t_k on full acceptance. Emitted tokens are target-model tokens
/// by construction, which is the whole token-identity argument: the stream
/// equals non-speculative greedy decoding no matter what was proposed.
VerifyResult verify_greedy(std::span<const TokenId> proposed,
                           std::span<const TokenId> target);

/// Roll back the KV rows of rejected draft tokens. The step appended
/// `1 + proposed` rows; `1 + accepted` stay live (the row of each emitted
/// token except the last, whose KV is computed by the next step). Returns the
/// number of blocks freed.
std::int64_t rollback_rejected(kv::KvManager& kv, SeqId id, int proposed, int accepted);

}  // namespace gllm::spec
