#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "kv/kv_manager.hpp"
#include "model/config.hpp"
#include "nn/stage.hpp"
#include "spec/spec.hpp"

namespace gllm::spec {

using kv::SeqId;
using kv::TokenId;

/// Draft-token source for speculative decoding. The driver calls propose()
/// once per scheduled decode step with the sequence's full visible history
/// (prompt + every token emitted so far) and feeds the result through the
/// target pipeline for verification.
///
/// Contract: propose() is a deterministic function of the per-sequence state
/// it has itself accumulated plus `history` — never of wall clock, RNG, or
/// verification outcomes it was not told about. Determinism is what lets the
/// fault-recovery path replay a generation and land on byte-identical
/// streams (the proposer may propose *differently* after a replay; the
/// verifier makes emitted tokens independent of proposal quality).
class Proposer {
 public:
  virtual ~Proposer() = default;

  /// Up to `max_k` draft continuations of `history` for sequence `id`.
  /// Returning fewer (or none) is always legal; the step then verifies a
  /// shorter window.
  virtual std::vector<TokenId> propose(SeqId id, std::span<const TokenId> history,
                                       int max_k) = 0;

  /// Sequence finished or was aborted: drop any per-sequence state.
  virtual void forget(SeqId id) { (void)id; }

  virtual const char* name() const = 0;
};

/// Prompt-lookup / n-gram proposer: finds the most recent earlier occurrence
/// of the history's trailing n-gram (longest n first, n in
/// [ngram_min, ngram_max]) and proposes the tokens that followed it.
/// Stateless and allocation-light — the cheap end of the proposer spectrum,
/// strong on repetitive output (code, structured text).
class NgramProposer final : public Proposer {
 public:
  NgramProposer(int ngram_min, int ngram_max)
      : ngram_min_(ngram_min), ngram_max_(ngram_max) {}

  std::vector<TokenId> propose(SeqId id, std::span<const TokenId> history,
                               int max_k) override;
  const char* name() const override { return "ngram"; }

 private:
  int ngram_min_;
  int ngram_max_;
};

/// Small-transformer draft proposer: a private single-stage `nn` model (same
/// vocab as the target, fewer layers) with its own paged KV cache. Per
/// sequence it tracks which tokens it has already fed; on each propose() it
/// rolls its KV back to the longest common prefix with the new history
/// (verification rejections rewind it for free), feeds the un-fed suffix in
/// one forward, then decodes `max_k` greedy draft tokens autoregressively.
///
/// KV pressure degrades gracefully: a failed draft allocation drops that
/// sequence's draft state and proposes nothing this step; the next propose()
/// rebuilds from scratch.
class DraftProposer final : public Proposer {
 public:
  DraftProposer(const model::ModelConfig& draft, std::uint64_t weight_seed,
                std::int64_t kv_capacity_tokens, int kv_block_size);

  std::vector<TokenId> propose(SeqId id, std::span<const TokenId> history,
                               int max_k) override;
  void forget(SeqId id) override;
  const char* name() const override { return "draft"; }

  const model::ModelConfig& config() const { return cfg_; }

 private:
  /// Feed `tokens` (KV rows `context..context+n`) and return the greedy token
  /// from the last row. Throws nothing; returns false on KV exhaustion.
  bool feed(SeqId id, std::span<const TokenId> tokens, TokenId& argmax_out);

  model::ModelConfig cfg_;
  kv::KvManager kv_;  ///< declared before stage_: sizes the stage's pool
  nn::TransformerStage stage_;
  std::unordered_map<SeqId, std::vector<TokenId>> fed_;  ///< tokens with live KV
};

/// The draft model derived from a target config: same vocab/width, half the
/// layers (min 1). Different depth ⇒ different distribution ⇒ partial
/// acceptance, which is exactly what exercises the rollback path.
model::ModelConfig draft_config(const model::ModelConfig& target);

/// Factory over SpecConfig.mode (must be enabled()).
std::unique_ptr<Proposer> make_proposer(const SpecConfig& cfg,
                                        const model::ModelConfig& target,
                                        std::uint64_t weight_seed, int kv_block_size);

}  // namespace gllm::spec
