#include "spec/proposer.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace gllm::spec {

std::vector<TokenId> NgramProposer::propose(SeqId /*id*/,
                                            std::span<const TokenId> history,
                                            int max_k) {
  if (max_k <= 0) return {};
  const std::size_t len = history.size();
  for (int n = ngram_max_; n >= ngram_min_; --n) {
    const auto gram = static_cast<std::size_t>(n);
    if (len < gram + 1) continue;
    const TokenId* suffix = history.data() + (len - gram);
    // Most recent earlier occurrence wins: local repetition is the better
    // predictor, and scanning backwards makes the choice deterministic.
    for (std::size_t start = len - gram; start-- > 0;) {
      if (!std::equal(suffix, suffix + gram, history.data() + start)) continue;
      const std::size_t follow = start + gram;
      const std::size_t stop = std::min(follow + static_cast<std::size_t>(max_k), len);
      return {history.begin() + static_cast<std::ptrdiff_t>(follow),
              history.begin() + static_cast<std::ptrdiff_t>(stop)};
    }
  }
  return {};
}

DraftProposer::DraftProposer(const model::ModelConfig& draft, std::uint64_t weight_seed,
                             std::int64_t kv_capacity_tokens, int kv_block_size)
    : cfg_(draft),
      kv_(kv_capacity_tokens, kv_block_size),
      stage_(cfg_,
             [&] {
               model::StageShape shape;
               shape.first_layer = 0;
               shape.n_layers = cfg_.n_layers;
               shape.has_embedding = true;
               shape.has_lm_head = true;
               return shape;
             }(),
             weight_seed, static_cast<std::int32_t>(kv_.total_blocks()), kv_block_size) {}

bool DraftProposer::feed(SeqId id, std::span<const TokenId> tokens, TokenId& argmax_out) {
  const std::int64_t context = kv_.seq_tokens(id);
  if (!kv_.allocate(id, static_cast<std::int64_t>(tokens.size()))) return false;
  nn::ItemView item;
  item.context = context;
  item.n_tokens = static_cast<int>(tokens.size());
  item.blocks = kv_.table(id).blocks();
  item.wants_logits = true;
  tensor::Tensor hidden = stage_.embed(tokens);
  stage_.forward(hidden, {&item, 1});
  const tensor::Tensor logits = stage_.logits(hidden, {&item, 1});
  argmax_out = static_cast<TokenId>(tensor::argmax(logits.row(0)));
  return true;
}

std::vector<TokenId> DraftProposer::propose(SeqId id, std::span<const TokenId> history,
                                            int max_k) {
  if (max_k <= 0 || history.empty()) return {};
  auto& fed = fed_[id];
  // Roll the draft KV back to the longest common prefix with the new history
  // (rejected proposals rewind for free), keeping at least the final history
  // token un-fed so the forward below always produces fresh logits.
  std::size_t lcp = 0;
  const std::size_t cap = std::min(fed.size(), history.size() - 1);
  while (lcp < cap && fed[lcp] == history[lcp]) ++lcp;
  if (fed.size() > lcp) {
    kv_.rollback(id, static_cast<std::int64_t>(fed.size() - lcp));
    fed.resize(lcp);
  }

  std::vector<TokenId> proposals;
  TokenId next = 0;
  if (!feed(id, history.subspan(lcp), next)) {
    // Draft pool exhausted: drop this sequence's draft state so its blocks
    // are reclaimable, propose nothing, rebuild next step.
    forget(id);
    return {};
  }
  fed.insert(fed.end(), history.begin() + static_cast<std::ptrdiff_t>(lcp),
             history.end());
  proposals.push_back(next);
  while (static_cast<int>(proposals.size()) < max_k) {
    const TokenId in = proposals.back();
    TokenId out = 0;
    if (!feed(id, {&in, 1}, out)) break;  // state stays consistent; partial is fine
    fed.push_back(in);
    proposals.push_back(out);
  }
  return proposals;
}

void DraftProposer::forget(SeqId id) {
  kv_.free_seq(id);
  fed_.erase(id);
}

model::ModelConfig draft_config(const model::ModelConfig& target) {
  model::ModelConfig draft = target;
  draft.n_layers = std::max(1, target.n_layers / 2);
  draft.name = target.name + "-draft";
  return draft;
}

std::unique_ptr<Proposer> make_proposer(const SpecConfig& cfg,
                                        const model::ModelConfig& target,
                                        std::uint64_t weight_seed, int kv_block_size) {
  cfg.validate();
  switch (cfg.mode) {
    case Mode::kNgram:
      return std::make_unique<NgramProposer>(cfg.ngram_min, cfg.ngram_max);
    case Mode::kDraft:
      return std::make_unique<DraftProposer>(draft_config(target), weight_seed,
                                             cfg.draft_kv_capacity_tokens,
                                             kv_block_size);
    case Mode::kOff: break;
  }
  throw std::logic_error("spec::make_proposer: mode is off");
}

}  // namespace gllm::spec
