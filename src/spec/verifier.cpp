#include "spec/verifier.hpp"

#include <stdexcept>

namespace gllm::spec {

VerifyResult verify_greedy(std::span<const TokenId> proposed,
                           std::span<const TokenId> target) {
  if (target.size() != proposed.size() + 1)
    throw std::invalid_argument("spec::verify_greedy: need one target per fed row");
  VerifyResult result;
  while (result.accepted < static_cast<int>(proposed.size()) &&
         proposed[static_cast<std::size_t>(result.accepted)] ==
             target[static_cast<std::size_t>(result.accepted)])
    ++result.accepted;
  result.emitted.assign(target.begin(), target.begin() + result.accepted + 1);
  return result;
}

std::int64_t rollback_rejected(kv::KvManager& kv, SeqId id, int proposed, int accepted) {
  if (accepted > proposed)
    throw std::invalid_argument("spec::rollback_rejected: accepted > proposed");
  return kv.rollback(id, proposed - accepted);
}

}  // namespace gllm::spec
