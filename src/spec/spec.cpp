#include "spec/spec.hpp"

#include <stdexcept>

namespace gllm::spec {

void SpecConfig::validate() const {
  if (mode == Mode::kOff) return;
  if (k <= 0) throw std::invalid_argument("spec: --spec-k must be >= 1");
  if (ngram_min < 1 || ngram_max < ngram_min)
    throw std::invalid_argument("spec: require 1 <= ngram_min <= ngram_max");
  if (draft_kv_capacity_tokens <= 0)
    throw std::invalid_argument("spec: draft KV capacity must be positive");
}

Mode parse_mode(const std::string& name) {
  if (name == "off") return Mode::kOff;
  if (name == "ngram") return Mode::kNgram;
  if (name == "draft") return Mode::kDraft;
  throw std::invalid_argument("spec: unknown mode '" + name +
                              "' (expected off, ngram or draft)");
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kNgram: return "ngram";
    case Mode::kDraft: return "draft";
  }
  return "?";
}

}  // namespace gllm::spec
