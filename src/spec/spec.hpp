#pragma once

#include <cstdint>
#include <string>

namespace gllm::spec {

/// Draft-token source selection for speculative decoding.
enum class Mode {
  kOff,
  kNgram,  ///< deterministic prompt-lookup over the sequence's own history
  kDraft,  ///< small draft transformer (same vocab, fewer layers)
};

/// Speculative-decoding knobs, threaded from the CLI through the runtime and
/// the DES engines. `k` is the per-step lookahead: each decode step feeds the
/// last accepted token plus up to `k` draft tokens through one pipelined
/// forward, so the step costs `1 + k` decode rows against the throttle's #D
/// budget (DESIGN.md decision 12).
struct SpecConfig {
  Mode mode = Mode::kOff;
  int k = 4;          ///< max proposed tokens per decode step
  int ngram_min = 1;  ///< shortest suffix the n-gram proposer will match
  int ngram_max = 3;  ///< longest suffix tried first (most specific wins)
  /// KV capacity of the draft model's private cache (tokens). The draft
  /// cache self-heals under pressure (a failed allocation drops that
  /// sequence's draft state and proposes nothing), so this can be small.
  std::int64_t draft_kv_capacity_tokens = 4096;

  bool enabled() const { return mode != Mode::kOff && k > 0; }
  void validate() const;
};

/// Parse "off" | "ngram" | "draft" (throws std::invalid_argument otherwise).
Mode parse_mode(const std::string& name);
const char* mode_name(Mode mode);

}  // namespace gllm::spec
