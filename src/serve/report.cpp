#include "serve/report.hpp"

#include <ostream>
#include <stdexcept>

#include "util/table.hpp"
#include "util/units.hpp"

namespace gllm::serve {

void ReportWriter::add_section(std::string heading, std::vector<SweepPoint> points) {
  sections_.push_back(Section{std::move(heading), std::move(points), {}});
}

void ReportWriter::add_note(std::string note) {
  if (sections_.empty()) throw std::logic_error("ReportWriter: note before any section");
  sections_.back().notes.push_back(std::move(note));
}

void ReportWriter::write_markdown(std::ostream& os) const {
  os << "# " << title_ << "\n";
  for (const auto& section : sections_) {
    os << "\n## " << section.heading << "\n\n";
    os << "| system | rate (req/s) | TTFT (ms) | TPOT (ms) | E2EL (s) | throughput "
          "(tok/s) | util | token CV | preempt |\n";
    os << "|---|---|---|---|---|---|---|---|---|\n";
    for (const auto& p : section.points) {
      os << "| " << p.system << " | " << util::format_double(p.request_rate, 2) << " | "
         << util::format_double(p.mean_ttft * 1e3, 0) << " | "
         << util::format_double(p.mean_tpot * 1e3, 0) << " | "
         << util::format_double(p.mean_e2el, 1) << " | "
         << util::format_double(p.throughput, 0) << " | "
         << util::format_double(p.utilization, 2) << " | "
         << util::format_double(p.token_cv, 2) << " | " << p.preemptions << " |\n";
    }
    for (const auto& note : section.notes) os << "\n> " << note << "\n";
  }
}

void ReportWriter::write_csv(std::ostream& os) const {
  util::CsvWriter csv(os);
  csv.row({"section", "system", "request_rate", "mean_ttft_s", "p99_ttft_s",
           "mean_tpot_s", "mean_e2el_s", "throughput_tok_s", "utilization", "token_cv",
           "preemptions"});
  for (const auto& section : sections_) {
    for (const auto& p : section.points) {
      csv.write(section.heading, p.system, p.request_rate, p.mean_ttft, p.p99_ttft,
                p.mean_tpot, p.mean_e2el, p.throughput, p.utilization, p.token_cv,
                p.preemptions);
    }
  }
}

void write_request_csv(const engine::RunResult& result, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.row({"id", "arrival", "prompt_len", "output_len", "ttft_s", "e2e_s", "tpot_s",
           "preemptions", "completed"});
  for (const auto& r : result.requests) {
    csv.write(r.id, r.arrival, r.prompt_len, r.output_len, r.ttft, r.e2e, r.tpot,
              r.preemptions, r.completed ? 1 : 0);
  }
}

}  // namespace gllm::serve
