#include "serve/options.hpp"

namespace gllm::serve {

engine::EngineConfig SystemOptions::engine_config() const {
  engine::EngineConfig cfg;
  cfg.model = model;
  cfg.cluster = cluster;
  cfg.pp = pp;
  cfg.tp = tp;
  cfg.gpu_memory_util = gpu_memory_util;
  cfg.kv_block_size = kv_block_size;
  cfg.prefix_caching = prefix_caching;
  cfg.runtime = runtime;
  cfg.record_busy_intervals = record_busy_intervals;
  cfg.cohort_pinning = cohort_pinning;
  cfg.obs = obs;
  cfg.spec_lookahead = spec_lookahead;
  cfg.spec_acceptance = spec_acceptance;
  cfg.spec_seed = spec_seed;
  return cfg;
}

SystemOptions SystemOptions::gllm(model::ModelConfig m, hw::ClusterSpec c, int pp) {
  SystemOptions o;
  o.label = "gLLM";
  o.model = std::move(m);
  o.cluster = std::move(c);
  o.pp = pp;
  o.scheduler = SchedulerKind::kTokenThrottle;
  o.runtime = engine::RuntimeModel::gllm_async();
  return o;
}

SystemOptions SystemOptions::gllm_wo_wt(model::ModelConfig m, hw::ClusterSpec c, int pp) {
  SystemOptions o = gllm(std::move(m), std::move(c), pp);
  o.label = "gLLM w/o WT";
  o.throttle.enable_wt = false;
  return o;
}

SystemOptions SystemOptions::gllm_wo_ut(model::ModelConfig m, hw::ClusterSpec c, int pp) {
  SystemOptions o = gllm(std::move(m), std::move(c), pp);
  o.label = "gLLM w/o UT";
  o.throttle.enable_ut = false;
  return o;
}

SystemOptions SystemOptions::gllm_with_ck(model::ModelConfig m, hw::ClusterSpec c, int pp) {
  SystemOptions o = gllm(std::move(m), std::move(c), pp);
  o.label = "gLLM w/ CK";
  o.scheduler = SchedulerKind::kSarathi;
  return o;
}

SystemOptions SystemOptions::vllm(model::ModelConfig m, hw::ClusterSpec c, int pp) {
  SystemOptions o;
  o.label = "vLLM";
  o.model = std::move(m);
  o.cluster = std::move(c);
  o.pp = pp;
  o.scheduler = SchedulerKind::kSarathi;
  o.runtime = engine::RuntimeModel::vllm_like();
  return o;
}

SystemOptions SystemOptions::td_pipe(model::ModelConfig m, hw::ClusterSpec c, int pp) {
  SystemOptions o;
  o.label = "TD-Pipe";
  o.model = std::move(m);
  o.cluster = std::move(c);
  o.pp = pp;
  o.scheduler = SchedulerKind::kTdPipe;
  o.runtime = engine::RuntimeModel::gllm_async();
  return o;
}

SystemOptions SystemOptions::sglang(model::ModelConfig m, hw::ClusterSpec c, int tp) {
  SystemOptions o;
  o.label = "SGLang";
  o.model = std::move(m);
  o.cluster = std::move(c);
  o.pp = 1;
  o.tp = tp;
  o.scheduler = SchedulerKind::kSarathi;
  o.runtime = engine::RuntimeModel::sglang_like();
  return o;
}

}  // namespace gllm::serve
