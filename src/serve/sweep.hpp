#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "serve/options.hpp"
#include "workload/generator.hpp"

namespace gllm::serve {

/// One point of a latency/throughput curve (one system at one request rate).
struct SweepPoint {
  std::string system;
  double request_rate = 0.0;    ///< offered load, req/s
  std::size_t requests = 0;
  double mean_ttft = 0.0;
  double p99_ttft = 0.0;
  double mean_tpot = 0.0;
  double mean_e2el = 0.0;
  double throughput = 0.0;      ///< input+output tokens/s
  double utilization = 0.0;     ///< mean stage busy fraction
  double token_cv = 0.0;        ///< per-iteration batched-token volatility
  std::int64_t preemptions = 0;
  double slo = 0.0;             ///< filled by SLO studies
};

SweepPoint summarize(const SystemOptions& options, double rate,
                     const engine::RunResult& result);

/// Run `options` against a Poisson trace at `rate` req/s over `duration`
/// seconds of request sending (the paper fixes 128 s), deterministic in `seed`.
SweepPoint run_at_rate(const SystemOptions& options, const workload::WorkloadSpec& workload,
                       double rate, double duration, std::uint64_t seed,
                       engine::RunResult* raw = nullptr);

/// Latency/throughput curves: one point per rate (Figures 10 and 12).
std::vector<SweepPoint> rate_sweep(const SystemOptions& options,
                                   const workload::WorkloadSpec& workload,
                                   const std::vector<double>& rates, double duration,
                                   std::uint64_t seed);

/// Multi-seed replication: mean and (sample) standard deviation of the main
/// metrics across `n_seeds` independent workload draws. Use to attach error
/// bars to any figure point.
struct ReplicatedPoint {
  SweepPoint mean;
  SweepPoint stddev;
  int n_seeds = 0;
};
ReplicatedPoint replicate_at_rate(const SystemOptions& options,
                                  const workload::WorkloadSpec& workload, double rate,
                                  double duration, std::uint64_t base_seed, int n_seeds);

/// The paper's "maximum throughput" protocol (4.3): raise the request rate
/// until throughput stabilises; return the plateau (tokens/s).
struct MaxThroughputResult {
  double max_throughput = 0.0;
  double saturation_rate = 0.0;  ///< lowest rate achieving the plateau
  std::vector<SweepPoint> points;
};
MaxThroughputResult find_max_throughput(const SystemOptions& options,
                                        const workload::WorkloadSpec& workload,
                                        double start_rate, double duration,
                                        std::uint64_t seed,
                                        double growth = 1.30,
                                        double plateau_tolerance = 0.03);

}  // namespace gllm::serve
