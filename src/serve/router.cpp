#include "serve/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/system.hpp"
#include "util/rng.hpp"

namespace gllm::serve {

std::vector<workload::Trace> route_trace(const workload::Trace& trace, int replicas,
                                         RoutePolicy policy, std::uint64_t seed,
                                         double service_rate) {
  if (replicas <= 0) throw std::invalid_argument("route_trace: replicas must be > 0");
  if (service_rate <= 0) throw std::invalid_argument("route_trace: service_rate must be > 0");

  std::vector<workload::Trace> shards(static_cast<std::size_t>(replicas));
  util::Rng rng(seed);
  // kLeastWork state: outstanding token estimate per replica, drained at
  // service_rate tokens/s between arrivals.
  std::vector<double> outstanding(static_cast<std::size_t>(replicas), 0.0);
  double last_arrival = 0.0;
  std::size_t next_rr = 0;

  for (const auto& request : trace) {
    std::size_t target = 0;
    switch (policy) {
      case RoutePolicy::kRoundRobin:
        target = next_rr;
        next_rr = (next_rr + 1) % static_cast<std::size_t>(replicas);
        break;
      case RoutePolicy::kRandom:
        target = static_cast<std::size_t>(rng.uniform_int(0, replicas - 1));
        break;
      case RoutePolicy::kLeastWork: {
        const double elapsed = std::max(request.arrival - last_arrival, 0.0);
        for (double& w : outstanding) w = std::max(0.0, w - elapsed * service_rate);
        target = static_cast<std::size_t>(
            std::min_element(outstanding.begin(), outstanding.end()) -
            outstanding.begin());
        outstanding[target] += request.prompt_len + request.output_len;
        last_arrival = request.arrival;
        break;
      }
    }
    shards[target].push_back(request);
  }
  return shards;
}

DataParallelSystem::DataParallelSystem(DataParallelOptions options)
    : options_(std::move(options)) {
  if (options_.replicas <= 0)
    throw std::invalid_argument("DataParallelSystem: replicas must be > 0");
  // Fail fast if a replica deployment is invalid (model does not fit etc.).
  ServingSystem probe(options_.replica);
}

engine::RunResult DataParallelSystem::run(const workload::Trace& trace) {
  const auto shards =
      route_trace(trace, options_.replicas, options_.policy, options_.route_seed);
  std::vector<engine::RunResult> results;
  results.reserve(shards.size());
  for (const auto& shard : shards) {
    ServingSystem replica(options_.replica);
    results.push_back(replica.run(shard));
  }
  return merge_results(std::move(results));
}

engine::RunResult merge_results(std::vector<engine::RunResult> results) {
  engine::RunResult merged;
  if (results.empty()) return merged;

  bool any_request = false;
  for (auto& r : results) {
    if (!r.requests.empty()) {
      merged.start_time = any_request ? std::min(merged.start_time, r.start_time)
                                      : r.start_time;
      merged.end_time = any_request ? std::max(merged.end_time, r.end_time) : r.end_time;
      any_request = true;
    }
    merged.requests.insert(merged.requests.end(), r.requests.begin(), r.requests.end());
    merged.iterations.insert(merged.iterations.end(), r.iterations.begin(),
                             r.iterations.end());
    merged.busy_intervals.insert(merged.busy_intervals.end(), r.busy_intervals.begin(),
                                 r.busy_intervals.end());
    merged.stage_busy_seconds.insert(merged.stage_busy_seconds.end(),
                                     r.stage_busy_seconds.begin(),
                                     r.stage_busy_seconds.end());
    merged.preemptions += r.preemptions;
    merged.scheduler_invocations += r.scheduler_invocations;
    merged.kv.alloc_failures += r.kv.alloc_failures;
    merged.kv.blocks_allocated += r.kv.blocks_allocated;
    merged.kv.prefix_hit_tokens += r.kv.prefix_hit_tokens;
    merged.kv.peak_utilization = std::max(merged.kv.peak_utilization,
                                          r.kv.peak_utilization);
  }
  std::sort(merged.requests.begin(), merged.requests.end(),
            [](const engine::RequestMetrics& a, const engine::RequestMetrics& b) {
              return a.id < b.id;
            });
  std::sort(merged.iterations.begin(), merged.iterations.end(),
            [](const engine::IterationSample& a, const engine::IterationSample& b) {
              return a.time < b.time;
            });
  return merged;
}

}  // namespace gllm::serve
