#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "serve/sweep.hpp"

namespace gllm::serve {

/// Benchmark-report rendering: turns sweep points / run results into the
/// artifacts a serving evaluation ships — a human-readable markdown summary
/// and machine-readable CSV series (one row per point, one file per
/// comparison).
class ReportWriter {
 public:
  explicit ReportWriter(std::string title) : title_(std::move(title)) {}

  /// Add one comparison section (e.g. one Figure-10 panel).
  void add_section(std::string heading, std::vector<SweepPoint> points);

  /// Free-form commentary attached to the last-added section.
  void add_note(std::string note);

  /// GitHub-flavoured markdown: a table per section.
  void write_markdown(std::ostream& os) const;

  /// Flat CSV of every point: section,system,rate,ttft,...
  void write_csv(std::ostream& os) const;

  std::size_t section_count() const { return sections_.size(); }

 private:
  struct Section {
    std::string heading;
    std::vector<SweepPoint> points;
    std::vector<std::string> notes;
  };

  std::string title_;
  std::vector<Section> sections_;
};

/// Render a single RunResult as the CLI's per-request CSV (header included).
void write_request_csv(const engine::RunResult& result, std::ostream& os);

}  // namespace gllm::serve
