#pragma once

#include <string>

#include "engine/config.hpp"
#include "sched/fcfs.hpp"
#include "sched/sarathi.hpp"
#include "sched/td_pipe.hpp"
#include "sched/token_throttle.hpp"

namespace gllm::serve {

enum class SchedulerKind { kSarathi, kTokenThrottle, kFcfs, kTdPipe };

/// Full description of one serving system under test: deployment + policy +
/// runtime. The static factories encode the paper's evaluated schemes (4.1),
/// so benchmarks read like the paper's legend.
struct SystemOptions {
  std::string label = "system";
  model::ModelConfig model;
  hw::ClusterSpec cluster;
  int pp = 1;
  int tp = 1;
  SchedulerKind scheduler = SchedulerKind::kTokenThrottle;
  sched::ThrottleParams throttle;
  sched::SarathiParams sarathi;
  sched::FcfsParams fcfs;
  sched::TdPipeParams td_pipe_params;
  engine::RuntimeModel runtime = engine::RuntimeModel::gllm_async();
  double gpu_memory_util = 0.90;
  int kv_block_size = 16;
  bool prefix_caching = false;
  bool record_busy_intervals = false;  ///< Figure 4 utilization timelines
  bool cohort_pinning = false;         ///< vLLM-V0 virtual-engine pinning
  /// Speculative decoding (DES acceptance model): draft tokens per decode
  /// step (0 = off) and per-position acceptance probability. See
  /// engine::EngineConfig for semantics.
  int spec_lookahead = 0;
  double spec_acceptance = 0.0;
  std::uint64_t spec_seed = 1;
  /// Observability sink passed through to the engine (null = off).
  obs::Observability* obs = nullptr;

  engine::EngineConfig engine_config() const;

  // ---- Paper schemes -------------------------------------------------------

  /// gLLM: pipeline parallel, Token Throttling, asynchronous runtime.
  static SystemOptions gllm(model::ModelConfig m, hw::ClusterSpec c, int pp);
  /// gLLM w/o WT (ablation): UT + threshold only.
  static SystemOptions gllm_wo_wt(model::ModelConfig m, hw::ClusterSpec c, int pp);
  /// gLLM w/o UT (ablation): WT only.
  static SystemOptions gllm_wo_ut(model::ModelConfig m, hw::ClusterSpec c, int pp);
  /// gLLM w/ CK (ablation): Sarathi coupled scheduling on the gLLM runtime.
  static SystemOptions gllm_with_ck(model::ModelConfig m, hw::ClusterSpec c, int pp);
  /// vLLM baseline: pipeline parallel, Sarathi scheduling (budget 2048),
  /// serialized-metadata runtime.
  static SystemOptions vllm(model::ModelConfig m, hw::ClusterSpec c, int pp);
  /// SGLang baseline: tensor parallel, Sarathi mixed-chunk scheduling,
  /// low-overhead runtime.
  static SystemOptions sglang(model::ModelConfig m, hw::ClusterSpec c, int tp);
  /// TD-Pipe-style temporally-disaggregated pipeline scheduling (related
  /// work baseline: high offline throughput, decode stalls online).
  static SystemOptions td_pipe(model::ModelConfig m, hw::ClusterSpec c, int pp);
};

}  // namespace gllm::serve
