#pragma once

#include <cstdint>
#include <vector>

#include "engine/metrics.hpp"
#include "serve/options.hpp"
#include "workload/trace.hpp"

namespace gllm::serve {

/// Request routing across data-parallel replicas (the third basic strategy in
/// the paper's Figure 2). Policies operate on the arrival stream:
///  * kRoundRobin   — classic rotation;
///  * kLeastWork    — send each arrival to the replica with the least
///                    outstanding token work (prompt+output estimate with
///                    service-rate decay), a join-shortest-queue analogue;
///  * kRandom       — seeded uniform pick (the load-balancer baseline).
enum class RoutePolicy { kRoundRobin, kLeastWork, kRandom };

/// Split `trace` into one per-replica trace (arrival times preserved).
/// `service_rate` is the per-replica token throughput estimate used by
/// kLeastWork's outstanding-work decay.
std::vector<workload::Trace> route_trace(const workload::Trace& trace, int replicas,
                                         RoutePolicy policy, std::uint64_t seed = 17,
                                         double service_rate = 2000.0);

/// N identical serving replicas behind a router. Each replica is an
/// independent deployment (its own GPUs, KV pool and scheduler); the merged
/// result reports fleet-level metrics.
struct DataParallelOptions {
  SystemOptions replica;  ///< per-replica deployment (label is reused + suffixed)
  int replicas = 2;
  RoutePolicy policy = RoutePolicy::kLeastWork;
  std::uint64_t route_seed = 17;
};

class DataParallelSystem {
 public:
  explicit DataParallelSystem(DataParallelOptions options);

  engine::RunResult run(const workload::Trace& trace);

  const DataParallelOptions& options() const { return options_; }

 private:
  DataParallelOptions options_;
};

/// Merge per-replica results into a fleet-level view: requests unioned,
/// per-stage busy times concatenated, iteration traces interleaved by time.
engine::RunResult merge_results(std::vector<engine::RunResult> results);

}  // namespace gllm::serve
