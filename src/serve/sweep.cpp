#include "serve/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/system.hpp"
#include "util/stats.hpp"

namespace gllm::serve {

SweepPoint summarize(const SystemOptions& options, double rate,
                     const engine::RunResult& result) {
  SweepPoint p;
  p.system = options.label;
  p.request_rate = rate;
  p.requests = result.requests.size();
  p.mean_ttft = result.mean_ttft();
  p.p99_ttft = result.p99_ttft();
  p.mean_tpot = result.mean_tpot();
  p.mean_e2el = result.mean_e2el();
  p.throughput = result.throughput();
  p.utilization = result.mean_stage_utilization();
  p.token_cv = result.token_count_cv();
  p.preemptions = result.preemptions;
  return p;
}

SweepPoint run_at_rate(const SystemOptions& options, const workload::WorkloadSpec& workload,
                       double rate, double duration, std::uint64_t seed,
                       engine::RunResult* raw) {
  workload::TraceBuilder builder(workload, seed);
  workload::ArrivalProcess arrivals;
  arrivals.kind = workload::ArrivalProcess::Kind::kPoisson;
  arrivals.rate = rate;
  const workload::Trace trace = builder.generate_for_duration(arrivals, duration);

  ServingSystem system(options);
  engine::RunResult result = system.run(trace);
  SweepPoint point = summarize(options, rate, result);
  if (raw != nullptr) *raw = std::move(result);
  return point;
}

std::vector<SweepPoint> rate_sweep(const SystemOptions& options,
                                   const workload::WorkloadSpec& workload,
                                   const std::vector<double>& rates, double duration,
                                   std::uint64_t seed) {
  std::vector<SweepPoint> points;
  points.reserve(rates.size());
  for (double rate : rates) {
    points.push_back(run_at_rate(options, workload, rate, duration, seed));
  }
  return points;
}

ReplicatedPoint replicate_at_rate(const SystemOptions& options,
                                  const workload::WorkloadSpec& workload, double rate,
                                  double duration, std::uint64_t base_seed, int n_seeds) {
  if (n_seeds <= 0) throw std::invalid_argument("replicate_at_rate: n_seeds must be > 0");
  util::OnlineStats ttft, tpot, e2el, thr, util_s, cv;
  for (int i = 0; i < n_seeds; ++i) {
    const auto p = run_at_rate(options, workload, rate, duration,
                               base_seed + static_cast<std::uint64_t>(i) * 7919);
    ttft.add(p.mean_ttft);
    tpot.add(p.mean_tpot);
    e2el.add(p.mean_e2el);
    thr.add(p.throughput);
    util_s.add(p.utilization);
    cv.add(p.token_cv);
  }
  ReplicatedPoint out;
  out.n_seeds = n_seeds;
  out.mean.system = out.stddev.system = options.label;
  out.mean.request_rate = out.stddev.request_rate = rate;
  out.mean.mean_ttft = ttft.mean();
  out.stddev.mean_ttft = ttft.stddev();
  out.mean.mean_tpot = tpot.mean();
  out.stddev.mean_tpot = tpot.stddev();
  out.mean.mean_e2el = e2el.mean();
  out.stddev.mean_e2el = e2el.stddev();
  out.mean.throughput = thr.mean();
  out.stddev.throughput = thr.stddev();
  out.mean.utilization = util_s.mean();
  out.stddev.utilization = util_s.stddev();
  out.mean.token_cv = cv.mean();
  out.stddev.token_cv = cv.stddev();
  return out;
}

MaxThroughputResult find_max_throughput(const SystemOptions& options,
                                        const workload::WorkloadSpec& workload,
                                        double start_rate, double duration,
                                        std::uint64_t seed, double growth,
                                        double plateau_tolerance) {
  MaxThroughputResult out;
  double rate = start_rate;
  int flat_rounds = 0;
  // Stop after two consecutive rate increases fail to raise throughput by the
  // tolerance — the paper's "incrementally increasing request rates until
  // system throughput stabilizes".
  for (int i = 0; i < 24 && flat_rounds < 2; ++i) {
    SweepPoint p = run_at_rate(options, workload, rate, duration, seed);
    out.points.push_back(p);
    if (p.throughput > out.max_throughput * (1.0 + plateau_tolerance)) {
      out.max_throughput = std::max(out.max_throughput, p.throughput);
      out.saturation_rate = rate;
      flat_rounds = 0;
    } else {
      out.max_throughput = std::max(out.max_throughput, p.throughput);
      ++flat_rounds;
    }
    rate *= growth;
  }
  return out;
}

}  // namespace gllm::serve
