#include "serve/system.hpp"

#include <stdexcept>

namespace gllm::serve {

std::shared_ptr<sched::IScheduler> ServingSystem::make_scheduler(
    const SystemOptions& options) {
  switch (options.scheduler) {
    case SchedulerKind::kSarathi:
      return std::make_shared<sched::SarathiScheduler>(options.sarathi);
    case SchedulerKind::kTokenThrottle:
      return std::make_shared<sched::TokenThrottleScheduler>(options.throttle);
    case SchedulerKind::kFcfs:
      return std::make_shared<sched::FcfsScheduler>(options.fcfs);
    case SchedulerKind::kTdPipe:
      return std::make_shared<sched::TdPipeScheduler>(options.td_pipe_params);
  }
  throw std::invalid_argument("ServingSystem: unknown scheduler kind");
}

ServingSystem::ServingSystem(SystemOptions options)
    : options_(std::move(options)),
      engine_(options_.engine_config(), make_scheduler(options_)) {}

}  // namespace gllm::serve
