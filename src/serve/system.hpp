#pragma once

#include <memory>

#include "engine/pipeline_engine.hpp"
#include "serve/options.hpp"
#include "workload/trace.hpp"

namespace gllm::serve {

/// Top-level facade: one serving deployment, runnable against traces.
/// This is the public entry point the examples use.
class ServingSystem {
 public:
  explicit ServingSystem(SystemOptions options);

  engine::RunResult run(const workload::Trace& trace) { return engine_.run(trace); }

  const SystemOptions& options() const { return options_; }
  const engine::PipelineEngine& engine() const { return engine_; }

  /// Instantiate the policy configured in `options` (exposed so tests and
  /// microbenchmarks can drive schedulers directly).
  static std::shared_ptr<sched::IScheduler> make_scheduler(const SystemOptions& options);

 private:
  SystemOptions options_;
  engine::PipelineEngine engine_;
};

}  // namespace gllm::serve
