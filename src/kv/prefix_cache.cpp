#include "kv/prefix_cache.hpp"

namespace gllm::kv {

std::uint64_t chain_block_hash(std::uint64_t prev, std::span<const TokenId> block) {
  // FNV-1a over the token bytes, seeded by the previous block's hash so equal
  // blocks at different prompt offsets do not collide. Token values only —
  // see the stability contract in the header.
  std::uint64_t h = prev ^ 0xcbf29ce484222325ULL;
  for (TokenId t : block) {
    auto v = static_cast<std::uint64_t>(static_cast<std::uint32_t>(t));
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t prompt_prefix_hash(std::span<const TokenId> tokens,
                                 std::int64_t block_size) {
  if (block_size <= 0) return 0;
  const auto bs = static_cast<std::size_t>(block_size);
  std::uint64_t h = 0;
  for (std::size_t off = 0; off + bs <= tokens.size(); off += bs)
    h = chain_block_hash(h, tokens.subspan(off, bs));
  return h;
}

PrefixCache::Match PrefixCache::match_and_acquire(std::span<const TokenId> tokens) {
  ++lookups_;
  Match match;
  const auto block_size = static_cast<std::size_t>(allocator_.block_size());
  std::uint64_t h = 0;
  for (std::size_t off = 0; off + block_size <= tokens.size(); off += block_size) {
    h = chain_block_hash(h, tokens.subspan(off, block_size));
    auto it = by_hash_.find(h);
    if (it == by_hash_.end()) break;
    allocator_.add_ref(it->second.block);
    match.blocks.push_back(it->second.block);
    match.n_tokens += static_cast<std::int64_t>(block_size);
    // Refresh recency.
    lru_.erase(it->second.lru_it);
    lru_.push_front(h);
    it->second.lru_it = lru_.begin();
  }
  hit_tokens_ += match.n_tokens;
  return match;
}

void PrefixCache::insert(std::span<const TokenId> tokens, std::span<const BlockId> blocks) {
  const auto block_size = static_cast<std::size_t>(allocator_.block_size());
  std::uint64_t h = 0;
  std::size_t block_idx = 0;
  for (std::size_t off = 0; off + block_size <= tokens.size(); off += block_size, ++block_idx) {
    if (block_idx >= blocks.size()) break;
    h = chain_block_hash(h, tokens.subspan(off, block_size));
    if (by_hash_.contains(h)) continue;
    allocator_.add_ref(blocks[block_idx]);  // cache's own reference
    lru_.push_front(h);
    by_hash_.emplace(h, Entry{blocks[block_idx], lru_.begin()});
  }
}

bool PrefixCache::evict_one() {
  // Scan from least-recent; skip blocks still used by live sequences.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto entry_it = by_hash_.find(*it);
    if (entry_it == by_hash_.end()) continue;
    if (allocator_.ref_count(entry_it->second.block) == 1) {
      allocator_.release(entry_it->second.block);
      lru_.erase(std::next(it).base());
      by_hash_.erase(entry_it);
      return true;
    }
  }
  return false;
}

std::int64_t PrefixCache::evictable_blocks() const {
  std::int64_t n = 0;
  for (const auto& [hash, entry] : by_hash_) {
    if (allocator_.ref_count(entry.block) == 1) ++n;
  }
  return n;
}

}  // namespace gllm::kv
