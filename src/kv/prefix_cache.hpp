#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "kv/block_allocator.hpp"

namespace gllm::kv {

using TokenId = std::int32_t;

/// Chained per-block prompt hash: the hash of block k covers its tokens AND
/// every block before it (`prev` is block k-1's hash, 0 for the first block).
///
/// STABILITY CONTRACT: this is the identity prefix-aware routing keys on, so
/// it must be a pure function of the token *values* — never of pointers,
/// container addresses or anything ASLR-dependent — and must produce the same
/// value for the same tokens in every process, on every host, in every run.
/// (FNV-1a over the little-endian token words, seeded by `prev`.) Changing it
/// invalidates router affinity but nothing else; cached blocks never outlive
/// one process.
std::uint64_t chain_block_hash(std::uint64_t prev, std::span<const TokenId> block);

/// Hash of the longest whole-block prefix of `tokens` under `block_size`
/// (the chained hash of its last full block). 0 when the prompt is shorter
/// than one block — callers treat 0 as "no routable prefix". Shares
/// chain_block_hash with PrefixCache, so a router using this lands multi-turn
/// prompts exactly where their cached KV blocks live.
std::uint64_t prompt_prefix_hash(std::span<const TokenId> tokens,
                                 std::int64_t block_size);

/// Hash-chained prompt-prefix cache (the vLLM "automatic prefix caching"
/// scheme the paper integrates, §3.4).
///
/// Each *full* block of a prompt is identified by a chained hash of its
/// contents and everything before it. Cached blocks hold one reference from
/// the cache itself; sequences that reuse them take extra references. Blocks
/// whose only reference is the cache's are *evictable* and are reclaimed in
/// LRU order when the allocator runs dry.
///
/// The paper's main benchmarks disable prefix reuse for fairness; this class
/// exists because gLLM ships it as a feature, and the extension benchmarks
/// ablate it.
class PrefixCache {
 public:
  explicit PrefixCache(BlockAllocator& allocator) : allocator_(allocator) {}

  /// Longest cached prefix of `tokens` in whole blocks. Takes a reference on
  /// every matched block on behalf of the caller and refreshes LRU order.
  struct Match {
    std::vector<BlockId> blocks;
    std::int64_t n_tokens = 0;
  };
  Match match_and_acquire(std::span<const TokenId> tokens);

  /// Register the (already computed) full blocks of `tokens`. `blocks` is the
  /// sequence's complete block list; only full blocks are cached. Idempotent:
  /// already-cached hashes are skipped.
  void insert(std::span<const TokenId> tokens, std::span<const BlockId> blocks);

  /// Evict the least recently used block that only the cache references.
  /// Returns false when nothing is evictable.
  bool evict_one();

  /// Blocks that could be reclaimed right now.
  std::int64_t evictable_blocks() const;

  std::size_t size() const { return by_hash_.size(); }

  // Telemetry.
  std::int64_t hit_tokens() const { return hit_tokens_; }
  std::int64_t lookups() const { return lookups_; }

 private:
  struct Entry {
    BlockId block;
    std::list<std::uint64_t>::iterator lru_it;
  };

  BlockAllocator& allocator_;
  std::unordered_map<std::uint64_t, Entry> by_hash_;
  std::list<std::uint64_t> lru_;  // front == most recent
  std::int64_t hit_tokens_ = 0;
  std::int64_t lookups_ = 0;
};

}  // namespace gllm::kv
