#include "kv/block_allocator.hpp"

#include <stdexcept>

namespace gllm::kv {

BlockAllocator::BlockAllocator(std::int32_t total_blocks, int block_size_tokens)
    : total_(total_blocks), block_size_(block_size_tokens) {
  if (total_blocks < 0) throw std::invalid_argument("BlockAllocator: negative pool size");
  if (block_size_tokens <= 0)
    throw std::invalid_argument("BlockAllocator: block size must be > 0");
  ref_counts_.assign(static_cast<std::size_t>(total_), 0);
  free_.reserve(static_cast<std::size_t>(total_));
  // Populate so that block 0 is handed out first (pop from the back).
  for (BlockId id = total_ - 1; id >= 0; --id) free_.push_back(id);
}

std::optional<BlockId> BlockAllocator::allocate() {
  if (free_.empty()) return std::nullopt;
  const BlockId id = free_.back();
  free_.pop_back();
  ref_counts_[static_cast<std::size_t>(id)] = 1;
  return id;
}

void BlockAllocator::check_live(BlockId id) const {
  if (id < 0 || id >= total_)
    throw std::out_of_range("BlockAllocator: block id out of range");
  if (ref_counts_[static_cast<std::size_t>(id)] == 0)
    throw std::logic_error("BlockAllocator: operation on a free block");
}

void BlockAllocator::add_ref(BlockId id) {
  check_live(id);
  ++ref_counts_[static_cast<std::size_t>(id)];
}

int BlockAllocator::release(BlockId id) {
  check_live(id);
  int& count = ref_counts_[static_cast<std::size_t>(id)];
  if (--count == 0) free_.push_back(id);
  return count;
}

int BlockAllocator::ref_count(BlockId id) const {
  if (id < 0 || id >= total_)
    throw std::out_of_range("BlockAllocator: block id out of range");
  return ref_counts_[static_cast<std::size_t>(id)];
}

}  // namespace gllm::kv
