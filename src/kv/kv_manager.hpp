#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "kv/block_allocator.hpp"
#include "kv/page_table.hpp"
#include "kv/prefix_cache.hpp"

namespace gllm::kv {

using SeqId = std::int64_t;

/// Counters the schedulers and reports consume.
struct KvStats {
  std::int64_t alloc_failures = 0;   ///< allocate() calls that returned false
  std::int64_t blocks_allocated = 0;
  std::int64_t prefix_hit_tokens = 0;
  double peak_utilization = 0.0;     ///< max fraction of blocks in use
};

/// Unified paged KV-cache manager, shared by all pipeline stages.
///
/// The paper (3.3): "The driver worker is responsible for the KV cache
/// management and all the workers share the page tables like vLLM"; the KV
/// free rate it exposes is the input to UT throttling (eq. 2/3).
///
/// Capacity is expressed in tokens; each stage stores its own layers' K/V for
/// every resident token, so one logical token consumes one slot in each
/// stage's physical pool — a single allocator models all of them.
class KvManager {
 public:
  KvManager(std::int64_t capacity_tokens, int block_size, bool prefix_caching = false);

  int block_size() const { return allocator_.block_size(); }
  std::int64_t capacity_tokens() const;
  std::int64_t total_blocks() const { return allocator_.total_blocks(); }
  std::int64_t free_blocks() const { return allocator_.free_blocks(); }

  /// KV_free in the paper's equations: reclaimable fraction of the pool
  /// (free blocks plus evictable cached blocks).
  double free_rate() const;
  double utilization() const { return 1.0 - free_rate(); }

  /// Tokens that can still be admitted before the pool is exhausted
  /// (conservative: whole free blocks only).
  std::int64_t free_token_capacity() const;

  bool has(SeqId id) const { return tables_.contains(id); }
  std::int64_t seq_tokens(SeqId id) const;
  const PageTable& table(SeqId id) const;

  /// Would allocate(id, n_new) succeed right now (counting evictable blocks)?
  bool can_allocate(SeqId id, std::int64_t n_new) const;

  /// Extend `id`'s cache by `n_new` tokens. All-or-nothing; returns false and
  /// leaves state unchanged when the pool (after eviction) cannot satisfy it.
  bool allocate(SeqId id, std::int64_t n_new);

  /// Prompt admission with prefix reuse: matches the longest cached prefix of
  /// `tokens`, adopts those blocks, allocates the rest. Returns the number of
  /// reused tokens, or -1 (state unchanged) when capacity is insufficient.
  /// Only valid for sequences without existing KV.
  std::int64_t allocate_prompt(SeqId id, std::span<const TokenId> tokens);

  /// Adopt only the cached prefix of `tokens` (no new allocation), capped at
  /// `max_tokens` (rounded down to whole blocks). Returns the reused token
  /// count (0 when caching is off or nothing matches). Only valid for
  /// sequences without existing KV; the caller then extends with allocate().
  std::int64_t adopt_cached_prefix(SeqId id, std::span<const TokenId> tokens,
                                   std::int64_t max_tokens);

  /// Register a finished prompt's full blocks for future reuse (no-op unless
  /// prefix caching is enabled).
  void register_prefix(SeqId id, std::span<const TokenId> tokens);

  /// Release all of `id`'s blocks (preemption or completion).
  void free_seq(SeqId id);

  /// Drop the trailing `n_tokens` of `id`'s cache (speculative-decode
  /// rollback), releasing any block that no longer holds a live token.
  /// Refcount-correct for blocks shared with the prefix cache: release only
  /// drops this sequence's reference. Returns the number of blocks freed from
  /// this table (0 for an unknown sequence); `n_tokens` is clamped.
  std::int64_t rollback(SeqId id, std::int64_t n_tokens);

  const KvStats& stats() const { return stats_; }
  const PrefixCache* prefix_cache() const { return prefix_.get(); }

 private:
  bool reclaim_one();
  void note_utilization();

  BlockAllocator allocator_;
  std::unique_ptr<PrefixCache> prefix_;
  std::unordered_map<SeqId, PageTable> tables_;
  KvStats stats_;
};

}  // namespace gllm::kv
