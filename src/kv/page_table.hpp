#pragma once

#include <cstdint>
#include <vector>

#include "kv/block_allocator.hpp"

namespace gllm::kv {

/// Logical-to-physical block mapping of one sequence's KV cache.
///
/// Token `i` lives in physical block `blocks()[i / block_size]` at slot
/// `i % block_size`. All pipeline stages share one page table (the paper:
/// "all the workers share the page tables like vLLM"), so this structure is
/// stage-agnostic.
class PageTable {
 public:
  explicit PageTable(int block_size) : block_size_(block_size) {}

  int block_size() const { return block_size_; }
  std::int64_t n_tokens() const { return n_tokens_; }
  const std::vector<BlockId>& blocks() const { return blocks_; }

  /// Blocks that must be appended to store `n_new` more tokens.
  std::int64_t blocks_needed(std::int64_t n_new) const;

  /// Record `n_new` tokens; `fresh_blocks` must be exactly blocks_needed(n_new).
  void append(std::int64_t n_new, const std::vector<BlockId>& fresh_blocks);

  /// Adopt pre-populated (prefix-cached) blocks; only valid while empty.
  void adopt_prefix(const std::vector<BlockId>& cached, std::int64_t n_cached_tokens);

  /// Physical block holding token index `i`.
  BlockId block_of(std::int64_t token_index) const;

  /// Drop the trailing `n` tokens (speculative-decode rollback). Returns the
  /// blocks that no longer hold any of this table's tokens, in pop order; the
  /// caller owns releasing them back to the allocator. `n` is clamped to
  /// n_tokens().
  std::vector<BlockId> truncate(std::int64_t n);

  /// Free capacity in the final block (0 when exactly full or empty).
  int slack() const;

  void clear() {
    blocks_.clear();
    n_tokens_ = 0;
  }

 private:
  int block_size_;
  std::int64_t n_tokens_ = 0;
  std::vector<BlockId> blocks_;
};

}  // namespace gllm::kv
