#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace gllm::kv {

using BlockId = std::int32_t;
inline constexpr BlockId kInvalidBlock = -1;

/// Fixed-pool allocator of KV-cache blocks with reference counting.
///
/// Reference counts support prefix sharing (vLLM-style): a block cached by
/// the prefix cache and referenced by two sequences has refcount 3. A block
/// returns to the free list only when its count reaches zero.
class BlockAllocator {
 public:
  BlockAllocator(std::int32_t total_blocks, int block_size_tokens);

  /// Allocate a block with refcount 1; std::nullopt when the pool is empty.
  std::optional<BlockId> allocate();

  /// Increment the reference count of a live block.
  void add_ref(BlockId id);

  /// Decrement; the block is freed when the count reaches zero.
  /// Returns the remaining count.
  int release(BlockId id);

  int ref_count(BlockId id) const;

  std::int32_t total_blocks() const { return total_; }
  std::int32_t free_blocks() const { return static_cast<std::int32_t>(free_.size()); }
  std::int32_t used_blocks() const { return total_ - free_blocks(); }
  int block_size() const { return block_size_; }

  double free_fraction() const {
    return total_ ? static_cast<double>(free_blocks()) / total_ : 0.0;
  }

 private:
  void check_live(BlockId id) const;

  std::int32_t total_;
  int block_size_;
  std::vector<BlockId> free_;     // LIFO free list
  std::vector<int> ref_counts_;   // 0 == free
};

}  // namespace gllm::kv
