#include "kv/page_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace gllm::kv {

std::int64_t PageTable::blocks_needed(std::int64_t n_new) const {
  if (n_new < 0) throw std::invalid_argument("PageTable::blocks_needed: negative count");
  const std::int64_t total_after = n_tokens_ + n_new;
  const std::int64_t blocks_after = (total_after + block_size_ - 1) / block_size_;
  return blocks_after - static_cast<std::int64_t>(blocks_.size());
}

void PageTable::append(std::int64_t n_new, const std::vector<BlockId>& fresh_blocks) {
  if (static_cast<std::int64_t>(fresh_blocks.size()) != blocks_needed(n_new))
    throw std::invalid_argument("PageTable::append: wrong number of fresh blocks");
  blocks_.insert(blocks_.end(), fresh_blocks.begin(), fresh_blocks.end());
  n_tokens_ += n_new;
}

void PageTable::adopt_prefix(const std::vector<BlockId>& cached,
                             std::int64_t n_cached_tokens) {
  if (n_tokens_ != 0 || !blocks_.empty())
    throw std::logic_error("PageTable::adopt_prefix: table not empty");
  if (n_cached_tokens != static_cast<std::int64_t>(cached.size()) * block_size_)
    throw std::invalid_argument("PageTable::adopt_prefix: prefix must be whole blocks");
  blocks_ = cached;
  n_tokens_ = n_cached_tokens;
}

BlockId PageTable::block_of(std::int64_t token_index) const {
  if (token_index < 0 || token_index >= n_tokens_)
    throw std::out_of_range("PageTable::block_of: token index out of range");
  return blocks_[static_cast<std::size_t>(token_index / block_size_)];
}

std::vector<BlockId> PageTable::truncate(std::int64_t n) {
  if (n < 0) throw std::invalid_argument("PageTable::truncate: negative count");
  n = std::min(n, n_tokens_);
  n_tokens_ -= n;
  const std::int64_t keep =
      n_tokens_ == 0 ? 0 : (n_tokens_ + block_size_ - 1) / block_size_;
  std::vector<BlockId> popped;
  while (static_cast<std::int64_t>(blocks_.size()) > keep) {
    popped.push_back(blocks_.back());
    blocks_.pop_back();
  }
  return popped;
}

int PageTable::slack() const {
  const std::int64_t capacity = static_cast<std::int64_t>(blocks_.size()) * block_size_;
  return static_cast<int>(capacity - n_tokens_);
}

}  // namespace gllm::kv
