#include "kv/kv_manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gllm::kv {

namespace {
std::int32_t blocks_for_capacity(std::int64_t capacity_tokens, int block_size) {
  if (capacity_tokens < 0) throw std::invalid_argument("KvManager: negative capacity");
  if (block_size <= 0) throw std::invalid_argument("KvManager: block size must be > 0");
  const std::int64_t blocks = capacity_tokens / block_size;
  // Reject instead of silently truncating: a wrapped int32 would size the
  // allocator to garbage (possibly negative) for absurd capacity/block ratios.
  if (blocks > std::numeric_limits<std::int32_t>::max())
    throw std::invalid_argument("KvManager: capacity exceeds 2^31-1 blocks");
  return static_cast<std::int32_t>(blocks);
}
}  // namespace

KvManager::KvManager(std::int64_t capacity_tokens, int block_size, bool prefix_caching)
    : allocator_(blocks_for_capacity(capacity_tokens, block_size), block_size) {
  if (prefix_caching) prefix_ = std::make_unique<PrefixCache>(allocator_);
}

std::int64_t KvManager::capacity_tokens() const {
  return static_cast<std::int64_t>(allocator_.total_blocks()) * allocator_.block_size();
}

double KvManager::free_rate() const {
  if (allocator_.total_blocks() == 0) return 0.0;
  std::int64_t reclaimable = allocator_.free_blocks();
  if (prefix_) reclaimable += prefix_->evictable_blocks();
  return static_cast<double>(reclaimable) / allocator_.total_blocks();
}

std::int64_t KvManager::free_token_capacity() const {
  std::int64_t reclaimable = allocator_.free_blocks();
  if (prefix_) reclaimable += prefix_->evictable_blocks();
  return reclaimable * allocator_.block_size();
}

std::int64_t KvManager::seq_tokens(SeqId id) const {
  const auto it = tables_.find(id);
  return it == tables_.end() ? 0 : it->second.n_tokens();
}

const PageTable& KvManager::table(SeqId id) const {
  const auto it = tables_.find(id);
  if (it == tables_.end()) throw std::out_of_range("KvManager::table: unknown sequence");
  return it->second;
}

bool KvManager::can_allocate(SeqId id, std::int64_t n_new) const {
  const auto it = tables_.find(id);
  const std::int64_t needed = it == tables_.end()
                                  ? (n_new + block_size() - 1) / block_size()
                                  : it->second.blocks_needed(n_new);
  std::int64_t reclaimable = allocator_.free_blocks();
  if (prefix_) reclaimable += prefix_->evictable_blocks();
  return needed <= reclaimable;
}

bool KvManager::reclaim_one() { return prefix_ && prefix_->evict_one(); }

void KvManager::note_utilization() {
  const double util =
      allocator_.total_blocks()
          ? static_cast<double>(allocator_.used_blocks()) / allocator_.total_blocks()
          : 0.0;
  stats_.peak_utilization = std::max(stats_.peak_utilization, util);
}

bool KvManager::allocate(SeqId id, std::int64_t n_new) {
  if (n_new < 0) throw std::invalid_argument("KvManager::allocate: negative token count");
  auto [it, inserted] = tables_.try_emplace(id, block_size());
  PageTable& pt = it->second;
  const std::int64_t needed = pt.blocks_needed(n_new);

  std::vector<BlockId> fresh;
  fresh.reserve(static_cast<std::size_t>(needed));
  for (std::int64_t i = 0; i < needed; ++i) {
    auto block = allocator_.allocate();
    while (!block && reclaim_one()) block = allocator_.allocate();
    if (!block) {
      for (BlockId b : fresh) allocator_.release(b);
      if (inserted) tables_.erase(it);
      ++stats_.alloc_failures;
      return false;
    }
    fresh.push_back(*block);
  }
  pt.append(n_new, fresh);
  stats_.blocks_allocated += needed;
  note_utilization();
  return true;
}

std::int64_t KvManager::allocate_prompt(SeqId id, std::span<const TokenId> tokens) {
  if (has(id) && tables_.at(id).n_tokens() > 0)
    throw std::logic_error("KvManager::allocate_prompt: sequence already has KV");

  PrefixCache::Match match;
  if (prefix_) match = prefix_->match_and_acquire(tokens);

  const std::int64_t remaining = static_cast<std::int64_t>(tokens.size()) - match.n_tokens;
  auto [it, inserted] = tables_.try_emplace(id, block_size());
  PageTable& pt = it->second;
  if (match.n_tokens > 0) pt.adopt_prefix(match.blocks, match.n_tokens);

  std::vector<BlockId> fresh;
  const std::int64_t needed = pt.blocks_needed(remaining);
  fresh.reserve(static_cast<std::size_t>(needed));
  for (std::int64_t i = 0; i < needed; ++i) {
    auto block = allocator_.allocate();
    while (!block && reclaim_one()) block = allocator_.allocate();
    if (!block) {
      for (BlockId b : fresh) allocator_.release(b);
      for (BlockId b : match.blocks) allocator_.release(b);
      tables_.erase(it);
      ++stats_.alloc_failures;
      return -1;
    }
    fresh.push_back(*block);
  }
  pt.append(remaining, fresh);
  stats_.blocks_allocated += needed;
  stats_.prefix_hit_tokens += match.n_tokens;
  note_utilization();
  return match.n_tokens;
}

std::int64_t KvManager::adopt_cached_prefix(SeqId id, std::span<const TokenId> tokens,
                                            std::int64_t max_tokens) {
  if (!prefix_) return 0;
  if (has(id) && tables_.at(id).n_tokens() > 0)
    throw std::logic_error("KvManager::adopt_cached_prefix: sequence already has KV");

  PrefixCache::Match match = prefix_->match_and_acquire(tokens);
  // Cap the adoption (e.g. the last prompt token must still be computed so
  // logits exist) to whole blocks; release refs on the surplus. The popped
  // tail block may be partially filled, so credit its actual token count —
  // subtracting a full block_size() would under-credit prefix_hit_tokens and
  // desynchronise n_tokens from the surviving blocks.
  const std::int64_t max_blocks = std::max<std::int64_t>(max_tokens, 0) / block_size();
  while (static_cast<std::int64_t>(match.blocks.size()) > max_blocks) {
    const std::int64_t tail =
        match.n_tokens -
        static_cast<std::int64_t>(match.blocks.size() - 1) * block_size();
    allocator_.release(match.blocks.back());
    match.blocks.pop_back();
    match.n_tokens -= tail;
  }
  if (match.n_tokens <= 0) {
    // Still-held refs on any remaining matched blocks must be released, or
    // they leak and the blocks become unreclaimable.
    for (BlockId b : match.blocks) allocator_.release(b);
    return 0;
  }

  auto [it, inserted] = tables_.try_emplace(id, block_size());
  it->second.adopt_prefix(match.blocks, match.n_tokens);
  stats_.prefix_hit_tokens += match.n_tokens;
  note_utilization();
  return match.n_tokens;
}

void KvManager::register_prefix(SeqId id, std::span<const TokenId> tokens) {
  if (!prefix_) return;
  const auto it = tables_.find(id);
  if (it == tables_.end()) throw std::out_of_range("KvManager::register_prefix: unknown sequence");
  prefix_->insert(tokens, it->second.blocks());
}

std::int64_t KvManager::rollback(SeqId id, std::int64_t n_tokens) {
  if (n_tokens < 0)
    throw std::invalid_argument("KvManager::rollback: negative token count");
  const auto it = tables_.find(id);
  if (it == tables_.end()) return 0;
  const auto popped = it->second.truncate(n_tokens);
  for (BlockId b : popped) allocator_.release(b);
  if (it->second.n_tokens() == 0) tables_.erase(it);
  return static_cast<std::int64_t>(popped.size());
}

void KvManager::free_seq(SeqId id) {
  const auto it = tables_.find(id);
  if (it == tables_.end()) return;
  for (BlockId b : it->second.blocks()) allocator_.release(b);
  tables_.erase(it);
}

}  // namespace gllm::kv
