#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gllm::tensor {

/// Minimal owning row-major float tensor (1-3 dims). The CPU runtime computes
/// in fp32; this is deliberately simple — contiguous storage, no views with
/// strides, bounds-checked accessors in debug paths.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::int64_t> shape);
  static Tensor zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& at(std::int64_t i) { return data_[check(i, numel())]; }
  float at(std::int64_t i) const { return data_[check(i, numel())]; }
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;

  /// Row `i` of a 2-D tensor.
  std::span<float> row(std::int64_t i);
  std::span<const float> row(std::int64_t i) const;

  void fill(float v);

  /// Reinterpret as a new shape with the same element count.
  void reshape(std::vector<std::int64_t> shape);

 private:
  static std::size_t check(std::int64_t i, std::int64_t n);

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace gllm::tensor
