#include "tensor/tensor.hpp"

#include <stdexcept>

namespace gllm::tensor {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

std::int64_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("Tensor::dim: index out of range");
  return shape_[i];
}

std::size_t Tensor::check(std::int64_t i, std::int64_t n) {
  if (i < 0 || i >= n) throw std::out_of_range("Tensor: index out of range");
  return static_cast<std::size_t>(i);
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  if (rank() != 2) throw std::logic_error("Tensor::at(i,j): not 2-D");
  return data_[check(i, dim(0)) * static_cast<std::size_t>(dim(1)) + check(j, dim(1))];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

std::span<float> Tensor::row(std::int64_t i) {
  if (rank() != 2) throw std::logic_error("Tensor::row: not 2-D");
  const auto cols = static_cast<std::size_t>(dim(1));
  return {data_.data() + check(i, dim(0)) * cols, cols};
}

std::span<const float> Tensor::row(std::int64_t i) const {
  return const_cast<Tensor*>(this)->row(i);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(std::vector<std::int64_t> shape) {
  if (shape_numel(shape) != numel())
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  shape_ = std::move(shape);
}

}  // namespace gllm::tensor
