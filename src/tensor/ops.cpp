#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "util/threadpool.hpp"

namespace gllm::tensor {

void matmul_nt(const Tensor& x, const Tensor& w, Tensor& y) {
  if (x.rank() != 2 || w.rank() != 2 || y.rank() != 2)
    throw std::invalid_argument("matmul_nt: tensors must be 2-D");
  const std::int64_t m = x.dim(0), k = x.dim(1), n = w.dim(0);
  if (w.dim(1) != k || y.dim(0) != m || y.dim(1) != n)
    throw std::invalid_argument("matmul_nt: shape mismatch");

  const float* xd = x.data();
  const float* wd = w.data();
  float* yd = y.data();

  // Parallelise over the flattened (row, out-feature) space so both tall
  // (prefill) and wide (lm head) shapes scale; each output element is an
  // independent sequential dot product — deterministic regardless of split.
  const auto total = static_cast<std::size_t>(m * n);
  util::ThreadPool::shared().parallel_for(
      0, total,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          const std::size_t mi = idx / static_cast<std::size_t>(n);
          const std::size_t ni = idx % static_cast<std::size_t>(n);
          const float* xrow = xd + mi * static_cast<std::size_t>(k);
          const float* wrow = wd + ni * static_cast<std::size_t>(k);
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += xrow[kk] * wrow[kk];
          yd[idx] = acc;
        }
      },
      /*grain=*/256);
}

void rmsnorm_row(std::span<const float> x, std::span<const float> gamma, float eps,
                 std::span<float> out) {
  if (x.size() != gamma.size() || x.size() != out.size())
    throw std::invalid_argument("rmsnorm_row: size mismatch");
  double ss = 0.0;
  for (float v : x) ss += static_cast<double>(v) * v;
  const auto scale =
      static_cast<float>(1.0 / std::sqrt(ss / static_cast<double>(x.size()) + eps));
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * scale * gamma[i];
}

void softmax_inplace(std::span<float> row) {
  if (row.empty()) return;
  float mx = row[0];
  for (float v : row) mx = std::max(mx, v);
  double sum = 0.0;
  for (float& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (float& v : row) v *= inv;
}

void swiglu_row(std::span<const float> gate, std::span<const float> up,
                std::span<float> out) {
  if (gate.size() != up.size() || gate.size() != out.size())
    throw std::invalid_argument("swiglu_row: size mismatch");
  for (std::size_t i = 0; i < gate.size(); ++i) {
    const float g = gate[i];
    const float silu = g / (1.0f + std::exp(-g));
    out[i] = silu * up[i];
  }
}

void rope_row(std::span<float> qk, int heads, int head_dim, std::int64_t pos,
              float theta) {
  if (head_dim % 2 != 0) throw std::invalid_argument("rope_row: head_dim must be even");
  if (qk.size() != static_cast<std::size_t>(heads) * head_dim)
    throw std::invalid_argument("rope_row: size mismatch");
  const int half = head_dim / 2;
  for (int h = 0; h < heads; ++h) {
    float* head = qk.data() + static_cast<std::size_t>(h) * head_dim;
    for (int i = 0; i < half; ++i) {
      const double freq = std::pow(static_cast<double>(theta), -2.0 * i / head_dim);
      const double angle = static_cast<double>(pos) * freq;
      const auto c = static_cast<float>(std::cos(angle));
      const auto s = static_cast<float>(std::sin(angle));
      const float a = head[i];
      const float b = head[i + half];
      head[i] = a * c - b * s;
      head[i + half] = a * s + b * c;
    }
  }
}

void add_inplace(std::span<float> out, std::span<const float> a) {
  if (out.size() != a.size()) throw std::invalid_argument("add_inplace: size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += a[i];
}

std::int64_t argmax(std::span<const float> row) {
  if (row.empty()) throw std::invalid_argument("argmax: empty row");
  std::size_t best = 0;
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i] > row[best]) best = i;
  }
  return static_cast<std::int64_t>(best);
}

}  // namespace gllm::tensor
