#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace gllm::tensor {

/// Numeric kernels for the CPU transformer.
///
/// Determinism contract: every output row is computed from its inputs with a
/// fixed sequential reduction order, independent of how rows are batched or
/// which thread computes them. This is what makes the pipeline runtime's
/// chunked/batched execution produce bit-identical tokens to the
/// single-stage reference (the reproduction's stand-in for the paper's
/// MMLU-pro output-quality parity check).

/// y[m, n] = sum_k x[m, k] * w[n, k]   (linear layer with row-major weights,
/// i.e. C = X * W^T). Parallelised over output rows via the shared pool.
void matmul_nt(const Tensor& x, const Tensor& w, Tensor& y);

/// Row-wise RMSNorm: out = x / sqrt(mean(x^2) + eps) * gamma.
void rmsnorm_row(std::span<const float> x, std::span<const float> gamma, float eps,
                 std::span<float> out);

/// In-place numerically-stable softmax over a row.
void softmax_inplace(std::span<float> row);

/// SiLU(gate) * up, elementwise into out.
void swiglu_row(std::span<const float> gate, std::span<const float> up,
                std::span<float> out);

/// Rotary position embedding applied in-place to one row of `heads` heads of
/// width `head_dim` at sequence position `pos` (Llama pairing: i, i+dim/2).
void rope_row(std::span<float> qk, int heads, int head_dim, std::int64_t pos,
              float theta = 10000.0f);

/// out += a (elementwise); sizes must match.
void add_inplace(std::span<float> out, std::span<const float> a);

/// Index of the maximum element (first on ties) — greedy sampling.
std::int64_t argmax(std::span<const float> row);

}  // namespace gllm::tensor
