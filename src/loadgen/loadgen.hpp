#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "workload/generator.hpp"

namespace gllm::loadgen {

/// Load-generator configuration. Two drive modes:
///  - kClosedLoop: `connections` workers, each holding exactly one request in
///    flight — completions gate arrivals, so the offered load self-adjusts to
///    the server's capacity (latency-vs-concurrency measurements).
///  - kOpenLoop: arrivals follow the workload trace's arrival process
///    (Poisson by default) regardless of completions — the paper's
///    cloud-serving scenario, where a saturated server grows a backlog and
///    sheds (throughput/SLO-vs-rate measurements).
struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;

  enum class Mode { kClosedLoop, kOpenLoop };
  Mode mode = Mode::kClosedLoop;

  int connections = 16;      ///< closed-loop concurrency / open-loop in-flight cap
  std::size_t requests = 64; ///< total requests to issue
  double rate = 32.0;        ///< open-loop arrival rate (requests/s)
  workload::ArrivalProcess::Kind arrivals = workload::ArrivalProcess::Kind::kPoisson;

  /// Request shape: prompt/output token counts drawn from `spec` with `seed`;
  /// prompt token ids are deterministic in (seed, request index) and bounded
  /// by `vocab`.
  workload::WorkloadSpec spec = workload::WorkloadSpec::tiny();
  std::uint64_t seed = 42;
  int vocab = 256;

  bool stream = true;       ///< SSE client (per-token TTFT/TPOT) vs unary POST
  double timeout_s = 120.0; ///< per-request wall-clock budget

  /// 503 handling: with max_retries > 0 a shed request is re-driven after
  /// honouring the response's Retry-After header (capped by
  /// max_retry_wait_s; 1s when the header is absent). Retries are counted
  /// separately in the report — a request only lands in `shed` once every
  /// retry was refused too.
  int max_retries = 0;
  double max_retry_wait_s = 5.0;

  /// Record every generated token id per request (LoadgenReport::tokens) —
  /// the raw material for byte/token-identity diffs across runs (e.g. the
  /// router failover check in tools/smoke_router.sh).
  bool collect_tokens = false;
};

/// Aggregated outcome of one load-generation run. Latencies are recorded per
/// completed request: TTFT (first token), TPOT (mean inter-token gap of one
/// request), E2EL (request end-to-end); all seconds.
struct LoadgenReport {
  std::size_t requested = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;    ///< 503 responses (admission shedding / degraded)
  std::size_t errors = 0;  ///< transport failures and non-200/503 statuses
  std::size_t retries = 0; ///< 503s re-driven after honouring Retry-After
  double duration_s = 0.0;
  double throughput_rps = 0.0;       ///< completed / duration
  std::size_t output_tokens = 0;     ///< generated tokens across completed requests
  double output_tokens_per_s = 0.0;  ///< generated tokens / duration
  double mean_output_len = 0.0;      ///< generated tokens / completed requests
  util::SampleStats ttft_s;
  util::SampleStats tpot_s;
  util::SampleStats e2el_s;

  /// Per-request (id, generated token ids) of completed requests, in request
  /// order; only populated with LoadgenOptions::collect_tokens.
  std::vector<std::pair<std::int64_t, std::vector<int>>> tokens;

  /// Render as a self-contained JSON object (the gllm_loadgen output and the
  /// per-point payload of BENCH_serving.json).
  std::string json() const;
};

/// Drive `POST /v1/completions` per `options` and aggregate the report.
/// Blocks until every request has completed, failed, or timed out.
LoadgenReport run(const LoadgenOptions& options);

}  // namespace gllm::loadgen
