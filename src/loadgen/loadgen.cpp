#include "loadgen/loadgen.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <semaphore>
#include <sstream>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "util/rng.hpp"

namespace gllm::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Outcome of one driven request.
struct RequestResult {
  int status = -1;       ///< HTTP status, -1 on transport failure
  std::size_t tokens = 0;
  double ttft = -1.0;    ///< first token (stream) / full response (unary)
  double tpot = -1.0;    ///< mean inter-token gap, streams with >= 2 tokens
  double e2el = -1.0;
  bool ok = false;
  double retry_after = -1.0;    ///< Retry-After seconds on a 503, else -1
  std::vector<int> token_ids;   ///< with LoadgenOptions::collect_tokens
};

std::string build_body(std::int64_t id, const std::vector<int>& prompt, int max_tokens,
                       bool stream) {
  std::ostringstream oss;
  oss << "{\"id\":" << id << ",\"prompt\":[";
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    if (i) oss << ",";
    oss << prompt[i];
  }
  oss << "],\"max_tokens\":" << max_tokens
      << ",\"stream\":" << (stream ? "true" : "false") << "}";
  return oss.str();
}

int parse_status(const std::string& head) {
  const auto sp = head.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(head.c_str() + sp + 1);
}

double parse_retry_after(const std::string& head) {
  const auto pos = head.find("Retry-After:");
  if (pos == std::string::npos) return -1.0;
  return std::atof(head.c_str() + pos + 12);
}

/// Drive one request over a fresh connection, incrementally consuming the
/// response so SSE token events are timestamped as they arrive.
RequestResult drive_request(const LoadgenOptions& options, std::int64_t id,
                            const std::vector<int>& prompt, int max_tokens) {
  RequestResult res;
  const int fd = net::connect_tcp(options.host, options.port, options.timeout_s);
  if (fd < 0) return res;

  const std::string body = build_body(id, prompt, max_tokens, options.stream);
  std::ostringstream req;
  req << "POST /v1/completions HTTP/1.1\r\nHost: " << options.host << "\r\n"
      << "Content-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
      << body;
  const std::string raw = req.str();
  const auto t0 = Clock::now();
  if (!net::send_all(fd, raw.data(), raw.size())) {
    net::close_fd(fd);
    return res;
  }

  std::string in;
  std::size_t header_end = std::string::npos;
  std::size_t scan = 0;  ///< SSE parse position past the headers
  double last_token_at = -1.0;
  double gap_sum = 0.0;
  std::size_t gaps = 0;
  bool done = false;
  char buf[8192];
  for (;;) {
    const double remaining = options.timeout_s - since(t0);
    if (remaining <= 0.0) break;
    if (!net::wait_readable(fd, remaining)) break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
    const double now = since(t0);

    if (header_end == std::string::npos) {
      header_end = in.find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
      res.status = parse_status(in.substr(0, header_end));
      if (res.status == 503) res.retry_after = parse_retry_after(in.substr(0, header_end));
      scan = header_end + 4;
      if (res.status != 200 || !options.stream) continue;  // drain to EOF
    }
    if (res.status != 200 || !options.stream) continue;

    // Incremental SSE scan: one `data: ...\n\n` event at a time.
    for (;;) {
      const auto ev_end = in.find("\n\n", scan);
      if (ev_end == std::string::npos) break;
      const std::string event = in.substr(scan, ev_end - scan);
      scan = ev_end + 2;
      const auto tok = event.find("\"token\":");
      if (tok != std::string::npos) {
        ++res.tokens;
        if (options.collect_tokens)
          res.token_ids.push_back(std::atoi(event.c_str() + tok + 8));
        if (res.ttft < 0.0) {
          res.ttft = now;
        } else {
          gap_sum += now - last_token_at;
          ++gaps;
        }
        last_token_at = now;
      } else if (event.find("\"done\":true") != std::string::npos) {
        done = event.find("\"error\"") == std::string::npos;
      }
    }
  }
  net::close_fd(fd);

  res.e2el = since(t0);
  if (options.stream) {
    res.ok = res.status == 200 && done;
    if (gaps > 0) res.tpot = gap_sum / static_cast<double>(gaps);
  } else if (res.status == 200 && header_end != std::string::npos) {
    const auto toks = in.find("\"tokens\":[", header_end);
    res.ok = toks != std::string::npos &&
             in.find("\"finish_reason\"", header_end) != std::string::npos;
    if (res.ok) {
      // Token count = commas + 1 within the array (empty array -> 0).
      const auto close = in.find(']', toks);
      if (close != std::string::npos && close > toks + 10) {
        res.tokens = 1;
        for (std::size_t i = toks + 10; i < close; ++i)
          if (in[i] == ',') ++res.tokens;
        if (options.collect_tokens) {
          const char* p = in.c_str() + toks + 10;
          const char* stop = in.c_str() + close;
          while (p < stop) {
            char* end = nullptr;
            const long v = std::strtol(p, &end, 10);
            if (end == p) break;
            res.token_ids.push_back(static_cast<int>(v));
            p = end;
            while (p < stop && (*p == ',' || *p == ' ')) ++p;
          }
        }
      }
    }
    res.ttft = res.e2el;  // unary: first byte of tokens == full response
  }
  return res;
}

std::string pct_json(const util::SampleStats& s) {
  std::ostringstream oss;
  oss << std::setprecision(6);
  oss << "{\"count\":" << s.count();
  if (!s.empty()) {
    oss << ",\"mean\":" << s.mean() << ",\"p50\":" << s.percentile(50)
        << ",\"p90\":" << s.percentile(90) << ",\"p99\":" << s.percentile(99)
        << ",\"max\":" << s.max();
  }
  oss << "}";
  return oss.str();
}

}  // namespace

std::string LoadgenReport::json() const {
  std::ostringstream oss;
  oss << std::setprecision(6);
  oss << "{\"requested\":" << requested << ",\"completed\":" << completed
      << ",\"shed\":" << shed << ",\"errors\":" << errors
      << ",\"retries\":" << retries
      << ",\"duration_s\":" << duration_s << ",\"throughput_rps\":" << throughput_rps
      << ",\"output_tokens\":" << output_tokens
      << ",\"output_tokens_per_s\":" << output_tokens_per_s
      << ",\"mean_output_len\":" << mean_output_len
      << ",\"ttft_s\":" << pct_json(ttft_s) << ",\"tpot_s\":" << pct_json(tpot_s)
      << ",\"e2el_s\":" << pct_json(e2el_s) << "}";
  return oss.str();
}

LoadgenReport run(const LoadgenOptions& options) {
  // Deterministic request shapes: one trace per (spec, seed, arrival process).
  workload::TraceBuilder builder(options.spec, options.seed);
  workload::ArrivalProcess arrivals;
  arrivals.kind = options.arrivals;
  arrivals.rate = options.rate;
  const workload::Trace trace = builder.generate_count(arrivals, options.requests);

  // Per-request prompts, deterministic in (seed, index).
  std::vector<std::vector<int>> prompts(trace.size());
  {
    util::Rng rng(options.seed ^ 0x70726f6d70ULL);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      prompts[i].resize(static_cast<std::size_t>(std::max(1, trace[i].prompt_len)));
      for (auto& t : prompts[i])
        t = static_cast<int>(rng.uniform_int(0, options.vocab - 1));
    }
  }

  std::vector<RequestResult> results(trace.size());
  std::atomic<std::size_t> retries_total{0};
  const auto t0 = Clock::now();

  // One request, with bounded 503 retries honouring the server's Retry-After
  // hint (the router and the replicas both send one on shed/degraded 503s).
  const auto drive_with_retries = [&](std::size_t i) {
    RequestResult r = drive_request(options, trace[i].id, prompts[i],
                                    std::max(1, trace[i].output_len));
    for (int attempt = 0; r.status == 503 && attempt < options.max_retries;
         ++attempt) {
      const double hint = r.retry_after >= 0.0 ? r.retry_after : 1.0;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(hint, options.max_retry_wait_s)));
      retries_total.fetch_add(1);
      r = drive_request(options, trace[i].id, prompts[i],
                        std::max(1, trace[i].output_len));
    }
    results[i] = std::move(r);
  };

  if (options.mode == LoadgenOptions::Mode::kClosedLoop) {
    // `connections` workers, one request in flight each.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    const int nconn = std::max(1, options.connections);
    workers.reserve(static_cast<std::size_t>(nconn));
    for (int w = 0; w < nconn; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= trace.size()) return;
          drive_with_retries(i);
        }
      });
    }
    for (auto& t : workers) t.join();
  } else {
    // Open loop: issue at trace arrival instants, independent of completions.
    // The in-flight cap only bounds local resources (threads/fds); it is set
    // from `connections` and should exceed the expected concurrency.
    std::counting_semaphore<> slots(std::max(1, options.connections));
    std::vector<std::thread> inflight;
    inflight.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const double wait = trace[i].arrival - since(t0);
      if (wait > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      slots.acquire();
      inflight.emplace_back([&, i] {
        drive_with_retries(i);
        slots.release();
      });
    }
    for (auto& t : inflight) t.join();
  }

  LoadgenReport report;
  report.requested = trace.size();
  report.duration_s = since(t0);
  report.retries = retries_total.load();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (r.ok) {
      ++report.completed;
      report.output_tokens += r.tokens;
      if (r.ttft >= 0.0) report.ttft_s.add(r.ttft);
      if (r.tpot >= 0.0) report.tpot_s.add(r.tpot);
      report.e2el_s.add(r.e2el);
      if (options.collect_tokens)
        report.tokens.emplace_back(trace[i].id, r.token_ids);
    } else if (r.status == 503) {
      ++report.shed;
    } else {
      ++report.errors;
    }
  }
  if (report.duration_s > 0.0) {
    report.throughput_rps = static_cast<double>(report.completed) / report.duration_s;
    report.output_tokens_per_s =
        static_cast<double>(report.output_tokens) / report.duration_s;
  }
  if (report.completed > 0)
    report.mean_output_len = static_cast<double>(report.output_tokens) /
                             static_cast<double>(report.completed);
  return report;
}

}  // namespace gllm::loadgen
