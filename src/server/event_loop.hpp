#pragma once

#include <cstdint>
#include <vector>

namespace gllm::server {

/// Thin RAII wrapper over a Linux epoll instance plus a self-pipe wake
/// channel — the readiness core of the HTTP front-end's event loop.
///
/// All fd registration and wait() calls belong to the single loop thread;
/// wake() is the one thread-safe entry point (the pipeline driver calls it
/// when tokens become available for a connection the loop owns). The wake
/// pipe is registered inside the epoll set and drained transparently by
/// wait(), so callers only ever see their own keys.
class EventLoop {
 public:
  struct Event {
    std::uint64_t key = 0;
    std::uint32_t events = 0;  ///< EPOLL* bits
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register/re-arm/remove `fd`. `events` are EPOLL* bits (level-triggered);
  /// `key` comes back in Event::key. Throws std::runtime_error on failure.
  void add(int fd, std::uint32_t events, std::uint64_t key);
  void mod(int fd, std::uint32_t events, std::uint64_t key);
  void del(int fd);

  /// Block up to `timeout_ms` (-1 = forever) and fill `out` with ready
  /// events. Returns the number of events (0 on timeout). Wake-pipe
  /// readiness is drained internally and reported as `woken()`.
  int wait(std::vector<Event>& out, int timeout_ms);

  /// True if the last wait() was interrupted by at least one wake() call.
  bool woken() const { return woken_; }

  /// Thread-safe: make the current/next wait() return promptly.
  void wake();

 private:
  int epfd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  bool woken_ = false;
};

}  // namespace gllm::server
