#include "server/http_parser.hpp"

#include <algorithm>
#include <cctype>

namespace gllm::server {

namespace {

bool is_tchar(unsigned char c) {
  // RFC 9110 token characters: the only bytes legal in methods/header names.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return is_tchar(static_cast<unsigned char>(c)); });
}

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Strict decimal parse for Content-Length: digits only, no sign, no
/// whitespace, bounded so the value can never overflow or wrap negative.
bool parse_content_length(std::string_view s, std::size_t& out) {
  if (s.empty() || s.size() > 18) return false;
  std::size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  out = v;
  return true;
}

/// A bare LF (not preceded by CR) anywhere in the header region. Rejecting it
/// outright (rather than treating it as "still looking for CRLF") keeps
/// lenient-LF request smuggling off the table and makes the reject prompt.
bool has_bare_lf(std::string_view head) {
  for (std::size_t i = 0; i < head.size(); ++i)
    if (head[i] == '\n' && (i == 0 || head[i - 1] != '\r')) return true;
  return false;
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (lower(a[i]) != lower(b[i])) return false;
  return true;
}

int http_status(ParseError error) {
  switch (error) {
    case ParseError::kNone: return 200;
    case ParseError::kBadRequest: return 400;
    case ParseError::kBadVersion: return 505;
    case ParseError::kHeadersTooLarge: return 431;
    case ParseError::kTooManyHeaders: return 431;
    case ParseError::kBodyTooLarge: return 413;
    case ParseError::kUnsupported: return 501;
  }
  return 400;
}

const char* to_string(ParseError error) {
  switch (error) {
    case ParseError::kNone: return "none";
    case ParseError::kBadRequest: return "bad_request";
    case ParseError::kBadVersion: return "bad_version";
    case ParseError::kHeadersTooLarge: return "headers_too_large";
    case ParseError::kTooManyHeaders: return "too_many_headers";
    case ParseError::kBodyTooLarge: return "body_too_large";
    case ParseError::kUnsupported: return "unsupported";
  }
  return "unknown";
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

ParseStatus parse_http_request(std::string_view input, const HttpLimits& limits,
                               HttpRequest& out, std::size_t& consumed,
                               ParseError& error) {
  error = ParseError::kNone;
  consumed = 0;

  // Locate the end of the header block. The budget covers the whole head
  // (request line + headers + blank line); a prefix that exceeds it without
  // terminating is rejected without waiting for more bytes.
  const std::size_t head_end = input.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (input.size() > limits.max_header_bytes) {
      error = ParseError::kHeadersTooLarge;
      return ParseStatus::kError;
    }
    // Without the terminator every byte so far is head-candidate; a bare LF
    // here can only ever be a bare LF in the head (body bytes begin strictly
    // after CRLFCRLF), so the reject is chunking-invariant.
    if (has_bare_lf(input)) {
      error = ParseError::kBadRequest;
      return ParseStatus::kError;
    }
    return ParseStatus::kNeedMore;
  }
  if (has_bare_lf(input.substr(0, head_end))) {
    error = ParseError::kBadRequest;
    return ParseStatus::kError;
  }
  const std::size_t head_bytes = head_end + 4;
  if (head_bytes > limits.max_header_bytes) {
    error = ParseError::kHeadersTooLarge;
    return ParseStatus::kError;
  }
  const std::string_view head = input.substr(0, head_end);

  // Request line: METHOD SP TARGET SP VERSION (exactly two single spaces).
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) {
    error = ParseError::kBadRequest;
    return ParseStatus::kError;
  }
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    error = ParseError::kBadRequest;
    return ParseStatus::kError;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!is_token(method) || target.empty()) {
    error = ParseError::kBadRequest;
    return ParseStatus::kError;
  }
  for (char c : target) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7f) {  // no SP/CTL in a request target
      error = ParseError::kBadRequest;
      return ParseStatus::kError;
    }
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    error = version.substr(0, 5) == "HTTP/" ? ParseError::kBadVersion
                                            : ParseError::kBadRequest;
    return ParseStatus::kError;
  }

  // Header fields.
  HttpRequest req;
  req.method = std::string(method);
  req.target = std::string(target);
  req.version = std::string(version);
  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) {
      error = ParseError::kBadRequest;  // bare CRLF inside the header block
      return ParseStatus::kError;
    }
    if (line.front() == ' ' || line.front() == '\t') {
      error = ParseError::kBadRequest;  // obsolete line folding (RFC 9112 §5.2)
      return ParseStatus::kError;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || !is_token(line.substr(0, colon))) {
      error = ParseError::kBadRequest;
      return ParseStatus::kError;
    }
    if (req.headers.size() >= limits.max_headers) {
      error = ParseError::kTooManyHeaders;
      return ParseStatus::kError;
    }
    req.headers.emplace_back(std::string(line.substr(0, colon)),
                             std::string(trim_ows(line.substr(colon + 1))));
  }

  // Body framing. Chunked uploads are not accepted on this API (501); the
  // body length comes from Content-Length alone, strictly validated and
  // bounded BEFORE any buffering decision is made on it.
  if (req.header("Transfer-Encoding") != nullptr) {
    error = ParseError::kUnsupported;
    return ParseStatus::kError;
  }
  std::size_t content_length = 0;
  bool have_length = false;
  for (const auto& [key, value] : req.headers) {
    if (!iequals(key, "Content-Length")) continue;
    std::size_t v = 0;
    if (!parse_content_length(trim_ows(value), v)) {
      error = ParseError::kBadRequest;
      return ParseStatus::kError;
    }
    if (have_length && v != content_length) {
      error = ParseError::kBadRequest;  // conflicting duplicate lengths
      return ParseStatus::kError;
    }
    content_length = v;
    have_length = true;
  }
  if (content_length > limits.max_body_bytes) {
    error = ParseError::kBodyTooLarge;
    return ParseStatus::kError;
  }
  if (input.size() - head_bytes < content_length) return ParseStatus::kNeedMore;

  req.body = std::string(input.substr(head_bytes, content_length));
  req.keep_alive = req.version == "HTTP/1.1";
  if (const std::string* conn = req.header("Connection"); conn != nullptr) {
    if (iequals(trim_ows(*conn), "close")) req.keep_alive = false;
    else if (iequals(trim_ows(*conn), "keep-alive")) req.keep_alive = true;
  }

  out = std::move(req);
  consumed = head_bytes + content_length;
  return ParseStatus::kComplete;
}

}  // namespace gllm::server
