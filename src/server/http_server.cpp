#include "server/http_server.hpp"

#include <cctype>
#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <stdexcept>

#include "net/socket.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::server {

namespace {

/// Read from `fd` until the full HTTP request (headers + Content-Length body)
/// has arrived. Returns false on EOF/error before a complete request.
bool read_http_request(int fd, std::string& raw, std::size_t& header_end,
                       std::size_t& content_length) {
  raw.clear();
  char buf[4096];
  header_end = std::string::npos;
  content_length = 0;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse Content-Length (case-insensitive key).
        std::string lower = raw.substr(0, header_end);
        for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        const auto pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          content_length = std::strtoull(lower.c_str() + pos + 15, nullptr, 10);
        }
        if (content_length > (1u << 20)) return false;  // refuse >1 MiB bodies
      }
    }
    if (header_end != std::string::npos &&
        raw.size() >= header_end + 4 + content_length) {
      return true;
    }
    // net::recv_some retries EINTR, so an interrupted syscall is not
    // mistaken for a peer close.
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) return false;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > (2u << 20)) return false;
  }
}

bool send_all(int fd, const std::string& data) {
  return net::send_all(fd, data.data(), data.size());
}

std::string status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

bool json_int_field(const std::string& json, const std::string& key, std::int64_t& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) ++pos;
  char* end = nullptr;
  const long long value = std::strtoll(json.c_str() + pos, &end, 10);
  if (end == json.c_str() + pos) return false;
  out = value;
  return true;
}

bool json_int_array_field(const std::string& json, const std::string& key,
                          std::vector<std::int64_t>& out) {
  out.clear();
  const std::string needle = "\"" + key + "\"";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find('[', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  for (;;) {
    while (pos < json.size() && (std::isspace(static_cast<unsigned char>(json[pos])) ||
                                 json[pos] == ','))
      ++pos;
    if (pos >= json.size()) return false;
    if (json[pos] == ']') return true;
    char* end = nullptr;
    const long long value = std::strtoll(json.c_str() + pos, &end, 10);
    if (end == json.c_str() + pos) return false;
    out.push_back(value);
    pos = static_cast<std::size_t>(end - json.c_str());
  }
}

HttpServer::HttpServer(runtime::PipelineService& service, int port)
    : service_(service), requested_port_(port) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) return;

  listen_fd_ = net::listen_tcp(requested_port_);
  port_ = net::local_port(listen_fd_);

  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  GLLM_LOG_INFO("http server listening on 127.0.0.1:" << port_);
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  net::shutdown_fd(listen_fd_);
  net::close_fd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard lock(connections_mu_);
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = net::accept_conn(listen_fd_);  // EINTR-safe; -1 once closed
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    std::lock_guard lock(connections_mu_);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void HttpServer::handle_connection(int fd) {
  std::string raw;
  std::size_t header_end = 0, content_length = 0;
  if (read_http_request(fd, raw, header_end, content_length)) {
    // Request line: METHOD SP PATH SP VERSION.
    const auto line_end = raw.find("\r\n");
    std::istringstream request_line(raw.substr(0, line_end));
    std::string method, path, version;
    request_line >> method >> path >> version;
    const std::string body = raw.substr(header_end + 4, content_length);

    Response response;
    try {
      response = handle_request(method, path, body);
    } catch (const std::exception& e) {
      response = Response{500, std::string("{\"error\":\"") + e.what() + "\"}",
                          "application/json", ""};
    }
    std::ostringstream oss;
    oss << "HTTP/1.1 " << response.status << " " << status_text(response.status) << "\r\n"
        << "Content-Type: " << response.content_type << "\r\n"
        << "Content-Length: " << response.body.size() << "\r\n";
    if (!response.allow.empty()) oss << "Allow: " << response.allow << "\r\n";
    if (response.retry_after > 0) oss << "Retry-After: " << response.retry_after << "\r\n";
    oss << "Connection: close\r\n\r\n" << response.body;
    send_all(fd, oss.str());
  }
  net::close_fd(fd);
}

HttpServer::Response HttpServer::handle_request(const std::string& method,
                                                const std::string& path,
                                                const std::string& body) {
  // Route by path first so a known path with the wrong method gets a 405
  // (with an Allow header) instead of a misleading 404.
  const bool get_path = path == "/health" || path == "/metrics" || path == "/v1/stats";
  if (get_path && method != "GET")
    return Response{405, "{\"error\":\"method not allowed\"}", "application/json", "GET"};
  if (path == "/v1/completions" && method != "POST")
    return Response{405, "{\"error\":\"method not allowed\"}", "application/json", "POST"};
  if (!get_path && path != "/v1/completions")
    return Response{404, "{\"error\":\"unknown endpoint\"}", "application/json", ""};

  if (path == "/health") {
    const runtime::ServiceHealth health = service_.health();
    return Response{health == runtime::ServiceHealth::kFailed ? 503 : 200,
                    std::string("{\"status\":\"") +
                        (health == runtime::ServiceHealth::kServing ? "ok" : "degraded") +
                        "\",\"health\":\"" + runtime::to_string(health) +
                        "\",\"model\":\"" + service_.options().model.name + "\"}",
                    "application/json", ""};
  }
  if (path == "/metrics" || path == "/v1/stats") {
    obs::Observability* obs = service_.options().obs;
    if (obs == nullptr)
      return Response{503, "{\"error\":\"observability disabled\"}", "application/json", ""};
    if (path == "/metrics")
      return Response{200, obs->metrics().render_prometheus(),
                      "text/plain; version=0.0.4; charset=utf-8", ""};
    return Response{200,
                    "{\"model\":\"" + service_.options().model.name +
                        "\",\"metrics\":" + obs->stats_json() + "}",
                    "application/json", ""};
  }
  return handle_completion(body);
}

HttpServer::Response HttpServer::handle_completion(const std::string& body) {
  std::int64_t id = 0, max_tokens = 0;
  std::vector<std::int64_t> prompt;
  if (!json_int_field(body, "id", id) || !json_int_field(body, "max_tokens", max_tokens) ||
      !json_int_array_field(body, "prompt", prompt) || prompt.empty() || max_tokens <= 0) {
    return Response{400, "{\"error\":\"expected {id, prompt:[ints], max_tokens}\"}",
                    "application/json", ""};
  }
  const auto& cfg = service_.options().model;
  for (const auto token : prompt) {
    if (token < 0 || token >= cfg.vocab) {
      return Response{400, "{\"error\":\"prompt token out of vocabulary\"}",
                      "application/json", ""};
    }
  }
  if (static_cast<std::int64_t>(prompt.size()) + max_tokens >
      service_.options().kv_capacity_tokens) {
    return Response{400, "{\"error\":\"request exceeds KV capacity\"}", "application/json",
                    ""};
  }

  // Shed load while the pipeline is being respawned instead of queueing into
  // an outage of unknown length; clients retry after the hinted delay. A
  // permanently failed service answers the same way, minus the retry hint.
  const runtime::ServiceHealth health = service_.health();
  if (health != runtime::ServiceHealth::kServing) {
    Response resp{503,
                  std::string("{\"error\":\"service ") + runtime::to_string(health) + "\"}",
                  "application/json", ""};
    if (health == runtime::ServiceHealth::kRecovering) resp.retry_after = 1;
    return resp;
  }

  nn::GenRequest request;
  request.id = id;
  request.prompt.assign(prompt.begin(), prompt.end());
  request.max_new_tokens = static_cast<int>(max_tokens);

  // Collect tokens through the streaming callback; resolve on the terminal
  // event — which either completes the request or carries a StreamError.
  struct Outcome {
    std::vector<nn::TokenId> tokens;
    runtime::StreamError error = runtime::StreamError::kNone;
  };
  auto done = std::make_shared<std::promise<Outcome>>();
  auto resolved = std::make_shared<std::atomic<bool>>(false);
  auto tokens = std::make_shared<std::vector<nn::TokenId>>();
  service_.submit(request, [done, resolved, tokens](const runtime::StreamEvent& ev) {
    if (ev.error != runtime::StreamError::kNone || ev.is_last) {
      if (!resolved->exchange(true)) done->set_value(Outcome{*tokens, ev.error});
    } else {
      tokens->push_back(ev.token);
    }
  });

  auto future = done->get_future();
  if (future.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
    return Response{503, "{\"error\":\"generation timed out\"}", "application/json", ""};
  }
  const Outcome outcome = future.get();
  if (outcome.error != runtime::StreamError::kNone) {
    const char* what = runtime::to_string(outcome.error);
    Response resp{outcome.error == runtime::StreamError::kRejected ? 400 : 503,
                  std::string("{\"error\":\"request failed: ") + what + "\"}",
                  "application/json", ""};
    if (outcome.error == runtime::StreamError::kWorkerFailure) resp.retry_after = 1;
    return resp;
  }
  const auto& output = outcome.tokens;

  std::ostringstream oss;
  oss << "{\"id\":" << id << ",\"tokens\":[";
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (i) oss << ",";
    oss << output[i];
  }
  oss << "],\"finish_reason\":\"length\"}";
  return Response{200, oss.str(), "application/json", ""};
}

int http_request(int port, const std::string& method, const std::string& path,
                 const std::string& body, std::string& response_body,
                 std::string* response_headers) {
  const int fd = net::connect_tcp("127.0.0.1", port);
  if (fd < 0) return -1;
  std::ostringstream oss;
  oss << method << " " << path << " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      << "Content-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
      << body;
  if (!send_all(fd, oss.str())) {
    net::close_fd(fd);
    return -1;
  }
  // Read until headers + Content-Length bytes of body have arrived (EOF is
  // only a fallback): the connection may be held open by an unrelated fd
  // copy, and a complete response must not depend on seeing the close.
  std::string raw;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  std::size_t content_length = 0;
  bool have_length = false;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::string lower = raw.substr(0, header_end);
        for (char& c : lower)
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        const auto pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          content_length = std::strtoull(lower.c_str() + pos + 15, nullptr, 10);
          have_length = true;
        }
      }
    }
    if (header_end != std::string::npos && have_length &&
        raw.size() >= header_end + 4 + content_length)
      break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  net::close_fd(fd);
  if (header_end == std::string::npos) header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return -1;
  response_body = raw.substr(header_end + 4);
  if (response_headers != nullptr) *response_headers = raw.substr(0, header_end);
  int status = -1;
  std::istringstream status_line(raw.substr(0, raw.find("\r\n")));
  std::string version;
  status_line >> version >> status;
  return status;
}

}  // namespace gllm::server
