#include "server/http_server.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <sys/epoll.h>
#include <sys/socket.h>

#include "net/socket.hpp"
#include "nn/kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::server {

namespace {

constexpr std::uint64_t kListenKey = 0;

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Internal Server Error";
  }
}

void inc(obs::Counter* c, std::int64_t n = 1) {
  if (c != nullptr) c->inc(n);
}

std::string sse_token_event(std::int64_t id, nn::TokenId token) {
  return "data: {\"id\":" + std::to_string(id) + ",\"token\":" + std::to_string(token) +
         "}\n\n";
}

std::string sse_terminal_event(std::int64_t id, std::size_t tokens,
                               runtime::StreamError error) {
  std::string out = "data: {\"id\":" + std::to_string(id) + ",\"done\":true";
  if (error == runtime::StreamError::kNone) {
    out += ",\"tokens\":" + std::to_string(tokens) + ",\"finish_reason\":\"length\"";
  } else {
    out += std::string(",\"error\":\"") + runtime::to_string(error) + "\"";
  }
  out += "}\n\ndata: [DONE]\n\n";
  return out;
}

constexpr const char* kSseHead =
    "HTTP/1.1 200 OK\r\n"
    "Content-Type: text/event-stream\r\n"
    "Cache-Control: no-cache\r\n"
    "Connection: close\r\n\r\n";

}  // namespace

// --- JSON field helpers ------------------------------------------------------

bool json_int_field(const std::string& json, const std::string& key, std::int64_t& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) ++pos;
  char* end = nullptr;
  const long long value = std::strtoll(json.c_str() + pos, &end, 10);
  if (end == json.c_str() + pos) return false;
  out = value;
  return true;
}

bool json_int_array_field(const std::string& json, const std::string& key,
                          std::vector<std::int64_t>& out) {
  out.clear();
  const std::string needle = "\"" + key + "\"";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find('[', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  for (;;) {
    while (pos < json.size() && (std::isspace(static_cast<unsigned char>(json[pos])) ||
                                 json[pos] == ','))
      ++pos;
    if (pos >= json.size()) return false;
    if (json[pos] == ']') return true;
    char* end = nullptr;
    const long long value = std::strtoll(json.c_str() + pos, &end, 10);
    if (end == json.c_str() + pos) return false;
    out.push_back(value);
    pos = static_cast<std::size_t>(end - json.c_str());
  }
}

bool json_bool_field(const std::string& json, const std::string& key, bool& out) {
  const std::string needle = "\"" + key + "\"";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(json[pos]))) ++pos;
  if (json.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (json.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

// --- shared stream/fan-out state --------------------------------------------

/// Per-request bridge between the pipeline driver (producer of StreamEvents)
/// and whichever loop owns the client connection (consumer). The driver
/// NEVER blocks here: a full queue flips `overflow`, which the consumer
/// answers with the slow-client disconnect policy. `abandoned` flips when
/// the connection dies first; subsequent events are dropped on the floor.
struct HttpServer::StreamState {
  explicit StreamState(std::size_t capacity, bool sse) : cap(capacity), streaming(sse) {}

  std::mutex mu;
  std::condition_variable cv;                // serial-mode consumer waits here
  std::deque<runtime::StreamEvent> q;        // streaming token events
  std::vector<nn::TokenId> tokens;           // non-streaming accumulation
  runtime::StreamError error = runtime::StreamError::kNone;
  std::size_t cap;
  bool streaming;
  bool done = false;
  bool overflow = false;
  std::atomic<bool> abandoned{false};

  // Epoll-mode wake route (set before submit, immutable afterwards).
  std::shared_ptr<WakeHub> hub;
  std::uint64_t conn_key = 0;
};

struct HttpServer::WakeHub {
  std::mutex mu;
  EventLoop* loop = nullptr;  ///< nulled at shutdown under mu
  std::vector<std::uint64_t> ready;

  void notify(std::uint64_t key) {
    std::lock_guard lock(mu);
    if (loop == nullptr) return;
    ready.push_back(key);
    loop->wake();
  }
  std::vector<std::uint64_t> drain() {
    std::lock_guard lock(mu);
    return std::exchange(ready, {});
  }
};

/// One epoll-mode connection. Owned by the loop thread.
struct HttpServer::Conn {
  int fd = -1;
  std::uint64_t key = 0;
  std::string in;        ///< received, not yet parsed
  std::string out;       ///< rendered, not yet sent
  std::size_t out_off = 0;
  bool want_write = false;      ///< EPOLLOUT armed
  bool reading_paused = false;  ///< EPOLLIN disarmed (pipelined backlog cap)
  bool close_after_write = false;
  bool generating = false;
  bool streaming = false;
  bool keep_alive = true;
  std::int64_t req_id = 0;
  std::size_t streamed_tokens = 0;
  std::shared_ptr<StreamState> stream;
  double last_activity = 0.0;
  double gen_start = 0.0;
};

// --- construction / lifecycle ------------------------------------------------

HttpServer::HttpServer(runtime::PipelineService& service, int port)
    : service_(service) {
  options_.port = port;
}

HttpServer::HttpServer(runtime::PipelineService& service, ServerOptions options)
    : service_(service), options_(options) {}

HttpServer::~HttpServer() { stop(); }

obs::HttpMetrics* HttpServer::http_metrics() const {
  obs::Observability* obs = service_.options().obs;
  return obs != nullptr ? &obs->http() : nullptr;
}

void HttpServer::start() {
  if (running_.load()) return;

  listen_fd_ = net::listen_tcp(options_.port);
  port_ = net::local_port(listen_fd_);
  running_.store(true);

  if (options_.loop == ServerOptions::Loop::kEpoll) {
    net::set_nonblocking(listen_fd_);
    loop_ = std::make_unique<EventLoop>();
    hub_ = std::make_shared<WakeHub>();
    hub_->loop = loop_.get();
    loop_->add(listen_fd_, EPOLLIN, kListenKey);
    loop_thread_ = std::thread([this] { event_loop(); });
    GLLM_LOG_INFO("http server (epoll) listening on 127.0.0.1:" << port_);
  } else {
    loop_thread_ = std::thread([this] { accept_loop_serial(); });
    GLLM_LOG_INFO("http server (serial) listening on 127.0.0.1:" << port_);
  }
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  if (options_.loop == ServerOptions::Loop::kEpoll) {
    loop_->wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    // Detach the driver-callback wake route BEFORE the loop dies; callbacks
    // for still-running generations keep firing into abandoned streams.
    {
      std::lock_guard lock(hub_->mu);
      hub_->loop = nullptr;
    }
    loop_.reset();
    hub_.reset();
  } else {
    net::shutdown_fd(listen_fd_);
    net::close_fd(listen_fd_);
    listen_fd_ = -1;
    {
      std::lock_guard lock(serial_mu_);
      for (int fd : serial_fds_) net::shutdown_fd(fd);
    }
    if (loop_thread_.joinable()) loop_thread_.join();
    // Join handlers WITHOUT holding serial_mu_: their last act is locking it
    // to erase their fd, so joining under the lock would deadlock.
    std::vector<std::thread> handlers;
    {
      std::lock_guard lock(serial_mu_);
      handlers.swap(serial_threads_);
    }
    for (auto& t : handlers)
      if (t.joinable()) t.join();
  }
}

// --- request dispatch (shared by both loops) ---------------------------------

HttpServer::Response HttpServer::error_response(ParseError error) const {
  Response resp;
  resp.status = http_status(error);
  resp.body = std::string("{\"error\":\"") + to_string(error) + "\"}";
  return resp;
}

HttpServer::Response HttpServer::handle_get(const std::string& method,
                                            const std::string& path) {
  const bool get_path = path == "/health" || path == "/metrics" || path == "/v1/stats";
  if (get_path && method != "GET")
    return Response{405, "{\"error\":\"method not allowed\"}", "application/json", "GET"};
  if (path == "/v1/completions" && method != "POST")
    return Response{405, "{\"error\":\"method not allowed\"}", "application/json", "POST"};
  if (!get_path)
    return Response{404, "{\"error\":\"unknown endpoint\"}", "application/json", ""};

  if (path == "/health") {
    const runtime::ServiceHealth health = service_.health();
    return Response{health == runtime::ServiceHealth::kFailed ? 503 : 200,
                    std::string("{\"status\":\"") +
                        (health == runtime::ServiceHealth::kServing ? "ok" : "degraded") +
                        "\",\"health\":\"" + runtime::to_string(health) +
                        "\",\"model\":\"" + service_.options().model.name +
                        "\",\"queue_depth\":" + std::to_string(service_.queue_depth()) +
                        "}",
                    "application/json", ""};
  }
  obs::Observability* obs = service_.options().obs;
  if (obs == nullptr)
    return Response{503, "{\"error\":\"observability disabled\"}", "application/json", ""};
  if (path == "/metrics")
    return Response{200, obs->metrics().render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8", ""};
  // /v1/stats schema v2: the stable top-level scalars a fleet router needs
  // for placement (live queue depths, prefix-cache footprint, remaining
  // restart budget, KV geometry). "schema_version" gates parsers: consumers
  // must ignore unknown keys and default absent ones, so v1 payloads (no
  // version key) and future versions both parse. The obs registry dump stays
  // under "metrics" and carries no compatibility promise.
  return Response{200,
                  "{\"schema_version\":2,\"model\":\"" + service_.options().model.name +
                      "\",\"pp\":" + std::to_string(service_.options().pp) +
                      ",\"tp\":" + std::to_string(service_.options().tp) +
                      // Additive keys (consumers ignore unknown): the active
                      // microkernel dispatch path and weight numeric mode.
                      ",\"isa\":\"" + nn::kernels::isa_name(nn::kernels::resolve_isa()) +
                      "\",\"quant\":\"" +
                      model::to_string(service_.options().model.quant) + "\"" +
                      ",\"kv_block_size\":" +
                      std::to_string(service_.options().kv_block_size) +
                      ",\"waiting_prefill\":" + std::to_string(service_.queue_depth()) +
                      ",\"running_decodes\":" +
                      std::to_string(service_.running_decodes()) +
                      ",\"prefix_cache_blocks\":" +
                      std::to_string(service_.prefix_cache_blocks()) +
                      ",\"restart_budget_remaining\":" +
                      std::to_string(service_.restart_budget_remaining()) +
                      ",\"metrics\":" + obs->stats_json() + "}",
                  "application/json", ""};
}

HttpServer::Dispatch HttpServer::handle_completion(const HttpRequest& request,
                                                   const std::shared_ptr<WakeHub>& hub,
                                                   std::uint64_t key) {
  const std::string& body = request.body;
  Dispatch d;
  std::int64_t id = 0, max_tokens = 0;
  std::vector<std::int64_t> prompt;
  if (!json_int_field(body, "id", id) || !json_int_field(body, "max_tokens", max_tokens) ||
      !json_int_array_field(body, "prompt", prompt) || prompt.empty() ||
      max_tokens <= 0) {
    d.response = Response{400, "{\"error\":\"expected {id, prompt:[ints], max_tokens}\"}",
                          "application/json", ""};
    return d;
  }
  const auto& cfg = service_.options().model;
  for (const auto token : prompt) {
    if (token < 0 || token >= cfg.vocab) {
      d.response = Response{400, "{\"error\":\"prompt token out of vocabulary\"}",
                            "application/json", ""};
      return d;
    }
  }
  if (static_cast<std::int64_t>(prompt.size()) + max_tokens >
      service_.options().kv_capacity_tokens) {
    d.response =
        Response{400, "{\"error\":\"request exceeds KV capacity\"}", "application/json", ""};
    return d;
  }

  // Shed load while the pipeline is being respawned instead of queueing into
  // an outage of unknown length; clients retry after the hinted delay. A
  // permanently failed service answers the same way, minus the retry hint.
  const runtime::ServiceHealth health = service_.health();
  if (health != runtime::ServiceHealth::kServing) {
    d.response = Response{503,
                          std::string("{\"error\":\"service ") +
                              runtime::to_string(health) + "\"}",
                          "application/json", ""};
    if (health == runtime::ServiceHealth::kRecovering)
      d.response.retry_after = options_.retry_after_s;
    return d;
  }

  // SLO-aware shedding: a waiting-prefill backlog past the threshold means
  // admitted requests would already blow their TTFT budget — answer 503 with
  // a retry hint while the backlog is deep (degraded-mode surface of PR 4).
  if (options_.shed_depth > 0 && service_.queue_depth() >= options_.shed_depth) {
    inc(http_metrics() != nullptr ? http_metrics()->shed : nullptr);
    d.response = Response{503, "{\"error\":\"overloaded, retry later\"}",
                          "application/json", ""};
    d.response.retry_after = options_.retry_after_s;
    return d;
  }

  bool stream = false;
  json_bool_field(body, "stream", stream);

  nn::GenRequest gen;
  gen.id = id;
  gen.prompt.assign(prompt.begin(), prompt.end());
  gen.max_new_tokens = static_cast<int>(max_tokens);

  auto state = std::make_shared<StreamState>(options_.stream_queue_capacity, stream);
  state->hub = hub;
  state->conn_key = key;

  // Driver-thread producer: bounded, never blocking. Token fan-out decouples
  // here — if this queue fills because the client stopped reading, the event
  // loop disconnects the client; the driver keeps running at full speed.
  service_.submit(gen, [state](const runtime::StreamEvent& ev) {
    if (state->abandoned.load(std::memory_order_acquire)) return;
    {
      std::lock_guard lock(state->mu);
      if (state->streaming) {
        if (ev.is_last || ev.error != runtime::StreamError::kNone ||
            state->q.size() < state->cap) {
          state->q.push_back(ev);
        } else {
          state->overflow = true;
        }
      } else if (ev.error != runtime::StreamError::kNone) {
        state->error = ev.error;
      } else if (!ev.is_last) {
        state->tokens.push_back(ev.token);
      }
      if (ev.is_last || ev.error != runtime::StreamError::kNone) state->done = true;
    }
    state->cv.notify_all();
    if (state->hub != nullptr) state->hub->notify(state->conn_key);
  });

  d.deferred = true;
  d.streaming = stream;
  d.req_id = id;
  d.stream = std::move(state);
  return d;
}

HttpServer::Dispatch HttpServer::dispatch_request(const HttpRequest& request,
                                                  const std::shared_ptr<WakeHub>& hub,
                                                  std::uint64_t key) {
  Dispatch d;
  try {
    if (request.target == "/v1/completions" && request.method == "POST")
      return handle_completion(request, hub, key);
    d.response = handle_get(request.method, request.target);
  } catch (const std::exception& e) {
    d.response = Response{500, std::string("{\"error\":\"") + e.what() + "\"}",
                          "application/json", ""};
  }
  return d;
}

HttpServer::Response HttpServer::completion_response(
    std::int64_t id, const std::vector<nn::TokenId>& tokens,
    runtime::StreamError error) const {
  if (error != runtime::StreamError::kNone) {
    const char* what = runtime::to_string(error);
    Response resp{error == runtime::StreamError::kRejected ? 400 : 503,
                  std::string("{\"error\":\"request failed: ") + what + "\"}",
                  "application/json", ""};
    if (error == runtime::StreamError::kWorkerFailure)
      resp.retry_after = options_.retry_after_s;
    return resp;
  }
  std::ostringstream oss;
  oss << "{\"id\":" << id << ",\"tokens\":[";
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i) oss << ",";
    oss << tokens[i];
  }
  oss << "],\"finish_reason\":\"length\"}";
  return Response{200, oss.str(), "application/json", ""};
}

std::string HttpServer::render(const Response& response, bool keep_alive) const {
  std::ostringstream oss;
  oss << "HTTP/1.1 " << response.status << " " << status_text(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n";
  if (!response.allow.empty()) oss << "Allow: " << response.allow << "\r\n";
  if (response.retry_after > 0) oss << "Retry-After: " << response.retry_after << "\r\n";
  oss << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n\r\n"
      << response.body;
  return oss.str();
}

// --- epoll event loop --------------------------------------------------------

void HttpServer::event_loop() {
  std::vector<EventLoop::Event> events;
  while (running_.load()) {
    loop_->wait(events, 100);
    const double now = mono_seconds();
    for (const auto& ev : events) {
      if (ev.key == kListenKey) {
        accept_ready(now);
      } else {
        conn_event(ev.key, ev.events, now);
      }
    }
    // Token fan-out: drain every stream the driver flagged since last pass.
    for (const std::uint64_t key : hub_->drain()) {
      auto it = conns_.find(key);
      if (it == conns_.end()) continue;
      drain_stream(*it->second, now);
      // The generation may just have finished with a pipelined successor
      // already buffered; parse it now.
      it = conns_.find(key);
      if (it != conns_.end() && !it->second->generating && !it->second->in.empty())
        process_input(*it->second, now);
    }
    sweep_timeouts(now);
  }
  // Shutdown: abandon in-flight streams, close everything.
  for (auto& [key, conn] : conns_) {
    if (conn->stream) conn->stream->abandoned.store(true, std::memory_order_release);
    loop_->del(conn->fd);
    net::close_fd(conn->fd);
    inc(http_metrics() != nullptr ? http_metrics()->conns_closed : nullptr);
  }
  if (http_metrics() != nullptr) http_metrics()->conns_active->set(0.0);
  conns_.clear();
  loop_->del(listen_fd_);
  net::close_fd(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::accept_ready(double now) {
  obs::HttpMetrics* m = http_metrics();
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone
    }
    if (static_cast<int>(conns_.size()) >= options_.max_conns) {
      // Over the accept cap: refuse outright. A best-effort 503 would need a
      // writable socket we are not willing to babysit; closing sheds fastest.
      net::close_fd(fd);
      if (m != nullptr) {
        m->conns_accepted->inc();
        m->conns_closed->inc();
        m->shed->inc();
      }
      continue;
    }
    net::set_nonblocking(fd);
    if (options_.sndbuf_bytes > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    const std::uint64_t key = next_key_++;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->key = key;
    conn->last_activity = now;
    loop_->add(fd, EPOLLIN, key);
    conns_.emplace(key, std::move(conn));
    if (m != nullptr) {
      m->conns_accepted->inc();
      m->conns_active->add(1.0);
    }
  }
}

void HttpServer::conn_event(std::uint64_t key, std::uint32_t events, double now) {
  const auto it = conns_.find(key);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    close_conn(key);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush(conn);
    if (conns_.find(key) == conns_.end()) return;  // flush may close
  }
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) {
    char buf[16384];
    bool peer_closed = false;
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        inc(http_metrics() != nullptr ? http_metrics()->bytes_in : nullptr, n);
        conn.last_activity = now;
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    process_input(conn, now);
    if (conns_.find(key) == conns_.end()) return;
    if (peer_closed) {
      // Peer half-closed. If a generation is still producing output we keep
      // writing (client may legitimately shutdown(WR)); otherwise close.
      if (!conn.generating && conn.out.size() == conn.out_off) close_conn(key);
      else if (!conn.generating) conn.close_after_write = true;
    }
  }
}

void HttpServer::process_input(Conn& conn, double now) {
  const std::uint64_t key = conn.key;
  obs::HttpMetrics* m = http_metrics();
  // One request at a time per connection: while a generation is in flight,
  // pipelined successors wait unparsed in `in` (bounded below).
  while (!conn.generating && !conn.close_after_write) {
    if (conn.in.empty()) break;
    HttpRequest request;
    std::size_t consumed = 0;
    ParseError error = ParseError::kNone;
    const ParseStatus status =
        parse_http_request(conn.in, options_.limits, request, consumed, error);
    if (status == ParseStatus::kNeedMore) break;
    if (status == ParseStatus::kError) {
      if (m != nullptr) m->parse_errors->inc();
      conn.keep_alive = false;
      conn.close_after_write = true;
      conn.in.clear();
      queue_bytes(conn, render(error_response(error), false));
      if (m != nullptr) m->responses->inc();
      break;
    }
    conn.in.erase(0, consumed);
    if (m != nullptr) m->requests->inc();
    conn.keep_alive = request.keep_alive;

    Dispatch d = dispatch_request(request, hub_, conn.key);
    if (!d.deferred) {
      queue_bytes(conn, render(d.response, conn.keep_alive));
      if (m != nullptr) m->responses->inc();
      if (!conn.keep_alive) conn.close_after_write = true;
      continue;
    }
    conn.generating = true;
    conn.streaming = d.streaming;
    conn.req_id = d.req_id;
    conn.streamed_tokens = 0;
    conn.stream = std::move(d.stream);
    conn.gen_start = now;
    if (conn.streaming) queue_bytes(conn, kSseHead);
    // Events may already be queued (synchronous rejection): drain now. The
    // conn may die inside (slow-client policy), so re-check before touching
    // it again — the loop condition re-evaluates `generating`, which flips
    // back to false if the rejection already terminated the request.
    drain_stream(conn, now);
    if (conns_.find(key) == conns_.end()) return;
  }
  if (conns_.find(key) == conns_.end()) return;

  // Backlog cap while generating: stop reading once a full pipelined request
  // budget is buffered; re-armed when the generation finishes.
  const std::size_t backlog_cap =
      options_.limits.max_header_bytes + options_.limits.max_body_bytes;
  const bool should_pause = conn.generating && conn.in.size() > backlog_cap;
  if (should_pause != conn.reading_paused) {
    conn.reading_paused = should_pause;
    update_interest(conn);
  }
  flush(conn);
}

void HttpServer::drain_stream(Conn& conn, double now) {
  if (!conn.generating || !conn.stream) return;
  obs::HttpMetrics* m = http_metrics();
  auto state = conn.stream;

  std::deque<runtime::StreamEvent> events;
  bool done = false, overflow = false;
  runtime::StreamError error = runtime::StreamError::kNone;
  std::vector<nn::TokenId> tokens;
  {
    std::lock_guard lock(state->mu);
    events.swap(state->q);
    done = state->done;
    overflow = state->overflow;
    error = state->error;
    if (done && !state->streaming) tokens = state->tokens;
  }

  if (conn.streaming) {
    if (overflow) {
      // Slow-client policy: the per-stream queue filled because this client
      // is not reading. Disconnecting it keeps one stalled consumer from
      // delaying every other stream's tokens.
      close_conn(conn.key, false, true);
      return;
    }
    std::string out;
    bool finished = false;
    for (const auto& ev : events) {
      if (ev.error != runtime::StreamError::kNone || ev.is_last) {
        out += sse_terminal_event(conn.req_id, conn.streamed_tokens, ev.error);
        finished = true;
        break;
      }
      out += sse_token_event(conn.req_id, ev.token);
      ++conn.streamed_tokens;
      if (m != nullptr) m->stream_events->inc();
    }
    if (!out.empty()) {
      queue_bytes(conn, std::move(out));
      conn.last_activity = now;
    }
    if (finished) {
      state->abandoned.store(true, std::memory_order_release);
      conn.stream.reset();
      conn.generating = false;
      conn.close_after_write = true;  // SSE responses delimit by close
      if (m != nullptr) m->responses->inc();
    }
    // Backpressure guard: output the kernel will not take and the client
    // will not drain marks the client slow.
    if (conn.out.size() - conn.out_off > options_.max_write_buffer) {
      close_conn(conn.key, false, true);
      return;
    }
    flush(conn);
    return;
  }

  if (!done) return;
  state->abandoned.store(true, std::memory_order_release);
  conn.stream.reset();
  conn.generating = false;
  queue_bytes(conn, render(completion_response(conn.req_id, tokens, error),
                           conn.keep_alive));
  if (m != nullptr) m->responses->inc();
  if (!conn.keep_alive) conn.close_after_write = true;
  if (conn.reading_paused) {
    conn.reading_paused = false;
    update_interest(conn);
  }
  flush(conn);
  // A pipelined successor may already be buffered; the caller (event loop /
  // process_input's own dispatch loop) picks it up — no recursion here.
}

void HttpServer::queue_bytes(Conn& conn, std::string bytes) {
  if (conn.out.empty()) {
    conn.out = std::move(bytes);
    conn.out_off = 0;
  } else {
    conn.out += bytes;
  }
}

void HttpServer::flush(Conn& conn) {
  obs::HttpMetrics* m = http_metrics();
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = net::send_some(conn.fd, conn.out.data() + conn.out_off,
                                     conn.out.size() - conn.out_off);
    if (n >= 0) {
      conn.out_off += static_cast<std::size_t>(n);
      if (m != nullptr) m->bytes_out->inc(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (m != nullptr) m->backpressure_events->inc();
      if (conn.out_off > 0) {
        conn.out.erase(0, conn.out_off);
        conn.out_off = 0;
      }
      if (!conn.want_write) {
        conn.want_write = true;
        update_interest(conn);
      }
      return;
    }
    close_conn(conn.key);
    return;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    update_interest(conn);
  }
  if (conn.close_after_write && !conn.generating) close_conn(conn.key);
}

void HttpServer::update_interest(Conn& conn) {
  std::uint32_t events = 0;
  if (!conn.reading_paused) events |= EPOLLIN;
  if (conn.want_write) events |= EPOLLOUT;
  loop_->mod(conn.fd, events, conn.key);
}

void HttpServer::close_conn(std::uint64_t key, bool timed_out, bool slow) {
  const auto it = conns_.find(key);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (conn.stream) conn.stream->abandoned.store(true, std::memory_order_release);
  loop_->del(conn.fd);
  net::close_fd(conn.fd);
  obs::HttpMetrics* m = http_metrics();
  if (m != nullptr) {
    m->conns_closed->inc();
    m->conns_active->add(-1.0);
    if (timed_out) m->timeouts->inc();
    if (slow) m->slow_client_disconnects->inc();
  }
  conns_.erase(it);
}

void HttpServer::sweep_timeouts(double now) {
  std::vector<std::pair<std::uint64_t, bool>> doomed;  // key, respond_503
  for (const auto& [key, conn] : conns_) {
    if (conn->generating) {
      if (options_.generation_timeout_s > 0.0 &&
          now - conn->gen_start > options_.generation_timeout_s)
        doomed.emplace_back(key, !conn->streaming);
      continue;
    }
    if (options_.client_timeout_s > 0.0 &&
        now - conn->last_activity > options_.client_timeout_s &&
        conn->out.size() == conn->out_off)
      doomed.emplace_back(key, false);
  }
  for (const auto& [key, respond] : doomed) {
    const auto it = conns_.find(key);
    if (it == conns_.end()) continue;
    if (respond) {
      Conn& conn = *it->second;
      if (conn.stream) conn.stream->abandoned.store(true, std::memory_order_release);
      conn.stream.reset();
      conn.generating = false;
      conn.close_after_write = true;
      queue_bytes(conn, render(Response{503, "{\"error\":\"generation timed out\"}",
                                        "application/json", ""},
                               false));
      inc(http_metrics() != nullptr ? http_metrics()->timeouts : nullptr);
      flush(conn);
    } else {
      close_conn(key, true);
    }
  }
}

// --- serial baseline ---------------------------------------------------------

void HttpServer::accept_loop_serial() {
  while (running_.load()) {
    const int fd = net::accept_conn(listen_fd_);  // EINTR-safe; -1 once closed
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    std::lock_guard lock(serial_mu_);
    if (static_cast<int>(serial_threads_.size()) >= options_.max_conns) {
      net::close_fd(fd);
      continue;
    }
    serial_fds_.insert(fd);
    serial_threads_.emplace_back([this, fd] { handle_connection_serial(fd); });
  }
}

void HttpServer::handle_connection_serial(int fd) {
  obs::HttpMetrics* m = http_metrics();
  if (m != nullptr) {
    m->conns_accepted->inc();
    m->conns_active->add(1.0);
  }
  std::string in;
  char buf[8192];
  HttpRequest request;
  std::size_t consumed = 0;
  ParseError error = ParseError::kNone;
  ParseStatus status = ParseStatus::kNeedMore;
  // Serial baseline reads exactly one request (Connection: close semantics).
  for (;;) {
    status = parse_http_request(in, options_.limits, request, consumed, error);
    if (status != ParseStatus::kNeedMore) break;
    if (!net::wait_readable(fd, options_.client_timeout_s)) {
      if (m != nullptr) m->timeouts->inc();
      status = ParseStatus::kError;
      error = ParseError::kBadRequest;
      break;
    }
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
    if (m != nullptr) m->bytes_in->inc(n);
  }

  const auto send_str = [&](const std::string& data) {
    if (net::send_all(fd, data.data(), data.size()) && m != nullptr)
      m->bytes_out->inc(static_cast<std::int64_t>(data.size()));
  };

  if (status == ParseStatus::kError) {
    if (m != nullptr) {
      m->parse_errors->inc();
      m->responses->inc();
    }
    send_str(render(error_response(error), false));
  } else if (status == ParseStatus::kComplete) {
    if (m != nullptr) m->requests->inc();
    Dispatch d = dispatch_request(request, nullptr, 0);
    if (!d.deferred) {
      if (m != nullptr) m->responses->inc();
      send_str(render(d.response, false));
    } else {
      auto state = d.stream;
      const double wait_s = options_.generation_timeout_s > 0.0
                                ? options_.generation_timeout_s
                                : 3600.0;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::duration<double>(wait_s);
      if (d.streaming) {
        send_str(kSseHead);
        std::size_t streamed = 0;
        bool finished = false;
        while (!finished) {
          std::deque<runtime::StreamEvent> events;
          {
            std::unique_lock lock(state->mu);
            if (!state->cv.wait_until(lock, deadline,
                                      [&] { return !state->q.empty() || state->done; }))
              break;
            events.swap(state->q);
            if (events.empty() && state->done) finished = true;
          }
          for (const auto& ev : events) {
            if (ev.error != runtime::StreamError::kNone || ev.is_last) {
              send_str(sse_terminal_event(d.req_id, streamed, ev.error));
              finished = true;
              break;
            }
            send_str(sse_token_event(d.req_id, ev.token));
            ++streamed;
            if (m != nullptr) m->stream_events->inc();
          }
        }
        if (m != nullptr) m->responses->inc();
      } else {
        bool done = false;
        std::vector<nn::TokenId> tokens;
        runtime::StreamError gen_error = runtime::StreamError::kNone;
        {
          std::unique_lock lock(state->mu);
          done = state->cv.wait_until(lock, deadline, [&] { return state->done; });
          tokens = state->tokens;
          gen_error = state->error;
        }
        if (m != nullptr) m->responses->inc();
        send_str(render(done ? completion_response(d.req_id, tokens, gen_error)
                             : Response{503, "{\"error\":\"generation timed out\"}",
                                        "application/json", ""},
                        false));
      }
      state->abandoned.store(true, std::memory_order_release);
    }
  }
  net::close_fd(fd);
  if (m != nullptr) {
    m->conns_closed->inc();
    m->conns_active->add(-1.0);
  }
  std::lock_guard lock(serial_mu_);
  serial_fds_.erase(fd);
}

// --- blocking loopback client ------------------------------------------------

int http_request(int port, const std::string& method, const std::string& path,
                 const std::string& body, std::string& response_body,
                 std::string* response_headers) {
  const int fd = net::connect_tcp("127.0.0.1", port);
  if (fd < 0) return -1;
  std::ostringstream oss;
  oss << method << " " << path << " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      << "Content-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
      << body;
  const std::string raw_request = oss.str();
  if (!net::send_all(fd, raw_request.data(), raw_request.size())) {
    net::close_fd(fd);
    return -1;
  }
  // Read until headers + Content-Length bytes of body have arrived (EOF is
  // only a fallback): the connection may be held open by an unrelated fd
  // copy, and a complete response must not depend on seeing the close.
  std::string raw;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  std::size_t content_length = 0;
  bool have_length = false;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::string lower = raw.substr(0, header_end);
        for (char& c : lower)
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        const auto pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          content_length = std::strtoull(lower.c_str() + pos + 15, nullptr, 10);
          have_length = true;
        }
      }
    }
    if (header_end != std::string::npos && have_length &&
        raw.size() >= header_end + 4 + content_length)
      break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  net::close_fd(fd);
  if (header_end == std::string::npos) header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return -1;
  response_body = raw.substr(header_end + 4);
  if (response_headers != nullptr) *response_headers = raw.substr(0, header_end);
  int status = -1;
  std::istringstream status_line(raw.substr(0, raw.find("\r\n")));
  std::string version;
  status_line >> version >> status;
  return status;
}

}  // namespace gllm::server
