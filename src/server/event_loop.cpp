#include "server/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

namespace gllm::server {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("event_loop: ") + what + ": " +
                           std::strerror(errno));
}

// Internal key for the wake pipe's read end; connection keys start at 1 by
// server convention, so 0 can never collide with a caller key... except the
// listener also wants a well-known key. Use the all-ones sentinel instead.
constexpr std::uint64_t kWakeKey = ~0ull;

}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) fail("epoll_create1()");
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(epfd_);
    fail("pipe2()");
  }
  wake_r_ = fds[0];
  wake_w_ = fds[1];
  add(wake_r_, EPOLLIN, kWakeKey);
}

EventLoop::~EventLoop() {
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  if (epfd_ >= 0) ::close(epfd_);
}

void EventLoop::add(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) fail("epoll_ctl(ADD)");
}

void EventLoop::mod(int fd, std::uint32_t events, std::uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) fail("epoll_ctl(MOD)");
}

void EventLoop::del(int fd) {
  // Best-effort: the fd may already be closed by the kernel side.
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  woken_ = false;
  epoll_event events[128];
  int n;
  do {
    n = ::epoll_wait(epfd_, events, 128, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail("epoll_wait()");
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeKey) {
      // Drain every pending wake byte; coalesced wakes are the point.
      char buf[256];
      while (::read(wake_r_, buf, sizeof(buf)) > 0) {
      }
      woken_ = true;
      continue;
    }
    out.push_back(Event{events[i].data.u64, events[i].events});
  }
  return static_cast<int>(out.size());
}

void EventLoop::wake() {
  const char byte = 1;
  // Non-blocking write; EAGAIN means a wake is already pending — exactly the
  // coalescing we want. EINTR retries; other errors are ignored (shutdown).
  for (;;) {
    const ssize_t n = ::write(wake_w_, &byte, 1);
    if (n >= 0 || errno != EINTR) return;
  }
}

}  // namespace gllm::server
