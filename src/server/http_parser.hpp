#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gllm::server {

/// Byte budgets enforced while a request is still arriving, so an adversarial
/// or runaway client is rejected early instead of growing server buffers
/// without bound (RFC 6585 431 / RFC 9110 413 semantics).
struct HttpLimits {
  /// Request line + all header lines + the terminating blank line.
  std::size_t max_header_bytes = 8192;
  std::size_t max_headers = 64;
  /// Largest acceptable Content-Length.
  std::size_t max_body_bytes = 1 << 20;
};

enum class ParseStatus {
  kNeedMore,   ///< prefix is a valid but incomplete request — feed more bytes
  kComplete,   ///< one full request parsed; `consumed` bytes belong to it
  kError,      ///< malformed or over-limit; see the ParseError
};

enum class ParseError {
  kNone = 0,
  kBadRequest,       ///< malformed request line / header syntax (400)
  kBadVersion,       ///< not HTTP/1.0 or HTTP/1.1 (505)
  kHeadersTooLarge,  ///< header block beyond max_header_bytes (431)
  kTooManyHeaders,   ///< more than max_headers header fields (431)
  kBodyTooLarge,     ///< Content-Length beyond max_body_bytes (413)
  kUnsupported,      ///< Transfer-Encoding (chunked uploads not accepted) (501)
};

/// The HTTP status code a rejected request should be answered with.
int http_status(ParseError error);
const char* to_string(ParseError error);

/// One parsed request. Header names keep their wire spelling; lookup is
/// case-insensitive per RFC 9110 §5.1.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close; an explicit Connection header wins.
  bool keep_alive = true;

  /// Case-insensitive header lookup (first match); nullptr when absent.
  const std::string* header(std::string_view name) const;
};

/// Try to parse ONE complete request from the front of `input`.
///
/// This is a pure function of the accumulated byte prefix, which makes
/// incremental parsing chunking-invariant by construction: append received
/// bytes to a buffer and re-call until the result is not kNeedMore. On
/// kComplete, `consumed` is the exact byte length of the request
/// (head + body); the caller erases that prefix and may immediately parse a
/// pipelined successor from the remainder. On kError the connection should
/// answer http_status(error) and close. Limits fire as soon as they are
/// provable — an over-budget header block or Content-Length is rejected
/// without waiting for the rest of the request. Never reads past
/// `input.size()`.
ParseStatus parse_http_request(std::string_view input, const HttpLimits& limits,
                               HttpRequest& out, std::size_t& consumed,
                               ParseError& error);

/// Case-insensitive ASCII string equality (header names, token values).
bool iequals(std::string_view a, std::string_view b);

}  // namespace gllm::server
