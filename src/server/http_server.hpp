#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "runtime/service.hpp"

namespace gllm::server {

/// Minimal HTTP/1.1 frontend over the online serving runtime — the
/// reproduction of the artifact's `gllm.entrypoints.api_server` ("RESTful API
/// frontend ... core OpenAI-compatible APIs", paper §3.4), scaled to the
/// synthetic-token world: prompts are token-id arrays.
///
/// Endpoints:
///   GET  /health            -> {"status":"ok","health":"serving"|..,"model":...}
///   GET  /metrics           -> Prometheus text exposition (0.0.4) of the
///                              obs::Registry (503 unless the service's
///                              RuntimeOptions carry an Observability)
///   GET  /v1/stats          -> JSON snapshot of the same registry
///   POST /v1/completions    -> {"id":..,"tokens":[..],"finish_reason":"length"}
///        body: {"id": <int>, "prompt": [<int>, ...], "max_tokens": <int>}
///
/// A wrong method on a known path yields 405 with an Allow header (RFC 9110);
/// unknown paths yield 404.
///
/// One thread per connection (Connection: close); requests block until the
/// runtime finishes generating.
///
/// Fault surfacing: while the service is recovering a dead pipeline,
/// completions answer 503 with a Retry-After header instead of queueing into
/// an unknown-length outage; a request terminated by a StreamError maps to an
/// explicit status (400 rejected, 503 shutdown/worker failure) — no client
/// ever hangs on a vanished request.
class HttpServer {
 public:
  /// `service` must outlive the server and be start()ed by the caller.
  /// port 0 binds an ephemeral port (see port() after start()).
  HttpServer(runtime::PipelineService& service, int port = 0);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();
  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  struct Response {
    int status = 500;
    std::string body;
    std::string content_type = "application/json";
    std::string allow;       ///< Allow header value, set on 405 responses
    int retry_after = 0;     ///< Retry-After seconds, set on degraded 503s
  };

  void accept_loop();
  void handle_connection(int fd);
  Response handle_request(const std::string& method, const std::string& path,
                          const std::string& body);
  Response handle_completion(const std::string& body);

  runtime::PipelineService& service_;
  int requested_port_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::vector<std::thread> connections_;
  std::mutex connections_mu_;
};

/// Blocking HTTP client for tests and examples: one request per call over a
/// fresh loopback connection. Returns the status code; fills `body`. When
/// `response_headers` is non-null it receives the raw header block (status
/// line + headers, no terminating blank line).
int http_request(int port, const std::string& method, const std::string& path,
                 const std::string& body, std::string& response_body,
                 std::string* response_headers = nullptr);

// --- minimal JSON helpers for the fixed schemas above (exposed for tests) --

/// Extract an integer field ("key": 123); returns false if absent/malformed.
bool json_int_field(const std::string& json, const std::string& key, std::int64_t& out);
/// Extract an integer-array field ("key": [1, 2, 3]).
bool json_int_array_field(const std::string& json, const std::string& key,
                          std::vector<std::int64_t>& out);

}  // namespace gllm::server
