#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/service.hpp"
#include "server/event_loop.hpp"
#include "server/http_parser.hpp"

namespace gllm::server {

/// Front-door configuration. Defaults suit the tests/examples; production
/// callers tune the knobs surfaced as gllm_server flags (--max-conns,
/// --shed-depth, --client-timeout).
struct ServerOptions {
  int port = 0;  ///< 0 = ephemeral; read back via HttpServer::port()

  /// Connection-handling loop. kEpoll is the real server: one event-loop
  /// thread multiplexing every connection with non-blocking sockets. kSerial
  /// is the pre-event-loop thread-per-connection handler, kept as the
  /// benchmarking baseline (BENCH_serving.json serial-vs-epoll) — it honours
  /// the same parser limits but closes after every response.
  enum class Loop { kEpoll, kSerial };
  Loop loop = Loop::kEpoll;

  int max_conns = 1024;  ///< accept cap; connections beyond it are refused

  /// SLO-aware admission shedding: when the service's waiting-prefill queue
  /// depth reaches this, POST /v1/completions answers 503 + Retry-After
  /// instead of queueing into a backlog that already blows the SLO. 0 = off.
  std::size_t shed_depth = 256;
  int retry_after_s = 1;  ///< Retry-After hint on shed/degraded 503s

  /// Idle/read timeout: a connection that is neither mid-generation nor
  /// sending bytes for this long is closed.
  double client_timeout_s = 60.0;
  /// Cap on one generation (submit -> terminal event) before the connection
  /// is answered 503 (non-streaming) or closed (streaming). 0 = unbounded.
  double generation_timeout_s = 120.0;

  HttpLimits limits;  ///< parser byte budgets (431/413 on violation)

  /// Streaming fan-out decoupling: tokens for one SSE stream queue here
  /// between the driver thread and the event loop. A full queue marks the
  /// client slow; the disconnect policy below kills it.
  std::size_t stream_queue_capacity = 1024;
  /// Slow-client disconnect threshold: an SSE stream whose unsent output
  /// exceeds this (kernel buffer full and the backlog still growing) is
  /// disconnected rather than allowed to wedge the pipeline's fan-out.
  std::size_t max_write_buffer = 1 << 20;

  /// SO_SNDBUF for accepted sockets (0 = kernel default). Shrinking it makes
  /// write-backpressure (and the slow-client policy above) trigger early —
  /// used by the stalled-client tests; rarely useful in production.
  int sndbuf_bytes = 0;
};

/// HTTP/1.1 frontend over the online serving runtime — the reproduction of
/// the artifact's `gllm.entrypoints.api_server` ("RESTful API frontend ...
/// core OpenAI-compatible APIs", paper §3.4), scaled to the synthetic-token
/// world: prompts are token-id arrays.
///
/// Endpoints:
///   GET  /health            -> {"status":"ok","health":"serving"|..,"model":...}
///   GET  /metrics           -> Prometheus text exposition (0.0.4) of the
///                              obs::Registry (503 unless the service's
///                              RuntimeOptions carry an Observability)
///   GET  /v1/stats          -> JSON snapshot of the same registry
///   POST /v1/completions    -> {"id":..,"tokens":[..],"finish_reason":"length"}
///        body: {"id": <int>, "prompt": [<int>, ...], "max_tokens": <int>,
///               "stream": true|false (default false)}
///        With "stream": true the response is Server-Sent Events: one
///        `data: {"id":..,"token":..}` event per sampled token, a terminal
///        `data: {"id":..,"done":true,...}` event, then `data: [DONE]`.
///
/// A wrong method on a known path yields 405 with an Allow header (RFC 9110);
/// unknown paths yield 404; over-limit requests 431 (headers) / 413 (body).
///
/// Concurrency model (Loop::kEpoll): a single event-loop thread multiplexes
/// every connection — non-blocking accept, incremental bounded parsing,
/// write-backpressure via EPOLLOUT, keep-alive with pipelining. Generation
/// never blocks the loop: the pipeline driver pushes StreamEvents into a
/// per-stream bounded queue and wakes the loop over a self-pipe; a client
/// that stops reading (kernel buffer full, queue overflowing) is disconnected
/// by the slow-client policy instead of stalling the driver's token fan-out.
///
/// Fault surfacing: while the service is recovering a dead pipeline,
/// completions answer 503 with a Retry-After header; a request terminated by
/// a StreamError maps to an explicit status (400 rejected, 503 shutdown /
/// worker failure) — no client ever hangs on a vanished request. When the
/// waiting-prefill queue exceeds ServerOptions::shed_depth, completions are
/// shed with 503 + Retry-After before touching the pipeline.
class HttpServer {
 public:
  /// `service` must outlive the server and be start()ed by the caller.
  HttpServer(runtime::PipelineService& service, int port = 0);
  HttpServer(runtime::PipelineService& service, ServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();
  int port() const { return port_; }
  bool running() const { return running_.load(); }
  const ServerOptions& options() const { return options_; }

 private:
  struct Response {
    int status = 500;
    std::string body;
    std::string content_type = "application/json";
    std::string allow;    ///< Allow header value, set on 405 responses
    int retry_after = 0;  ///< Retry-After seconds, set on degraded/shed 503s
  };

  /// Shared between the event loop and the driver-thread token callbacks:
  /// the per-stream bounded queue of the fan-out decoupling.
  struct StreamState;
  /// Thread-safe wake channel from driver callbacks into the event loop;
  /// outlives the loop pointer it guards so late callbacks are safe no-ops.
  struct WakeHub;
  struct Conn;

  /// Outcome of dispatching one parsed request: an immediate response, or a
  /// deferred generation whose StreamState the connection now owns.
  struct Dispatch {
    Response response;
    bool deferred = false;
    bool streaming = false;
    std::int64_t req_id = 0;
    std::shared_ptr<StreamState> stream;
  };

  Dispatch dispatch_request(const HttpRequest& request,
                            const std::shared_ptr<WakeHub>& hub, std::uint64_t key);
  Response handle_get(const std::string& method, const std::string& path);
  Dispatch handle_completion(const HttpRequest& request,
                             const std::shared_ptr<WakeHub>& hub, std::uint64_t key);
  Response error_response(ParseError error) const;
  Response completion_response(std::int64_t id, const std::vector<nn::TokenId>& tokens,
                               runtime::StreamError error) const;
  std::string render(const Response& response, bool keep_alive) const;

  // --- epoll mode ------------------------------------------------------------
  void event_loop();
  void accept_ready(double now);
  void conn_event(std::uint64_t key, std::uint32_t events, double now);
  void process_input(Conn& conn, double now);
  void drain_stream(Conn& conn, double now);
  void queue_bytes(Conn& conn, std::string bytes);
  void flush(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(std::uint64_t key, bool timed_out = false, bool slow = false);
  void sweep_timeouts(double now);

  // --- serial baseline -------------------------------------------------------
  void accept_loop_serial();
  void handle_connection_serial(int fd);

  obs::HttpMetrics* http_metrics() const;

  runtime::PipelineService& service_;
  ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread loop_thread_;

  // Epoll-mode state (loop thread only, except hub_).
  std::unique_ptr<EventLoop> loop_;
  std::shared_ptr<WakeHub> hub_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_key_ = 1;

  // Serial-mode state.
  std::vector<std::thread> serial_threads_;
  std::unordered_set<int> serial_fds_;
  std::mutex serial_mu_;
};

/// Blocking HTTP client for tests and examples: one request per call over a
/// fresh loopback connection. Returns the status code; fills `body`. When
/// `response_headers` is non-null it receives the raw header block (status
/// line + headers, no terminating blank line).
int http_request(int port, const std::string& method, const std::string& path,
                 const std::string& body, std::string& response_body,
                 std::string* response_headers = nullptr);

// --- minimal JSON helpers for the fixed schemas above (exposed for tests) --

/// Extract an integer field ("key": 123); returns false if absent/malformed.
bool json_int_field(const std::string& json, const std::string& key, std::int64_t& out);
/// Extract an integer-array field ("key": [1, 2, 3]).
bool json_int_array_field(const std::string& json, const std::string& key,
                          std::vector<std::int64_t>& out);
/// Extract a boolean field ("key": true/false).
bool json_bool_field(const std::string& json, const std::string& key, bool& out);

}  // namespace gllm::server
