#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gllm::sim {

using EventFn = std::function<void()>;

/// Time-ordered event queue with stable FIFO ordering among equal-time
/// events. Stability matters for reproducibility: two events scheduled for
/// the same instant always fire in schedule order, so simulations are
/// deterministic regardless of heap internals.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t` (seconds). Returns an id usable with
  /// cancel().
  std::uint64_t schedule(double t, EventFn fn);

  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled. Cancellation is lazy (tombstoned), O(1).
  bool cancel(std::uint64_t id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; requires !empty().
  double next_time() const;

  /// Pop the earliest event without running it; requires !empty(). The caller
  /// must advance its clock to `time` *before* invoking `fn`, so that events
  /// scheduled from inside the callback are based at the correct instant.
  struct Popped {
    double time;
    EventFn fn;
  };
  Popped pop_next();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
  mutable std::vector<bool> cancelled_;  // indexed by id
};

}  // namespace gllm::sim
