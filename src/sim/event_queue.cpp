#include "sim/event_queue.hpp"

#include <stdexcept>

namespace gllm::sim {

std::uint64_t EventQueue::schedule(double t, EventFn fn) {
  const std::uint64_t id = next_id_++;
  if (cancelled_.size() <= id) cancelled_.resize(id + 1, false);
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(std::uint64_t id) {
  if (id == 0 || id >= cancelled_.size() || cancelled_[id]) return false;
  // We cannot tell whether the event already fired without bookkeeping;
  // fired events have their flag left false but are no longer in the heap.
  // Probe by marking and adjusting the live count only if a heap entry could
  // still exist. We track that via live_count_ consistency: mark and let
  // drop_cancelled() reconcile. To keep cancel() truthful we maintain an
  // alive set implicitly: an id is alive iff it was scheduled, not popped,
  // not cancelled. Popping clears the flag slot to `true` as a tombstone.
  cancelled_[id] = true;
  if (live_count_ == 0) return false;
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    const_cast<std::priority_queue<Entry, std::vector<Entry>, Later>&>(heap_).pop();
  }
}

double EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop_next() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop_next on empty queue");
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_count_;
  cancelled_[entry.id] = true;  // tombstone so late cancel() returns false
  return Popped{entry.time, std::move(entry.fn)};
}

}  // namespace gllm::sim
