#include "sim/simulator.hpp"

#include <stdexcept>

namespace gllm::sim {

std::uint64_t Simulator::call_in(double delay, EventFn fn) {
  if (delay < 0.0) throw std::invalid_argument("Simulator::call_in: negative delay");
  return events_.schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::call_at(double t, EventFn fn) {
  if (t < now_) throw std::invalid_argument("Simulator::call_at: time in the past");
  return events_.schedule(t, std::move(fn));
}

std::size_t Simulator::run(std::size_t max_events) {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!events_.empty() && executed < max_events && !stop_requested_) {
    auto [time, fn] = events_.pop_next();
    now_ = time;  // advance before running, so nested call_in() bases correctly
    fn();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until(double t_end) {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!events_.empty() && !stop_requested_ && events_.next_time() <= t_end) {
    auto [time, fn] = events_.pop_next();
    now_ = time;
    fn();
    ++executed;
  }
  if (now_ < t_end) now_ = t_end;
  return executed;
}

}  // namespace gllm::sim
