#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"

namespace gllm::sim {

/// Discrete-event simulator: a virtual clock plus an event queue.
///
/// All engine components (pipeline stages, interconnect transfers, request
/// arrivals) are expressed as events against this clock. Time is in seconds.
class Simulator {
 public:
  double now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  std::uint64_t call_in(double delay, EventFn fn);

  /// Schedule `fn` at absolute time `t` (t >= now()).
  std::uint64_t call_at(double t, EventFn fn);

  bool cancel(std::uint64_t id) { return events_.cancel(id); }

  bool idle() const { return events_.empty(); }
  std::size_t pending_events() const { return events_.size(); }

  /// Run events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Run events with time <= t_end, then advance the clock to t_end
  /// (if the queue drains earlier). Returns the number of events executed.
  std::size_t run_until(double t_end);

  /// Stop a run() in progress after the current event completes.
  void stop() { stop_requested_ = true; }

 private:
  EventQueue events_;
  double now_ = 0.0;
  bool stop_requested_ = false;
};

}  // namespace gllm::sim
