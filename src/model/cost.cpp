#include "model/cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gllm::model {

CostModel::CostModel(ModelConfig cfg, hw::GpuSpec gpu, hw::LinkSpec tp_link)
    : cfg_(std::move(cfg)), gpu_(std::move(gpu)), tp_comm_(std::move(tp_link)) {
  cfg_.validate();
}

StageTimeBreakdown CostModel::stage_breakdown(const StageShape& shape,
                                              std::span<const WorkItem> batch,
                                              int tp) const {
  return stage_breakdown(shape, batch, tp, tp_comm_);
}

StageTimeBreakdown CostModel::stage_breakdown(const StageShape& shape,
                                              std::span<const WorkItem> batch, int tp,
                                              const hw::CommModel& comm) const {
  if (tp < 1) throw std::invalid_argument("CostModel: tp must be >= 1");
  StageTimeBreakdown out;

  std::int64_t total_tokens = 0;
  std::int64_t sampled = 0;
  double attn_flops = 0.0;
  double kv_bytes = 0.0;
  const double kv_tok_layer = static_cast<double>(cfg_.kv_bytes_per_token_layer());
  const double q_dim = static_cast<double>(cfg_.n_heads) * cfg_.head_dim;

  for (const WorkItem& item : batch) {
    if (item.new_tokens <= 0) continue;
    total_tokens += item.new_tokens;
    if (item.needs_sampling) ++sampled;
    const double n = item.new_tokens;
    const double ctx = static_cast<double>(item.context);
    // Causal attention: position i attends to (ctx + i) keys. Two GEMMs
    // (QK^T, PV) of 2*q_dim FLOPs per (query, key) pair each.
    const double pairs = ctx * n + n * (n + 1.0) / 2.0;
    attn_flops += 4.0 * q_dim * pairs * shape.n_layers;
    // KV traffic: read the full context per layer, write the new tokens.
    kv_bytes += ((ctx + n) + n) * kv_tok_layer * shape.n_layers;
  }

  if (total_tokens == 0) return out;

  // FLOPs follow the *active* parameters (top-k experts for MoE); weight
  // traffic follows the experts a batch actually touches: T tokens making
  // top-k picks over E experts activate E*(1 - (1 - k/E)^T) of them in
  // expectation, so small decode batches stream only a few experts while a
  // 2k prefill chunk streams all of them.
  const double active_params =
      static_cast<double>(cfg_.attn_params_per_layer() +
                          cfg_.active_mlp_params_per_layer()) *
      shape.n_layers;
  double gemm_flops = 2.0 * active_params * static_cast<double>(total_tokens);

  double resident_linear =
      static_cast<double>(cfg_.attn_params_per_layer() + cfg_.mlp_params_per_layer()) *
      shape.n_layers;
  if (cfg_.is_moe()) {
    const double e = cfg_.n_experts;
    const double k = cfg_.experts_per_token;
    const double touched =
        e * (1.0 - std::pow(1.0 - k / e, static_cast<double>(total_tokens)));
    const double expert_params = 3.0 * cfg_.hidden * cfg_.intermediate;
    resident_linear = (static_cast<double>(cfg_.attn_params_per_layer()) +
                       static_cast<double>(cfg_.hidden) * e +  // router
                       expert_params * touched) *
                      shape.n_layers;
    // Expert-activation imbalance (paper §6): the busiest expert's queue sets
    // the MLP latency. For k*T assignments over e experts the max/mean load
    // ratio shrinks with batch size; small batches pay a large penalty.
    const double assignments = k * static_cast<double>(total_tokens);
    const double imbalance =
        std::min(e / k, 1.0 + 1.5 * std::sqrt(e * std::log(e) / assignments));
    gemm_flops *= imbalance;
  }
  // Weight traffic follows the stored numeric mode: int8-quantized linear
  // weights stream one byte per parameter, cutting the bandwidth term the
  // same way the runtime's packed caches shrink.
  double weight_bytes = resident_linear * cfg_.linear_weight_bytes_per_param();
  if (shape.has_lm_head && sampled > 0) {
    const double head = static_cast<double>(cfg_.embedding_params());
    gemm_flops += 2.0 * head * static_cast<double>(sampled);
    weight_bytes += head * cfg_.linear_weight_bytes_per_param();
  }

  const double eff = gpu_.flops_efficiency(static_cast<double>(total_tokens));
  const double flops_rate = gpu_.peak_flops * eff;
  const double bw = gpu_.effective_mem_bw();

  out.gemm_flops = gemm_flops / tp;
  out.attn_flops = attn_flops / tp;
  out.weight_bytes = weight_bytes / tp;
  out.kv_bytes = kv_bytes / tp;
  out.gemm_time = std::max(out.gemm_flops / flops_rate, out.weight_bytes / bw);
  out.attn_time = std::max(out.attn_flops / flops_rate, out.kv_bytes / bw);
  // Tensor-parallel collectives: the row-sharded attention output and MLP
  // down projections each end in a ring all-reduce of the batch's
  // activations, two per layer. Payload scales with hidden * new tokens.
  if (tp > 1) {
    const double act = activation_bytes(static_cast<int>(total_tokens));
    out.comm_bytes = 2.0 * shape.n_layers * act;
    out.comm_time = 2.0 * shape.n_layers * comm.allreduce_time(act, tp);
  }
  out.overhead = shape.n_layers * gpu_.kernel_overhead + gpu_.iteration_overhead;
  out.total = out.gemm_time + out.attn_time + out.comm_time + out.overhead;
  return out;
}

double CostModel::stage_time(const StageShape& shape, std::span<const WorkItem> batch,
                             int tp) const {
  return stage_breakdown(shape, batch, tp).total;
}

double CostModel::stage_time(const StageShape& shape, std::span<const WorkItem> batch,
                             int tp, const hw::CommModel& comm) const {
  return stage_breakdown(shape, batch, tp, comm).total;
}

std::int64_t kv_token_capacity(const PartitionPlan& plan, const hw::GpuSpec& gpu,
                               double gpu_memory_util, int tp) {
  if (gpu_memory_util <= 0.0 || gpu_memory_util > 1.0)
    throw std::invalid_argument("kv_token_capacity: util must be in (0, 1]");
  if (tp < 1) throw std::invalid_argument("kv_token_capacity: tp must be >= 1");

  std::int64_t capacity = std::numeric_limits<std::int64_t>::max();
  const auto& cfg = plan.config();
  for (int s = 0; s < plan.stages(); ++s) {
    const double budget =
        gpu.memory_bytes * gpu_memory_util - plan.stage_weight_bytes(s) / tp;
    if (budget <= 0.0) return 0;
    const double per_token =
        static_cast<double>(cfg.kv_bytes_per_token_layer()) * plan.stage(s).n_layers / tp;
    capacity = std::min(capacity, static_cast<std::int64_t>(budget / per_token));
  }
  return capacity;
}

std::int64_t kv_token_capacity(const ParallelPlan& plan, const hw::GpuSpec& gpu,
                               double gpu_memory_util) {
  return kv_token_capacity(plan.partition(), gpu, gpu_memory_util, plan.tp());
}

std::vector<ParallelPlanChoice> search_parallel_plans(const ModelConfig& cfg,
                                                      const hw::ClusterSpec& cluster,
                                                      double gpu_memory_util,
                                                      std::int64_t min_kv_tokens) {
  cfg.validate();
  const CostModel cost(cfg, cluster.gpu);

  // Canonical mixed batch: one max-size prefill chunk plus a decode cohort at
  // moderate context — the steady-state iteration Token Throttling aims for.
  std::vector<WorkItem> batch;
  batch.push_back(WorkItem{2048, 0, true, false});
  for (int i = 0; i < 32; ++i) batch.push_back(WorkItem{1, 512, false, true});
  int batch_tokens = 0;
  for (const WorkItem& w : batch) batch_tokens += w.new_tokens;

  std::vector<ParallelPlanChoice> out;
  for (int pp = 1; pp <= std::min(cfg.n_layers, cluster.total_gpus()); ++pp) {
    for (int tp = 1; pp * tp <= cluster.total_gpus(); ++tp) {
      try {
        validate_tp(cfg, tp);
      } catch (const std::invalid_argument&) {
        continue;
      }
      const ParallelPlan plan(cfg, pp, tp);
      const std::int64_t kv = kv_token_capacity(plan, cluster.gpu, gpu_memory_util);
      if (kv < min_kv_tokens) continue;

      double bottleneck = 0.0;
      for (int s = 0; s < pp; ++s) {
        const int first_gpu = s * tp;
        const hw::CommModel comm(tp > 1
                                     ? cluster.link_between(first_gpu, first_gpu + tp - 1)
                                     : hw::links::loopback());
        bottleneck =
            std::max(bottleneck, cost.stage_time(plan.stage(s), batch, tp, comm));
      }
      ParallelPlanChoice choice;
      choice.pp = pp;
      choice.tp = tp;
      choice.kv_capacity_tokens = kv;
      choice.step_time = bottleneck;
      choice.throughput = bottleneck > 0.0 ? batch_tokens / bottleneck : 0.0;
      out.push_back(choice);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.throughput != b.throughput) return a.throughput > b.throughput;
    // Tie-break: fewer devices first, then shallower pipelines.
    if (a.pp * a.tp != b.pp * b.tp) return a.pp * a.tp < b.pp * b.tp;
    return a.pp < b.pp;
  });
  return out;
}

}  // namespace gllm::model
