#include "model/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace gllm::model {

PartitionPlan::PartitionPlan(const ModelConfig& cfg, int pp_stages) : cfg_(cfg) {
  cfg.validate();
  if (pp_stages <= 0) throw std::invalid_argument("PartitionPlan: pp_stages must be > 0");
  if (pp_stages > cfg.n_layers)
    throw std::invalid_argument("PartitionPlan: more stages than layers");

  const int base = cfg.n_layers / pp_stages;
  const int extra = cfg.n_layers % pp_stages;
  int layer = 0;
  shapes_.reserve(static_cast<std::size_t>(pp_stages));
  for (int s = 0; s < pp_stages; ++s) {
    StageShape shape;
    shape.first_layer = layer;
    shape.n_layers = base + (s < extra ? 1 : 0);
    shape.has_embedding = (s == 0);
    shape.has_lm_head = (s == pp_stages - 1);
    layer += shape.n_layers;
    shapes_.push_back(shape);
  }
}

std::int64_t PartitionPlan::stage_params(int s) const {
  const StageShape& shape = stage(s);
  std::int64_t p = cfg_.params_per_layer() * shape.n_layers;
  if (shape.has_embedding) p += cfg_.embedding_params();
  if (shape.has_lm_head) p += cfg_.lm_head_params() + cfg_.hidden;  // + final norm
  return p;
}

double PartitionPlan::stage_weight_bytes(int s) const {
  const StageShape& shape = stage(s);
  // Linear projections (and the LM head, which the runtime packs the same
  // way) take quant-dependent bytes; norms and the embedding stay at the
  // base dtype.
  double linear = static_cast<double>(cfg_.linear_params_per_layer()) * shape.n_layers;
  if (shape.has_lm_head) linear += static_cast<double>(cfg_.lm_head_params());
  const double other = static_cast<double>(stage_params(s)) - linear;
  return linear * cfg_.linear_weight_bytes_per_param() + other * cfg_.dtype_bytes;
}

double PartitionPlan::max_stage_weight_bytes() const {
  double best = 0.0;
  for (int s = 0; s < stages(); ++s) best = std::max(best, stage_weight_bytes(s));
  return best;
}

void validate_tp(const ModelConfig& cfg, int tp) {
  if (tp <= 0) throw std::invalid_argument("validate_tp: tp must be > 0");
  if (cfg.n_heads % tp != 0)
    throw std::invalid_argument("validate_tp: tp=" + std::to_string(tp) +
                                " does not divide n_heads=" + std::to_string(cfg.n_heads));
  if (cfg.n_kv_heads % tp != 0)
    throw std::invalid_argument("validate_tp: tp=" + std::to_string(tp) +
                                " does not divide n_kv_heads=" +
                                std::to_string(cfg.n_kv_heads) +
                                " (GQA groups must stay intact)");
  if (cfg.intermediate % tp != 0)
    throw std::invalid_argument("validate_tp: tp=" + std::to_string(tp) +
                                " does not divide intermediate=" +
                                std::to_string(cfg.intermediate));
}

ParallelPlan::ParallelPlan(const ModelConfig& cfg, int pp, int tp)
    : partition_(cfg, pp), tp_(tp) {
  validate_tp(cfg, tp);
}

}  // namespace gllm::model
