#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/cluster.hpp"
#include "hw/gpu.hpp"
#include "hw/interconnect.hpp"
#include "model/config.hpp"
#include "model/partition.hpp"

namespace gllm::model {

/// One sequence's contribution to a micro-batch forward pass.
struct WorkItem {
  int new_tokens = 0;          ///< tokens computed this iteration (1 for decode)
  std::int64_t context = 0;    ///< KV tokens already cached before this iteration
  bool is_prefill = false;
  bool needs_sampling = false; ///< LM head applied (decode steps / final prefill chunk)
};

/// Timing breakdown of one stage forward, for diagnostics and tests.
struct StageTimeBreakdown {
  double gemm_flops = 0;
  double attn_flops = 0;
  double weight_bytes = 0;
  double kv_bytes = 0;
  double comm_bytes = 0;  ///< activation payload reduced across the TP group
  double gemm_time = 0;
  double attn_time = 0;
  double comm_time = 0;   ///< ring all-reduce time (0 when tp == 1)
  double overhead = 0;
  double total = 0;
};

/// Roofline forward-pass timing for a pipeline stage on a single GPU.
///
/// Two "virtual kernels" per forward:
///   * GEMM (projections + MLP + LM head): time = max(FLOPs / (peak * eff(T)),
///     resident weight bytes / effective HBM bandwidth). Small decode batches
///     are bandwidth-bound on weight streaming; 2k-token prefill chunks are
///     compute-bound — exactly the asymmetry Token Throttling exploits.
///   * Attention: time = max(attention FLOPs / (peak * eff(T)),
///     KV-cache traffic / bandwidth). Decode attention is KV-read bound and
///     grows linearly with total cached context, the paper's "variations in
///     decode compute times" bubble source.
/// Plus per-layer kernel-launch overhead and a fixed per-iteration cost.
///
/// This is the GPU substitution documented in DESIGN.md section 2: scheduler
/// policies and queueing are exact; only kernel latency is modelled.
class CostModel {
 public:
  /// `tp_link` is the interconnect the TP group's collectives ride when the
  /// per-call overloads are not given an explicit CommModel (engines pass
  /// their cluster's actual link per stage).
  CostModel(ModelConfig cfg, hw::GpuSpec gpu,
            hw::LinkSpec tp_link = hw::links::nvlink());

  /// Forward time of `shape`'s layers over `batch`, optionally TP-sharded
  /// `tp` ways: compute and memory traffic are divided by `tp`, and the two
  /// per-layer ring all-reduces (post-attention, post-MLP) over the batch's
  /// activations are charged here via hw::CommModel — TP is not free.
  double stage_time(const StageShape& shape, std::span<const WorkItem> batch,
                    int tp = 1) const;
  double stage_time(const StageShape& shape, std::span<const WorkItem> batch, int tp,
                    const hw::CommModel& comm) const;

  StageTimeBreakdown stage_breakdown(const StageShape& shape,
                                     std::span<const WorkItem> batch, int tp = 1) const;
  StageTimeBreakdown stage_breakdown(const StageShape& shape,
                                     std::span<const WorkItem> batch, int tp,
                                     const hw::CommModel& comm) const;

  /// Bytes of activations handed to the next stage for `tokens` batched tokens.
  double activation_bytes(int tokens) const {
    return static_cast<double>(cfg_.activation_bytes_per_token()) * tokens;
  }

  /// KV bytes per token held by one stage (its layers only).
  double kv_bytes_per_token_stage(const StageShape& shape) const {
    return static_cast<double>(cfg_.kv_bytes_per_token_layer()) * shape.n_layers;
  }

  const ModelConfig& config() const { return cfg_; }
  const hw::GpuSpec& gpu() const { return gpu_; }
  const hw::CommModel& tp_comm() const { return tp_comm_; }

 private:
  ModelConfig cfg_;
  hw::GpuSpec gpu_;
  hw::CommModel tp_comm_;
};

/// KV-cache token capacity of a PP deployment: for each stage, the memory
/// left after weights divided by that stage's per-token KV bytes; the fleet
/// capacity is the minimum across stages (page tables are unified, so every
/// stage must hold KV for every resident token).
std::int64_t kv_token_capacity(const PartitionPlan& plan, const hw::GpuSpec& gpu,
                               double gpu_memory_util, int tp = 1);
std::int64_t kv_token_capacity(const ParallelPlan& plan, const hw::GpuSpec& gpu,
                               double gpu_memory_util);

/// One candidate (pp, tp) mapping scored by the two-dimensional search.
struct ParallelPlanChoice {
  int pp = 1;
  int tp = 1;
  std::int64_t kv_capacity_tokens = 0;  ///< under the per-GPU memory bound
  double step_time = 0;    ///< bottleneck stage forward time, collectives included
  double throughput = 0;   ///< canonical-batch tokens/s at that bottleneck
};

/// Two-dimensional partition search: enumerate every (pp, tp) mapping with
/// `pp <= n_layers`, `tp` dividing the head/FFN dimensions and `pp * tp <=
/// cluster.total_gpus()`, keep those whose KV capacity under the per-GPU
/// memory bound (`kv_token_capacity`) reaches `min_kv_tokens`, and rank by
/// simulated throughput on a canonical mixed batch (one chunked prefill +
/// a decode cohort). Collectives ride the cluster's actual links, so wide TP
/// on a PCIe ring loses to deeper PP exactly as in the paper's testbed.
/// Returns feasible choices sorted best-first; empty if nothing fits.
std::vector<ParallelPlanChoice> search_parallel_plans(
    const ModelConfig& cfg, const hw::ClusterSpec& cluster, double gpu_memory_util,
    std::int64_t min_kv_tokens = 2048);

}  // namespace gllm::model
