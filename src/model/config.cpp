#include "model/config.hpp"

#include <stdexcept>

namespace gllm::model {

const char* to_string(QuantMode q) {
  switch (q) {
    case QuantMode::kFp32: return "fp32";
    case QuantMode::kInt8: return "int8";
  }
  return "unknown";
}

QuantMode parse_quant(const std::string& s) {
  if (s == "fp32") return QuantMode::kFp32;
  if (s == "int8") return QuantMode::kInt8;
  throw std::invalid_argument("parse_quant: expected fp32 or int8, got '" + s + "'");
}

std::int64_t ModelConfig::attn_params_per_layer() const {
  const std::int64_t q_dim = static_cast<std::int64_t>(n_heads) * head_dim;
  const std::int64_t kv_dim = static_cast<std::int64_t>(n_kv_heads) * head_dim;
  const std::int64_t q = static_cast<std::int64_t>(hidden) * q_dim;
  const std::int64_t k = static_cast<std::int64_t>(hidden) * kv_dim;
  const std::int64_t v = k;
  const std::int64_t o = q_dim * hidden;
  return q + k + v + o;
}

std::int64_t ModelConfig::mlp_params_per_layer() const {
  const std::int64_t one_expert = 3LL * hidden * intermediate;  // gate, up, down
  if (!is_moe()) return one_expert;
  return one_expert * n_experts + static_cast<std::int64_t>(hidden) * n_experts;  // + router
}

std::int64_t ModelConfig::active_mlp_params_per_layer() const {
  const std::int64_t one_expert = 3LL * hidden * intermediate;
  if (!is_moe()) return one_expert;
  return one_expert * experts_per_token + static_cast<std::int64_t>(hidden) * n_experts;
}

std::int64_t ModelConfig::norm_params_per_layer() const { return 2LL * hidden; }

std::int64_t ModelConfig::params_per_layer() const {
  return attn_params_per_layer() + mlp_params_per_layer() + norm_params_per_layer();
}

std::int64_t ModelConfig::embedding_params() const {
  return static_cast<std::int64_t>(vocab) * hidden;
}

std::int64_t ModelConfig::lm_head_params() const {
  return tie_embeddings ? 0 : embedding_params();
}

std::int64_t ModelConfig::total_params() const {
  return params_per_layer() * n_layers + embedding_params() + lm_head_params() +
         hidden;  // final norm
}

void ModelConfig::validate() const {
  if (n_layers <= 0) throw std::invalid_argument("ModelConfig: n_layers must be > 0");
  if (n_experts < 0) throw std::invalid_argument("ModelConfig: n_experts must be >= 0");
  if (is_moe() && (experts_per_token <= 0 || experts_per_token > n_experts))
    throw std::invalid_argument("ModelConfig: experts_per_token must be in [1, n_experts]");
  if (!is_moe() && experts_per_token != 0)
    throw std::invalid_argument("ModelConfig: experts_per_token requires n_experts > 0");
  if (hidden <= 0) throw std::invalid_argument("ModelConfig: hidden must be > 0");
  if (n_heads <= 0) throw std::invalid_argument("ModelConfig: n_heads must be > 0");
  if (n_kv_heads <= 0 || n_heads % n_kv_heads != 0)
    throw std::invalid_argument("ModelConfig: n_kv_heads must divide n_heads");
  if (head_dim <= 0) throw std::invalid_argument("ModelConfig: head_dim must be > 0");
  if (intermediate <= 0) throw std::invalid_argument("ModelConfig: intermediate must be > 0");
  if (vocab <= 0) throw std::invalid_argument("ModelConfig: vocab must be > 0");
  if (dtype_bytes <= 0) throw std::invalid_argument("ModelConfig: dtype_bytes must be > 0");
}

namespace presets {

ModelConfig qwen2_5_14b() {
  ModelConfig m;
  m.name = "Qwen2.5-14B";
  m.n_layers = 48;
  m.hidden = 5120;
  m.n_heads = 40;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate = 13824;
  m.vocab = 152064;
  return m;
}

ModelConfig qwen2_5_32b() {
  ModelConfig m;
  m.name = "Qwen2.5-32B";
  m.n_layers = 64;
  m.hidden = 5120;
  m.n_heads = 40;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate = 27648;
  m.vocab = 152064;
  return m;
}

ModelConfig mixtral_8x7b() {
  ModelConfig m;
  m.name = "Mixtral-8x7B";
  m.n_layers = 32;
  m.hidden = 4096;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate = 14336;
  m.vocab = 32000;
  m.n_experts = 8;
  m.experts_per_token = 2;
  return m;
}

ModelConfig llama3_1_100b() {
  ModelConfig m;
  m.name = "Llama3.1-100B";
  m.n_layers = 30;  // downscaled from 405B's 126 layers to ~100B params
  m.hidden = 16384;
  m.n_heads = 128;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate = 53248;
  m.vocab = 128256;
  return m;
}

ModelConfig llama3_1_8b() {
  ModelConfig m;
  m.name = "Llama3.1-8B";
  m.n_layers = 32;
  m.hidden = 4096;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  m.intermediate = 14336;
  m.vocab = 128256;
  return m;
}

ModelConfig tiny() {
  ModelConfig m;
  m.name = "tiny";
  m.n_layers = 8;
  m.hidden = 64;
  // 8 query heads over 4 KV heads (GQA group of 2): every tp in {1, 2, 4}
  // divides both head counts and `intermediate`, so the tiny model can run
  // tensor-parallel sharded in tests.
  m.n_heads = 8;
  m.n_kv_heads = 4;
  m.head_dim = 8;
  m.intermediate = 172;
  m.vocab = 256;
  m.dtype_bytes = 4;  // the CPU runtime computes in fp32
  return m;
}

}  // namespace presets

}  // namespace gllm::model
