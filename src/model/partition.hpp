#pragma once

#include <vector>

#include "model/config.hpp"

namespace gllm::model {

/// One pipeline stage's slice of the model.
struct StageShape {
  int first_layer = 0;
  int n_layers = 0;
  bool has_embedding = false;  ///< token embedding lives on the first stage
  bool has_lm_head = false;    ///< output head + final norm on the last stage

  int last_layer_exclusive() const { return first_layer + n_layers; }
};

/// Even inter-layer partition of a model across `pp` pipeline stages,
/// remainder layers assigned to the earliest stages (vLLM convention).
class PartitionPlan {
 public:
  PartitionPlan(const ModelConfig& cfg, int pp_stages);

  int stages() const { return static_cast<int>(shapes_.size()); }
  const StageShape& stage(int s) const { return shapes_.at(static_cast<std::size_t>(s)); }
  const std::vector<StageShape>& shapes() const { return shapes_; }

  /// Parameters resident on stage `s` (weights only, excludes KV cache).
  std::int64_t stage_params(int s) const;
  double stage_weight_bytes(int s) const;
  /// Largest stage footprint; determines weight memory per GPU.
  double max_stage_weight_bytes() const;

  const ModelConfig& config() const { return cfg_; }

 private:
  ModelConfig cfg_;
  std::vector<StageShape> shapes_;
};

/// Throws std::invalid_argument unless the model can be tensor-parallel
/// sharded `tp` ways: the query heads, KV heads (GQA groups stay intact —
/// every query head's KV head must live in the same shard) and the FFN
/// intermediate dimension must all divide evenly.
void validate_tp(const ModelConfig& cfg, int tp);

/// Two-dimensional parallelism mapping: `pp` pipeline stages, each sharded
/// `tp` ways across its tensor-parallel group. Wraps the 1-D layer split and
/// adds the TP divisibility validation; `pp * tp` devices total, stage `s`
/// occupying devices `[s*tp, (s+1)*tp)`.
class ParallelPlan {
 public:
  ParallelPlan(const ModelConfig& cfg, int pp, int tp);

  int pp() const { return partition_.stages(); }
  int tp() const { return tp_; }
  int total_devices() const { return pp() * tp_; }

  const PartitionPlan& partition() const { return partition_; }
  const StageShape& stage(int s) const { return partition_.stage(s); }
  const ModelConfig& config() const { return partition_.config(); }

  /// Per-device weight bytes for stage `s`: the stage's footprint divided
  /// across its TP group.
  double device_weight_bytes(int s) const {
    return partition_.stage_weight_bytes(s) / tp_;
  }

 private:
  PartitionPlan partition_;
  int tp_ = 1;
};

}  // namespace gllm::model
