#pragma once

#include <cstdint>
#include <string>

namespace gllm::model {

/// Weight numeric mode of the linear projections (q/k/v/o, gate/up/down, LM
/// head). kInt8 is symmetric per-output-channel weight-only quantization
/// (scale = max|row| / 127, fp32 activations and accumulation); norms and the
/// embedding table always stay in the base dtype. A quantized deployment is a
/// *declared* numeric mode: token streams are deterministic and
/// parallelism-invariant within the mode, but differ from fp32 streams.
enum class QuantMode : std::uint8_t { kFp32 = 0, kInt8 = 1 };

const char* to_string(QuantMode q);
/// Parses "fp32" | "int8"; throws std::invalid_argument otherwise.
QuantMode parse_quant(const std::string& s);

/// Architecture description of a decoder-only transformer (the only family
/// the paper serves). All parameter/byte accounting used by the cost model
/// and KV manager derives from these fields.
struct ModelConfig {
  std::string name;
  int n_layers = 0;
  int hidden = 0;
  int n_heads = 0;
  int n_kv_heads = 0;   ///< GQA group count (== n_heads for MHA).
  int head_dim = 0;
  int intermediate = 0; ///< SwiGLU MLP width (gate/up/down are hidden x intermediate).
  int vocab = 0;
  int dtype_bytes = 2;  ///< bf16 by default.
  bool tie_embeddings = false;
  /// Numeric mode of the linear projection weights (weight-only int8 or the
  /// base dtype). Affects weight-byte accounting (partition plans, the cost
  /// model's bandwidth term) and the CPU runtime's packed weight caches.
  QuantMode quant = QuantMode::kFp32;

  /// Mixture-of-experts (0 experts = dense). Each layer carries `n_experts`
  /// independent SwiGLU MLPs plus a router; each token activates
  /// `experts_per_token` of them. The paper's §6 names expert-activation
  /// variability as the next source of inter-batch imbalance.
  int n_experts = 0;
  int experts_per_token = 0;

  bool is_moe() const { return n_experts > 0; }

  // ---- Derived parameter counts ----------------------------------------

  /// q/k/v/o projections of one layer.
  std::int64_t attn_params_per_layer() const;
  /// gate/up/down of one layer — all experts plus the router for MoE.
  std::int64_t mlp_params_per_layer() const;
  /// Parameters actually touched per token in one layer's MLP
  /// (experts_per_token experts + router for MoE; the whole MLP when dense).
  std::int64_t active_mlp_params_per_layer() const;
  /// RMSNorm weights of one layer (2 norms).
  std::int64_t norm_params_per_layer() const;
  std::int64_t params_per_layer() const;
  std::int64_t embedding_params() const;  ///< token embedding table
  std::int64_t lm_head_params() const;    ///< output projection (0 if tied)
  std::int64_t total_params() const;

  /// Bytes per *linear-projection* parameter under the active quant mode.
  /// int8 stores 1 byte per weight; the fp32 per-output-channel scales are
  /// K-fold smaller than the weights and are ignored by this accounting.
  double linear_weight_bytes_per_param() const {
    return quant == QuantMode::kInt8 ? 1.0 : static_cast<double>(dtype_bytes);
  }
  /// Linear-projection parameters of one layer (everything quantization
  /// applies to: q/k/v/o + gate/up/down; norms excluded).
  std::int64_t linear_params_per_layer() const {
    return attn_params_per_layer() + mlp_params_per_layer();
  }

  double total_weight_bytes() const {
    const double linear =
        static_cast<double>(linear_params_per_layer()) * n_layers +
        static_cast<double>(lm_head_params());
    const double other = static_cast<double>(total_params()) -
                         static_cast<double>(linear_params_per_layer()) * n_layers -
                         static_cast<double>(lm_head_params());
    return linear * linear_weight_bytes_per_param() + other * dtype_bytes;
  }

  /// KV cache bytes for one token in one layer (K and V).
  std::int64_t kv_bytes_per_token_layer() const {
    return 2LL * n_kv_heads * head_dim * dtype_bytes;
  }
  /// KV cache bytes for one token across all layers.
  std::int64_t kv_bytes_per_token() const {
    return kv_bytes_per_token_layer() * n_layers;
  }

  /// Size of the activation tensor handed between pipeline stages, per token.
  std::int64_t activation_bytes_per_token() const {
    return static_cast<std::int64_t>(hidden) * dtype_bytes;
  }

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;
};

/// Presets used in the paper's evaluation (4.1) plus small models for tests.
namespace presets {
ModelConfig qwen2_5_14b();
ModelConfig qwen2_5_32b();
/// Mixtral-8x7B-class MoE (8 experts, top-2) for the paper's §6 MoE
/// extension studies.
ModelConfig mixtral_8x7b();
/// Llama-3.1-405B downscaled to ~100B by reducing layer count, as in the
/// paper ("downscaled from Llama3.1-405B to fit in GPU memory").
ModelConfig llama3_1_100b();
ModelConfig llama3_1_8b();
/// Tiny config for the real CPU runtime and unit tests.
ModelConfig tiny();
}  // namespace presets

}  // namespace gllm::model
