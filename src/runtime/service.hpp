#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "net/transport.hpp"
#include "runtime/driver_state.hpp"
#include "runtime/pipeline_runtime.hpp"

namespace gllm::runtime {

/// Externally visible health of the online service.
enum class ServiceHealth {
  kServing,     ///< pipeline up, accepting and executing requests
  kRecovering,  ///< a worker died; tearing down / respawning the pipeline
  kFailed,      ///< restart budget exhausted; requests are rejected outright
};

inline const char* to_string(ServiceHealth h) {
  switch (h) {
    case ServiceHealth::kServing: return "serving";
    case ServiceHealth::kRecovering: return "recovering";
    case ServiceHealth::kFailed: return "failed";
  }
  return "unknown";
}

/// Online serving mode of the threaded runtime — the reproduction's analogue
/// of the artifact's persistent `api_server`: start once, submit requests at
/// any time from any thread, stream tokens back, stop when done.
///
/// The driver thread runs the same Token-Throttling admission loop as the
/// batch runner (shared DriverState); submissions land in a thread-safe
/// inbox that the driver drains between micro-batches, so a request submitted
/// mid-flight joins scheduling within one iteration.
///
/// Fault tolerance (RuntimeOptions::fault): when a stage worker dies (or a
/// micro-batch wedges past the sample-wait watchdog), the driver tears the
/// pipeline down, folds every unfinished sequence back into pending prefill
/// via AdmissionCore's recompute-preemption path, and respawns the backend
/// (re-fork in kFork mode, re-handshake with reconnecting workers in kRemote
/// mode). Greedy sampling on seeded weights makes recomputation emit the
/// byte-identical continuation, so recovered runs match a fault-free
/// reference. Requests folded back more than max_request_failures times, and
/// everything once max_pipeline_restarts is exhausted, terminate with an
/// explicit error-bearing StreamEvent — no accepted request ever silently
/// hangs or vanishes.
class PipelineService {
 public:
  PipelineService(RuntimeOptions options, std::shared_ptr<sched::IScheduler> scheduler);
  ~PipelineService();

  PipelineService(const PipelineService&) = delete;
  PipelineService& operator=(const PipelineService&) = delete;

  /// Spin up stage workers and the driver thread. Idempotent.
  void start();

  /// Enqueue a request (thread-safe). `on_token` (optional) is invoked from
  /// the driver thread for every sampled token, with is_last on the final
  /// one; a request that terminates without completing gets exactly one
  /// terminal event carrying a StreamError instead. Oversized requests
  /// (prompt+output beyond KV capacity) and submissions racing stop() are
  /// rejected with such an event from the submitting thread; a request id
  /// still in flight is likewise rejected (kRejected) rather than admitted
  /// twice. Throws only if the service was never started.
  void submit(nn::GenRequest request,
              std::function<void(const StreamEvent&)> on_token = nullptr);

  /// Block until every submitted request has finished (or been rejected).
  void drain();

  /// Drain-free shutdown: stops accepting submissions, finishes everything
  /// already accepted, joins all threads. Idempotent; called by the dtor.
  void stop();

  /// Records of all finished/rejected requests so far (thread-safe snapshot).
  std::vector<RuntimeRequestRecord> results() const;

  bool running() const;
  /// Current health (thread-safe): kServing, kRecovering while the pipeline
  /// respawns, kFailed once the restart budget is exhausted.
  ServiceHealth health() const { return health_.load(); }
  /// Pipeline teardown+respawn attempts so far (thread-safe).
  int pipeline_restarts() const { return restarts_.load(); }
  /// Admission-shedding signal for the HTTP front-end (thread-safe): the
  /// waiting-prefill queue depth as last published by the driver loop, plus
  /// submissions still sitting in the inbox. A front door comparing this to
  /// its shed threshold answers 503 + Retry-After instead of queueing work
  /// the pipeline is already behind on.
  std::size_t queue_depth() const { return waiting_depth_.load() + inbox_.size(); }
  /// Decode-queue depth as last published by the driver loop (thread-safe).
  /// Together with queue_depth() this is the live load signal a fleet router
  /// balances on (/v1/stats "running_decodes").
  std::size_t running_decodes() const { return running_depth_.load(); }
  /// Blocks held by the prompt-prefix cache as last published by the driver
  /// loop (0 when prefix caching is off). Thread-safe.
  std::size_t prefix_cache_blocks() const { return prefix_blocks_.load(); }
  /// Pipeline restarts the fault budget still allows (thread-safe; clamps at
  /// 0 once exhausted). A router treats a replica with no budget left as one
  /// failure away from kFailed when weighing placements.
  int restart_budget_remaining() const {
    const int left = options_.fault.max_pipeline_restarts - restarts_.load();
    return left > 0 ? left : 0;
  }
  const RuntimeOptions& options() const { return options_; }

 private:
  struct Submission {
    nn::GenRequest request;
    std::function<void(const StreamEvent&)> on_token;
  };

  void service_loop();
  void admit_submission(Submission submission);
  /// Admit micro-batches up to the pipeline depth; true if any was dispatched.
  bool admit_batches();
  void finish_record(const engine::Sequence& seq, StreamError error = StreamError::kNone);
  /// Fire the terminal error event for a registered sequence, then record it.
  void fail_record(const engine::Sequence& seq, StreamError error);
  /// Record a request that never reached the sequence table; fires cb (from
  /// the calling thread) with a terminal error event.
  void record_rejection(std::int64_t id,
                        const std::function<void(const StreamEvent&)>& cb,
                        StreamError error, bool count_outstanding);
  nn::Sampler make_sampler() const;
  /// Pipeline failure: tear down, fold back, enforce the per-request failure
  /// budget, back off and respawn. Falls through to fail_pipeline() once the
  /// restart budget is exhausted. Driver thread only.
  void recover(const char* why);
  /// Terminal degradation: every unfinished request gets an explicit error;
  /// future submissions are rejected immediately.
  void fail_pipeline();
  /// Terminate requests folded back beyond fault.max_request_failures.
  void enforce_request_budget();

  RuntimeOptions options_;
  std::shared_ptr<sched::IScheduler> scheduler_;
  std::int64_t kv_capacity_;

  std::unique_ptr<DriverState> state_;  // owned by the driver thread after start
  net::PipelineBackend backend_;
  util::BoundedQueue<Submission> inbox_{1024};
  std::thread driver_;
  std::chrono::steady_clock::time_point t0_;

  std::atomic<ServiceHealth> health_{ServiceHealth::kServing};
  std::atomic<int> restarts_{0};
  std::atomic<std::size_t> waiting_depth_{0};
  std::atomic<std::size_t> running_depth_{0};
  std::atomic<std::size_t> prefix_blocks_{0};

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::unordered_map<std::int64_t, std::function<void(const StreamEvent&)>> callbacks_;
  std::vector<RuntimeRequestRecord> records_;
  std::unordered_set<std::int64_t> recorded_;  ///< ids already in records_
  std::size_t outstanding_ = 0;
  bool running_ = false;
};

}  // namespace gllm::runtime
