#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "net/transport.hpp"
#include "runtime/driver_state.hpp"
#include "runtime/pipeline_runtime.hpp"

namespace gllm::runtime {

/// Online serving mode of the threaded runtime — the reproduction's analogue
/// of the artifact's persistent `api_server`: start once, submit requests at
/// any time from any thread, stream tokens back, stop when done.
///
/// The driver thread runs the same Token-Throttling admission loop as the
/// batch runner (shared DriverState); submissions land in a thread-safe
/// inbox that the driver drains between micro-batches, so a request submitted
/// mid-flight joins scheduling within one iteration.
class PipelineService {
 public:
  PipelineService(RuntimeOptions options, std::shared_ptr<sched::IScheduler> scheduler);
  ~PipelineService();

  PipelineService(const PipelineService&) = delete;
  PipelineService& operator=(const PipelineService&) = delete;

  /// Spin up stage workers and the driver thread. Idempotent.
  void start();

  /// Enqueue a request (thread-safe). `on_token` (optional) is invoked from
  /// the driver thread for every sampled token, with is_last on the final
  /// one. Oversized requests (prompt+output beyond KV capacity) are rejected
  /// immediately with a completed=false record. Throws if not started.
  void submit(nn::GenRequest request,
              std::function<void(const StreamEvent&)> on_token = nullptr);

  /// Block until every submitted request has finished (or been rejected).
  void drain();

  /// Drain-free shutdown: stops accepting submissions, finishes everything
  /// already accepted, joins all threads. Idempotent; called by the dtor.
  void stop();

  /// Records of all finished/rejected requests so far (thread-safe snapshot).
  std::vector<RuntimeRequestRecord> results() const;

  bool running() const;
  const RuntimeOptions& options() const { return options_; }

 private:
  struct Submission {
    nn::GenRequest request;
    std::function<void(const StreamEvent&)> on_token;
  };

  void service_loop();
  void admit_submission(Submission submission);
  /// Admit micro-batches up to the pipeline depth; true if any was dispatched.
  bool admit_batches();
  void finish_record(const engine::Sequence& seq);

  RuntimeOptions options_;
  std::shared_ptr<sched::IScheduler> scheduler_;
  std::int64_t kv_capacity_;

  std::unique_ptr<DriverState> state_;  // owned by the driver thread after start
  net::PipelineBackend backend_;
  util::BoundedQueue<Submission> inbox_{1024};
  std::thread driver_;
  std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::unordered_map<std::int64_t, std::function<void(const StreamEvent&)>> callbacks_;
  std::vector<RuntimeRequestRecord> records_;
  std::size_t outstanding_ = 0;
  bool running_ = false;
};

}  // namespace gllm::runtime
