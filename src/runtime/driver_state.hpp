#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/admission_core.hpp"
#include "engine/sequence.hpp"
#include "nn/reference.hpp"
#include "runtime/worker.hpp"
#include "sched/types.hpp"
#include "spec/proposer.hpp"

namespace gllm::runtime {

/// Options shared by the batch runner and the online service (split out of
/// RuntimeOptions so DriverState needs no circular include).
struct DriverConfig {
  bool prefix_caching = false;
  /// Observability sink forwarded into the shared AdmissionCore (null = off).
  obs::Observability* obs = nullptr;
  /// Trace track for admission instants (by convention pp, the driver track).
  int trace_track = 0;
  /// Speculative decoding (mode kOff disables). Draft-model proposals build a
  /// halved-depth copy of `model` seeded with `weight_seed`, so both must be
  /// set whenever spec.mode == kDraft.
  spec::SpecConfig spec;
  model::ModelConfig model;
  std::uint64_t weight_seed = 0;
};

/// The driver worker's scheduling state, shared between PipelineRuntime
/// (batch mode) and PipelineService (online mode). All sequence-lifecycle/
/// admission logic (queues, KV allocation, recompute preemption, prefix-cache
/// adoption, completion bookkeeping) lives in engine::AdmissionCore — the
/// same implementation the DES engines run — so this adapter only translates
/// committed micro-batches into StepMetadata packets for the stage workers
/// and sampled tokens back into completions.
class DriverState {
 public:
  DriverState(std::int64_t kv_capacity_tokens, int kv_block_size, int pipeline_depth,
              DriverConfig config);

  /// Register a request (throws on duplicate id); it is NOT yet waiting.
  engine::Sequence* add_request(const nn::GenRequest& request, double arrival);

  /// Move a registered sequence into the waiting queue.
  void admit(engine::Sequence* seq) { core_.enqueue(seq); }

  sched::ScheduleContext build_context(double now) const {
    return core_.build_context(now);
  }

  /// Materialise a plan (KV allocation with recompute preemption, prefix-
  /// cache adoption, chunk bookkeeping) and broadcast the metadata packet.
  /// Returns true if a micro-batch was dispatched.
  bool materialize_and_dispatch(sched::MicroBatchPlan plan, double now,
                                const std::vector<MetaChannel*>& channels);

  /// Apply one completed micro-batch's sampled tokens. For each finished or
  /// token-bearing sequence the callbacks fire:
  ///   on_token(seq, token, is_last)  — per sampled token.
  /// Returns the number of sequences that finished in this batch.
  int complete_batch(const SampleResult& result, double now,
                     const std::function<void(const engine::Sequence&, nn::TokenId,
                                              bool)>& on_token);

  /// Break a KV deadlock among half-admitted prompts (vLLM recompute).
  bool reset_stalled_prefill() { return core_.reset_stalled_prefill(); }

  /// Pipeline-failure recovery: fold every unfinished sequence back into
  /// pending prefill and rebuild the KV pools (engine::AdmissionCore's
  /// recompute-preemption machinery pointed at failure instead of KV
  /// pressure). Returns the number of sequences folded. In-flight speculative
  /// proposals die with the batches they rode in; the proposer re-syncs from
  /// the replayed history on the next propose call.
  int recover_all() {
    proposals_.clear();
    return core_.recover_all();
  }

  /// Terminate a non-finished sequence with an explicit failure (kAborted).
  void abort_sequence(kv::SeqId id) {
    if (proposer_) proposer_->forget(id);
    proposals_.erase(id);
    core_.abort_sequence(id);
  }

  // --- introspection ---------------------------------------------------------
  int in_flight() const { return core_.in_flight(); }
  bool has_waiting() const { return !core_.waiting().empty(); }
  /// Depth of the waiting-prefill queue (driver thread only; the service
  /// publishes it to an atomic for the HTTP front-end's admission shedding).
  std::size_t waiting_count() const { return core_.waiting().size(); }
  /// Depth of the decode queue (driver thread only; published like
  /// waiting_count so /v1/stats can report live load to a fleet router).
  std::size_t decoding_count() const { return core_.decoding().size(); }
  /// Blocks currently held by the prompt-prefix cache (0 when prefix caching
  /// is off). Driver thread only; published alongside the queue depths.
  std::size_t prefix_cache_blocks() const {
    const kv::PrefixCache* cache = core_.prefill_kv().prefix_cache();
    return cache != nullptr ? cache->size() : 0;
  }
  std::int64_t preemptions() const { return core_.preemptions(); }
  const engine::Sequence& seq(kv::SeqId id) const { return core_.seq(id); }
  /// Prompt + generated token ids of a registered request.
  const std::vector<nn::TokenId>& tokens(kv::SeqId id) const { return core_.tokens(id); }
  /// Prefill chunk sizes in commit order (admission-parity fingerprint).
  const std::vector<int>& scheduled_chunks(kv::SeqId id) const {
    return core_.scheduled_chunks(id);
  }
  void for_each_sequence(const std::function<void(const engine::Sequence&)>& fn) const {
    core_.for_each_sequence(fn);
  }

 private:
  engine::AdmissionCore core_;
  /// Draft-token source when speculative decoding is on (null = off).
  std::unique_ptr<spec::Proposer> proposer_;
  /// Drafts proposed for the in-flight decode step of each sequence, consumed
  /// by verification in complete_batch. At most one entry per sequence: a
  /// sequence has at most one decode step in flight.
  std::unordered_map<kv::SeqId, std::vector<nn::TokenId>> proposals_;
  obs::Observability* obs_ = nullptr;
  int trace_track_ = 0;
};

/// The assembled worker pipeline: per-stage metadata channels, inter-stage
/// activation channels, the sample channel back to the driver, and the worker
/// threads (started on construction, joined by shutdown()).
struct PipelineHandles {
  std::vector<std::unique_ptr<MetaChannel>> meta_channels;
  std::vector<std::unique_ptr<ActChannel>> act_channels;
  std::unique_ptr<SampleChannel> samples;
  std::vector<std::unique_ptr<StageWorker>> workers;
  std::vector<MetaChannel*> channel_ptrs;

  void shutdown();
};

/// Build and start the stage workers for `model` partitioned `pp` ways, each
/// stage sharded `tp` ways over the shared thread pool. `tracer` (nullable)
/// gives each worker a span track equal to its stage index; it must outlive
/// the workers.
PipelineHandles assemble_pipeline(const model::ModelConfig& model, int pp,
                                  std::uint64_t weight_seed, std::int64_t kv_capacity,
                                  int kv_block_size, nn::Sampler sampler,
                                  obs::Tracer* tracer = nullptr, int tp = 1);

}  // namespace gllm::runtime
