#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/sequence.hpp"
#include "nn/reference.hpp"
#include "runtime/worker.hpp"
#include "sched/types.hpp"

namespace gllm::runtime {

/// Options shared by the batch runner and the online service (split out of
/// RuntimeOptions so DriverState needs no circular include).
struct DriverConfig {
  bool prefix_caching = false;
};

/// The driver worker's scheduling state, shared between PipelineRuntime
/// (batch mode) and PipelineService (online mode): sequence bookkeeping, KV
/// management, plan materialisation and metadata broadcast.
class DriverState {
 public:
  struct SeqCtx {
    std::unique_ptr<engine::Sequence> seq;
    std::vector<nn::TokenId> tokens;  ///< prompt + generated
  };

  DriverState(std::int64_t kv_capacity_tokens, int kv_block_size, int pipeline_depth,
              DriverConfig config);

  /// Register a request (throws on duplicate id); it is NOT yet waiting.
  engine::Sequence* add_request(const nn::GenRequest& request, double arrival);

  /// Move a registered sequence into the waiting queue.
  void admit(engine::Sequence* seq) { waiting_.push_back(seq); }

  sched::ScheduleContext build_context(double now) const;

  /// Materialise a plan (KV allocation with recompute preemption, prefix-
  /// cache adoption, chunk bookkeeping) and broadcast the metadata packet.
  /// Returns true if a micro-batch was dispatched.
  bool materialize_and_dispatch(sched::MicroBatchPlan plan, double now,
                                const std::vector<MetaChannel*>& channels);

  /// Apply one completed micro-batch's sampled tokens. For each finished or
  /// token-bearing sequence the callbacks fire:
  ///   on_token(seq, token, is_last)  — per sampled token.
  /// Returns the number of sequences that finished in this batch.
  int complete_batch(const SampleResult& result, double now,
                     const std::function<void(const engine::Sequence&, nn::TokenId,
                                              bool)>& on_token);

  /// Break a KV deadlock among half-admitted prompts (vLLM recompute).
  bool reset_stalled_prefill();

  // --- introspection ---------------------------------------------------------
  int in_flight() const { return static_cast<int>(in_flight_.size()); }
  bool has_waiting() const { return !waiting_.empty(); }
  std::int64_t preemptions() const { return preemptions_; }
  const std::unordered_map<kv::SeqId, SeqCtx>& sequences() const { return seqs_; }
  const SeqCtx& seq_ctx(kv::SeqId id) const { return seqs_.at(id); }

 private:
  DriverConfig config_;
  int pipeline_depth_;
  std::unique_ptr<kv::KvManager> kv_;
  std::unordered_map<kv::SeqId, SeqCtx> seqs_;
  std::deque<engine::Sequence*> waiting_;
  std::vector<engine::Sequence*> decoding_;
  std::unordered_map<std::uint64_t, std::vector<sched::BatchItem>> in_flight_;
  std::uint64_t next_batch_id_ = 1;
  std::int64_t preemptions_ = 0;
};

/// The assembled worker pipeline: per-stage metadata channels, inter-stage
/// activation channels, the sample channel back to the driver, and the worker
/// threads (started on construction, joined by shutdown()).
struct PipelineHandles {
  std::vector<std::unique_ptr<MetaChannel>> meta_channels;
  std::vector<std::unique_ptr<ActChannel>> act_channels;
  std::unique_ptr<SampleChannel> samples;
  std::vector<std::unique_ptr<StageWorker>> workers;
  std::vector<MetaChannel*> channel_ptrs;

  void shutdown();
};

/// Build and start the stage workers for `model` partitioned `pp` ways.
PipelineHandles assemble_pipeline(const model::ModelConfig& model, int pp,
                                  std::uint64_t weight_seed, std::int64_t kv_capacity,
                                  int kv_block_size, nn::Sampler sampler);

}  // namespace gllm::runtime
