#pragma once

#include <memory>
#include <thread>

#include "nn/sampler.hpp"
#include "nn/stage.hpp"
#include "obs/trace.hpp"
#include "runtime/messages.hpp"
#include "util/queue.hpp"

namespace gllm::runtime {

using MetaChannel = util::BoundedQueue<StepMetadata>;
using ActChannel = util::BoundedQueue<Activations>;
using SampleChannel = util::BoundedQueue<SampleResult>;

/// One pipeline-stage worker thread ("ordinary worker" in the paper's
/// runtime): receives a metadata packet, prepares inputs, receives the
/// previous stage's activations (first stage embeds instead), runs its layer
/// slice, and forwards activations — or samples and reports, on the last
/// stage. Exits when its metadata channel closes.
class StageWorker {
 public:
  StageWorker(const model::ModelConfig& cfg, model::StageShape shape, std::uint64_t seed,
              std::int32_t kv_blocks, int kv_block_size, MetaChannel& meta_in,
              ActChannel* act_in, ActChannel* act_out, SampleChannel* samples_out,
              nn::Sampler sampler = nn::Sampler{}, obs::Tracer* tracer = nullptr,
              int track = 0, int tp = 1);

  void start();
  void join();

  const nn::TransformerStage& stage() const { return stage_; }

 private:
  void run();
  void process(const StepMetadata& meta);

  nn::TransformerStage stage_;
  nn::Sampler sampler_;
  MetaChannel& meta_in_;
  ActChannel* act_in_;
  ActChannel* act_out_;
  SampleChannel* samples_out_;
  obs::Tracer* tracer_;  ///< null = tracing off for this worker
  int track_;
  std::thread thread_;
};

}  // namespace gllm::runtime
