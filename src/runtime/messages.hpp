#pragma once

#include <cstdint>
#include <vector>

#include "kv/kv_manager.hpp"
#include "nn/stage.hpp"
#include "tensor/tensor.hpp"

namespace gllm::runtime {

/// Per-sequence slice of a scheduled micro-batch, shipped in the metadata
/// packet (the ZeroMQ side of the paper's dual-phase transmission).
struct ItemMeta {
  kv::SeqId seq = 0;
  int n_tokens = 0;
  std::int64_t context = 0;
  std::vector<kv::BlockId> blocks;      ///< page-table snapshot (unified across stages)
  bool is_prefill = false;
  bool last_chunk = false;
  bool wants_logits = false;
  /// Speculative draft tokens included in this step (decode only): the item's
  /// n_tokens = 1 + spec_tokens and the last stage samples one greedy target
  /// per fed row instead of just the last.
  int spec_tokens = 0;
  std::vector<nn::TokenId> input_tokens;  ///< ids to embed (first stage only needs them)
};

/// Metadata packet, broadcast by the driver to every worker ahead of the
/// activations ("preemptive metadata scheduling", paper 3.3(3)): workers use
/// it to prepare attention metadata before the hidden states arrive.
struct StepMetadata {
  std::uint64_t batch_id = 0;
  std::vector<ItemMeta> items;

  int total_tokens() const {
    int n = 0;
    for (const auto& item : items) n += item.n_tokens;
    return n;
  }
};

/// Intermediate activations, passed stage-to-stage (the NCCL side).
struct Activations {
  std::uint64_t batch_id = 0;
  tensor::Tensor hidden;
};

/// Sampled tokens, returned by the last stage to the driver. Sent for every
/// batch (possibly empty) so the driver can retire in-flight micro-batches.
struct SampleResult {
  std::uint64_t batch_id = 0;
  std::vector<std::pair<kv::SeqId, nn::TokenId>> tokens;
};

/// Why a request terminated without completing. Every accepted request ends
/// in exactly one terminal StreamEvent — either a normal is_last token
/// (kNone) or an explicit error — so streaming clients never hang.
enum class StreamError : std::uint8_t {
  kNone = 0,
  kRejected = 1,       ///< refused before admission (beyond KV capacity)
  kShutdown = 2,       ///< service stopped before the request finished
  kWorkerFailure = 3,  ///< failure budget exhausted after worker death
};

inline const char* to_string(StreamError error) {
  switch (error) {
    case StreamError::kNone: return "none";
    case StreamError::kRejected: return "rejected";
    case StreamError::kShutdown: return "shutdown";
    case StreamError::kWorkerFailure: return "worker_failure";
  }
  return "unknown";
}

/// A token streamed to the frontend process. `error != kNone` implies
/// is_last and carries no valid token (token is -1).
struct StreamEvent {
  std::int64_t request_id = 0;
  nn::TokenId token = 0;
  bool is_last = false;
  StreamError error = StreamError::kNone;
};

}  // namespace gllm::runtime
