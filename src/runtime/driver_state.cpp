#include "runtime/driver_state.hpp"

#include <algorithm>
#include <stdexcept>

#include "model/partition.hpp"

namespace gllm::runtime {

DriverState::DriverState(std::int64_t kv_capacity_tokens, int kv_block_size,
                         int pipeline_depth, DriverConfig config)
    : config_(config),
      pipeline_depth_(pipeline_depth),
      kv_(std::make_unique<kv::KvManager>(kv_capacity_tokens, kv_block_size,
                                          config.prefix_caching)) {}

engine::Sequence* DriverState::add_request(const nn::GenRequest& request, double arrival) {
  workload::RequestSpec spec{request.id, arrival, static_cast<int>(request.prompt.size()),
                             request.max_new_tokens};
  SeqCtx sc;
  sc.seq = std::make_unique<engine::Sequence>(spec);
  sc.tokens = request.prompt;
  engine::Sequence* ptr = sc.seq.get();
  if (!seqs_.emplace(request.id, std::move(sc)).second)
    throw std::invalid_argument("DriverState: duplicate request id");
  return ptr;
}

sched::ScheduleContext DriverState::build_context(double now) const {
  sched::ScheduleContext ctx;
  ctx.now = now;
  ctx.pipeline_depth = pipeline_depth_;
  ctx.kv_free_rate = kv_->free_rate();
  ctx.kv_free_tokens = kv_->free_token_capacity();
  ctx.total_decode_seqs = static_cast<std::int64_t>(decoding_.size());
  for (const engine::Sequence* seq : waiting_) {
    if (seq->remaining_prefill() <= 0) continue;
    ctx.waiting.push_back(sched::WaitingSeq{seq->id(), seq->remaining_prefill(),
                                            kv_->seq_tokens(seq->id()), seq->arrival(),
                                            seq->outstanding_chunks() > 0});
  }
  for (const engine::Sequence* seq : decoding_) {
    if (seq->decode_in_flight()) continue;
    ctx.runnable_decodes.push_back(sched::DecodeSeq{seq->id(), kv_->seq_tokens(seq->id())});
  }
  return ctx;
}

bool DriverState::materialize_and_dispatch(sched::MicroBatchPlan plan, double now,
                                           const std::vector<MetaChannel*>& channels) {
  StepMetadata meta;
  meta.batch_id = next_batch_id_++;
  std::vector<sched::BatchItem> committed;
  std::vector<kv::SeqId> locked;

  for (const sched::BatchItem& item : plan.items) {
    SeqCtx& sc = seqs_.at(item.seq);
    engine::Sequence& seq = *sc.seq;
    const std::int64_t ctx_before = kv_->seq_tokens(item.seq);

    if (item.phase == sched::Phase::kDecode) {
      // Possibly recompute-preempted while materialising an earlier item.
      if (seq.state() != engine::SeqState::kDecoding || seq.decode_in_flight()) continue;
      bool ok = kv_->allocate(item.seq, 1);
      while (!ok) {
        engine::Sequence* victim = nullptr;
        for (auto it = decoding_.rbegin(); it != decoding_.rend(); ++it) {
          engine::Sequence* cand = *it;
          if (cand->decode_in_flight() || cand->id() == item.seq) continue;
          if (std::find(locked.begin(), locked.end(), cand->id()) != locked.end())
            continue;
          victim = cand;
          break;
        }
        if (victim == nullptr) break;
        kv_->free_seq(victim->id());
        victim->preempt(now);
        decoding_.erase(std::find(decoding_.begin(), decoding_.end(), victim));
        waiting_.push_front(victim);
        ++preemptions_;
        ok = kv_->allocate(item.seq, 1);
      }
      if (!ok) continue;
      seq.on_decode_scheduled();

      ItemMeta im;
      im.seq = item.seq;
      im.n_tokens = 1;
      im.context = ctx_before;
      im.blocks = kv_->table(item.seq).blocks();
      im.is_prefill = false;
      im.wants_logits = true;
      im.input_tokens = {sc.tokens.at(static_cast<std::size_t>(ctx_before))};
      meta.items.push_back(std::move(im));
      committed.push_back(item);
      locked.push_back(item.seq);
    } else {
      if (seq.state() != engine::SeqState::kWaiting ||
          item.n_tokens > seq.remaining_prefill())
        throw std::logic_error("DriverState: scheduler planned an invalid prefill chunk");

      // Prefix-cache adoption at first admission: reuse cached KV blocks of
      // this prompt's prefix and skip their computation (the final target
      // token is always computed so logits exist).
      sched::BatchItem chunk = item;
      std::int64_t context = ctx_before;
      if (config_.prefix_caching && ctx_before == 0 && seq.scheduled_prefill() == 0) {
        const auto reused = kv_->adopt_cached_prefix(
            item.seq, sc.tokens, static_cast<std::int64_t>(seq.prefill_target()) - 1);
        if (reused > 0) {
          seq.skip_prefill(static_cast<int>(reused));
          context = reused;
          chunk.n_tokens = std::min(chunk.n_tokens, seq.remaining_prefill());
        }
      }
      if (!kv_->allocate(chunk.seq, chunk.n_tokens)) continue;
      seq.on_chunk_scheduled(chunk.n_tokens);
      chunk.last_prefill_chunk = seq.remaining_prefill() == 0;

      ItemMeta im;
      im.seq = chunk.seq;
      im.n_tokens = chunk.n_tokens;
      im.context = context;
      im.blocks = kv_->table(chunk.seq).blocks();
      im.is_prefill = true;
      im.last_chunk = chunk.last_prefill_chunk;
      im.wants_logits = chunk.last_prefill_chunk;
      im.input_tokens.assign(
          sc.tokens.begin() + static_cast<std::ptrdiff_t>(context),
          sc.tokens.begin() + static_cast<std::ptrdiff_t>(context + chunk.n_tokens));
      meta.items.push_back(std::move(im));
      committed.push_back(chunk);
      locked.push_back(chunk.seq);
    }
  }

  if (meta.items.empty()) return false;
  in_flight_.emplace(meta.batch_id, std::move(committed));
  // Metadata broadcast: every worker receives the packet early ("preemptive
  // metadata scheduling").
  for (MetaChannel* ch : channels) ch->push(meta);
  return true;
}

int DriverState::complete_batch(
    const SampleResult& result, double now,
    const std::function<void(const engine::Sequence&, nn::TokenId, bool)>& on_token) {
  const auto node = in_flight_.extract(result.batch_id);
  if (node.empty()) throw std::logic_error("DriverState: sample for unknown batch");
  std::unordered_map<kv::SeqId, nn::TokenId> sampled(result.tokens.begin(),
                                                     result.tokens.end());
  int finished = 0;
  for (const sched::BatchItem& item : node.mapped()) {
    SeqCtx& sc = seqs_.at(item.seq);
    engine::Sequence& seq = *sc.seq;
    const bool samples_token =
        item.phase == sched::Phase::kDecode || item.last_prefill_chunk;
    nn::TokenId token = -1;
    if (samples_token) {
      const auto it = sampled.find(item.seq);
      if (it == sampled.end())
        throw std::logic_error("DriverState: missing sampled token for sequence");
      token = it->second;
      sc.tokens.push_back(token);
    }
    bool done = false;
    if (item.phase == sched::Phase::kDecode) {
      done = seq.on_decode_completed(now);
    } else {
      const bool prompt_done = seq.on_chunk_completed(item.last_prefill_chunk, now);
      if (prompt_done) {
        if (config_.prefix_caching) {
          const auto target = static_cast<std::size_t>(seq.prefill_target());
          kv_->register_prefix(item.seq, {sc.tokens.data(), target});
        }
        waiting_.erase(std::find(waiting_.begin(), waiting_.end(), &seq));
        if (seq.state() == engine::SeqState::kDecoding) decoding_.push_back(&seq);
        done = seq.state() == engine::SeqState::kFinished;
      }
    }
    if (done) {
      kv_->free_seq(seq.id());
      const auto dit = std::find(decoding_.begin(), decoding_.end(), &seq);
      if (dit != decoding_.end()) decoding_.erase(dit);
      ++finished;
    }
    if (samples_token && on_token) on_token(seq, token, done);
  }
  return finished;
}

bool DriverState::reset_stalled_prefill() {
  for (auto it = waiting_.rbegin(); it != waiting_.rend(); ++it) {
    engine::Sequence* cand = *it;
    if (cand == waiting_.front()) continue;
    if (cand->outstanding_chunks() > 0 || cand->scheduled_prefill() == 0) continue;
    kv_->free_seq(cand->id());
    cand->reset_prefill_progress();
    ++preemptions_;
    return true;
  }
  return false;
}

void PipelineHandles::shutdown() {
  for (auto& ch : meta_channels) ch->close();
  for (auto& ch : act_channels) ch->close();
  if (samples) samples->close();
  for (auto& w : workers) w->join();
}

PipelineHandles assemble_pipeline(const model::ModelConfig& model, int pp,
                                  std::uint64_t weight_seed, std::int64_t kv_capacity,
                                  int kv_block_size, nn::Sampler sampler) {
  PipelineHandles handles;
  const model::PartitionPlan partition(model, pp);
  const auto kv_blocks = static_cast<std::int32_t>(kv_capacity / kv_block_size);

  handles.samples = std::make_unique<SampleChannel>(1024);
  for (int s = 0; s < pp; ++s)
    handles.meta_channels.push_back(std::make_unique<MetaChannel>(1024));
  for (int s = 0; s + 1 < pp; ++s)
    handles.act_channels.push_back(std::make_unique<ActChannel>(64));

  for (int s = 0; s < pp; ++s) {
    ActChannel* in = s > 0 ? handles.act_channels[static_cast<std::size_t>(s - 1)].get()
                           : nullptr;
    ActChannel* out = s + 1 < pp ? handles.act_channels[static_cast<std::size_t>(s)].get()
                                 : nullptr;
    SampleChannel* sout = s == pp - 1 ? handles.samples.get() : nullptr;
    handles.workers.push_back(std::make_unique<StageWorker>(
        model, partition.stage(s), weight_seed, kv_blocks, kv_block_size,
        *handles.meta_channels[static_cast<std::size_t>(s)], in, out, sout, sampler));
  }
  for (auto& w : handles.workers) w->start();
  for (auto& ch : handles.meta_channels) handles.channel_ptrs.push_back(ch.get());
  return handles;
}

}  // namespace gllm::runtime
