#include "runtime/driver_state.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "model/partition.hpp"
#include "obs/obs.hpp"
#include "spec/verifier.hpp"

namespace gllm::runtime {

namespace {
engine::AdmissionConfig admission_config(std::int64_t kv_capacity_tokens, int kv_block_size,
                                         int pipeline_depth, const DriverConfig& config) {
  engine::AdmissionConfig cfg;
  cfg.kv_capacity_tokens = kv_capacity_tokens;
  cfg.kv_block_size = kv_block_size;
  cfg.pipeline_depth = pipeline_depth;
  cfg.prefix_caching = config.prefix_caching;
  cfg.obs = config.obs;
  cfg.trace_track = config.trace_track;
  cfg.spec_lookahead = config.spec.enabled() ? config.spec.k : 0;
  return cfg;
}
}  // namespace

DriverState::DriverState(std::int64_t kv_capacity_tokens, int kv_block_size,
                         int pipeline_depth, DriverConfig config)
    : core_(admission_config(kv_capacity_tokens, kv_block_size, pipeline_depth, config)),
      obs_(config.obs),
      trace_track_(config.trace_track) {
  if (!config.spec.enabled()) return;
  config.spec.validate();
  proposer_ = spec::make_proposer(config.spec, config.model, config.weight_seed,
                                  kv_block_size);
  core_.set_spec_proposer([this](const engine::Sequence& s, int max_k) {
    std::vector<nn::TokenId> drafts =
        proposer_->propose(s.id(), core_.tokens(s.id()), max_k);
    const int proposed = static_cast<int>(drafts.size());
    if (obs_ != nullptr)
      obs_->tracer().instant(trace_track_, "spec.propose",
                             {{"seq", static_cast<double>(s.id())},
                              {"proposed", static_cast<double>(proposed)}});
    proposals_[s.id()] = std::move(drafts);
    return proposed;
  });
}

engine::Sequence* DriverState::add_request(const nn::GenRequest& request, double arrival) {
  workload::RequestSpec spec{request.id, arrival, static_cast<int>(request.prompt.size()),
                             request.max_new_tokens};
  return core_.add(spec, request.prompt);
}

bool DriverState::materialize_and_dispatch(sched::MicroBatchPlan plan, double now,
                                           const std::vector<MetaChannel*>& channels) {
  const engine::AdmittedBatch admitted = core_.materialize(plan, now);
  if (admitted.empty()) return false;

  StepMetadata meta;
  meta.batch_id = admitted.id;
  meta.items.reserve(admitted.plan.items.size());
  for (const sched::CommittedItem& c : admitted.plan.items) {
    const auto& tokens = core_.tokens(c.item.seq);
    ItemMeta im;
    im.seq = c.item.seq;
    im.context = c.context;
    im.blocks = core_.prefill_kv().table(c.item.seq).blocks();
    im.is_prefill = c.item.phase == sched::Phase::kPrefill;
    im.last_chunk = im.is_prefill && c.item.last_prefill_chunk;
    im.wants_logits = !im.is_prefill || c.item.last_prefill_chunk;
    im.spec_tokens = im.is_prefill ? 0 : c.item.spec_tokens;
    im.n_tokens = c.item.n_tokens + im.spec_tokens;
    im.input_tokens.assign(
        tokens.begin() + static_cast<std::ptrdiff_t>(c.context),
        tokens.begin() + static_cast<std::ptrdiff_t>(c.context + c.item.n_tokens));
    if (im.spec_tokens > 0) {
      // Admission may have committed fewer draft rows than proposed (KV
      // pressure); trim the ledger to what actually rides in this step.
      std::vector<nn::TokenId>& drafts = proposals_.at(im.seq);
      drafts.resize(static_cast<std::size_t>(im.spec_tokens));
      im.input_tokens.insert(im.input_tokens.end(), drafts.begin(), drafts.end());
    } else if (!im.is_prefill && proposer_) {
      proposals_[im.seq].clear();
    }
    meta.items.push_back(std::move(im));
  }

  // Metadata broadcast: every worker receives the packet early ("preemptive
  // metadata scheduling").
  for (MetaChannel* ch : channels) ch->push(meta);
  return true;
}

int DriverState::complete_batch(
    const SampleResult& result, double now,
    const std::function<void(const engine::Sequence&, nn::TokenId, bool)>& on_token) {
  // Group the sampled rows per sequence in feed order: a speculative decode
  // step returns 1 + spec_tokens targets for the same sequence. A sequence
  // appears in at most one item per micro-batch, so grouping is unambiguous.
  std::unordered_map<kv::SeqId, std::vector<nn::TokenId>> sampled;
  sampled.reserve(result.tokens.size());
  for (const auto& [seq, token] : result.tokens) sampled[seq].push_back(token);

  engine::CompletionHooks hooks;
  hooks.sample = [&sampled](const engine::Sequence& seq) {
    const auto it = sampled.find(seq.id());
    if (it == sampled.end() || it->second.empty())
      throw std::logic_error("DriverState: missing sampled token for sequence");
    return it->second.front();
  };
  if (proposer_) {
    hooks.verify = [this, &sampled](const engine::Sequence& s,
                                    int proposed) -> engine::VerifyOutcome {
      const auto it = sampled.find(s.id());
      if (it == sampled.end() ||
          static_cast<int>(it->second.size()) != proposed + 1)
        throw std::logic_error("DriverState: sampled row count mismatch in verify");
      const auto pit = proposals_.find(s.id());
      if (pit == proposals_.end() ||
          static_cast<int>(pit->second.size()) != proposed)
        throw std::logic_error("DriverState: proposal ledger out of sync");
      const spec::VerifyResult vr = spec::verify_greedy(pit->second, it->second);
      engine::VerifyOutcome out;
      out.emitted = vr.accepted + 1;
      out.tokens = vr.emitted;
      return out;
    };
  }
  hooks.on_token = [this, &on_token](const engine::Sequence& s, nn::TokenId t,
                                     bool is_last) {
    if (is_last && proposer_) {
      proposer_->forget(s.id());
      proposals_.erase(s.id());
    }
    if (on_token) on_token(s, t, is_last);
  };
  return core_.complete(result.batch_id, now, &hooks);
}

void PipelineHandles::shutdown() {
  for (auto& ch : meta_channels) ch->close();
  for (auto& ch : act_channels) ch->close();
  if (samples) samples->close();
  for (auto& w : workers) w->join();
}

PipelineHandles assemble_pipeline(const model::ModelConfig& model, int pp,
                                  std::uint64_t weight_seed, std::int64_t kv_capacity,
                                  int kv_block_size, nn::Sampler sampler,
                                  obs::Tracer* tracer, int tp) {
  PipelineHandles handles;
  const model::PartitionPlan partition(model, pp);
  model::validate_tp(model, tp);
  const auto kv_blocks = static_cast<std::int32_t>(kv_capacity / kv_block_size);

  handles.samples = std::make_unique<SampleChannel>(1024);
  for (int s = 0; s < pp; ++s)
    handles.meta_channels.push_back(std::make_unique<MetaChannel>(1024));
  for (int s = 0; s + 1 < pp; ++s)
    handles.act_channels.push_back(std::make_unique<ActChannel>(64));

  for (int s = 0; s < pp; ++s) {
    ActChannel* in = s > 0 ? handles.act_channels[static_cast<std::size_t>(s - 1)].get()
                           : nullptr;
    ActChannel* out = s + 1 < pp ? handles.act_channels[static_cast<std::size_t>(s)].get()
                                 : nullptr;
    SampleChannel* sout = s == pp - 1 ? handles.samples.get() : nullptr;
    handles.workers.push_back(std::make_unique<StageWorker>(
        model, partition.stage(s), weight_seed, kv_blocks, kv_block_size,
        *handles.meta_channels[static_cast<std::size_t>(s)], in, out, sout, sampler,
        tracer, s, tp));
  }
  for (auto& w : handles.workers) w->start();
  for (auto& ch : handles.meta_channels) handles.channel_ptrs.push_back(ch.get());
  return handles;
}

}  // namespace gllm::runtime
