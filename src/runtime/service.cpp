#include "runtime/service.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

PipelineService::PipelineService(RuntimeOptions options,
                                 std::shared_ptr<sched::IScheduler> scheduler)
    : options_(std::move(options)),
      scheduler_(std::move(scheduler)),
      kv_capacity_(options_.kv_capacity_tokens) {
  options_.model.validate();
  if (options_.pp <= 0) throw std::invalid_argument("PipelineService: pp must be > 0");
  if (!scheduler_) throw std::invalid_argument("PipelineService: scheduler required");
  options_.spec.validate();
  if (options_.spec.enabled() && !options_.greedy_sampling)
    throw std::invalid_argument(
        "PipelineService: speculative decoding requires greedy sampling");
}

PipelineService::~PipelineService() { stop(); }

bool PipelineService::running() const {
  std::lock_guard lock(mu_);
  return running_;
}

nn::Sampler PipelineService::make_sampler() const {
  // Rebuilt identically on every (re)spawn. With greedy sampling (the
  // byte-identical recovery guarantee) the sampler is stateless; seeded top-k
  // restarts its RNG stream on respawn, so post-recovery draws differ from an
  // uninterrupted run (still deterministic per fault schedule).
  return options_.greedy_sampling
             ? nn::Sampler{}
             : nn::Sampler(options_.top_k, options_.temperature, options_.sampler_seed);
}

void PipelineService::start() {
  {
    std::lock_guard lock(mu_);
    if (running_) return;
    running_ = true;
  }
  t0_ = std::chrono::steady_clock::now();
  if (options_.obs != nullptr) {
    obs::Tracer& tracer = options_.obs->tracer();
    const auto t0 = t0_;
    tracer.set_clock([t0] { return seconds_since(t0); });
    for (int s = 0; s < options_.pp; ++s)
      tracer.set_track_name(s, "stage " + std::to_string(s));
    tracer.set_track_name(options_.pp, "driver");
    scheduler_->set_observability(options_.obs, options_.pp);
  }
  DriverConfig driver_cfg;
  driver_cfg.prefix_caching = options_.prefix_caching;
  driver_cfg.obs = options_.obs;
  driver_cfg.trace_track = options_.pp;
  driver_cfg.spec = options_.spec;
  driver_cfg.model = options_.model;
  driver_cfg.weight_seed = options_.weight_seed;
  state_ = std::make_unique<DriverState>(options_.kv_capacity_tokens,
                                         options_.kv_block_size, options_.pp,
                                         driver_cfg);
  // Deployment-agnostic pipeline (threads / forked processes / remote
  // workers). Fork mode requires this process to still be single-threaded
  // here — start() the service before spawning server threads.
  backend_ = net::make_pipeline_backend(
      options_, make_sampler(),
      options_.obs != nullptr ? &options_.obs->tracer() : nullptr);
  driver_ = std::thread([this] { service_loop(); });
}

void PipelineService::submit(nn::GenRequest request,
                             std::function<void(const StreamEvent&)> on_token) {
  const std::int64_t id = request.id;
  const bool oversized =
      static_cast<std::int64_t>(request.prompt.size()) + request.max_new_tokens >
      kv_capacity_;
  {
    std::lock_guard lock(mu_);
    if (!running_) throw std::logic_error("PipelineService: submit before start()");
    ++outstanding_;
  }
  if (oversized) {
    // Rejected up front, as real servers reject prompts beyond max_model_len.
    // The terminal error event fires from this (submitting) thread, so a
    // streaming client is never left waiting on a request the driver will
    // never see.
    record_rejection(id, on_token, StreamError::kRejected, true);
    return;
  }
  if (!inbox_.push(Submission{std::move(request), on_token})) {
    // stop() raced this submit: a benign rejection, not a programming error.
    record_rejection(id, on_token, StreamError::kShutdown, true);
  }
}

void PipelineService::drain() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

void PipelineService::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
  }
  inbox_.close();
  if (driver_.joinable()) driver_.join();
  backend_.shutdown();
  std::lock_guard lock(mu_);
  running_ = false;
}

std::vector<RuntimeRequestRecord> PipelineService::results() const {
  std::lock_guard lock(mu_);
  return records_;
}

void PipelineService::record_rejection(std::int64_t id,
                                       const std::function<void(const StreamEvent&)>& cb,
                                       StreamError error, bool count_outstanding) {
  if (cb) cb(StreamEvent{id, -1, true, error});
  if (options_.obs != nullptr) options_.obs->fault().requests_failed->inc();
  std::lock_guard lock(mu_);
  RuntimeRequestRecord rec;
  rec.id = id;
  rec.completed = false;
  rec.error = error;
  records_.push_back(std::move(rec));
  recorded_.insert(id);
  if (count_outstanding && outstanding_ > 0) --outstanding_;
  drained_.notify_all();
}

void PipelineService::admit_submission(Submission submission) {
  if (health_.load() == ServiceHealth::kFailed) {
    // The pipeline is gone for good; reject instead of queueing forever.
    record_rejection(submission.request.id, submission.on_token,
                     StreamError::kWorkerFailure, true);
    return;
  }
  const double now = seconds_since(t0_);
  engine::Sequence* seq = nullptr;
  try {
    seq = state_->add_request(submission.request, now);
  } catch (const std::invalid_argument&) {
    // A client reused an id that is still in flight. That is the client's
    // bug, not grounds to kill the driver thread: reject this submission
    // with a terminal event and leave the original request untouched.
    record_rejection(submission.request.id, submission.on_token,
                     StreamError::kRejected, true);
    return;
  }
  state_->admit(seq);
  if (submission.on_token) {
    std::lock_guard lock(mu_);
    callbacks_[submission.request.id] = std::move(submission.on_token);
  }
}

bool PipelineService::admit_batches() {
  if (health_.load() == ServiceHealth::kFailed) return false;  // no backend
  bool admitted = false;
  obs::Tracer* tracer = options_.obs != nullptr ? &options_.obs->tracer() : nullptr;
  while (state_->in_flight() < options_.pp) {
    const double now = seconds_since(t0_);
    sched::MicroBatchPlan plan;
    {
      obs::SpanGuard span(tracer, options_.pp, "sched.plan");
      plan = scheduler_->plan(state_->build_context(now));
    }
    if (plan.empty()) break;
    if (!state_->materialize_and_dispatch(std::move(plan), now, backend_.channels()))
      break;
    admitted = true;
  }
  return admitted;
}

void PipelineService::finish_record(const engine::Sequence& seq, StreamError error) {
  const auto& tokens = state_->tokens(seq.id());
  RuntimeRequestRecord rec;
  rec.id = seq.id();
  // Clamp the prompt slice: a sequence shut down mid-prefill has fewer stored
  // tokens than its prompt length, and an unclamped begin()+prompt_len would
  // run past the end.
  const auto prompt = std::min(
      tokens.size(), static_cast<std::size_t>(std::max(seq.prompt_len(), 0)));
  rec.output.assign(tokens.begin() + static_cast<std::ptrdiff_t>(prompt), tokens.end());
  rec.completed = seq.state() == engine::SeqState::kFinished;
  rec.error = error;
  rec.preemptions = seq.preemptions();
  rec.scheduled_chunks = state_->scheduled_chunks(seq.id());
  if (rec.completed) {
    rec.ttft = seq.ttft();
    rec.e2e = seq.e2e_latency();
  }
  if (error != StreamError::kNone && options_.obs != nullptr)
    options_.obs->fault().requests_failed->inc();
  std::lock_guard lock(mu_);
  records_.push_back(std::move(rec));
  recorded_.insert(seq.id());
  callbacks_.erase(seq.id());
  if (outstanding_ > 0) --outstanding_;
  drained_.notify_all();
}

void PipelineService::fail_record(const engine::Sequence& seq, StreamError error) {
  std::function<void(const StreamEvent&)> cb;
  {
    std::lock_guard lock(mu_);
    const auto it = callbacks_.find(seq.id());
    if (it != callbacks_.end()) cb = it->second;
  }
  if (cb) cb(StreamEvent{seq.id(), -1, true, error});
  finish_record(seq, error);
}

void PipelineService::enforce_request_budget() {
  std::vector<kv::SeqId> doomed;
  state_->for_each_sequence([&](const engine::Sequence& seq) {
    if (seq.state() == engine::SeqState::kFinished ||
        seq.state() == engine::SeqState::kAborted)
      return;
    if (seq.fold_backs() > options_.fault.max_request_failures)
      doomed.push_back(seq.id());
  });
  for (const kv::SeqId id : doomed) {
    GLLM_LOG_ERROR("service: request " << id << " exhausted its failure budget ("
                                       << options_.fault.max_request_failures
                                       << " fold-backs); terminating with an error");
    state_->abort_sequence(id);
    fail_record(state_->seq(id), StreamError::kWorkerFailure);
  }
}

void PipelineService::fail_pipeline() {
  health_.store(ServiceHealth::kFailed);
  GLLM_LOG_ERROR("service: restart budget exhausted ("
                 << options_.fault.max_pipeline_restarts
                 << "); terminating every unfinished request");
  std::vector<kv::SeqId> unfinished;
  state_->for_each_sequence([&](const engine::Sequence& seq) {
    if (seq.state() == engine::SeqState::kFinished ||
        seq.state() == engine::SeqState::kAborted)
      return;
    unfinished.push_back(seq.id());
  });
  for (const kv::SeqId id : unfinished) {
    state_->abort_sequence(id);
    fail_record(state_->seq(id), StreamError::kWorkerFailure);
  }
}

void PipelineService::recover(const char* why) {
  obs::Observability* obs = options_.obs;
  obs::Tracer* tracer = obs != nullptr ? &obs->tracer() : nullptr;
  health_.store(ServiceHealth::kRecovering);
  if (obs != nullptr) obs->fault().degraded->set(1.0);
  obs::SpanGuard span(tracer, options_.pp, "fault.recover");
  GLLM_LOG_ERROR("service: pipeline failed (" << why << "); recovering");

  // Tear the dead backend down: channels close, pumps/readers join, forked
  // children are reaped (SIGKILL past the heartbeat timeout). This is also
  // what un-wedges stages stuck on a dropped frame.
  backend_.shutdown();

  // Fold every unfinished sequence's progress back into pending prefill —
  // the recompute-preemption primitive pointed at failure. The sequences'
  // token streams survive in the driver; only their KV must be recomputed,
  // and greedy sampling on the same seeded weights regenerates the
  // byte-identical continuation.
  const int folded = state_->recover_all();
  GLLM_LOG_INFO("service: folded " << folded << " sequences back into pending prefill");
  enforce_request_budget();

  while (restarts_.load() < options_.fault.max_pipeline_restarts) {
    const int attempt = restarts_.fetch_add(1) + 1;
    if (obs != nullptr) obs->fault().pipeline_restarts->inc();
    const double backoff = options_.fault.restart_backoff_s *
                           static_cast<double>(1 << std::min(attempt - 1, 5));
    if (backoff > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    try {
      // Full re-handshake: stage assignment, model/partition/weight-seed
      // agreement, activation-ring wiring. Fork mode re-forks (safe despite
      // the live server threads: glibc and the sanitizers keep their
      // allocators fork-safe via atfork handlers, and the children only run
      // run_worker); remote mode blocks here until replacement workers
      // reconnect to the control port.
      backend_ = net::make_pipeline_backend(options_, make_sampler(), tracer);
      health_.store(ServiceHealth::kServing);
      if (obs != nullptr) obs->fault().degraded->set(0.0);
      GLLM_LOG_INFO("service: pipeline respawned (attempt " << attempt
                                                            << "); serving resumes");
      return;
    } catch (const std::exception& e) {
      GLLM_LOG_ERROR("service: pipeline respawn failed: " << e.what());
      backend_.shutdown();
    }
  }
  fail_pipeline();
}

void PipelineService::service_loop() {
  bool inbox_open = true;
  for (;;) {
    // Drain newly submitted requests without blocking.
    while (auto submission = inbox_.try_pop()) admit_submission(std::move(*submission));

    const bool admitted = admit_batches();
    waiting_depth_.store(state_->waiting_count(), std::memory_order_relaxed);
    running_depth_.store(state_->decoding_count(), std::memory_order_relaxed);
    prefix_blocks_.store(state_->prefix_cache_blocks(), std::memory_order_relaxed);

    if (state_->in_flight() > 0) {
      SampleResult result;
      util::PopStatus status;
      {
        obs::SpanGuard span(options_.obs != nullptr ? &options_.obs->tracer() : nullptr,
                            options_.pp, "wait.sample");
        const double watchdog = options_.fault.sample_wait_timeout_s;
        status = backend_.samples()->pop_for(result, watchdog > 0.0 ? watchdog : -1.0);
      }
      if (status == util::PopStatus::kOk) {
        const double now = seconds_since(t0_);
        state_->complete_batch(
            result, now,
            [&](const engine::Sequence& seq, nn::TokenId token, bool done) {
              std::function<void(const StreamEvent&)> cb;
              {
                std::lock_guard lock(mu_);
                const auto it = callbacks_.find(seq.id());
                if (it != callbacks_.end()) cb = it->second;
              }
              if (cb) {
                cb(StreamEvent{seq.id(), token, false});
                if (done) cb(StreamEvent{seq.id(), token, true});
              }
              if (done) finish_record(seq);
            });
        continue;
      }
      // kClosed: the transport closed the sample channel — a worker died.
      // kTimeout: the batch wedged (e.g. a lost frame) past the watchdog.
      // Both take the same recovery path; teardown un-wedges stuck stages.
      recover(status == util::PopStatus::kClosed ? "sample channel closed (worker died)"
                                                 : "sample-wait watchdog fired");
      continue;
    }

    if (admitted) continue;
    if (health_.load() != ServiceHealth::kFailed && state_->reset_stalled_prefill())
      continue;

    // Fully idle: wait for the next submission (or shutdown).
    if (!inbox_open) break;
    auto submission = inbox_.pop();
    if (!submission) {
      inbox_open = false;
      continue;
    }
    admit_submission(std::move(*submission));
  }

  // Anything still registered but unfinished at shutdown is terminated with
  // an explicit error event, so streaming clients are released, then
  // recorded. Requests already recorded (completed, rejected, or failed
  // during recovery) are skipped.
  state_->for_each_sequence([this](const engine::Sequence& seq) {
    {
      std::lock_guard lock(mu_);
      if (recorded_.contains(seq.id())) return;
    }
    if (seq.state() == engine::SeqState::kFinished) {
      finish_record(seq);
      return;
    }
    GLLM_LOG_WARN("service: request " << seq.id() << " unfinished at shutdown");
    fail_record(seq, StreamError::kShutdown);
  });
}

}  // namespace gllm::runtime
