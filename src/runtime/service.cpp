#include "runtime/service.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/log.hpp"

namespace gllm::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

PipelineService::PipelineService(RuntimeOptions options,
                                 std::shared_ptr<sched::IScheduler> scheduler)
    : options_(std::move(options)),
      scheduler_(std::move(scheduler)),
      kv_capacity_(options_.kv_capacity_tokens) {
  options_.model.validate();
  if (options_.pp <= 0) throw std::invalid_argument("PipelineService: pp must be > 0");
  if (!scheduler_) throw std::invalid_argument("PipelineService: scheduler required");
}

PipelineService::~PipelineService() { stop(); }

bool PipelineService::running() const {
  std::lock_guard lock(mu_);
  return running_;
}

void PipelineService::start() {
  {
    std::lock_guard lock(mu_);
    if (running_) return;
    running_ = true;
  }
  t0_ = std::chrono::steady_clock::now();
  if (options_.obs != nullptr) {
    obs::Tracer& tracer = options_.obs->tracer();
    const auto t0 = t0_;
    tracer.set_clock([t0] { return seconds_since(t0); });
    for (int s = 0; s < options_.pp; ++s)
      tracer.set_track_name(s, "stage " + std::to_string(s));
    tracer.set_track_name(options_.pp, "driver");
    scheduler_->set_observability(options_.obs, options_.pp);
  }
  state_ = std::make_unique<DriverState>(options_.kv_capacity_tokens,
                                         options_.kv_block_size, options_.pp,
                                         DriverConfig{options_.prefix_caching,
                                                      options_.obs, options_.pp});
  const nn::Sampler sampler =
      options_.greedy_sampling
          ? nn::Sampler{}
          : nn::Sampler(options_.top_k, options_.temperature, options_.sampler_seed);
  // Deployment-agnostic pipeline (threads / forked processes / remote
  // workers). Fork mode requires this process to still be single-threaded
  // here — start() the service before spawning server threads.
  backend_ = net::make_pipeline_backend(
      options_, sampler, options_.obs != nullptr ? &options_.obs->tracer() : nullptr);
  driver_ = std::thread([this] { service_loop(); });
}

void PipelineService::submit(nn::GenRequest request,
                             std::function<void(const StreamEvent&)> on_token) {
  {
    std::lock_guard lock(mu_);
    if (!running_) throw std::logic_error("PipelineService: submit before start()");
    if (static_cast<std::int64_t>(request.prompt.size()) + request.max_new_tokens >
        kv_capacity_) {
      // Rejected up front, as real servers reject prompts beyond max_model_len.
      RuntimeRequestRecord rec;
      rec.id = request.id;
      rec.completed = false;
      records_.push_back(std::move(rec));
      return;
    }
    ++outstanding_;
  }
  if (!inbox_.push(Submission{std::move(request), std::move(on_token)})) {
    std::lock_guard lock(mu_);
    --outstanding_;
    throw std::logic_error("PipelineService: submit after stop()");
  }
}

void PipelineService::drain() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

void PipelineService::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
  }
  inbox_.close();
  if (driver_.joinable()) driver_.join();
  backend_.shutdown();
  std::lock_guard lock(mu_);
  running_ = false;
}

std::vector<RuntimeRequestRecord> PipelineService::results() const {
  std::lock_guard lock(mu_);
  return records_;
}

void PipelineService::admit_submission(Submission submission) {
  const double now = seconds_since(t0_);
  engine::Sequence* seq = state_->add_request(submission.request, now);
  state_->admit(seq);
  if (submission.on_token) {
    std::lock_guard lock(mu_);
    callbacks_[submission.request.id] = std::move(submission.on_token);
  }
}

bool PipelineService::admit_batches() {
  bool admitted = false;
  obs::Tracer* tracer = options_.obs != nullptr ? &options_.obs->tracer() : nullptr;
  while (state_->in_flight() < options_.pp) {
    const double now = seconds_since(t0_);
    sched::MicroBatchPlan plan;
    {
      obs::SpanGuard span(tracer, options_.pp, "sched.plan");
      plan = scheduler_->plan(state_->build_context(now));
    }
    if (plan.empty()) break;
    if (!state_->materialize_and_dispatch(std::move(plan), now, backend_.channels()))
      break;
    admitted = true;
  }
  return admitted;
}

void PipelineService::finish_record(const engine::Sequence& seq) {
  const auto& tokens = state_->tokens(seq.id());
  RuntimeRequestRecord rec;
  rec.id = seq.id();
  rec.output.assign(tokens.begin() + static_cast<std::ptrdiff_t>(seq.prompt_len()),
                    tokens.end());
  rec.completed = seq.state() == engine::SeqState::kFinished;
  rec.preemptions = seq.preemptions();
  rec.scheduled_chunks = state_->scheduled_chunks(seq.id());
  if (rec.completed) {
    rec.ttft = seq.ttft();
    rec.e2e = seq.e2e_latency();
  }
  std::lock_guard lock(mu_);
  records_.push_back(std::move(rec));
  callbacks_.erase(seq.id());
  if (outstanding_ > 0) --outstanding_;
  drained_.notify_all();
}

void PipelineService::service_loop() {
  bool inbox_open = true;
  for (;;) {
    // Drain newly submitted requests without blocking.
    while (auto submission = inbox_.try_pop()) admit_submission(std::move(*submission));

    const bool admitted = admit_batches();

    if (state_->in_flight() > 0) {
      // A micro-batch is in flight: its sample result is guaranteed to come.
      std::optional<SampleResult> result;
      {
        obs::SpanGuard span(options_.obs != nullptr ? &options_.obs->tracer() : nullptr,
                            options_.pp, "wait.sample");
        result = backend_.samples()->pop();
      }
      if (!result) break;  // channels torn down underneath us
      const double now = seconds_since(t0_);
      state_->complete_batch(
          *result, now,
          [&](const engine::Sequence& seq, nn::TokenId token, bool done) {
            std::function<void(const StreamEvent&)> cb;
            {
              std::lock_guard lock(mu_);
              const auto it = callbacks_.find(seq.id());
              if (it != callbacks_.end()) cb = it->second;
            }
            if (cb) {
              cb(StreamEvent{seq.id(), token, false});
              if (done) cb(StreamEvent{seq.id(), token, true});
            }
            if (done) finish_record(seq);
          });
      continue;
    }

    if (admitted) continue;
    if (state_->reset_stalled_prefill()) continue;

    // Fully idle: wait for the next submission (or shutdown).
    if (!inbox_open) break;
    auto submission = inbox_.pop();
    if (!submission) {
      inbox_open = false;
      continue;
    }
    admit_submission(std::move(*submission));
  }

  // Anything still registered but unfinished at shutdown is reported failed.
  state_->for_each_sequence([this](const engine::Sequence& seq) {
    if (seq.state() == engine::SeqState::kFinished) return;
    GLLM_LOG_WARN("service: request " << seq.id() << " unfinished at shutdown");
    finish_record(seq);
  });
}

}  // namespace gllm::runtime
