#include "runtime/worker.hpp"

#include <optional>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace gllm::runtime {

StageWorker::StageWorker(const model::ModelConfig& cfg, model::StageShape shape,
                         std::uint64_t seed, std::int32_t kv_blocks, int kv_block_size,
                         MetaChannel& meta_in, ActChannel* act_in, ActChannel* act_out,
                         SampleChannel* samples_out, nn::Sampler sampler,
                         obs::Tracer* tracer, int track, int tp)
    : stage_(cfg, shape, seed, kv_blocks, kv_block_size, tp),
      sampler_(sampler),
      meta_in_(meta_in),
      act_in_(act_in),
      act_out_(act_out),
      samples_out_(samples_out),
      tracer_(tracer),
      track_(track) {
  stage_.set_tracer(tracer, track);
  if (shape.has_lm_head && samples_out_ == nullptr)
    throw std::invalid_argument("StageWorker: last stage needs a sample channel");
  if (!shape.has_lm_head && act_out_ == nullptr)
    throw std::invalid_argument("StageWorker: non-last stage needs an output channel");
  if (!shape.has_embedding && act_in_ == nullptr)
    throw std::invalid_argument("StageWorker: non-first stage needs an input channel");
}

void StageWorker::start() {
  thread_ = std::thread([this] { run(); });
}

void StageWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void StageWorker::run() {
  for (;;) {
    std::optional<StepMetadata> meta;
    {
      obs::SpanGuard wait(tracer_, track_, "wait.meta");
      meta = meta_in_.pop();
    }
    if (!meta) return;  // channel closed: clean shutdown
    process(*meta);
  }
}

void StageWorker::process(const StepMetadata& meta) {
  // Input preparation from the (early-arrived) metadata packet: item views
  // and attention tables are built before activations show up, which is the
  // overlap the asynchronous runtime is designed for.
  std::vector<nn::ItemView> items;
  items.reserve(meta.items.size());
  std::vector<nn::TokenId> all_tokens;
  for (const ItemMeta& im : meta.items) {
    nn::ItemView view;
    view.context = im.context;
    view.n_tokens = im.n_tokens;
    view.blocks = im.blocks;
    view.wants_logits = im.wants_logits;
    if (!im.is_prefill) view.logit_rows = 1 + im.spec_tokens;
    items.push_back(std::move(view));
    all_tokens.insert(all_tokens.end(), im.input_tokens.begin(), im.input_tokens.end());
  }

  tensor::Tensor hidden;
  if (stage_.shape().has_embedding) {
    hidden = stage_.embed(all_tokens);
  } else {
    std::optional<Activations> act;
    {
      obs::SpanGuard wait(tracer_, track_, "wait.act");
      act = act_in_->pop();
    }
    if (!act) return;  // shutting down mid-batch
    if (act->batch_id != meta.batch_id)
      throw std::logic_error("StageWorker: activation/metadata batch mismatch");
    hidden = std::move(act->hidden);
  }

  obs::SpanGuard forward(tracer_, track_, "forward");
  stage_.forward(hidden, items);

  if (stage_.shape().has_lm_head) {
    SampleResult result;
    result.batch_id = meta.batch_id;
    const tensor::Tensor logits = stage_.logits(hidden, items);
    std::int64_t out = 0;
    for (const ItemMeta& im : meta.items) {
      if (!im.wants_logits) continue;
      // One sampled target per logit row; a speculative decode step returns
      // 1 + spec_tokens entries for the same sequence, in feed order.
      const int rows = im.is_prefill ? 1 : 1 + im.spec_tokens;
      for (int r = 0; r < rows; ++r) {
        const nn::TokenId token = sampler_.sample(logits.row(out++));
        result.tokens.emplace_back(im.seq, token);
      }
    }
    if (tracer_ != nullptr)
      tracer_->instant(track_, "sample.return",
                       {{"batch", static_cast<double>(meta.batch_id)},
                        {"tokens", static_cast<double>(result.tokens.size())}});
    samples_out_->push(std::move(result));
  } else {
    act_out_->push(Activations{meta.batch_id, std::move(hidden)});
  }
}

}  // namespace gllm::runtime
