#include "runtime/pipeline_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"
#include "util/queue.hpp"

namespace gllm::runtime {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

PipelineRuntime::PipelineRuntime(RuntimeOptions options,
                                 std::shared_ptr<sched::IScheduler> scheduler)
    : options_(std::move(options)), scheduler_(std::move(scheduler)) {
  options_.model.validate();
  if (options_.pp <= 0) throw std::invalid_argument("PipelineRuntime: pp must be > 0");
  if (!scheduler_) throw std::invalid_argument("PipelineRuntime: scheduler required");
  options_.spec.validate();
  if (options_.spec.enabled() && !options_.greedy_sampling)
    throw std::invalid_argument(
        "PipelineRuntime: speculative decoding requires greedy sampling");
}

RuntimeReport PipelineRuntime::run(const std::vector<nn::GenRequest>& requests,
                                   std::function<void(const StreamEvent&)> on_token) {
  const auto t0 = std::chrono::steady_clock::now();

  // Wall-clock tracing, origin at this run's t0 so both executors' traces
  // start near zero. The driver owns the tracer's clock for the whole run.
  obs::Tracer* tracer = nullptr;
  if (options_.obs != nullptr) {
    tracer = &options_.obs->tracer();
    tracer->set_clock([t0] { return seconds_since(t0); });
    for (int s = 0; s < options_.pp; ++s)
      tracer->set_track_name(s, "stage " + std::to_string(s));
    tracer->set_track_name(options_.pp, "driver");
    scheduler_->set_observability(options_.obs, options_.pp);
  }

  // --- driver state (validated before any thread spawns) -------------------
  DriverConfig driver_cfg;
  driver_cfg.prefix_caching = options_.prefix_caching;
  driver_cfg.obs = options_.obs;
  driver_cfg.trace_track = options_.pp;
  driver_cfg.spec = options_.spec;
  driver_cfg.model = options_.model;
  driver_cfg.weight_seed = options_.weight_seed;
  DriverState state(options_.kv_capacity_tokens, options_.kv_block_size, options_.pp,
                    driver_cfg);

  // Requests enter the waiting queue in arrival order; with respect_arrivals
  // only once their submission instant passes.
  std::deque<engine::Sequence*> pending;
  for (const auto& request : requests) {
    const double arrival = options_.respect_arrivals ? request.arrival : 0.0;
    pending.push_back(state.add_request(request, arrival));
  }
  // Stable: simultaneous arrivals keep submission order, exactly like the
  // DES engine's event queue — a precondition for cross-executor parity.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const engine::Sequence* a, const engine::Sequence* b) {
                     return a->arrival() < b->arrival();
                   });

  // --- assemble the worker pipeline ---------------------------------------
  // In-process threads, forked local processes, or remote workers over TCP —
  // all present the same channel surface, so the driver loop below is
  // deployment-agnostic. Must run before the frontend thread spawns: fork
  // mode may only fork while this process is single-threaded.
  const nn::Sampler sampler =
      options_.greedy_sampling
          ? nn::Sampler{}
          : nn::Sampler(options_.top_k, options_.temperature, options_.sampler_seed);
  net::PipelineBackend backend = net::make_pipeline_backend(options_, sampler, tracer);

  // --- decoupled frontend -----------------------------------------------------
  util::BoundedQueue<StreamEvent> stream(4096);
  std::thread frontend;
  if (on_token) {
    frontend = std::thread([&] {
      while (auto ev = stream.pop()) on_token(*ev);
    });
  }

  RuntimeReport report;
  std::size_t finished = 0;

  while (finished < requests.size()) {
    // Move arrived requests into the waiting queue.
    while (!pending.empty() && pending.front()->arrival() <= seconds_since(t0)) {
      state.admit(pending.front());
      pending.pop_front();
    }

    // Admit micro-batches up to the pipeline depth.
    bool admitted_any = false;
    while (state.in_flight() < options_.pp) {
      const double now = seconds_since(t0);
      const auto plan_t0 = std::chrono::steady_clock::now();
      sched::MicroBatchPlan plan;
      {
        obs::SpanGuard span(tracer, options_.pp, "sched.plan");
        plan = scheduler_->plan(state.build_context(now));
      }
      report.total_plan_seconds += seconds_since(plan_t0);
      if (plan.empty()) break;
      if (!state.materialize_and_dispatch(std::move(plan), now, backend.channels()))
        break;
      ++report.iterations;
      admitted_any = true;
    }

    if (state.in_flight() == 0) {
      if (!admitted_any && !pending.empty()) {
        // Nothing runnable yet: sleep until the next submission.
        const double gap = pending.front()->arrival() - seconds_since(t0);
        if (gap > 0) std::this_thread::sleep_for(std::chrono::duration<double>(gap));
        continue;
      }
      if (!admitted_any) {
        // Half-admitted prompts may be squatting on the KV pool with nothing
        // in flight: recompute-preempt the youngest (vLLM-style) and retry.
        if (state.reset_stalled_prefill()) continue;
        GLLM_LOG_ERROR("runtime stalled with " << requests.size() - finished
                                               << " unfinished requests");
        break;
      }
      continue;
    }

    // Retire the oldest micro-batch (channels are FIFO, so completion order
    // matches dispatch order).
    std::optional<SampleResult> result;
    {
      obs::SpanGuard span(tracer, options_.pp, "wait.sample");
      result = backend.samples()->pop();
    }
    if (!result) {
      GLLM_LOG_ERROR("runtime: sample channel closed with "
                     << requests.size() - finished << " unfinished requests");
      break;
    }
    finished += static_cast<std::size_t>(state.complete_batch(
        *result, seconds_since(t0),
        [&](const engine::Sequence& seq, nn::TokenId token, bool done) {
          if (!on_token) return;
          stream.push(StreamEvent{seq.id(), token, false});
          if (done) stream.push(StreamEvent{seq.id(), token, true});
        }));
  }

  // --- shutdown ---------------------------------------------------------------
  backend.shutdown();
  stream.close();
  if (frontend.joinable()) frontend.join();

  report.wall_seconds = seconds_since(t0);
  report.preemptions = state.preemptions();
  for (const auto& request : requests) {
    const auto& tokens = state.tokens(request.id);
    const engine::Sequence& seq = state.seq(request.id);
    RuntimeRequestRecord rec;
    rec.id = request.id;
    rec.output.assign(tokens.begin() + static_cast<std::ptrdiff_t>(request.prompt.size()),
                      tokens.end());
    rec.completed = seq.state() == engine::SeqState::kFinished;
    rec.preemptions = seq.preemptions();
    rec.scheduled_chunks = state.scheduled_chunks(request.id);
    if (rec.completed) {
      rec.ttft = seq.ttft();
      rec.e2e = seq.e2e_latency();
    }
    report.requests.push_back(std::move(rec));
  }
  std::sort(report.requests.begin(), report.requests.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  return report;
}

}  // namespace gllm::runtime
