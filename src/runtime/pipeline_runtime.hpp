#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/reference.hpp"
#include "runtime/driver_state.hpp"
#include "sched/types.hpp"

namespace gllm::net {
class FaultInjector;
}

namespace gllm::runtime {

/// How the pipeline-stage workers are hosted (paper §3.3: the runtime is
/// multi-process — a driver worker plus one process per stage).
struct DeploymentOptions {
  enum class Mode {
    kThreads,  ///< in-process worker threads over BoundedQueues (default)
    kFork,     ///< fork() one local worker process per stage, loopback TCP
    kRemote,   ///< accept externally launched gllm_worker processes over TCP
  };
  Mode mode = Mode::kThreads;
  /// Driver control listener for worker connections (0 = ephemeral; kRemote
  /// deployments should pin a port so workers know where to connect).
  int worker_port = 0;
  double heartbeat_interval_s = 0.25;  ///< driver -> worker heartbeat period
  /// No frame (heartbeat or data) for this long on a control connection
  /// declares the peer dead.
  double heartbeat_timeout_s = 10.0;
  double handshake_timeout_s = 30.0;
  /// Deterministic chaos hook (net/fault.hpp): faults keyed on per-stage
  /// outgoing metadata frame counts, consulted by the DriverTransport pumps.
  /// Null (the default) disables injection entirely.
  std::shared_ptr<net::FaultInjector> fault_injector;

  bool multi_process() const { return mode != Mode::kThreads; }
};

/// Recovery policy of the online service (runtime/service.hpp): how hard to
/// try before declaring the pipeline — or an individual request — failed.
struct FaultToleranceOptions {
  /// Total pipeline teardown+respawn attempts before the service gives up
  /// and terminates everything with explicit errors (kFailed health).
  int max_pipeline_restarts = 8;
  /// A request folded back into pending prefill by more than this many
  /// pipeline failures is terminated with StreamError::kWorkerFailure
  /// instead of being recomputed yet again.
  int max_request_failures = 2;
  /// Backoff before each respawn attempt; doubles per attempt (capped at
  /// 32x). Remote deployments may want this larger so workers have time to
  /// reconnect.
  double restart_backoff_s = 0.05;
  /// Watchdog: a micro-batch in flight this long without a sample result
  /// declares the pipeline wedged (e.g. a lost metadata frame) and triggers
  /// the same recovery as peer death. <= 0 disables the watchdog.
  double sample_wait_timeout_s = 60.0;
};

/// Deployment options for the real threaded runtime.
struct RuntimeOptions {
  model::ModelConfig model;       ///< typically model::presets::tiny()
  int pp = 2;                     ///< pipeline stages == worker threads
  /// Tensor-parallel width of every stage: each stage's heads/FFN are sharded
  /// `tp` ways over the shared thread pool (nn::AllReduce fork-join). Token
  /// streams are bit-identical for any valid tp.
  int tp = 1;
  std::int64_t kv_capacity_tokens = 4096;
  int kv_block_size = 8;
  std::uint64_t weight_seed = 1234;
  /// Sampling at the last stage. Greedy (the default) is what the
  /// token-parity checks require; top-k adds temperature randomness for
  /// interactive use, deterministic in sampler_seed.
  bool greedy_sampling = true;
  int top_k = 40;
  float temperature = 1.0f;
  std::uint64_t sampler_seed = 9;
  /// Honour GenRequest::arrival (online serving). When false, every request
  /// is available at t=0 (offline burst).
  bool respect_arrivals = false;
  /// Reuse KV blocks across requests sharing prompt prefixes (paper 3.4
  /// integrates vLLM-style automatic prefix caching). Token outputs remain
  /// bit-identical; only the reused prefix's computation is skipped.
  bool prefix_caching = false;
  /// Speculative decoding (spec.mode != kOff): the driver drafts up to
  /// spec.k tokens per decode step and the last stage verifies all k+1 rows
  /// in one forward. Requires greedy sampling — token identity with the
  /// non-speculative stream is only defined for greedy verification.
  spec::SpecConfig spec;
  /// Observability sink. Metrics are always recorded when non-null; spans
  /// additionally when its tracer is enabled. Tracks 0..pp-1 are the stage
  /// workers, pp the driver. Must outlive the run.
  obs::Observability* obs = nullptr;
  /// Worker hosting: in-process threads (default) or a multi-process
  /// deployment over the gllm::net TCP transport.
  DeploymentOptions deployment;
  /// Failure-recovery policy of the online service (ignored by the batch
  /// runner, which reports unfinished requests instead of recovering).
  FaultToleranceOptions fault;
};

struct RuntimeRequestRecord {
  std::int64_t id = 0;
  std::vector<nn::TokenId> output;
  double ttft = 0.0;  ///< wall seconds from submission
  double e2e = 0.0;
  int preemptions = 0;
  bool completed = false;
  /// Why the request terminated without completing (kNone when completed).
  StreamError error = StreamError::kNone;
  /// Prefill chunk sizes in commit order; comparable 1:1 with the DES
  /// engine's RequestMetrics::scheduled_chunks (admission parity).
  std::vector<int> scheduled_chunks;
};

struct RuntimeReport {
  std::vector<RuntimeRequestRecord> requests;
  double wall_seconds = 0.0;
  std::int64_t iterations = 0;
  std::int64_t preemptions = 0;
  double total_plan_seconds = 0.0;  ///< time spent inside the scheduler
  double mean_plan_seconds() const {
    return iterations ? total_plan_seconds / static_cast<double>(iterations) : 0.0;
  }
};

/// The real (threads + message passing) gLLM runtime executing the CPU
/// transformer: a driver thread (this class, paper's "driver worker") that
/// schedules micro-batches with any sched::IScheduler, broadcasts metadata to
/// all stage workers, collects sampled tokens from the last stage, and
/// optionally streams them to a decoupled frontend thread.
///
/// This is the *batch* entry point (serve a fixed request set to
/// completion); runtime/service.hpp provides the persistent online mode.
/// Both share DriverState, so the scheduling/materialisation logic is
/// identical, and both run the same policy objects as the discrete-event
/// engine.
class PipelineRuntime {
 public:
  PipelineRuntime(RuntimeOptions options, std::shared_ptr<sched::IScheduler> scheduler);

  /// Serve `requests` to completion. If `on_token` is provided, a frontend
  /// thread invokes it for every generated token.
  RuntimeReport run(const std::vector<nn::GenRequest>& requests,
                    std::function<void(const StreamEvent&)> on_token = nullptr);

  const RuntimeOptions& options() const { return options_; }

 private:
  RuntimeOptions options_;
  std::shared_ptr<sched::IScheduler> scheduler_;
};

}  // namespace gllm::runtime
