#include "util/threadpool.hpp"

#include <algorithm>
#include <cstdlib>

namespace gllm::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw : 2;
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (stop_ && pending_.empty()) return;
      task = std::move(pending_.back());
      pending_.pop_back();
    }
    task.fn(task.begin, task.end);
    {
      std::lock_guard lock(mu_);
      --outstanding_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t chunks = std::min(max_chunks, thread_count());

  if (chunks <= 1) {
    fn(begin, end);
    return;
  }

  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  // Enqueue all but the first chunk; the caller runs the first chunk itself.
  {
    std::lock_guard lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t b = begin + c * chunk_size;
      const std::size_t e = std::min(end, b + chunk_size);
      if (b >= e) continue;
      pending_.push_back(Task{fn, b, e});
      ++outstanding_;
    }
  }
  cv_.notify_all();

  fn(begin, std::min(end, begin + chunk_size));

  // Help drain the queue instead of just waiting, to avoid idling the caller.
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      if (pending_.empty()) break;
      task = std::move(pending_.back());
      pending_.pop_back();
    }
    task.fn(task.begin, task.end);
    {
      std::lock_guard lock(mu_);
      --outstanding_;
    }
    done_cv_.notify_all();
  }
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

ThreadPool& ThreadPool::shared() {
  // GLLM_THREADS overrides the hardware default — e.g. to oversubscribe a
  // small host so tensor-parallel shards genuinely interleave, or to pin the
  // pool to 1 lane when debugging. Read once at first use.
  static ThreadPool pool([] {
    std::size_t threads = 0;
    if (const char* env = std::getenv("GLLM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0 && v <= 1024) threads = static_cast<std::size_t>(v);
    }
    return threads;
  }());
  return pool;
}

}  // namespace gllm::util
