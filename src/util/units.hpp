#pragma once

#include <string>

namespace gllm::util {

// Byte units.
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

// Rate units.
inline constexpr double kTera = 1e12;
inline constexpr double kGiga = 1e9;
inline constexpr double kGbps = 1e9 / 8.0;  // bits/s -> bytes/s

// Time units expressed in seconds.
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;

/// "1.50 GiB"-style human-readable bytes.
std::string format_bytes(double bytes);

/// "12.3 ms" / "1.20 s"-style human-readable duration given seconds.
std::string format_duration(double seconds);

/// Fixed-precision double (no trailing-zero stripping; table alignment).
std::string format_double(double v, int precision = 2);

}  // namespace gllm::util
