#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gllm::util {

/// Minimal GNU-style command-line parser for the tools: `--key value`,
/// `--key=value` and boolean `--flag` forms, plus positional arguments.
///
/// Unknown options are an error (collected and reported), so typos in
/// benchmark scripts fail fast rather than silently using defaults.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare options before parse(). `help` appears in usage().
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Returns false (and fills error()) on unknown/malformed arguments.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  int get_int(const std::string& name) const;
  std::int64_t get_int64(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  std::string usage() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string default_value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;         // ordered for usage()
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace gllm::util
