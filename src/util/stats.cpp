#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace gllm::util {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::cv() const {
  if (mean_ == 0.0 || n_ == 0) return 0.0;
  return stddev() / std::abs(mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleStats::add(double x) {
  samples_.push_back(x);
  sorted_ = samples_.size() <= 1;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double SampleStats::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0.0) {
  if (buckets == 0) throw std::invalid_argument("Histogram: need >= 1 bucket");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / bucket_width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ <= 0.0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * total_;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] >= target) {
      const double within = counts_[i] > 0.0 ? (target - cum) / counts_[i] : 0.0;
      return bucket_lo(i) + within * bucket_width_;
    }
    cum += counts_[i];
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream oss;
  const double peak = counts_.empty() ? 0.0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = peak > 0.0
                         ? static_cast<std::size_t>(counts_[i] / peak * static_cast<double>(width))
                         : 0;
    oss << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") ";
    oss << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return oss.str();
}

}  // namespace gllm::util
