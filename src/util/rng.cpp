#include "util/rng.hpp"

namespace gllm::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_spare_ = false;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: zero total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace gllm::util
