#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gllm::util {

/// Outcome of a timed queue pop: an item, a timeout with the queue still
/// open, or closed-and-drained. The distinction matters to the serving
/// driver, which treats kClosed as peer death and kTimeout as a wedged batch.
enum class PopStatus { kOk, kTimeout, kClosed };

/// Bounded multi-producer/multi-consumer blocking queue.
///
/// This is the message-passing primitive of the threaded runtime: activation
/// and metadata channels between pipeline workers are BoundedQueues, mirroring
/// the NCCL/ZeroMQ split of the paper's runtime. `close()` makes all pending
/// and future pops return std::nullopt once drained, which gives workers a
/// clean shutdown path without sentinel messages.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 1024) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; std::nullopt once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Timed blocking pop: kOk fills `out`; kTimeout after `timeout_s` with
  /// nothing available; kClosed once closed and drained. A negative timeout
  /// waits indefinitely (equivalent to pop(), minus the optional).
  PopStatus pop_for(T& out, double timeout_s) {
    std::unique_lock lock(mu_);
    const auto ready = [&] { return closed_ || !items_.empty(); };
    if (timeout_s < 0.0) {
      not_empty_.wait(lock, ready);
    } else if (!not_empty_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                                    ready)) {
      return PopStatus::kTimeout;
    }
    if (items_.empty()) return PopStatus::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return PopStatus::kOk;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gllm::util
