#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace gllm::util {

void TablePrinter::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

bool TablePrinter::looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
               c != 'x') {
      return false;
    }
  }
  return digit;
}

void TablePrinter::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return;

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      const std::size_t pad = widths[i] - cell.size();
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << (i + 1 < cols ? "  " : "");
    }
    os << "\n";
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (cols - 1);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ",";
    os_ << escape(cells[i]);
  }
  os_ << "\n";
}

}  // namespace gllm::util
