#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace gllm::util {

/// Column-aligned plain-text table for benchmark/report output.
///
/// Numeric-looking cells are right-aligned, text left-aligned; the header row
/// is separated by dashes. Intentionally free of any terminal-escape styling
/// so output diffs cleanly and pipes into files.
class TablePrinter {
 public:
  TablePrinter() = default;
  explicit TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row);

  /// Convenience: accepts any streamable cell types.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  template <typename T>
  static std::string cell_to_string(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return streamed(v);
    }
  }

  template <typename T>
  static std::string streamed(const T& v);

  static bool looks_numeric(const std::string& s);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV writer with RFC-4180-style quoting; one instance per output file.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells);

  template <typename... Cells>
  void write(const Cells&... cells) {
    row({to_cell(cells)...});
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v);

  static std::string escape(const std::string& s);

  std::ostream& os_;
};

}  // namespace gllm::util

#include <sstream>

namespace gllm::util {

template <typename T>
std::string TablePrinter::streamed(const T& v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

template <typename T>
std::string CsvWriter::to_cell(const T& v) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(v);
  } else {
    std::ostringstream oss;
    oss << v;
    return oss.str();
  }
}

}  // namespace gllm::util
