#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace gllm::util {

/// Deterministic, seedable xoshiro256** generator with the statistical
/// distributions the workload generators and simulators need.
///
/// We avoid <random> engines because their sequences are not guaranteed to be
/// identical across standard library implementations; reproducing paper
/// figures requires bit-stable traces on any platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Derive an independent stream, e.g. one per request generator.
  Rng fork();

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Standard normal via Box-Muller (cached spare).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Sample an index proportionally to non-negative weights. Requires a
  /// positive total weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gllm::util
