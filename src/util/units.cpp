#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace gllm::util {

std::string format_bytes(double bytes) {
  char buf[64];
  const double abs = std::abs(bytes);
  if (abs >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / kGiB);
  } else if (abs >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / kMiB);
  } else if (abs >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  const double abs = std::abs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (abs >= kMilli) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds / kMilli);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds / kMicro);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace gllm::util
