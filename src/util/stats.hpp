#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace gllm::util {

/// Streaming mean/variance/min/max via Welford's algorithm. O(1) memory,
/// suitable for per-iteration metrics inside long simulations.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  /// Coefficient of variation, stddev/mean (0 when mean == 0).
  double cv() const;

  void merge(const OnlineStats& other);
  void reset() { *this = OnlineStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container supporting exact percentiles. Stores all samples; callers
/// with millions of samples should prefer Histogram.
class SampleStats {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Exact percentile with linear interpolation; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used for utilization traces and length distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, double weight = 1.0);

  std::size_t bucket_count() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  double bucket_weight(std::size_t i) const { return counts_[i]; }
  double total_weight() const { return total_; }

  /// Approximate quantile from bucket boundaries; q in [0, 1].
  double quantile(double q) const;

  /// Render as an ASCII bar chart, `width` columns for the largest bucket.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace gllm::util
