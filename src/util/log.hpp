#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace gllm::util {

/// Severity levels in increasing order; messages below the configured level
/// are discarded.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

std::string_view to_string(LogLevel level);

/// Process-wide, thread-safe logger writing to stderr.
///
/// Intentionally minimal: serving simulations emit few log lines, and tests
/// silence output by raising the level. Use the GLLM_LOG_* macros so that the
/// message formatting cost is only paid when the level is enabled.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view file, int line, const std::string& msg);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger() = default;

  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

/// RAII helper to temporarily change the global log level (used in tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level)
      : prev_(Logger::instance().level()) {
    Logger::instance().set_level(level);
  }
  ~ScopedLogLevel() { Logger::instance().set_level(prev_); }

  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

}  // namespace gllm::util

#define GLLM_LOG_AT(lvl, expr)                                                  \
  do {                                                                          \
    if (::gllm::util::Logger::instance().enabled(lvl)) {                        \
      std::ostringstream gllm_log_oss_;                                         \
      gllm_log_oss_ << expr;                                                    \
      ::gllm::util::Logger::instance().write(lvl, __FILE__, __LINE__,           \
                                             gllm_log_oss_.str());              \
    }                                                                           \
  } while (0)

#define GLLM_LOG_DEBUG(expr) GLLM_LOG_AT(::gllm::util::LogLevel::kDebug, expr)
#define GLLM_LOG_INFO(expr) GLLM_LOG_AT(::gllm::util::LogLevel::kInfo, expr)
#define GLLM_LOG_WARN(expr) GLLM_LOG_AT(::gllm::util::LogLevel::kWarn, expr)
#define GLLM_LOG_ERROR(expr) GLLM_LOG_AT(::gllm::util::LogLevel::kError, expr)
