#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gllm::util {

/// Fixed-size worker pool with a fork-join `parallel_for`.
///
/// The CPU transformer's GEMMs and attention use this for data-parallel loops
/// (OpenMP-style static scheduling over contiguous index ranges, but with
/// plain std::thread so the library has no compiler-flag requirements).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }  // + caller

  /// Run fn(i) for i in [begin, end), splitting the range statically across
  /// the pool plus the calling thread. Blocks until all iterations complete.
  /// `grain` is the minimum chunk size per worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Process-wide default pool (hardware_concurrency threads; the
  /// GLLM_THREADS environment variable overrides the size when set to a
  /// positive integer — useful to oversubscribe small hosts so TP shards
  /// actually interleave, or to serialise the pool for debugging).
  static ThreadPool& shared();

 private:
  struct Task {
    std::function<void(std::size_t, std::size_t)> fn;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<Task> pending_;
  std::size_t outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace gllm::util
