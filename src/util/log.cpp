#include "util/log.hpp"

#include <cstdio>

namespace gllm::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mu_);
  return level_;
}

void Logger::write(LogLevel level, std::string_view file, int line,
                   const std::string& msg) {
  // Trim the path to the basename for readability.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);

  std::lock_guard lock(mu_);
  std::fprintf(stderr, "[%s] %.*s:%d %s\n", to_string(level).data(),
               static_cast<int>(file.size()), file.data(), line, msg.c_str());
}

}  // namespace gllm::util
