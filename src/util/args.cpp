#include "util/args.hpp"

#include <sstream>
#include <stdexcept>

namespace gllm::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "show this help text");
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, /*is_flag=*/true, ""};
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{help, /*is_flag=*/false, default_value};
  values_[name] = default_value;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      error_ = "unknown option --" + arg;
      return false;
    }
    if (it->second.is_flag) {
      if (has_inline_value) {
        error_ = "flag --" + arg + " does not take a value";
        return false;
      }
      values_[arg] = "1";
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        error_ = "option --" + arg + " requires a value";
        return false;
      }
      value = argv[++i];
    }
    values_[arg] = std::move(value);
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && !it->second.empty();
}

std::string ArgParser::get(const std::string& name) const {
  const auto spec = specs_.find(name);
  if (spec == specs_.end()) throw std::invalid_argument("undeclared option --" + name);
  const auto it = values_.find(name);
  return it == values_.end() ? "" : it->second;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" + v + "'");
  }
}

int ArgParser::get_int(const std::string& name) const {
  return static_cast<int>(get_int64(name));
}

std::int64_t ArgParser::get_int64(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" + v +
                                "'");
  }
}

std::string ArgParser::usage() const {
  std::ostringstream oss;
  oss << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    oss << "  --" << name;
    if (!spec.is_flag) oss << " <value>";
    oss << "\n      " << spec.help;
    if (!spec.is_flag && !spec.default_value.empty())
      oss << " (default: " << spec.default_value << ")";
    oss << "\n";
  }
  return oss.str();
}

}  // namespace gllm::util
