#include "nn/reference.hpp"

#include <gtest/gtest.h>

#include "nn/sampler.hpp"

namespace gllm::nn {
namespace {

std::vector<GenRequest> make_requests(const model::ModelConfig& cfg, int n) {
  std::vector<GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    GenRequest r;
    r.id = i;
    r.prompt = synthetic_prompt(cfg, 100 + static_cast<std::uint64_t>(i), 6 + i * 3);
    r.max_new_tokens = 4 + i;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(Reference, OutputLengthsMatchRequests) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 3);
  const auto out = generate_reference(cfg, 1234, reqs);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].size(), static_cast<std::size_t>(reqs[i].max_new_tokens));
}

TEST(Reference, TokensWithinVocab) {
  const auto cfg = model::presets::tiny();
  const auto out = generate_reference(cfg, 1234, make_requests(cfg, 2));
  for (const auto& seq : out) {
    for (TokenId t : seq) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, cfg.vocab);
    }
  }
}

TEST(Reference, DeterministicAcrossCalls) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 2);
  EXPECT_EQ(generate_reference(cfg, 1234, reqs), generate_reference(cfg, 1234, reqs));
}

TEST(Reference, WeightSeedChangesOutput) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 1);
  EXPECT_NE(generate_reference(cfg, 1, reqs), generate_reference(cfg, 2, reqs));
}

TEST(Reference, PromptChangesOutput) {
  const auto cfg = model::presets::tiny();
  auto reqs = make_requests(cfg, 1);
  const auto a = generate_reference(cfg, 1234, reqs);
  reqs[0].prompt[0] = static_cast<TokenId>((reqs[0].prompt[0] + 1) % cfg.vocab);
  const auto b = generate_reference(cfg, 1234, reqs);
  EXPECT_NE(a, b);
}

TEST(Reference, BlockSizeDoesNotChangeTokens) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 2);
  EXPECT_EQ(generate_reference(cfg, 1234, reqs, 4),
            generate_reference(cfg, 1234, reqs, 16));
}

TEST(Reference, EmptyPromptRejected) {
  const auto cfg = model::presets::tiny();
  std::vector<GenRequest> reqs(1);
  reqs[0].max_new_tokens = 2;
  EXPECT_THROW(generate_reference(cfg, 1, reqs), std::invalid_argument);
}

TEST(SyntheticPrompt, DeterministicAndBounded) {
  const auto cfg = model::presets::tiny();
  const auto a = synthetic_prompt(cfg, 9, 32);
  const auto b = synthetic_prompt(cfg, 9, 32);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);
  for (TokenId t : a) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, cfg.vocab);
  }
  EXPECT_NE(a, synthetic_prompt(cfg, 10, 32));
}

TEST(Sampler, GreedyPicksArgmax) {
  Sampler greedy;
  const std::vector<float> logits{0.1f, 2.0f, 1.0f};
  EXPECT_EQ(greedy.sample(logits), 1);
  EXPECT_TRUE(greedy.greedy());
}

TEST(Sampler, TopKRestrictsSupport) {
  Sampler topk(2, 1.0f, 42);
  const std::vector<float> logits{10.0f, 9.0f, -100.0f, -100.0f};
  for (int i = 0; i < 50; ++i) {
    const auto t = topk.sample(logits);
    EXPECT_TRUE(t == 0 || t == 1);
  }
}

TEST(Sampler, TemperatureZeroRejected) {
  EXPECT_THROW(Sampler(5, 0.0f, 1), std::invalid_argument);
}

TEST(Sampler, LowTemperatureNearGreedy) {
  Sampler cold(0, 0.01f, 7);
  const std::vector<float> logits{1.0f, 5.0f, 2.0f};
  int hits = 0;
  for (int i = 0; i < 100; ++i) hits += cold.sample(logits) == 1 ? 1 : 0;
  EXPECT_GT(hits, 95);
}

TEST(Sampler, SeededDeterminism) {
  Sampler a(3, 1.0f, 5), b(3, 1.0f, 5);
  const std::vector<float> logits{1.0f, 1.1f, 0.9f, 1.05f};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.sample(logits), b.sample(logits));
}

}  // namespace
}  // namespace gllm::nn
