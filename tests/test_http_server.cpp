// HTTP frontend over the online runtime: the artifact's api_server analogue,
// exercised end-to-end over loopback sockets.

#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.hpp"
#include "sched/token_throttle.hpp"
#include "server/http_server.hpp"

namespace gllm::server {
namespace {

constexpr std::uint64_t kSeed = 1234;

runtime::RuntimeOptions tiny_options() {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = 2;
  opt.kv_capacity_tokens = 2048;
  opt.kv_block_size = 8;
  opt.weight_seed = kSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

std::string completion_body(std::int64_t id, const std::vector<nn::TokenId>& prompt,
                            int max_tokens) {
  std::string body = "{\"id\":" + std::to_string(id) + ",\"prompt\":[";
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    if (i) body += ",";
    body += std::to_string(prompt[i]);
  }
  body += "],\"max_tokens\":" + std::to_string(max_tokens) + "}";
  return body;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs_ = std::make_unique<obs::Observability>();
    auto options = tiny_options();
    options.obs = obs_.get();
    service_ = std::make_unique<runtime::PipelineService>(options, small_throttle());
    service_->start();
    server_ = std::make_unique<HttpServer>(*service_);
    server_->start();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_->stop();
    service_->stop();
  }

  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<runtime::PipelineService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, HealthEndpoint) {
  std::string body;
  const int status = http_request(server_->port(), "GET", "/health", "", body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("tiny"), std::string::npos);
}

TEST_F(HttpServerTest, CompletionMatchesReference) {
  const auto cfg = model::presets::tiny();
  nn::GenRequest request;
  request.id = 1;
  request.prompt = nn::synthetic_prompt(cfg, 5, 12);
  request.max_new_tokens = 6;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});

  std::string body;
  const int status = http_request(server_->port(), "POST", "/v1/completions",
                                  completion_body(1, request.prompt, 6), body);
  ASSERT_EQ(status, 200);

  std::vector<std::int64_t> tokens;
  ASSERT_TRUE(json_int_array_field(body, "tokens", tokens));
  ASSERT_EQ(tokens.size(), reference[0].size());
  for (std::size_t i = 0; i < tokens.size(); ++i)
    EXPECT_EQ(tokens[i], reference[0][i]) << "token " << i;
  EXPECT_NE(body.find("\"finish_reason\":\"length\""), std::string::npos);
}

TEST_F(HttpServerTest, ConcurrentClients) {
  const auto cfg = model::presets::tiny();
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::vector<int> statuses(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto prompt = nn::synthetic_prompt(cfg, 100 + static_cast<std::uint64_t>(c), 8);
      std::string body;
      statuses[static_cast<std::size_t>(c)] =
          http_request(server_->port(), "POST", "/v1/completions",
                       completion_body(c, prompt, 4), body);
    });
  }
  for (auto& t : clients) t.join();
  for (int s : statuses) EXPECT_EQ(s, 200);
}

TEST_F(HttpServerTest, MalformedJsonRejected) {
  std::string body;
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/completions", "not json", body),
            400);
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/completions",
                         "{\"id\":1,\"prompt\":[],\"max_tokens\":4}", body),
            400);
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/completions",
                         "{\"id\":1,\"prompt\":[3,4],\"max_tokens\":0}", body),
            400);
}

TEST_F(HttpServerTest, OutOfVocabRejected) {
  std::string body;
  const int status = http_request(server_->port(), "POST", "/v1/completions",
                                  "{\"id\":1,\"prompt\":[999999],\"max_tokens\":2}", body);
  EXPECT_EQ(status, 400);
  EXPECT_NE(body.find("vocabulary"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedRejected) {
  const auto cfg = model::presets::tiny();
  const auto prompt = nn::synthetic_prompt(cfg, 2, 64);
  std::string body;
  const int status = http_request(server_->port(), "POST", "/v1/completions",
                                  completion_body(9, prompt, 100000), body);
  EXPECT_EQ(status, 400);
  EXPECT_NE(body.find("KV capacity"), std::string::npos);
}

TEST_F(HttpServerTest, UnknownPath404) {
  std::string body;
  EXPECT_EQ(http_request(server_->port(), "GET", "/nope", "", body), 404);
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/nope", "", body), 404);
}

TEST_F(HttpServerTest, WrongMethodIs405WithAllow) {
  std::string body, headers;
  EXPECT_EQ(http_request(server_->port(), "POST", "/health", "", body, &headers), 405);
  EXPECT_NE(headers.find("Allow: GET"), std::string::npos);
  EXPECT_EQ(http_request(server_->port(), "POST", "/metrics", "", body, &headers), 405);
  EXPECT_NE(headers.find("Allow: GET"), std::string::npos);
  EXPECT_EQ(http_request(server_->port(), "GET", "/v1/completions", "", body, &headers),
            405);
  EXPECT_NE(headers.find("Allow: POST"), std::string::npos);
}

TEST_F(HttpServerTest, MetricsEndpointExposesPrometheusText) {
  // Drive one request through so the serving counters are non-zero.
  const auto cfg = model::presets::tiny();
  const auto prompt = nn::synthetic_prompt(cfg, 7, 10);
  std::string body;
  ASSERT_EQ(http_request(server_->port(), "POST", "/v1/completions",
                         completion_body(3, prompt, 4), body),
            200);

  std::string headers;
  const int status = http_request(server_->port(), "GET", "/metrics", "", body, &headers);
  ASSERT_EQ(status, 200);
  EXPECT_NE(headers.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  for (const char* metric :
       {"gllm_requests_admitted_total", "gllm_requests_completed_total",
        "gllm_preemptions_total", "gllm_kv_free_rate", "gllm_ttft_seconds_bucket",
        "gllm_tpot_seconds_count", "gllm_iteration_tokens_sum",
        "gllm_tokens_scheduled_total"}) {
    EXPECT_NE(body.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(body.find("gllm_requests_admitted_total 1"), std::string::npos);
  EXPECT_NE(body.find("gllm_requests_completed_total 1"), std::string::npos);
}

TEST_F(HttpServerTest, StatsEndpointReturnsJson) {
  std::string body;
  const int status = http_request(server_->port(), "GET", "/v1/stats", "", body);
  ASSERT_EQ(status, 200);
  EXPECT_NE(body.find("\"model\":\"tiny\""), std::string::npos);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("gllm_requests_admitted_total"), std::string::npos);
}

TEST(HttpServerNoObs, MetricsUnavailableWithoutObservability) {
  runtime::PipelineService service(tiny_options(), small_throttle());
  service.start();
  HttpServer server(service);
  server.start();
  std::string body;
  EXPECT_EQ(http_request(server.port(), "GET", "/metrics", "", body), 503);
  EXPECT_EQ(http_request(server.port(), "GET", "/v1/stats", "", body), 503);
  server.stop();
  service.stop();
}

TEST(HttpJson, FieldParsers) {
  std::int64_t v = 0;
  EXPECT_TRUE(json_int_field("{\"max_tokens\": 42}", "max_tokens", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(json_int_field("{\"id\":-7}", "id", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(json_int_field("{\"id\":\"x\"}", "id", v));
  EXPECT_FALSE(json_int_field("{}", "id", v));

  std::vector<std::int64_t> arr;
  EXPECT_TRUE(json_int_array_field("{\"prompt\":[1, 2,3]}", "prompt", arr));
  EXPECT_EQ(arr, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_TRUE(json_int_array_field("{\"prompt\":[]}", "prompt", arr));
  EXPECT_TRUE(arr.empty());
  EXPECT_FALSE(json_int_array_field("{\"prompt\":[1,}", "prompt", arr));
  EXPECT_FALSE(json_int_array_field("{}", "prompt", arr));
}

TEST(HttpServerLifecycle, StartStopIdempotent) {
  runtime::PipelineService service(tiny_options(), small_throttle());
  service.start();
  HttpServer server(service);
  server.start();
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  service.stop();
}

}  // namespace
}  // namespace gllm::server
