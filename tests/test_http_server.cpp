// HTTP frontend over the online runtime: the artifact's api_server analogue,
// exercised end-to-end over loopback sockets.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/socket.hpp"
#include "obs/obs.hpp"
#include "sched/token_throttle.hpp"
#include "server/http_server.hpp"

namespace gllm::server {
namespace {

constexpr std::uint64_t kSeed = 1234;

runtime::RuntimeOptions tiny_options() {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = 2;
  opt.kv_capacity_tokens = 2048;
  opt.kv_block_size = 8;
  opt.weight_seed = kSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

std::string completion_body(std::int64_t id, const std::vector<nn::TokenId>& prompt,
                            int max_tokens) {
  std::string body = "{\"id\":" + std::to_string(id) + ",\"prompt\":[";
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    if (i) body += ",";
    body += std::to_string(prompt[i]);
  }
  body += "],\"max_tokens\":" + std::to_string(max_tokens) + "}";
  return body;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs_ = std::make_unique<obs::Observability>();
    auto options = tiny_options();
    options.obs = obs_.get();
    service_ = std::make_unique<runtime::PipelineService>(options, small_throttle());
    service_->start();
    server_ = std::make_unique<HttpServer>(*service_);
    server_->start();
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_->stop();
    service_->stop();
  }

  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<runtime::PipelineService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, HealthEndpoint) {
  std::string body;
  const int status = http_request(server_->port(), "GET", "/health", "", body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("tiny"), std::string::npos);
}

TEST_F(HttpServerTest, CompletionMatchesReference) {
  const auto cfg = model::presets::tiny();
  nn::GenRequest request;
  request.id = 1;
  request.prompt = nn::synthetic_prompt(cfg, 5, 12);
  request.max_new_tokens = 6;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});

  std::string body;
  const int status = http_request(server_->port(), "POST", "/v1/completions",
                                  completion_body(1, request.prompt, 6), body);
  ASSERT_EQ(status, 200);

  std::vector<std::int64_t> tokens;
  ASSERT_TRUE(json_int_array_field(body, "tokens", tokens));
  ASSERT_EQ(tokens.size(), reference[0].size());
  for (std::size_t i = 0; i < tokens.size(); ++i)
    EXPECT_EQ(tokens[i], reference[0][i]) << "token " << i;
  EXPECT_NE(body.find("\"finish_reason\":\"length\""), std::string::npos);
}

TEST_F(HttpServerTest, ConcurrentClients) {
  const auto cfg = model::presets::tiny();
  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::vector<int> statuses(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto prompt = nn::synthetic_prompt(cfg, 100 + static_cast<std::uint64_t>(c), 8);
      std::string body;
      statuses[static_cast<std::size_t>(c)] =
          http_request(server_->port(), "POST", "/v1/completions",
                       completion_body(c, prompt, 4), body);
    });
  }
  for (auto& t : clients) t.join();
  for (int s : statuses) EXPECT_EQ(s, 200);
}

TEST_F(HttpServerTest, MalformedJsonRejected) {
  std::string body;
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/completions", "not json", body),
            400);
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/completions",
                         "{\"id\":1,\"prompt\":[],\"max_tokens\":4}", body),
            400);
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/completions",
                         "{\"id\":1,\"prompt\":[3,4],\"max_tokens\":0}", body),
            400);
}

TEST_F(HttpServerTest, OutOfVocabRejected) {
  std::string body;
  const int status = http_request(server_->port(), "POST", "/v1/completions",
                                  "{\"id\":1,\"prompt\":[999999],\"max_tokens\":2}", body);
  EXPECT_EQ(status, 400);
  EXPECT_NE(body.find("vocabulary"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedRejected) {
  const auto cfg = model::presets::tiny();
  const auto prompt = nn::synthetic_prompt(cfg, 2, 64);
  std::string body;
  const int status = http_request(server_->port(), "POST", "/v1/completions",
                                  completion_body(9, prompt, 100000), body);
  EXPECT_EQ(status, 400);
  EXPECT_NE(body.find("KV capacity"), std::string::npos);
}

TEST_F(HttpServerTest, UnknownPath404) {
  std::string body;
  EXPECT_EQ(http_request(server_->port(), "GET", "/nope", "", body), 404);
  EXPECT_EQ(http_request(server_->port(), "POST", "/v1/nope", "", body), 404);
}

TEST_F(HttpServerTest, WrongMethodIs405WithAllow) {
  std::string body, headers;
  EXPECT_EQ(http_request(server_->port(), "POST", "/health", "", body, &headers), 405);
  EXPECT_NE(headers.find("Allow: GET"), std::string::npos);
  EXPECT_EQ(http_request(server_->port(), "POST", "/metrics", "", body, &headers), 405);
  EXPECT_NE(headers.find("Allow: GET"), std::string::npos);
  EXPECT_EQ(http_request(server_->port(), "GET", "/v1/completions", "", body, &headers),
            405);
  EXPECT_NE(headers.find("Allow: POST"), std::string::npos);
}

TEST_F(HttpServerTest, MetricsEndpointExposesPrometheusText) {
  // Drive one request through so the serving counters are non-zero.
  const auto cfg = model::presets::tiny();
  const auto prompt = nn::synthetic_prompt(cfg, 7, 10);
  std::string body;
  ASSERT_EQ(http_request(server_->port(), "POST", "/v1/completions",
                         completion_body(3, prompt, 4), body),
            200);

  std::string headers;
  const int status = http_request(server_->port(), "GET", "/metrics", "", body, &headers);
  ASSERT_EQ(status, 200);
  EXPECT_NE(headers.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  for (const char* metric :
       {"gllm_requests_admitted_total", "gllm_requests_completed_total",
        "gllm_preemptions_total", "gllm_kv_free_rate", "gllm_ttft_seconds_bucket",
        "gllm_tpot_seconds_count", "gllm_iteration_tokens_sum",
        "gllm_tokens_scheduled_total"}) {
    EXPECT_NE(body.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(body.find("gllm_requests_admitted_total 1"), std::string::npos);
  EXPECT_NE(body.find("gllm_requests_completed_total 1"), std::string::npos);
}

TEST_F(HttpServerTest, StatsEndpointReturnsJson) {
  std::string body;
  const int status = http_request(server_->port(), "GET", "/v1/stats", "", body);
  ASSERT_EQ(status, 200);
  EXPECT_NE(body.find("\"model\":\"tiny\""), std::string::npos);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("gllm_requests_admitted_total"), std::string::npos);

  // Schema v2: the stable placement fields a fleet router keys on.
  std::int64_t v = -1;
  ASSERT_TRUE(json_int_field(body, "schema_version", v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(json_int_field(body, "kv_block_size", v));
  EXPECT_EQ(v, 8);
  ASSERT_TRUE(json_int_field(body, "waiting_prefill", v));
  EXPECT_GE(v, 0);
  ASSERT_TRUE(json_int_field(body, "running_decodes", v));
  EXPECT_GE(v, 0);
  ASSERT_TRUE(json_int_field(body, "prefix_cache_blocks", v));
  EXPECT_GE(v, 0);
  ASSERT_TRUE(json_int_field(body, "restart_budget_remaining", v));
  EXPECT_GT(v, 0);  // no faults injected: full budget remains
}

TEST(HttpServerNoObs, MetricsUnavailableWithoutObservability) {
  runtime::PipelineService service(tiny_options(), small_throttle());
  service.start();
  HttpServer server(service);
  server.start();
  std::string body;
  EXPECT_EQ(http_request(server.port(), "GET", "/metrics", "", body), 503);
  EXPECT_EQ(http_request(server.port(), "GET", "/v1/stats", "", body), 503);
  server.stop();
  service.stop();
}

TEST(HttpJson, FieldParsers) {
  std::int64_t v = 0;
  EXPECT_TRUE(json_int_field("{\"max_tokens\": 42}", "max_tokens", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(json_int_field("{\"id\":-7}", "id", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(json_int_field("{\"id\":\"x\"}", "id", v));
  EXPECT_FALSE(json_int_field("{}", "id", v));

  std::vector<std::int64_t> arr;
  EXPECT_TRUE(json_int_array_field("{\"prompt\":[1, 2,3]}", "prompt", arr));
  EXPECT_EQ(arr, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_TRUE(json_int_array_field("{\"prompt\":[]}", "prompt", arr));
  EXPECT_TRUE(arr.empty());
  EXPECT_FALSE(json_int_array_field("{\"prompt\":[1,}", "prompt", arr));
  EXPECT_FALSE(json_int_array_field("{}", "prompt", arr));
}

/// Read from `fd` until `pred(raw)` or EOF/timeout; returns the raw bytes.
template <typename Pred>
std::string read_until(int fd, Pred pred, double timeout_s = 30.0) {
  std::string raw;
  char buf[4096];
  const auto t0 = std::chrono::steady_clock::now();
  while (!pred(raw)) {
    const double left =
        timeout_s -
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (left <= 0.0 || !net::wait_readable(fd, left)) break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  return raw;
}

TEST_F(HttpServerTest, StreamingCompletionEmitsSseTokens) {
  const auto cfg = model::presets::tiny();
  nn::GenRequest request;
  request.id = 11;
  request.prompt = nn::synthetic_prompt(cfg, 21, 10);
  request.max_new_tokens = 5;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});

  const int fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_GE(fd, 0);
  std::string body = completion_body(11, request.prompt, 5);
  body.insert(body.size() - 1, ",\"stream\":true");
  const std::string req = "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_TRUE(net::send_all(fd, req.data(), req.size()));
  const std::string raw = read_until(
      fd, [](const std::string& r) { return r.find("data: [DONE]\n\n") != std::string::npos; });
  net::close_fd(fd);

  EXPECT_NE(raw.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(raw.find("Content-Type: text/event-stream"), std::string::npos);
  std::string expected;
  for (const auto token : reference[0])
    expected += "data: {\"id\":11,\"token\":" + std::to_string(token) + "}\n\n";
  expected += "data: {\"id\":11,\"done\":true,\"tokens\":" +
              std::to_string(reference[0].size()) +
              ",\"finish_reason\":\"length\"}\n\ndata: [DONE]\n\n";
  const auto head_end = raw.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(raw.substr(head_end + 4), expected);
}

TEST_F(HttpServerTest, KeepAliveServesPipelinedRequests) {
  const int fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_GE(fd, 0);
  // Two pipelined GETs on one keep-alive connection: both must be answered,
  // in order, without dropping the second request's bytes.
  const std::string two =
      "GET /health HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  ASSERT_TRUE(net::send_all(fd, two.data(), two.size()));
  const std::string raw = read_until(fd, [](const std::string& r) {
    return r.find("\"counters\"") != std::string::npos;
  });
  net::close_fd(fd);
  const auto first = raw.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos);
  const auto second = raw.find("HTTP/1.1 200", first + 1);
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(raw.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(raw.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, PipelinedCompletionAfterGenerationIsServed) {
  const auto cfg = model::presets::tiny();
  nn::GenRequest request;
  request.id = 31;
  request.prompt = nn::synthetic_prompt(cfg, 33, 8);
  request.max_new_tokens = 4;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});

  // completion POST (generation defers the response) + pipelined GET: the GET
  // must be parked until the generation finishes, then answered on the same
  // connection.
  const std::string body = completion_body(31, request.prompt, 4);
  const std::string two = "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body +
                          "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  const int fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(net::send_all(fd, two.data(), two.size()));
  const std::string raw = read_until(fd, [](const std::string& r) {
    return r.find("\"status\":\"ok\"") != std::string::npos;
  });
  net::close_fd(fd);
  EXPECT_NE(raw.find("\"finish_reason\":\"length\""), std::string::npos);
  std::vector<std::int64_t> tokens;
  const auto body_at = raw.find("{\"id\":31");
  ASSERT_NE(body_at, std::string::npos);
  ASSERT_TRUE(json_int_array_field(raw.substr(body_at), "tokens", tokens));
  ASSERT_EQ(tokens.size(), reference[0].size());
  for (std::size_t i = 0; i < tokens.size(); ++i) EXPECT_EQ(tokens[i], reference[0][i]);
}

TEST_F(HttpServerTest, OversizedHeadersRejected431) {
  const int fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /health HTTP/1.1\r\nX-Big: " + std::string(10000, 'a') +
                          "\r\n\r\n";
  ASSERT_TRUE(net::send_all(fd, req.data(), req.size()));
  const std::string raw = read_until(
      fd, [](const std::string& r) { return r.find("\r\n\r\n") != std::string::npos; });
  net::close_fd(fd);
  EXPECT_NE(raw.find("HTTP/1.1 431"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedBodyRejected413BeforeUpload) {
  const int fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_GE(fd, 0);
  // Declare a 2 MiB body (limit: 1 MiB) and send none of it: the reject must
  // come from the declaration alone.
  const std::string req =
      "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: 2097152\r\n\r\n";
  ASSERT_TRUE(net::send_all(fd, req.data(), req.size()));
  const std::string raw = read_until(
      fd, [](const std::string& r) { return r.find("\r\n\r\n") != std::string::npos; });
  net::close_fd(fd);
  EXPECT_NE(raw.find("HTTP/1.1 413"), std::string::npos);
}

TEST_F(HttpServerTest, ChunkedUploadRejected501) {
  const int fd = net::connect_tcp("127.0.0.1", server_->port());
  ASSERT_GE(fd, 0);
  const std::string req =
      "POST /v1/completions HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  ASSERT_TRUE(net::send_all(fd, req.data(), req.size()));
  const std::string raw = read_until(
      fd, [](const std::string& r) { return r.find("\r\n\r\n") != std::string::npos; });
  net::close_fd(fd);
  EXPECT_NE(raw.find("HTTP/1.1 501"), std::string::npos);
}

TEST(HttpServerSerial, SerialBaselineServesCompletions) {
  const auto cfg = model::presets::tiny();
  runtime::PipelineService service(tiny_options(), small_throttle());
  service.start();
  ServerOptions so;
  so.loop = ServerOptions::Loop::kSerial;
  HttpServer server(service, so);
  server.start();

  nn::GenRequest request;
  request.id = 3;
  request.prompt = nn::synthetic_prompt(cfg, 8, 9);
  request.max_new_tokens = 4;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});
  std::string body;
  const int status = http_request(server.port(), "POST", "/v1/completions",
                                  completion_body(3, request.prompt, 4), body);
  EXPECT_EQ(status, 200);
  std::vector<std::int64_t> tokens;
  ASSERT_TRUE(json_int_array_field(body, "tokens", tokens));
  ASSERT_EQ(tokens.size(), reference[0].size());
  for (std::size_t i = 0; i < tokens.size(); ++i) EXPECT_EQ(tokens[i], reference[0][i]);

  server.stop();
  service.stop();
}

TEST(HttpServerLifecycle, StartStopIdempotent) {
  runtime::PipelineService service(tiny_options(), small_throttle());
  service.start();
  HttpServer server(service);
  server.start();
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  service.stop();
}

}  // namespace
}  // namespace gllm::server
