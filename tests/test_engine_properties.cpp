// Cross-cutting engine invariants, swept over every scheduling policy and
// several deployments (parameterized): whatever the policy, the engine must
// conserve tokens, stay deterministic, respect causality and never lose a
// request.

#include <gtest/gtest.h>

#include "serve/options.hpp"
#include "serve/system.hpp"
#include "workload/generator.hpp"

namespace gllm::engine {
namespace {

struct PropertyCase {
  const char* name;
  serve::SchedulerKind scheduler;
  int pp;
  int tp;
  double memory_util;
};

class EngineProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  serve::SystemOptions make_options() const {
    const auto& c = GetParam();
    serve::SystemOptions o;
    o.label = c.name;
    o.model = model::presets::qwen2_5_14b();
    o.cluster = hw::clusters::l20_node(4);
    o.pp = c.pp;
    o.tp = c.tp;
    o.scheduler = c.scheduler;
    o.gpu_memory_util = c.memory_util;
    return o;
  }

  workload::Trace make_trace() const {
    workload::TraceBuilder builder(workload::WorkloadSpec::sharegpt(), 31);
    workload::ArrivalProcess arrivals;
    arrivals.kind = workload::ArrivalProcess::Kind::kBursty;  // stress arrivals
    arrivals.rate = 4.0;
    return builder.generate_for_duration(arrivals, 16.0);
  }
};

TEST_P(EngineProperty, EveryRequestCompletesWithExactOutput) {
  serve::ServingSystem system(make_options());
  const auto trace = make_trace();
  const auto result = system.run(trace);
  ASSERT_EQ(result.requests.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_TRUE(result.requests[i].completed) << trace[i].id;
    EXPECT_EQ(result.requests[i].output_len, trace[i].output_len);
  }
}

TEST_P(EngineProperty, CausalityAndOrdering) {
  serve::ServingSystem system(make_options());
  const auto result = system.run(make_trace());
  for (const auto& r : result.requests) {
    if (!r.completed) continue;
    EXPECT_GT(r.ttft, 0.0);
    EXPECT_GE(r.e2e, r.ttft);
    EXPECT_GE(r.tpot, 0.0);
  }
  EXPECT_GE(result.end_time, result.start_time);
}

TEST_P(EngineProperty, RunIsDeterministic) {
  serve::ServingSystem a(make_options());
  serve::ServingSystem b(make_options());
  const auto trace = make_trace();
  const auto ra = a.run(trace);
  const auto rb = b.run(trace);
  ASSERT_EQ(ra.requests.size(), rb.requests.size());
  for (std::size_t i = 0; i < ra.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.requests[i].ttft, rb.requests[i].ttft);
    EXPECT_DOUBLE_EQ(ra.requests[i].e2e, rb.requests[i].e2e);
  }
  EXPECT_EQ(ra.preemptions, rb.preemptions);
  EXPECT_EQ(ra.scheduler_invocations, rb.scheduler_invocations);
}

TEST_P(EngineProperty, StageBusyNeverExceedsMakespan) {
  serve::ServingSystem system(make_options());
  const auto result = system.run(make_trace());
  for (double busy : result.stage_busy_seconds) {
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, result.makespan() * 1.001);
  }
}

TEST_P(EngineProperty, IterationTokensNonNegativeAndBounded) {
  serve::ServingSystem system(make_options());
  const auto result = system.run(make_trace());
  for (const auto& it : result.iterations) {
    EXPECT_GE(it.prefill_tokens, 0);
    EXPECT_GE(it.decode_tokens, 0);
    EXPECT_GT(it.prefill_tokens + it.decode_tokens, 0);
    EXPECT_GE(it.kv_free_rate, 0.0);
    EXPECT_LE(it.kv_free_rate, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EngineProperty,
    ::testing::Values(
        PropertyCase{"throttle_pp4", serve::SchedulerKind::kTokenThrottle, 4, 1, 0.9},
        PropertyCase{"sarathi_pp4", serve::SchedulerKind::kSarathi, 4, 1, 0.9},
        PropertyCase{"fcfs_pp4", serve::SchedulerKind::kFcfs, 4, 1, 0.9},
        PropertyCase{"tdpipe_pp4", serve::SchedulerKind::kTdPipe, 4, 1, 0.9},
        PropertyCase{"throttle_pp2", serve::SchedulerKind::kTokenThrottle, 2, 1, 0.9},
        PropertyCase{"throttle_tp4", serve::SchedulerKind::kTokenThrottle, 1, 4, 0.9},
        PropertyCase{"sarathi_tp4", serve::SchedulerKind::kSarathi, 1, 4, 0.9},
        PropertyCase{"hybrid_pp2tp2", serve::SchedulerKind::kTokenThrottle, 2, 2, 0.9},
        PropertyCase{"throttle_tight_kv", serve::SchedulerKind::kTokenThrottle, 4, 1, 0.25},
        PropertyCase{"sarathi_tight_kv", serve::SchedulerKind::kSarathi, 4, 1, 0.25}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace gllm::engine
