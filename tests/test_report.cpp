#include "serve/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gllm::serve {
namespace {

SweepPoint point(const std::string& system, double rate, double thr) {
  SweepPoint p;
  p.system = system;
  p.request_rate = rate;
  p.mean_ttft = 0.5;
  p.p99_ttft = 1.2;
  p.mean_tpot = 0.05;
  p.mean_e2el = 10.0;
  p.throughput = thr;
  p.utilization = 0.9;
  p.token_cv = 1.5;
  p.preemptions = 2;
  return p;
}

TEST(ReportWriter, MarkdownHasTitleSectionsAndRows) {
  ReportWriter report("Figure 10 reproduction");
  report.add_section("32B / sharegpt", {point("gLLM", 4, 900), point("vLLM", 4, 700)});
  report.add_note("gLLM wins throughput at equal load.");
  report.add_section("32B / azure", {point("gLLM", 1, 400)});

  std::ostringstream md;
  report.write_markdown(md);
  const std::string out = md.str();
  EXPECT_NE(out.find("# Figure 10 reproduction"), std::string::npos);
  EXPECT_NE(out.find("## 32B / sharegpt"), std::string::npos);
  EXPECT_NE(out.find("| gLLM | 4.00 | 500 | 50 | 10.0 | 900 | 0.90 | 1.50 | 2 |"),
            std::string::npos);
  EXPECT_NE(out.find("> gLLM wins throughput"), std::string::npos);
  EXPECT_EQ(report.section_count(), 2u);
}

TEST(ReportWriter, CsvFlattensAllSections) {
  ReportWriter report("r");
  report.add_section("a", {point("gLLM", 4, 900)});
  report.add_section("b", {point("vLLM", 8, 700), point("gLLM", 8, 950)});

  std::ostringstream csv;
  report.write_csv(csv);
  std::istringstream lines(csv.str());
  std::string line;
  std::getline(lines, line);
  EXPECT_NE(line.find("section,system,request_rate"), std::string::npos);
  int rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 3);
  EXPECT_NE(csv.str().find("b,vLLM,8,"), std::string::npos);
}

TEST(ReportWriter, NoteBeforeSectionThrows) {
  ReportWriter report("r");
  EXPECT_THROW(report.add_note("x"), std::logic_error);
}

TEST(RequestCsv, OneRowPerRequest) {
  engine::RunResult result;
  result.requests = {
      engine::RequestMetrics{1, 0.5, 100, 10, 0.2, 1.5, 0.1, 0, true},
      engine::RequestMetrics{2, 1.0, 50, 0, 0, 0, 0, 1, false},
  };
  std::ostringstream os;
  write_request_csv(result, os);
  std::istringstream lines(os.str());
  std::string header, r1, r2;
  std::getline(lines, header);
  std::getline(lines, r1);
  std::getline(lines, r2);
  EXPECT_NE(header.find("id,arrival"), std::string::npos);
  EXPECT_EQ(r1.rfind("1,0.5,100,10,", 0), 0u);
  EXPECT_NE(r2.find(",0"), std::string::npos);  // completed=0
}

}  // namespace
}  // namespace gllm::serve
