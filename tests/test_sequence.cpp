#include "engine/sequence.hpp"

#include <gtest/gtest.h>

namespace gllm::engine {
namespace {

workload::RequestSpec spec(int prompt = 100, int output = 10) {
  return workload::RequestSpec{1, 5.0, prompt, output};
}

TEST(Sequence, InitialState) {
  Sequence s(spec());
  EXPECT_EQ(s.state(), SeqState::kWaiting);
  EXPECT_EQ(s.prefill_target(), 100);
  EXPECT_EQ(s.remaining_prefill(), 100);
  EXPECT_EQ(s.generated(), 0);
  EXPECT_FALSE(s.decode_in_flight());
}

TEST(Sequence, ChunkedPrefillLifecycle) {
  Sequence s(spec(100, 10));
  s.on_chunk_scheduled(60);
  EXPECT_EQ(s.remaining_prefill(), 40);
  EXPECT_EQ(s.outstanding_chunks(), 1);
  s.on_chunk_scheduled(40);
  EXPECT_EQ(s.remaining_prefill(), 0);
  EXPECT_EQ(s.outstanding_chunks(), 2);

  EXPECT_FALSE(s.on_chunk_completed(false, 6.0));
  EXPECT_EQ(s.state(), SeqState::kWaiting);
  EXPECT_TRUE(s.on_chunk_completed(true, 7.0));
  EXPECT_EQ(s.state(), SeqState::kDecoding);
  EXPECT_EQ(s.generated(), 1);  // prefill emits the first token
  EXPECT_DOUBLE_EQ(s.first_token_time(), 7.0);
  EXPECT_DOUBLE_EQ(s.ttft(), 2.0);
}

TEST(Sequence, SingleTokenOutputFinishesAtPrefill) {
  Sequence s(spec(50, 1));
  s.on_chunk_scheduled(50);
  EXPECT_TRUE(s.on_chunk_completed(true, 6.0));
  EXPECT_EQ(s.state(), SeqState::kFinished);
  EXPECT_DOUBLE_EQ(s.finish_time(), 6.0);
  EXPECT_DOUBLE_EQ(s.tpot(), 0.0);
}

TEST(Sequence, DecodeLifecycle) {
  Sequence s(spec(10, 3));
  s.on_chunk_scheduled(10);
  s.on_chunk_completed(true, 6.0);

  s.on_decode_scheduled();
  EXPECT_TRUE(s.decode_in_flight());
  EXPECT_FALSE(s.on_decode_completed(6.5));
  EXPECT_EQ(s.generated(), 2);

  s.on_decode_scheduled();
  EXPECT_TRUE(s.on_decode_completed(7.0));
  EXPECT_EQ(s.state(), SeqState::kFinished);
  EXPECT_DOUBLE_EQ(s.e2e_latency(), 2.0);
  EXPECT_DOUBLE_EQ(s.tpot(), 0.5);  // (7.0 - 6.0) / 2
}

TEST(Sequence, PreemptionFoldsGeneratedIntoPrefill) {
  Sequence s(spec(10, 5));
  s.on_chunk_scheduled(10);
  s.on_chunk_completed(true, 6.0);  // generated = 1
  s.on_decode_scheduled();
  s.on_decode_completed(6.5);  // generated = 2

  s.preempt(7.0);
  EXPECT_EQ(s.state(), SeqState::kWaiting);
  EXPECT_EQ(s.prefill_target(), 12);  // prompt 10 + 2 generated
  EXPECT_EQ(s.remaining_prefill(), 12);
  EXPECT_EQ(s.preemptions(), 1);

  // Recompute: single chunk, completion emits the *third* token.
  s.on_chunk_scheduled(12);
  s.on_chunk_completed(true, 8.0);
  EXPECT_EQ(s.generated(), 3);
  EXPECT_EQ(s.state(), SeqState::kDecoding);
  // TTFT unchanged by recompute.
  EXPECT_DOUBLE_EQ(s.first_token_time(), 6.0);
}

TEST(Sequence, InvalidTransitionsThrow) {
  Sequence s(spec(10, 5));
  EXPECT_THROW(s.on_decode_scheduled(), std::logic_error);      // not decoding yet
  EXPECT_THROW(s.on_chunk_scheduled(11), std::invalid_argument);  // over target
  EXPECT_THROW(s.on_chunk_scheduled(0), std::invalid_argument);
  EXPECT_THROW(s.on_chunk_completed(false, 1.0), std::logic_error);  // none outstanding

  s.on_chunk_scheduled(10);
  s.on_chunk_completed(true, 6.0);
  EXPECT_THROW(s.on_chunk_scheduled(1), std::logic_error);  // already decoding
  EXPECT_THROW(s.on_decode_completed(6.5), std::logic_error);  // not in flight
  s.on_decode_scheduled();
  EXPECT_THROW(s.on_decode_scheduled(), std::logic_error);  // double schedule
  EXPECT_THROW(s.preempt(7.0), std::logic_error);           // in flight
}

TEST(Sequence, FinalChunkWithOutstandingSiblingThrows) {
  Sequence s(spec(20, 5));
  s.on_chunk_scheduled(10);
  s.on_chunk_scheduled(10);
  // Completing the final chunk while the first is still outstanding is a
  // pipeline-ordering violation.
  EXPECT_THROW(s.on_chunk_completed(true, 6.0), std::logic_error);
}

TEST(Sequence, TpotZeroBeforeFinish) {
  Sequence s(spec(10, 5));
  EXPECT_DOUBLE_EQ(s.tpot(), 0.0);
}

TEST(Sequence, AbortMarksState) {
  Sequence s(spec());
  s.abort();
  EXPECT_EQ(s.state(), SeqState::kAborted);
}

}  // namespace
}  // namespace gllm::engine
