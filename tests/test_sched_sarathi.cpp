#include "sched/sarathi.hpp"

#include <gtest/gtest.h>

namespace gllm::sched {
namespace {

ScheduleContext make_ctx(std::vector<WaitingSeq> waiting, std::vector<DecodeSeq> decodes,
                         std::int64_t kv_free_tokens = 1 << 20, int depth = 4) {
  ScheduleContext ctx;
  ctx.pipeline_depth = depth;
  ctx.waiting = std::move(waiting);
  ctx.runnable_decodes = std::move(decodes);
  ctx.total_decode_seqs = static_cast<std::int64_t>(ctx.runnable_decodes.size());
  ctx.kv_free_tokens = kv_free_tokens;
  ctx.kv_free_rate = 0.9;
  return ctx;
}

TEST(Sarathi, DecodesScheduledFirstThenPrefill) {
  SarathiScheduler sched({/*budget=*/100});
  auto ctx = make_ctx({{1, 500, 0, 0.0, false}}, {{10, 50}, {11, 60}});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 3u);
  EXPECT_EQ(plan.items[0].phase, Phase::kDecode);
  EXPECT_EQ(plan.items[1].phase, Phase::kDecode);
  EXPECT_EQ(plan.items[2].phase, Phase::kPrefill);
  EXPECT_EQ(plan.items[2].n_tokens, 98);  // budget 100 - 2 decodes
  EXPECT_EQ(plan.decode_tokens(), 2);
  EXPECT_EQ(plan.prefill_tokens(), 98);
}

TEST(Sarathi, BudgetNeverExceeded) {
  for (int budget : {64, 256, 2048}) {
    SarathiScheduler sched({budget});
    auto ctx = make_ctx({{1, 10000, 0, 0.0, false}, {2, 10000, 0, 0.0, false}},
                        std::vector<DecodeSeq>(30, DecodeSeq{99, 100}));
    // distinct ids for decodes
    for (std::size_t i = 0; i < ctx.runnable_decodes.size(); ++i)
      ctx.runnable_decodes[i].seq = 100 + static_cast<kv::SeqId>(i);
    const auto plan = sched.plan(ctx);
    EXPECT_LE(plan.total_tokens(), budget);
    EXPECT_EQ(plan.total_tokens(), budget);  // saturated when work is abundant
  }
}

TEST(Sarathi, ChunksSplitAcrossRequestsFcfs) {
  SarathiScheduler sched({2048});
  auto ctx = make_ctx({{1, 1000, 0, 0.0, false}, {2, 2000, 0, 0.0, false}}, {});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].seq, 1);
  EXPECT_EQ(plan.items[0].n_tokens, 1000);
  EXPECT_TRUE(plan.items[0].last_prefill_chunk);
  EXPECT_EQ(plan.items[1].seq, 2);
  EXPECT_EQ(plan.items[1].n_tokens, 1048);
  EXPECT_FALSE(plan.items[1].last_prefill_chunk);
}

TEST(Sarathi, LastChunkFlagWhenExactFit) {
  SarathiScheduler sched({2048});
  auto ctx = make_ctx({{1, 2048, 0, 0.0, false}}, {});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_TRUE(plan.items[0].last_prefill_chunk);
}

TEST(Sarathi, KvBudgetLimitsPrefill) {
  SarathiScheduler sched({2048});
  auto ctx = make_ctx({{1, 2000, 0, 0.0, false}}, {{10, 50}}, /*kv_free_tokens=*/101);
  const auto plan = sched.plan(ctx);
  // 1 decode consumes 1 KV token; prefill gets the remaining 100.
  EXPECT_EQ(plan.decode_tokens(), 1);
  EXPECT_EQ(plan.prefill_tokens(), 100);
}

TEST(Sarathi, NoKvBudgetMeansNoPrefill) {
  SarathiScheduler sched({2048});
  auto ctx = make_ctx({{1, 2000, 0, 0.0, false}}, {}, /*kv_free_tokens=*/0);
  EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST(Sarathi, ChunkInFlightSkippedWithoutCpp) {
  SarathiScheduler sched({2048});
  auto ctx = make_ctx({{1, 500, 100, 0.0, /*in_flight=*/true},
                       {2, 300, 0, 0.0, false}},
                      {});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].seq, 2);
}

TEST(Sarathi, ChunkPipeliningAllowsInFlightSeqs) {
  SarathiParams params;
  params.chunk_pipelining = true;
  SarathiScheduler sched(params);
  auto ctx = make_ctx({{1, 500, 100, 0.0, /*in_flight=*/true}}, {});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].seq, 1);
}

TEST(Sarathi, MaxBatchSeqsRespected) {
  SarathiParams params;
  params.token_budget = 2048;
  params.max_batch_seqs = 8;
  SarathiScheduler sched(params);
  std::vector<DecodeSeq> decodes;
  for (int i = 0; i < 20; ++i) decodes.push_back({i, 10});
  auto ctx = make_ctx({}, std::move(decodes));
  EXPECT_EQ(sched.plan(ctx).items.size(), 8u);
}

TEST(Sarathi, EmptyContextEmptyPlan) {
  SarathiScheduler sched;
  auto ctx = make_ctx({}, {});
  EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST(Sarathi, DecodeOnlyWhenNoWaiting) {
  SarathiScheduler sched;
  auto ctx = make_ctx({}, {{5, 123}});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].phase, Phase::kDecode);
  EXPECT_EQ(plan.items[0].context, 123);
}

TEST(Sarathi, InvalidParamsThrow) {
  EXPECT_THROW(SarathiScheduler(SarathiParams{0}), std::invalid_argument);
  SarathiParams p;
  p.max_batch_seqs = 0;
  EXPECT_THROW(SarathiScheduler{p}, std::invalid_argument);
}

// Property sweep: token volatility of Sarathi plans across a mixed horizon.
class SarathiBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(SarathiBudgetSweep, PlanIsAlwaysWithinBudgetAndKv) {
  const int budget = GetParam();
  SarathiScheduler sched({budget});
  for (int kv : {0, 5, 100, 5000}) {
    auto ctx = make_ctx({{1, 700, 0, 0.0, false}, {2, 50, 0, 0.0, false}},
                        {{10, 10}, {11, 20}, {12, 30}}, kv);
    const auto plan = sched.plan(ctx);
    EXPECT_LE(plan.total_tokens(), budget);
    EXPECT_LE(plan.prefill_tokens() + plan.decode_tokens() - 3, kv);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SarathiBudgetSweep,
                         ::testing::Values(16, 64, 256, 512, 1024, 2048, 4096));

}  // namespace
}  // namespace gllm::sched
