#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace gllm::tensor {
namespace {

TEST(Tensor, ShapeAndZeroInit) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, TwoDimAccess) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.at(1, 2), 5.0f);
  EXPECT_EQ(t.at(5), 5.0f);  // flat index
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 3), std::out_of_range);
}

TEST(Tensor, RowSpanIsView) {
  Tensor t({2, 4});
  auto r = t.row(1);
  r[0] = 9.0f;
  EXPECT_EQ(t.at(1, 0), 9.0f);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_THROW(t.row(2), std::out_of_range);
}

TEST(Tensor, ReshapePreservesCount) {
  Tensor t({2, 6});
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, FillAndNegativeDimRejected) {
  Tensor t({4});
  t.fill(2.5f);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5f);
  EXPECT_THROW(Tensor({-1, 2}), std::invalid_argument);
}

TEST(MatmulNt, MatchesNaive) {
  util::Rng rng(1);
  const std::int64_t m = 7, k = 13, n = 5;
  Tensor x({m, k}), w({n, k}), y({m, n}), ref({m, n});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (float& v : w.flat()) v = static_cast<float>(rng.normal());
  matmul_nt(x, w, y);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += x.at(i, kk) * w.at(j, kk);
      ref.at(i, j) = acc;
    }
  }
  for (std::int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(y.at(i), ref.at(i), 1e-5f);
}

TEST(MatmulNt, LargeShapeParallelConsistency) {
  util::Rng rng(2);
  Tensor x({64, 96}), w({128, 96}), a({64, 128}), b({64, 128});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (float& v : w.flat()) v = static_cast<float>(rng.normal());
  matmul_nt(x, w, a);
  matmul_nt(x, w, b);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(MatmulNt, ShapeMismatchThrows) {
  Tensor x({2, 3}), w({4, 5}), y({2, 4});
  EXPECT_THROW(matmul_nt(x, w, y), std::invalid_argument);
}

TEST(RmsNorm, KnownValue) {
  const std::vector<float> x{3.0f, 4.0f};  // mean square = 12.5
  const std::vector<float> gamma{1.0f, 2.0f};
  std::vector<float> out(2);
  rmsnorm_row(x, gamma, 0.0f, out);
  const float inv = 1.0f / std::sqrt(12.5f);
  EXPECT_NEAR(out[0], 3.0f * inv, 1e-6f);
  EXPECT_NEAR(out[1], 8.0f * inv, 1e-6f);
}

TEST(RmsNorm, EpsStabilisesZeroInput) {
  const std::vector<float> x{0.0f, 0.0f};
  const std::vector<float> gamma{1.0f, 1.0f};
  std::vector<float> out(2);
  rmsnorm_row(x, gamma, 1e-5f, out);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_FALSE(std::isnan(out[0]));
}

TEST(Softmax, SumsToOne) {
  std::vector<float> row{1.0f, 2.0f, 3.0f, 4.0f};
  softmax_inplace(row);
  float sum = 0;
  for (float v : row) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(row[3], row[0]);
}

TEST(Softmax, StableForLargeLogits) {
  std::vector<float> row{1000.0f, 1001.0f};
  softmax_inplace(row);
  EXPECT_FALSE(std::isnan(row[0]));
  EXPECT_NEAR(row[0] + row[1], 1.0f, 1e-6f);
}

TEST(Swiglu, KnownValue) {
  const std::vector<float> gate{0.0f, 1.0f};
  const std::vector<float> up{2.0f, 3.0f};
  std::vector<float> out(2);
  swiglu_row(gate, up, out);
  EXPECT_NEAR(out[0], 0.0f, 1e-7f);                                // silu(0)=0
  EXPECT_NEAR(out[1], 3.0f / (1.0f + std::exp(-1.0f)), 1e-6f);     // silu(1)*3
}

TEST(Rope, PositionZeroIsIdentity) {
  std::vector<float> qk{1.0f, 2.0f, 3.0f, 4.0f};
  const auto orig = qk;
  rope_row(qk, 1, 4, 0);
  for (std::size_t i = 0; i < qk.size(); ++i) EXPECT_NEAR(qk[i], orig[i], 1e-6f);
}

TEST(Rope, PreservesNormPerPair) {
  std::vector<float> qk{1.0f, 2.0f, 3.0f, 4.0f};
  rope_row(qk, 1, 4, 17);
  // Pairs (0,2) and (1,3) are rotations: norms preserved.
  EXPECT_NEAR(qk[0] * qk[0] + qk[2] * qk[2], 1 + 9, 1e-4f);
  EXPECT_NEAR(qk[1] * qk[1] + qk[3] * qk[3], 4 + 16, 1e-4f);
}

TEST(Rope, DifferentPositionsDiffer) {
  std::vector<float> a{1.0f, 2.0f, 3.0f, 4.0f};
  auto b = a;
  rope_row(a, 1, 4, 1);
  rope_row(b, 1, 4, 2);
  EXPECT_NE(a[0], b[0]);
}

TEST(Rope, OddHeadDimRejected) {
  std::vector<float> qk{1.0f, 2.0f, 3.0f};
  EXPECT_THROW(rope_row(qk, 1, 3, 0), std::invalid_argument);
}

TEST(AddInplace, Accumulates) {
  std::vector<float> out{1.0f, 2.0f};
  const std::vector<float> a{0.5f, -1.0f};
  add_inplace(out, a);
  EXPECT_EQ(out[0], 1.5f);
  EXPECT_EQ(out[1], 1.0f);
  const std::vector<float> bad{1.0f};
  EXPECT_THROW(add_inplace(out, bad), std::invalid_argument);
}

TEST(Argmax, FirstOnTies) {
  const std::vector<float> row{1.0f, 3.0f, 3.0f, 2.0f};
  EXPECT_EQ(argmax(row), 1);
  EXPECT_THROW(argmax(std::vector<float>{}), std::invalid_argument);
}

}  // namespace
}  // namespace gllm::tensor
