#include "nn/stage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "model/partition.hpp"
#include "nn/reference.hpp"
#include "tensor/ops.hpp"

namespace gllm::nn {
namespace {

constexpr std::uint64_t kSeed = 77;
constexpr int kBs = 4;  // kv block size

model::StageShape full_shape(const model::ModelConfig& cfg) {
  return model::StageShape{0, cfg.n_layers, true, true};
}

std::vector<kv::BlockId> identity_blocks(int n) {
  std::vector<kv::BlockId> b(static_cast<std::size_t>(n));
  std::iota(b.begin(), b.end(), 0);
  return b;
}

TEST(StageWeights, DeterministicAcrossInstances) {
  const auto cfg = model::presets::tiny();
  TransformerStage a(cfg, full_shape(cfg), kSeed, 8, kBs);
  TransformerStage b(cfg, full_shape(cfg), kSeed, 8, kBs);
  const auto prompt = synthetic_prompt(cfg, 1, 8);
  auto ha = a.embed(prompt);
  auto hb = b.embed(prompt);
  for (std::int64_t i = 0; i < ha.numel(); ++i) EXPECT_EQ(ha.at(i), hb.at(i));
}

TEST(StageWeights, PartitionedStagesMatchFullModelLayers) {
  // Forward through the full model must equal forward through stage0 then
  // stage1 of a 2-way partition (same seed => same layer weights).
  const auto cfg = model::presets::tiny();
  const model::PartitionPlan plan(cfg, 2);
  TransformerStage full(cfg, full_shape(cfg), kSeed, 16, kBs);
  TransformerStage s0(cfg, plan.stage(0), kSeed, 16, kBs);
  TransformerStage s1(cfg, plan.stage(1), kSeed, 16, kBs);

  const auto prompt = synthetic_prompt(cfg, 2, 10);
  ItemView item;
  item.context = 0;
  item.n_tokens = static_cast<int>(prompt.size());
  item.blocks = identity_blocks(16);
  item.wants_logits = true;

  auto h_full = full.embed(prompt);
  full.forward(h_full, {&item, 1});
  auto l_full = full.logits(h_full, {&item, 1});

  auto h_split = s0.embed(prompt);
  s0.forward(h_split, {&item, 1});
  s1.forward(h_split, {&item, 1});
  auto l_split = s1.logits(h_split, {&item, 1});

  ASSERT_EQ(l_full.numel(), l_split.numel());
  for (std::int64_t i = 0; i < l_full.numel(); ++i)
    EXPECT_EQ(l_full.at(i), l_split.at(i)) << "logit " << i;
}

TEST(StageForward, ChunkedPrefillBitExactVsFull) {
  const auto cfg = model::presets::tiny();
  TransformerStage whole(cfg, full_shape(cfg), kSeed, 16, kBs);
  TransformerStage chunked(cfg, full_shape(cfg), kSeed, 16, kBs);

  const auto prompt = synthetic_prompt(cfg, 3, 12);

  // Whole prompt in one pass.
  ItemView all;
  all.context = 0;
  all.n_tokens = 12;
  all.blocks = identity_blocks(16);
  all.wants_logits = true;
  auto h = whole.embed(prompt);
  whole.forward(h, {&all, 1});
  auto logits_all = whole.logits(h, {&all, 1});

  // Same prompt in chunks of 5 + 7.
  ItemView c1;
  c1.context = 0;
  c1.n_tokens = 5;
  c1.blocks = identity_blocks(16);
  auto h1 = chunked.embed({prompt.data(), 5});
  chunked.forward(h1, {&c1, 1});

  ItemView c2;
  c2.context = 5;
  c2.n_tokens = 7;
  c2.blocks = identity_blocks(16);
  c2.wants_logits = true;
  auto h2 = chunked.embed({prompt.data() + 5, 7});
  chunked.forward(h2, {&c2, 1});
  auto logits_chunked = chunked.logits(h2, {&c2, 1});

  for (std::int64_t i = 0; i < logits_all.numel(); ++i)
    EXPECT_EQ(logits_all.at(i), logits_chunked.at(i));
}

TEST(StageForward, PagedLayoutIndependence) {
  // The same logical sequence stored in different physical blocks must give
  // identical outputs: attention reads through the page table only.
  const auto cfg = model::presets::tiny();
  TransformerStage a(cfg, full_shape(cfg), kSeed, 16, kBs);
  TransformerStage b(cfg, full_shape(cfg), kSeed, 16, kBs);

  const auto prompt = synthetic_prompt(cfg, 4, 9);

  ItemView ia;
  ia.context = 0;
  ia.n_tokens = 9;
  ia.blocks = {0, 1, 2};
  ia.wants_logits = true;
  auto ha = a.embed(prompt);
  a.forward(ha, {&ia, 1});
  auto la = a.logits(ha, {&ia, 1});

  ItemView ib;
  ib.context = 0;
  ib.n_tokens = 9;
  ib.blocks = {13, 2, 7};  // scrambled physical placement
  ib.wants_logits = true;
  auto hb = b.embed(prompt);
  b.forward(hb, {&ib, 1});
  auto lb = b.logits(hb, {&ib, 1});

  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la.at(i), lb.at(i));
}

TEST(StageForward, BatchCompositionInvariance) {
  // A sequence's logits must not depend on which other items share its batch.
  const auto cfg = model::presets::tiny();
  TransformerStage solo(cfg, full_shape(cfg), kSeed, 32, kBs);
  TransformerStage batched(cfg, full_shape(cfg), kSeed, 32, kBs);

  const auto p1 = synthetic_prompt(cfg, 5, 8);
  const auto p2 = synthetic_prompt(cfg, 6, 6);

  ItemView i1;
  i1.context = 0;
  i1.n_tokens = 8;
  i1.blocks = {0, 1};
  i1.wants_logits = true;

  auto h1 = solo.embed(p1);
  solo.forward(h1, {&i1, 1});
  auto l1 = solo.logits(h1, {&i1, 1});

  // Batched: p1 and p2 together (p2 uses different blocks).
  std::vector<ItemView> items(2);
  items[0] = i1;
  items[1].context = 0;
  items[1].n_tokens = 6;
  items[1].blocks = {4, 5};
  items[1].wants_logits = true;

  std::vector<TokenId> both = p1;
  both.insert(both.end(), p2.begin(), p2.end());
  auto hb = batched.embed(both);
  batched.forward(hb, items);
  auto lb = batched.logits(hb, items);  // row 0 is p1's

  for (std::int64_t j = 0; j < cfg.vocab; ++j) EXPECT_EQ(l1.at(0, j), lb.at(0, j));
}

TEST(StageForward, GqaHeadsShareKv) {
  // Sanity: config with n_heads != n_kv_heads runs and produces finite output.
  auto cfg = model::presets::tiny();
  ASSERT_NE(cfg.n_heads, cfg.n_kv_heads);
  TransformerStage stage(cfg, full_shape(cfg), kSeed, 8, kBs);
  const auto prompt = synthetic_prompt(cfg, 7, 5);
  ItemView item;
  item.context = 0;
  item.n_tokens = 5;
  item.blocks = identity_blocks(8);
  item.wants_logits = true;
  auto h = stage.embed(prompt);
  stage.forward(h, {&item, 1});
  for (float v : h.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(StageApi, EmbedRejectsBadTokens) {
  const auto cfg = model::presets::tiny();
  TransformerStage stage(cfg, full_shape(cfg), kSeed, 8, kBs);
  const TokenId bad = static_cast<TokenId>(cfg.vocab);
  EXPECT_THROW(stage.embed({&bad, 1}), std::out_of_range);
}

TEST(StageApi, WrongStageRoleRejected) {
  const auto cfg = model::presets::tiny();
  const model::PartitionPlan plan(cfg, 2);
  TransformerStage s0(cfg, plan.stage(0), kSeed, 8, kBs);  // embedding, no head
  TransformerStage s1(cfg, plan.stage(1), kSeed, 8, kBs);  // head, no embedding
  tensor::Tensor h({1, cfg.hidden});
  ItemView item;
  item.n_tokens = 1;
  item.wants_logits = true;
  item.blocks = {0};
  EXPECT_THROW(s0.logits(h, {&item, 1}), std::logic_error);
  EXPECT_THROW(s1.embed(std::vector<TokenId>{1}), std::logic_error);
}

TEST(StageApi, ForwardValidatesRowCount) {
  const auto cfg = model::presets::tiny();
  TransformerStage stage(cfg, full_shape(cfg), kSeed, 8, kBs);
  tensor::Tensor h({3, cfg.hidden});
  ItemView item;
  item.n_tokens = 5;  // mismatch
  item.blocks = identity_blocks(8);
  EXPECT_THROW(stage.forward(h, {&item, 1}), std::invalid_argument);
}

TEST(TensorParallel, ShardedForwardBitExactVsUnsharded) {
  // The tentpole invariant: tp in {1, 2, 4} must produce logits bitwise
  // identical to the unsharded stage (canonical chunked reduction order).
  const auto cfg = model::presets::tiny();
  TransformerStage ref(cfg, full_shape(cfg), kSeed, 16, kBs);
  const auto prompt = synthetic_prompt(cfg, 8, 11);

  ItemView item;
  item.context = 0;
  item.n_tokens = static_cast<int>(prompt.size());
  item.blocks = identity_blocks(16);
  item.wants_logits = true;

  auto h_ref = ref.embed(prompt);
  ref.forward(h_ref, {&item, 1});
  const auto l_ref = ref.logits(h_ref, {&item, 1});

  for (int tp : {1, 2, 4}) {
    TransformerStage sharded(cfg, full_shape(cfg), kSeed, 16, kBs, tp);
    EXPECT_EQ(sharded.tp(), tp);
    auto h = sharded.embed(prompt);
    sharded.forward(h, {&item, 1});
    const auto l = sharded.logits(h, {&item, 1});
    ASSERT_EQ(l.numel(), l_ref.numel());
    for (std::int64_t i = 0; i < l_ref.numel(); ++i)
      ASSERT_EQ(l_ref.at(i), l.at(i)) << "tp=" << tp << " logit " << i;
  }
}

TEST(TensorParallel, ShardedDecodeBitExactVsUnsharded) {
  // Greedy multi-step decode: cache state written by sharded attention must
  // round-trip identically (per-shard KV pools hold disjoint head slices).
  const auto cfg = model::presets::tiny();
  const auto prompt = synthetic_prompt(cfg, 9, 7);
  constexpr int kSteps = 6;

  auto run = [&](int tp) {
    TransformerStage stage(cfg, full_shape(cfg), kSeed, 32, kBs, tp);
    std::vector<TokenId> tokens = prompt;
    std::vector<TokenId> out;
    ItemView item;
    item.blocks = identity_blocks(32);
    item.wants_logits = true;
    item.context = 0;
    item.n_tokens = static_cast<int>(prompt.size());
    auto h = stage.embed(tokens);
    stage.forward(h, {&item, 1});
    auto l = stage.logits(h, {&item, 1});
    for (int s = 0; s < kSteps; ++s) {
      const auto next = static_cast<TokenId>(tensor::argmax(l.row(0)));
      out.push_back(next);
      item.context += item.n_tokens;
      item.n_tokens = 1;
      auto h1 = stage.embed({&next, 1});
      stage.forward(h1, {&item, 1});
      l = stage.logits(h1, {&item, 1});
    }
    return out;
  };

  const auto ref = run(1);
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(4), ref);
}

TEST(TensorParallel, ShardKvPoolsHoldOnlyOwnHeads) {
  const auto cfg = model::presets::tiny();
  TransformerStage stage(cfg, full_shape(cfg), kSeed, 8, kBs, 2);
  EXPECT_EQ(stage.kv_pool(0).kv_dim(), cfg.n_kv_heads / 2 * cfg.head_dim);
  EXPECT_EQ(stage.kv_pool(1).kv_dim(), cfg.n_kv_heads / 2 * cfg.head_dim);
}

TEST(TensorParallel, AllreduceCountersAdvance) {
  const auto cfg = model::presets::tiny();
  TransformerStage stage(cfg, full_shape(cfg), kSeed, 8, kBs, 2);
  EXPECT_EQ(stage.allreduce_ops(), 0);
  const auto prompt = synthetic_prompt(cfg, 10, 4);
  ItemView item;
  item.context = 0;
  item.n_tokens = 4;
  item.blocks = identity_blocks(8);
  auto h = stage.embed(prompt);
  stage.forward(h, {&item, 1});
  // Two reduce calls (attention output + MLP down) per layer.
  EXPECT_EQ(stage.allreduce_ops(), 2 * cfg.n_layers);
  EXPECT_GT(stage.allreduce_bytes(), 0);
}

TEST(TensorParallel, InvalidTpRejected) {
  const auto cfg = model::presets::tiny();
  // tiny() has n_kv_heads = 4: tp = 3 breaks head divisibility, tp = 8
  // breaks GQA groups.
  EXPECT_THROW(TransformerStage(cfg, full_shape(cfg), kSeed, 8, kBs, 3),
               std::invalid_argument);
  EXPECT_THROW(TransformerStage(cfg, full_shape(cfg), kSeed, 8, kBs, 8),
               std::invalid_argument);
  EXPECT_THROW(TransformerStage(cfg, full_shape(cfg), kSeed, 8, kBs, 0),
               std::invalid_argument);
}

TEST(KvPoolGeometry, SlotAddressingAndBounds) {
  const auto cfg = model::presets::tiny();
  KvPool pool(cfg, 2, 3, 4, kBs);  // layers 2..4
  EXPECT_EQ(pool.kv_dim(), cfg.n_kv_heads * cfg.head_dim);
  auto slot = pool.k_slot(2, 0, 0);
  EXPECT_EQ(slot.size(), static_cast<std::size_t>(pool.kv_dim()));
  slot[0] = 1.5f;
  EXPECT_EQ(pool.k_slot(2, 0, 0)[0], 1.5f);
  EXPECT_EQ(pool.v_slot(2, 0, 0)[0], 0.0f);  // distinct storage
  EXPECT_THROW(pool.k_slot(1, 0, 0), std::out_of_range);  // below range
  EXPECT_THROW(pool.k_slot(5, 0, 0), std::out_of_range);  // above range
  EXPECT_THROW(pool.k_slot(2, 4, 0), std::out_of_range);  // bad block
  EXPECT_THROW(pool.k_slot(2, 0, kBs), std::out_of_range);  // bad slot
}

}  // namespace
}  // namespace gllm::nn
