// Property tests for the incremental HTTP/1.1 request parser: the parse is a
// pure function of the accumulated byte prefix, so its result must be
// invariant under how the bytes were chunked — 1-byte drip, random splits and
// all-at-once must agree exactly, including the error and consumed count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/http_parser.hpp"
#include "util/rng.hpp"

namespace gllm::server {
namespace {

struct ParseOutcome {
  ParseStatus status = ParseStatus::kNeedMore;
  ParseError error = ParseError::kNone;
  std::size_t consumed = 0;
  HttpRequest request;

  bool operator==(const ParseOutcome& o) const {
    return status == o.status && error == o.error && consumed == o.consumed &&
           request.method == o.request.method && request.target == o.request.target &&
           request.version == o.request.version && request.body == o.request.body &&
           request.keep_alive == o.request.keep_alive &&
           request.headers == o.request.headers;
  }
};

ParseOutcome parse_all(const std::string& input, const HttpLimits& limits = {}) {
  ParseOutcome out;
  out.status = parse_http_request(input, limits, out.request, out.consumed, out.error);
  return out;
}

/// Feed `input` in the given chunk sizes, re-parsing the accumulated prefix
/// after each chunk (the server's incremental loop). Returns the outcome at
/// the first non-kNeedMore result, or the final kNeedMore.
ParseOutcome parse_chunked(const std::string& input, const std::vector<std::size_t>& cuts,
                           const HttpLimits& limits = {}) {
  std::string buffer;
  std::size_t pos = 0;
  ParseOutcome out;
  for (const std::size_t len : cuts) {
    buffer.append(input, pos, len);
    pos += len;
    out = parse_all(buffer, limits);
    if (out.status != ParseStatus::kNeedMore) return out;
  }
  return out;
}

std::vector<std::size_t> one_byte_cuts(std::size_t n) {
  return std::vector<std::size_t>(n, 1);
}

std::vector<std::size_t> random_cuts(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> cuts;
  std::size_t left = n;
  while (left > 0) {
    const auto take = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(left)));
    cuts.push_back(take);
    left -= take;
  }
  return cuts;
}

const std::string kSimpleGet = "GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
const std::string kPost =
    "POST /v1/completions HTTP/1.1\r\nHost: a.b\r\nContent-Length: 11\r\n"
    "X-Trace: 42\r\n\r\nhello world";

TEST(HttpParser, ParsesSimpleGet) {
  const auto out = parse_all(kSimpleGet);
  ASSERT_EQ(out.status, ParseStatus::kComplete);
  EXPECT_EQ(out.consumed, kSimpleGet.size());
  EXPECT_EQ(out.request.method, "GET");
  EXPECT_EQ(out.request.target, "/health");
  EXPECT_EQ(out.request.version, "HTTP/1.1");
  EXPECT_TRUE(out.request.keep_alive);
  EXPECT_TRUE(out.request.body.empty());
}

TEST(HttpParser, ParsesPostWithBody) {
  const auto out = parse_all(kPost);
  ASSERT_EQ(out.status, ParseStatus::kComplete);
  EXPECT_EQ(out.consumed, kPost.size());
  EXPECT_EQ(out.request.body, "hello world");
  ASSERT_NE(out.request.header("content-length"), nullptr);
  EXPECT_EQ(*out.request.header("content-length"), "11");
}

// --- chunking invariance -----------------------------------------------------

TEST(HttpParser, OneByteDripMatchesAllAtOnce) {
  for (const auto& input : {kSimpleGet, kPost}) {
    const auto whole = parse_all(input);
    const auto dripped = parse_chunked(input, one_byte_cuts(input.size()));
    EXPECT_TRUE(whole == dripped) << input;
  }
}

TEST(HttpParser, RandomSplitsMatchAllAtOnce) {
  util::Rng rng(7);
  for (int round = 0; round < 500; ++round) {
    const std::string& input = (round % 2 == 0) ? kPost : kSimpleGet;
    const auto whole = parse_all(input);
    const auto split = parse_chunked(input, random_cuts(input.size(), rng));
    ASSERT_TRUE(whole == split) << "round " << round;
  }
}

TEST(HttpParser, ErrorsAreChunkingInvariantToo) {
  const std::string bad = "GET  /two-spaces HTTP/1.1\r\nHost: x\r\n\r\n";
  const auto whole = parse_all(bad);
  ASSERT_EQ(whole.status, ParseStatus::kError);
  util::Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    const auto split = parse_chunked(bad, random_cuts(bad.size(), rng));
    ASSERT_EQ(split.status, ParseStatus::kError) << "round " << round;
    ASSERT_EQ(split.error, whole.error) << "round " << round;
  }
}

// --- header semantics --------------------------------------------------------

TEST(HttpParser, HeaderLookupIsCaseInsensitive) {
  const std::string req =
      "GET / HTTP/1.1\r\nhOsT: example\r\nX-MiXeD-CaSe: v\r\n\r\n";
  const auto out = parse_all(req);
  ASSERT_EQ(out.status, ParseStatus::kComplete);
  for (const char* spelling : {"Host", "host", "HOST", "hOsT"}) {
    ASSERT_NE(out.request.header(spelling), nullptr) << spelling;
    EXPECT_EQ(*out.request.header(spelling), "example");
  }
  ASSERT_NE(out.request.header("x-mixed-case"), nullptr);
  EXPECT_EQ(*out.request.header("X-MIXED-CASE"), "v");
  // Wire spelling is preserved in the headers vector.
  EXPECT_EQ(out.request.headers[0].first, "hOsT");
}

TEST(HttpParser, HeaderValuesAreOwsTrimmed) {
  const auto out = parse_all("GET / HTTP/1.1\r\nX-Pad: \t padded \t \r\n\r\n");
  ASSERT_EQ(out.status, ParseStatus::kComplete);
  EXPECT_EQ(*out.request.header("x-pad"), "padded");
}

TEST(HttpParser, ConnectionHeaderControlsKeepAlive) {
  EXPECT_TRUE(parse_all("GET / HTTP/1.1\r\n\r\n").request.keep_alive);
  EXPECT_FALSE(
      parse_all("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").request.keep_alive);
  EXPECT_FALSE(parse_all("GET / HTTP/1.0\r\n\r\n").request.keep_alive);
  EXPECT_TRUE(
      parse_all("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").request.keep_alive);
}

// --- pipelining --------------------------------------------------------------

TEST(HttpParser, PipelinedSecondRequestPreservedAcrossFirst) {
  const std::string two = kPost + kSimpleGet;
  auto first = parse_all(two);
  ASSERT_EQ(first.status, ParseStatus::kComplete);
  ASSERT_EQ(first.consumed, kPost.size());
  EXPECT_EQ(first.request.method, "POST");

  const std::string rest = two.substr(first.consumed);
  const auto second = parse_all(rest);
  ASSERT_EQ(second.status, ParseStatus::kComplete);
  EXPECT_EQ(second.request.method, "GET");
  EXPECT_EQ(second.request.target, "/health");
  EXPECT_EQ(second.consumed, rest.size());
}

TEST(HttpParser, PipelinedPairChunkingInvariant) {
  const std::string two = kSimpleGet + kPost;
  util::Rng rng(23);
  for (int round = 0; round < 200; ++round) {
    // Drip the concatenation; collect both requests as the server would.
    std::string buffer;
    std::size_t pos = 0;
    std::vector<HttpRequest> got;
    for (const std::size_t len : random_cuts(two.size(), rng)) {
      buffer.append(two, pos, len);
      pos += len;
      for (;;) {
        HttpRequest req;
        std::size_t consumed = 0;
        ParseError error = ParseError::kNone;
        if (parse_http_request(buffer, {}, req, consumed, error) !=
            ParseStatus::kComplete)
          break;
        buffer.erase(0, consumed);
        got.push_back(std::move(req));
      }
    }
    ASSERT_EQ(got.size(), 2u) << "round " << round;
    EXPECT_EQ(got[0].method, "GET");
    EXPECT_EQ(got[1].method, "POST");
    EXPECT_EQ(got[1].body, "hello world");
  }
}

// --- limits ------------------------------------------------------------------

TEST(HttpParser, OversizedHeaderBlockIs431BeforeCompletion) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  // No terminator in sight and already past the budget: reject immediately.
  const std::string big = "GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'a');
  const auto out = parse_all(big, limits);
  ASSERT_EQ(out.status, ParseStatus::kError);
  EXPECT_EQ(out.error, ParseError::kHeadersTooLarge);
  EXPECT_EQ(http_status(out.error), 431);
}

TEST(HttpParser, TooManyHeadersIs431) {
  HttpLimits limits;
  limits.max_headers = 4;
  std::string req = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) req += "X-H" + std::to_string(i) + ": v\r\n";
  req += "\r\n";
  const auto out = parse_all(req, limits);
  ASSERT_EQ(out.status, ParseStatus::kError);
  EXPECT_EQ(out.error, ParseError::kTooManyHeaders);
  EXPECT_EQ(http_status(out.error), 431);
}

TEST(HttpParser, OversizedContentLengthIs413BeforeBodyArrives) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  // Headers complete, declared body over budget, zero body bytes sent yet:
  // the parser must reject from the declaration alone.
  const std::string head =
      "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
  const auto out = parse_all(head, limits);
  ASSERT_EQ(out.status, ParseStatus::kError);
  EXPECT_EQ(out.error, ParseError::kBodyTooLarge);
  EXPECT_EQ(http_status(out.error), 413);
}

TEST(HttpParser, ContentLengthValidation) {
  EXPECT_EQ(parse_all("POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n").error,
            ParseError::kBadRequest);
  EXPECT_EQ(parse_all("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n").error,
            ParseError::kBadRequest);
  EXPECT_EQ(parse_all("POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n").error,
            ParseError::kBadRequest);
  // Conflicting duplicates are a 400 (request smuggling guard).
  EXPECT_EQ(parse_all("POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                      "Content-Length: 4\r\n\r\nabc")
                .error,
            ParseError::kBadRequest);
  // Agreeing duplicates are tolerated.
  const auto ok = parse_all(
      "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc");
  EXPECT_EQ(ok.status, ParseStatus::kComplete);
  EXPECT_EQ(ok.request.body, "abc");
}

TEST(HttpParser, RejectsMalformedSyntax) {
  EXPECT_EQ(parse_all("GET\r\n\r\n").error, ParseError::kBadRequest);
  EXPECT_EQ(parse_all("GET / HTTP/2.0\r\n\r\n").error, ParseError::kBadVersion);
  EXPECT_EQ(http_status(ParseError::kBadVersion), 505);
  EXPECT_EQ(parse_all("GET / FTP/1.1\r\n\r\n").error, ParseError::kBadRequest);
  EXPECT_EQ(parse_all("G@T / HTTP/1.1\r\n\r\n").error, ParseError::kBadRequest);
  EXPECT_EQ(parse_all("GET /a b HTTP/1.1\r\n\r\n").error, ParseError::kBadRequest);
  // Bare LF line endings are not accepted.
  EXPECT_EQ(parse_all("GET / HTTP/1.1\nHost: x\n\n").status, ParseStatus::kError);
  // obs-fold (leading whitespace continuation) is rejected.
  EXPECT_EQ(parse_all("GET / HTTP/1.1\r\nX: a\r\n b\r\n\r\n").error,
            ParseError::kBadRequest);
  // Header name with spaces / empty name.
  EXPECT_EQ(parse_all("GET / HTTP/1.1\r\nBad Header: v\r\n\r\n").error,
            ParseError::kBadRequest);
  EXPECT_EQ(parse_all("GET / HTTP/1.1\r\n: v\r\n\r\n").error, ParseError::kBadRequest);
}

TEST(HttpParser, TransferEncodingUnsupported) {
  const auto out =
      parse_all("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(out.status, ParseStatus::kError);
  EXPECT_EQ(out.error, ParseError::kUnsupported);
  EXPECT_EQ(http_status(out.error), 501);
}

TEST(HttpParser, NeedMoreOnIncompletePrefixes) {
  // Every strict prefix of a valid request is kNeedMore, never an error.
  for (const auto& input : {kSimpleGet, kPost}) {
    for (std::size_t n = 0; n < input.size(); ++n) {
      const auto out = parse_all(input.substr(0, n));
      ASSERT_EQ(out.status, ParseStatus::kNeedMore) << "prefix " << n << " of " << input;
    }
  }
}

TEST(HttpParser, IequalsBasics) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_FALSE(iequals("x", "y"));
}

}  // namespace
}  // namespace gllm::server
