#include "kv/block_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gllm::kv {
namespace {

TEST(BlockAllocator, AllocateUntilExhausted) {
  BlockAllocator alloc(4, 16);
  std::set<BlockId> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = alloc.allocate();
    ASSERT_TRUE(id.has_value());
    ids.insert(*id);
  }
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(alloc.allocate(), std::nullopt);
  EXPECT_EQ(alloc.free_blocks(), 0);
  EXPECT_EQ(alloc.used_blocks(), 4);
}

TEST(BlockAllocator, ReleaseReturnsToPool) {
  BlockAllocator alloc(2, 16);
  const auto a = *alloc.allocate();
  *alloc.allocate();
  EXPECT_EQ(alloc.release(a), 0);
  EXPECT_EQ(alloc.free_blocks(), 1);
  EXPECT_TRUE(alloc.allocate().has_value());
}

TEST(BlockAllocator, RefCountingLifecycle) {
  BlockAllocator alloc(1, 16);
  const auto id = *alloc.allocate();
  EXPECT_EQ(alloc.ref_count(id), 1);
  alloc.add_ref(id);
  EXPECT_EQ(alloc.ref_count(id), 2);
  EXPECT_EQ(alloc.release(id), 1);
  EXPECT_EQ(alloc.free_blocks(), 0);  // still referenced
  EXPECT_EQ(alloc.release(id), 0);
  EXPECT_EQ(alloc.free_blocks(), 1);
}

TEST(BlockAllocator, OperationsOnFreeBlockThrow) {
  BlockAllocator alloc(2, 16);
  const auto id = *alloc.allocate();
  alloc.release(id);
  EXPECT_THROW(alloc.release(id), std::logic_error);
  EXPECT_THROW(alloc.add_ref(id), std::logic_error);
}

TEST(BlockAllocator, OutOfRangeThrows) {
  BlockAllocator alloc(2, 16);
  EXPECT_THROW(alloc.ref_count(-1), std::out_of_range);
  EXPECT_THROW(alloc.ref_count(2), std::out_of_range);
  EXPECT_THROW(alloc.release(5), std::out_of_range);
}

TEST(BlockAllocator, FreeFraction) {
  BlockAllocator alloc(4, 16);
  EXPECT_DOUBLE_EQ(alloc.free_fraction(), 1.0);
  *alloc.allocate();
  EXPECT_DOUBLE_EQ(alloc.free_fraction(), 0.75);
}

TEST(BlockAllocator, InvalidConstructionThrows) {
  EXPECT_THROW(BlockAllocator(-1, 16), std::invalid_argument);
  EXPECT_THROW(BlockAllocator(4, 0), std::invalid_argument);
}

TEST(BlockAllocator, EmptyPoolNeverAllocates) {
  BlockAllocator alloc(0, 16);
  EXPECT_EQ(alloc.allocate(), std::nullopt);
  EXPECT_DOUBLE_EQ(alloc.free_fraction(), 0.0);
}

TEST(BlockAllocator, BlockSizeAccessor) {
  BlockAllocator alloc(4, 32);
  EXPECT_EQ(alloc.block_size(), 32);
  EXPECT_EQ(alloc.total_blocks(), 4);
}

TEST(BlockAllocator, ReuseAfterFullCycle) {
  BlockAllocator alloc(8, 16);
  std::vector<BlockId> ids;
  for (int round = 0; round < 3; ++round) {
    ids.clear();
    for (int i = 0; i < 8; ++i) ids.push_back(*alloc.allocate());
    EXPECT_EQ(alloc.free_blocks(), 0);
    for (const auto id : ids) alloc.release(id);
    EXPECT_EQ(alloc.free_blocks(), 8);
  }
}

}  // namespace
}  // namespace gllm::kv
