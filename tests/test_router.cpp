#include "serve/router.hpp"
#include "serve/system.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "kv/prefix_cache.hpp"
#include "loadgen/loadgen.hpp"
#include "net/socket.hpp"
#include "obs/obs.hpp"
#include "router/router.hpp"
#include "router/stats.hpp"
#include "sched/token_throttle.hpp"
#include "server/http_server.hpp"
#include "workload/generator.hpp"

namespace gllm::serve {
namespace {

workload::Trace make_trace(std::size_t n = 64, std::uint64_t seed = 5) {
  workload::TraceBuilder builder(workload::WorkloadSpec::sharegpt(), seed);
  workload::ArrivalProcess arrivals;
  arrivals.rate = 4.0;
  return builder.generate_count(arrivals, n);
}

std::size_t total_requests(const std::vector<workload::Trace>& shards) {
  std::size_t n = 0;
  for (const auto& shard : shards) n += shard.size();
  return n;
}

TEST(RouteTrace, PartitionIsCompleteAndDisjoint) {
  const auto trace = make_trace(50);
  for (auto policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastWork, RoutePolicy::kRandom}) {
    const auto shards = route_trace(trace, 3, policy);
    EXPECT_EQ(total_requests(shards), trace.size());
    std::set<std::int64_t> ids;
    for (const auto& shard : shards) {
      for (const auto& r : shard) EXPECT_TRUE(ids.insert(r.id).second);
    }
  }
}

TEST(RouteTrace, RoundRobinEvenCounts) {
  const auto shards = route_trace(make_trace(60), 4, RoutePolicy::kRoundRobin);
  for (const auto& shard : shards) EXPECT_EQ(shard.size(), 15u);
}

TEST(RouteTrace, ArrivalOrderPreservedPerShard) {
  const auto shards = route_trace(make_trace(80), 3, RoutePolicy::kLeastWork);
  for (const auto& shard : shards) {
    for (std::size_t i = 1; i < shard.size(); ++i)
      EXPECT_GE(shard[i].arrival, shard[i - 1].arrival);
  }
}

TEST(RouteTrace, LeastWorkBalancesTokensOnSkewedTrace) {
  // A trace alternating huge and tiny requests: round-robin puts all the huge
  // ones on the same replicas; least-work spreads token mass.
  workload::Trace trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back(workload::RequestSpec{i, i * 0.1, i % 2 == 0 ? 4000 : 20, 10});
  }
  auto token_spread = [](const std::vector<workload::Trace>& shards) {
    double lo = 1e18, hi = 0;
    for (const auto& shard : shards) {
      double tokens = 0;
      for (const auto& r : shard) tokens += r.prompt_len + r.output_len;
      lo = std::min(lo, tokens);
      hi = std::max(hi, tokens);
    }
    return hi - lo;
  };
  const double rr = token_spread(route_trace(trace, 2, RoutePolicy::kRoundRobin));
  const double lw = token_spread(route_trace(trace, 2, RoutePolicy::kLeastWork,
                                             /*seed=*/17, /*service_rate=*/1.0));
  EXPECT_LT(lw, rr);
}

TEST(RouteTrace, RandomIsSeedDeterministic) {
  const auto trace = make_trace(40);
  const auto a = route_trace(trace, 3, RoutePolicy::kRandom, 9);
  const auto b = route_trace(trace, 3, RoutePolicy::kRandom, 9);
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(a[static_cast<std::size_t>(s)].size(), b[static_cast<std::size_t>(s)].size());
  const auto c = route_trace(trace, 3, RoutePolicy::kRandom, 10);
  bool differs = false;
  for (int s = 0; s < 3; ++s)
    differs |= a[static_cast<std::size_t>(s)].size() != c[static_cast<std::size_t>(s)].size();
  EXPECT_TRUE(differs);
}

TEST(RouteTrace, InvalidArgsThrow) {
  EXPECT_THROW(route_trace({}, 0, RoutePolicy::kRoundRobin), std::invalid_argument);
  EXPECT_THROW(route_trace({}, 2, RoutePolicy::kLeastWork, 1, 0.0), std::invalid_argument);
}

TEST(DataParallelSystem, FleetCompletesEverything) {
  DataParallelOptions options;
  options.replica = SystemOptions::gllm(model::presets::qwen2_5_14b(),
                                        hw::clusters::l20_node(1), /*pp=*/1);
  options.replicas = 4;
  DataParallelSystem fleet(options);
  const auto trace = make_trace(48);
  const auto result = fleet.run(trace);
  EXPECT_EQ(result.requests.size(), trace.size());
  EXPECT_EQ(result.completed_requests(), trace.size());
  EXPECT_EQ(result.stage_busy_seconds.size(), 4u);  // 4 replicas x pp1
  // Requests come back id-sorted regardless of sharding.
  for (std::size_t i = 1; i < result.requests.size(); ++i)
    EXPECT_LT(result.requests[i - 1].id, result.requests[i].id);
}

TEST(DataParallelSystem, InvalidReplicaRejectedEagerly) {
  DataParallelOptions options;
  // 32B does not fit one L20: the constructor must fail, not run().
  options.replica = SystemOptions::gllm(model::presets::qwen2_5_32b(),
                                        hw::clusters::l20_node(1), 1);
  options.replicas = 2;
  EXPECT_THROW(DataParallelSystem{options}, std::invalid_argument);
}

TEST(MergeResults, AggregatesAcrossReplicas) {
  engine::RunResult a, b;
  a.start_time = 1.0;
  a.end_time = 5.0;
  a.requests = {engine::RequestMetrics{2, 1, 10, 5, 0.1, 1.0, 0.05, 0, true}};
  a.stage_busy_seconds = {3.0};
  a.preemptions = 1;
  b.start_time = 0.5;
  b.end_time = 7.0;
  b.requests = {engine::RequestMetrics{1, 0.5, 20, 8, 0.2, 2.0, 0.06, 1, true}};
  b.stage_busy_seconds = {4.0};
  b.preemptions = 2;

  const auto merged = merge_results({a, b});
  EXPECT_DOUBLE_EQ(merged.start_time, 0.5);
  EXPECT_DOUBLE_EQ(merged.end_time, 7.0);
  EXPECT_EQ(merged.requests.size(), 2u);
  EXPECT_EQ(merged.requests[0].id, 1);  // id-sorted
  EXPECT_EQ(merged.stage_busy_seconds.size(), 2u);
  EXPECT_EQ(merged.preemptions, 3);
}

TEST(MergeResults, EmptyInput) {
  const auto merged = merge_results({});
  EXPECT_TRUE(merged.requests.empty());
  EXPECT_DOUBLE_EQ(merged.makespan(), 0.0);
}

TEST(DataParallel, DpVsPpTradeoffRuns) {
  // 4 single-GPU replicas vs one PP4 deployment of the same fleet: DP avoids
  // pipeline hops entirely, PP pools KV. Both must serve the trace; the
  // comparison itself is the abl_data_parallel bench's subject.
  const auto m = model::presets::qwen2_5_14b();
  const auto trace = make_trace(64);

  DataParallelOptions dp_options;
  dp_options.replica = SystemOptions::gllm(m, hw::clusters::l20_node(1), 1);
  dp_options.replicas = 4;
  DataParallelSystem dp(dp_options);
  const auto dp_result = dp.run(trace);

  ServingSystem pp(SystemOptions::gllm(m, hw::clusters::l20_node(4), 4));
  const auto pp_result = pp.run(trace);

  EXPECT_EQ(dp_result.completed_requests(), trace.size());
  EXPECT_EQ(pp_result.completed_requests(), trace.size());
  EXPECT_GT(dp_result.throughput(), 0.0);
  EXPECT_GT(pp_result.throughput(), 0.0);
}

}  // namespace
}  // namespace gllm::serve

// ---------------------------------------------------------------------------
// gllm::router — the online fleet front door (prefix-aware placement, shed
// escalation, mid-stream failover). Everything below runs real sockets over
// loopback; the replicas are in-process PipelineService + HttpServer pairs
// sharing a weight seed, so greedy token streams are comparable byte-for-byte.
// ---------------------------------------------------------------------------

namespace gllm::router {
namespace {

constexpr std::uint64_t kSeed = 1234;

runtime::RuntimeOptions tiny_options() {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = 2;
  opt.kv_capacity_tokens = 2048;
  opt.kv_block_size = 8;
  opt.weight_seed = kSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

std::string completion_body(std::int64_t id, const std::vector<nn::TokenId>& prompt,
                            int max_tokens, bool stream = false) {
  std::string body = "{\"id\":" + std::to_string(id) + ",\"prompt\":[";
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    if (i) body += ",";
    body += std::to_string(prompt[i]);
  }
  body += "],\"max_tokens\":" + std::to_string(max_tokens);
  if (stream) body += ",\"stream\":true";
  body += "}";
  return body;
}

std::string raw_completion_request(const std::string& body) {
  return "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

/// Send raw bytes, read the full response to EOF.
std::string raw_round_trip(int port, const std::string& raw, double timeout_s = 60.0) {
  const int fd = net::connect_tcp("127.0.0.1", port, 5.0);
  if (fd < 0) return {};
  if (!net::send_all(fd, raw.data(), raw.size())) {
    net::close_fd(fd);
    return {};
  }
  std::string in;
  char buf[8192];
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (elapsed >= timeout_s) break;
    if (!net::wait_readable(fd, timeout_s - elapsed)) break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
  }
  net::close_fd(fd);
  return in;
}

int count_token_events(const std::string& response) {
  int n = 0;
  for (std::size_t pos = 0;
       (pos = response.find("\"token\":", pos)) != std::string::npos; pos += 8)
    ++n;
  return n;
}

// --- prompt-prefix hash: the routing key shared with kv::PrefixCache --------

TEST(PrefixHash, ShorterThanOneBlockIsZero) {
  const std::vector<kv::TokenId> t{1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(kv::prompt_prefix_hash(t, 8), 0u);
  EXPECT_EQ(kv::prompt_prefix_hash(t, 0), 0u);
  EXPECT_EQ(kv::prompt_prefix_hash(std::vector<kv::TokenId>{}, 8), 0u);
}

TEST(PrefixHash, GoldenValuesAreProcessIndependent) {
  // Hard-coded expected values: the hash is a pure function of the token
  // values, so these must hold in every process on every host forever (the
  // router hashes in one process, the replica cache in another). If this
  // test breaks, the hash function changed — bump it knowingly.
  std::vector<kv::TokenId> t;
  for (kv::TokenId i = 1; i <= 16; ++i) t.push_back(i);
  EXPECT_EQ(kv::prompt_prefix_hash(std::span<const kv::TokenId>(t.data(), 8), 8),
            0x6489bd86fccf7badULL);
  EXPECT_EQ(kv::prompt_prefix_hash(t, 8), 0xc0d81e5d5b65d210ULL);
  const std::vector<kv::TokenId> sevens(8, 7);
  EXPECT_EQ(kv::prompt_prefix_hash(sevens, 4), 0xc24f4d612e61c200ULL);
}

TEST(PrefixHash, DependsOnlyOnWholeBlocks) {
  std::vector<kv::TokenId> t;
  for (kv::TokenId i = 0; i < 20; ++i) t.push_back(i * 3);
  const auto full = kv::prompt_prefix_hash(t, 8);
  const auto sixteen =
      kv::prompt_prefix_hash(std::span<const kv::TokenId>(t.data(), 16), 8);
  EXPECT_EQ(full, sixteen);  // tokens 16..19 are a partial block: ignored
  // A change inside the partial tail does not move the hash...
  auto mutated = t;
  mutated[19] = 999;
  EXPECT_EQ(kv::prompt_prefix_hash(mutated, 8), full);
  // ...a change inside a whole block does, even in the first block.
  mutated = t;
  mutated[0] = 999;
  EXPECT_NE(kv::prompt_prefix_hash(mutated, 8), full);
}

TEST(PrefixHash, ChainingIsOrderSensitive) {
  const std::vector<kv::TokenId> a{1, 2, 3, 4};
  const std::vector<kv::TokenId> b{5, 6, 7, 8};
  const auto ha = kv::chain_block_hash(0, a);
  const auto hb = kv::chain_block_hash(0, b);
  EXPECT_NE(ha, hb);
  EXPECT_NE(kv::chain_block_hash(ha, b), kv::chain_block_hash(hb, a));
}

// --- /v1/stats payload parsing: v1, v2 and future schemas -------------------

TEST(StatsJson, ParsesV2Payload) {
  ReplicaStats s;
  ASSERT_TRUE(parse_stats_json(
      "{\"schema_version\":2,\"model\":\"tiny\",\"pp\":2,\"tp\":1,"
      "\"kv_block_size\":8,\"waiting_prefill\":5,\"running_decodes\":3,"
      "\"prefix_cache_blocks\":17,\"restart_budget_remaining\":2}",
      s));
  EXPECT_EQ(s.schema_version, 2);
  EXPECT_EQ(s.model, "tiny");
  EXPECT_EQ(s.pp, 2);
  EXPECT_EQ(s.kv_block_size, 8);
  EXPECT_EQ(s.waiting_prefill, 5);
  EXPECT_EQ(s.running_decodes, 3);
  EXPECT_EQ(s.prefix_cache_blocks, 17);
  EXPECT_EQ(s.restart_budget_remaining, 2);
}

TEST(StatsJson, V1PayloadKeepsDefaults) {
  // A pre-v2 server: no schema_version, no kv_block_size, no queue gauges.
  ReplicaStats s;
  ASSERT_TRUE(parse_stats_json("{\"model\":\"qwen\",\"pp\":4,\"tp\":2}", s));
  EXPECT_EQ(s.schema_version, 1);
  EXPECT_EQ(s.model, "qwen");
  EXPECT_EQ(s.pp, 4);
  EXPECT_EQ(s.tp, 2);
  EXPECT_EQ(s.kv_block_size, 0);  // unreported
  EXPECT_EQ(s.waiting_prefill, 0);
}

TEST(StatsJson, FutureSchemaAndUnknownKeysTolerated) {
  ReplicaStats s;
  ASSERT_TRUE(parse_stats_json(
      "{\"schema_version\":9,\"model\":\"next\",\"brand_new_gauge\":42,"
      "\"waiting_prefill\":1}",
      s));
  EXPECT_EQ(s.schema_version, 9);
  EXPECT_EQ(s.waiting_prefill, 1);
}

TEST(StatsJson, RejectsNonStatsText) {
  ReplicaStats s;
  EXPECT_FALSE(parse_stats_json("", s));
  EXPECT_FALSE(parse_stats_json("{\"error\":\"nope\"}", s));
  EXPECT_FALSE(parse_stats_json("<html>502</html>", s));
}

TEST(StatsJson, FetchFromLiveServerCrossProcessShape) {
  // fetch_stats against a real HttpServer: the wire payload a v2 replica in
  // another process would serve parses into a full snapshot.
  obs::Observability obs;
  auto opt = tiny_options();
  opt.obs = &obs;
  runtime::PipelineService service(opt, small_throttle());
  service.start();
  server::HttpServer server(service);
  server.start();

  ReplicaStats s;
  ASSERT_TRUE(fetch_stats("127.0.0.1", server.port(), 2.0, s));
  EXPECT_EQ(s.schema_version, 2);
  EXPECT_EQ(s.model, "tiny");
  EXPECT_EQ(s.pp, 2);
  EXPECT_EQ(s.kv_block_size, 8);
  EXPECT_GT(s.restart_budget_remaining, 0);

  server.stop();
  service.stop();
  // And a dead endpoint fails fast instead of hanging.
  ReplicaStats dead;
  EXPECT_FALSE(fetch_stats("127.0.0.1", server.port(), 0.5, dead));
}

// --- ReplicaTable: poll-driven death and revival ----------------------------

TEST(ReplicaTableTest, DiesAfterConsecutivePollFailuresRevivesOnSuccess) {
  ReplicaTable table({{"127.0.0.1", 1}, {"127.0.0.1", 2}});
  EXPECT_EQ(table.alive_count(), 2u);

  table.poll_failure(0);
  EXPECT_EQ(table.alive_count(), 2u);  // one miss is not death
  table.poll_failure(0);
  EXPECT_EQ(table.alive_count(), 1u);
  EXPECT_FALSE(table.snapshot()[0].alive);

  ReplicaStats healthy;
  healthy.model = "tiny";
  table.poll_success(0, healthy);  // respawned replica rejoins
  EXPECT_EQ(table.alive_count(), 2u);
  EXPECT_TRUE(table.snapshot()[0].ever_polled);

  // A success between failures resets the consecutive counter.
  table.poll_failure(1);
  table.poll_success(1, healthy);
  table.poll_failure(1);
  EXPECT_EQ(table.alive_count(), 2u);

  table.mark_dead(1);  // proxy fast path: immediate
  EXPECT_EQ(table.alive_count(), 1u);
}

TEST(ReplicaTableTest, InflightAccounting) {
  ReplicaTable table({{"127.0.0.1", 1}});
  table.note_dispatch(0);
  table.note_dispatch(0);
  table.note_done(0);
  const auto snap = table.snapshot();
  EXPECT_EQ(snap[0].inflight, 1);
  EXPECT_EQ(snap[0].dispatched, 2);
}

// --- PlacementPolicy: least-waiting-prefill + prefix affinity ---------------

std::vector<Replica> three_replicas(std::int64_t w0, std::int64_t w1,
                                    std::int64_t w2) {
  std::vector<Replica> r(3);
  for (std::size_t i = 0; i < 3; ++i) {
    r[i].host = "127.0.0.1";
    r[i].port = static_cast<int>(9000 + i);
    r[i].ever_polled = true;
  }
  r[0].stats.waiting_prefill = w0;
  r[1].stats.waiting_prefill = w1;
  r[2].stats.waiting_prefill = w2;
  return r;
}

TEST(PlacementPolicyTest, OrdersByWaitingPrefill) {
  PlacementPolicy policy;
  const auto p = policy.place(0, three_replicas(5, 1, 3));
  ASSERT_EQ(p.candidates.size(), 3u);
  EXPECT_EQ(p.candidates[0], 1u);
  EXPECT_EQ(p.candidates[1], 2u);
  EXPECT_EQ(p.candidates[2], 0u);
  EXPECT_FALSE(p.prefix_hit);
}

TEST(PlacementPolicyTest, RouterInflightCoversPollLag) {
  // Equal polled depth, but the router just dispatched twice to replica 0:
  // its own in-flight count must break the tie.
  auto replicas = three_replicas(2, 2, 2);
  replicas[0].inflight = 2;
  const auto p = PlacementPolicy().place(0, replicas);
  EXPECT_EQ(p.candidates[0], 1u);  // stable: ties keep index order
  EXPECT_EQ(p.candidates.back(), 0u);
}

TEST(PlacementPolicyTest, DeadReplicasExcluded) {
  auto replicas = three_replicas(1, 2, 3);
  replicas[0].alive = false;
  const auto p = PlacementPolicy().place(0, replicas);
  ASSERT_EQ(p.candidates.size(), 2u);
  EXPECT_EQ(p.candidates[0], 1u);
  EXPECT_EQ(p.candidates[1], 2u);
}

TEST(PlacementPolicyTest, AffinityBeatsLoadAndEscalationFallsBack) {
  PlacementPolicy policy;
  policy.record(0xabcULL, 2);
  const auto p = policy.place(0xabcULL, three_replicas(0, 0, 50));
  ASSERT_GE(p.candidates.size(), 3u);
  EXPECT_EQ(p.candidates[0], 2u);  // prefix affinity wins despite the load...
  EXPECT_TRUE(p.prefix_hit);
  EXPECT_EQ(p.candidates[1], 0u);  // ...but escalation order is load-sorted
  // Hash 0 means "no routable prefix": affinity must not fire.
  const auto p0 = policy.place(0, three_replicas(0, 0, 50));
  EXPECT_FALSE(p0.prefix_hit);
  EXPECT_EQ(p0.candidates[0], 0u);
}

TEST(PlacementPolicyTest, DeadAffinityTargetSkipped) {
  PlacementPolicy policy;
  policy.record(0xabcULL, 0);
  auto replicas = three_replicas(0, 1, 2);
  replicas[0].alive = false;
  const auto p = policy.place(0xabcULL, replicas);
  EXPECT_FALSE(p.prefix_hit);
  EXPECT_EQ(p.candidates[0], 1u);
}

TEST(PlacementPolicyTest, LruEvictsAtCapacityAndForgetDropsReplica) {
  PlacementPolicy policy(/*affinity_capacity=*/2);
  policy.record(1, 0);
  policy.record(2, 1);
  policy.record(3, 2);  // evicts hash 1 (least recent)
  EXPECT_EQ(policy.affinity_size(), 2u);
  EXPECT_FALSE(policy.place(1, three_replicas(0, 0, 0)).prefix_hit);
  EXPECT_TRUE(policy.place(2, three_replicas(0, 0, 0)).prefix_hit);
  EXPECT_TRUE(policy.place(3, three_replicas(0, 0, 0)).prefix_hit);

  policy.forget_replica(2);  // replica 2 died: its cached prefixes are gone
  EXPECT_EQ(policy.affinity_size(), 1u);
  EXPECT_FALSE(policy.place(3, three_replicas(0, 0, 0)).prefix_hit);
  EXPECT_TRUE(policy.place(2, three_replicas(0, 0, 0)).prefix_hit);
}

TEST(PlacementPolicyTest, PollerDetectedRespawnPurgesStaleAffinity) {
  // Regression: a replica declared dead by the *poller* (not the proxy) never
  // went through the proxy's forget_replica call. Once the supervisor
  // respawned it — alive again, prefix cache empty — stale affinity entries
  // kept steering prefix-sharing prompts at it. The death epoch in the
  // snapshot must purge those entries on the next placement.
  PlacementPolicy policy;
  policy.record(0xfeedULL, 0);
  EXPECT_TRUE(policy.place(0xfeedULL, three_replicas(0, 0, 0)).prefix_hit);

  // Replica 0 died and respawned between placements: alive in the snapshot,
  // but with a bumped death epoch.
  auto respawned = three_replicas(0, 0, 0);
  respawned[0].deaths = 1;
  const auto p = policy.place(0xfeedULL, respawned);
  EXPECT_FALSE(p.prefix_hit);
  EXPECT_EQ(policy.affinity_size(), 0u);

  // Same epoch on the next call: no further purge, fresh entries stick.
  policy.record(0xfeedULL, 0);
  EXPECT_TRUE(policy.place(0xfeedULL, respawned).prefix_hit);
}

TEST(ReplicaTableTest, DeathEpochBumpsOnEveryAliveToDeadTransition) {
  ReplicaTable table({{"127.0.0.1", 9000}});
  // Below the threshold: still alive, no epoch movement.
  table.poll_failure(0);
  EXPECT_TRUE(table.snapshot()[0].alive);
  EXPECT_EQ(table.snapshot()[0].deaths, 0);
  // Crossing the threshold: one transition, one epoch.
  table.poll_failure(0);
  EXPECT_FALSE(table.snapshot()[0].alive);
  EXPECT_EQ(table.snapshot()[0].deaths, 1);
  // Already dead: more failures and proxy mark_dead must not re-bump.
  table.poll_failure(0);
  table.mark_dead(0);
  EXPECT_EQ(table.snapshot()[0].deaths, 1);
  // Respawn (successful poll) then proxy-detected death: second epoch.
  table.poll_success(0, ReplicaStats{});
  EXPECT_TRUE(table.snapshot()[0].alive);
  table.mark_dead(0);
  EXPECT_EQ(table.snapshot()[0].deaths, 2);
}

// --- fakes: a replica that sheds every completion ---------------------------

/// Minimal replica stand-in: healthy /v1/stats, 503 + Retry-After for every
/// POST — the deterministic way to force the router's shed-escalation path
/// (a real replica's shed threshold depends on timing).
class FakeShedReplica {
 public:
  FakeShedReplica() {
    listen_fd_ = net::listen_tcp(0);
    if (listen_fd_ < 0) throw std::runtime_error("fake replica: listen failed");
    port_ = net::local_port(listen_fd_);
    thread_ = std::thread([this] { serve(); });
  }
  ~FakeShedReplica() {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
    net::close_fd(listen_fd_);
  }
  int port() const { return port_; }
  int posts_seen() const { return posts_.load(); }

 private:
  void serve() {
    while (running_.load()) {
      if (!net::wait_readable(listen_fd_, 0.05)) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      std::string in;
      char buf[4096];
      while (in.find("\r\n\r\n") == std::string::npos) {
        if (!net::wait_readable(fd, 1.0)) break;
        const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
        if (n <= 0) break;
        in.append(buf, static_cast<std::size_t>(n));
      }
      std::string body, head;
      if (in.rfind("GET", 0) == 0) {
        body =
            "{\"schema_version\":2,\"model\":\"fake\",\"pp\":1,\"tp\":1,"
            "\"kv_block_size\":8,\"waiting_prefill\":0,\"running_decodes\":0,"
            "\"prefix_cache_blocks\":0,\"restart_budget_remaining\":3}";
        head = "HTTP/1.1 200 OK\r\n";
      } else {
        posts_.fetch_add(1);
        body = "{\"error\":\"saturated\"}";
        head = "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\n";
      }
      const std::string response = head + "Content-Type: application/json\r\nContent-Length: " +
                                   std::to_string(body.size()) +
                                   "\r\nConnection: close\r\n\r\n" + body;
      net::send_all(fd, response.data(), response.size());
      net::close_fd(fd);
    }
  }

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{true};
  std::atomic<int> posts_{0};
  std::thread thread_;
};

// --- FleetRouter end-to-end over real replicas ------------------------------

class FleetRouterTest : public ::testing::Test {
 protected:
  void start_fleet(std::size_t n, double poll_interval_s = 0.1) {
    std::vector<std::pair<std::string, int>> backends;
    for (std::size_t i = 0; i < n; ++i) {
      auto obs = std::make_unique<obs::Observability>();
      auto opt = tiny_options();
      opt.obs = obs.get();
      auto svc =
          std::make_unique<runtime::PipelineService>(opt, small_throttle());
      svc->start();
      auto srv = std::make_unique<server::HttpServer>(*svc);
      srv->start();
      backends.emplace_back("127.0.0.1", srv->port());
      obs_.push_back(std::move(obs));
      services_.push_back(std::move(svc));
      servers_.push_back(std::move(srv));
    }
    RouterOptions ro;
    ro.backends = backends;
    ro.poll_interval_s = poll_interval_s;
    ro.obs = &router_obs_;
    router_ = std::make_unique<FleetRouter>(ro);
    router_->start();
    ASSERT_GT(router_->port(), 0);
  }

  void stop_replica(std::size_t i) {
    servers_[i]->stop();
    services_[i]->stop();
  }

  /// Fault-free reference bytes for `raw`, served by a standalone replica
  /// outside the fleet (a PipelineService rejects a request id it has
  /// already recorded, so the reference must not consume the id on a fleet
  /// member that may serve the routed copy later).
  std::string reference_stream(const std::string& raw) {
    obs::Observability obs;
    auto opt = tiny_options();
    opt.obs = &obs;
    runtime::PipelineService service(opt, small_throttle());
    service.start();
    server::HttpServer server(service);
    server.start();
    const std::string bytes = raw_round_trip(server.port(), raw);
    server.stop();
    service.stop();
    return bytes;
  }

  void TearDown() override {
    if (router_) router_->stop();
    for (auto& s : servers_)
      if (s) s->stop();
    for (auto& s : services_)
      if (s) s->stop();
  }

  obs::Observability router_obs_;
  std::vector<std::unique_ptr<obs::Observability>> obs_;
  std::vector<std::unique_ptr<runtime::PipelineService>> services_;
  std::vector<std::unique_ptr<server::HttpServer>> servers_;
  std::unique_ptr<FleetRouter> router_;
};

TEST_F(FleetRouterTest, LocalEndpointsServeFleetViews) {
  start_fleet(2);
  std::string body;
  EXPECT_EQ(server::http_request(router_->port(), "GET", "/health", "", body), 200);
  EXPECT_NE(body.find("\"role\":\"router\""), std::string::npos);
  EXPECT_NE(body.find("\"replicas\":2"), std::string::npos);

  EXPECT_EQ(server::http_request(router_->port(), "GET", "/v1/stats", "", body), 200);
  EXPECT_NE(body.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(body.find("\"replicas_total\":2"), std::string::npos);
  EXPECT_NE(body.find("\"waiting_prefill\""), std::string::npos);

  EXPECT_EQ(server::http_request(router_->port(), "GET", "/metrics", "", body), 200);
  EXPECT_NE(body.find("gllm_router_requests_routed_total"), std::string::npos);

  EXPECT_EQ(server::http_request(router_->port(), "GET", "/nope", "", body), 404);
  EXPECT_EQ(server::http_request(router_->port(), "POST", "/health", "", body), 405);
  EXPECT_EQ(server::http_request(router_->port(), "GET", "/v1/completions", "", body),
            405);
}

TEST_F(FleetRouterTest, ProxiedCompletionMatchesReference) {
  start_fleet(2);
  const auto cfg = model::presets::tiny();
  nn::GenRequest request;
  request.id = 1;
  request.prompt = nn::synthetic_prompt(cfg, 5, 12);
  request.max_new_tokens = 6;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});

  std::string body;
  const int status =
      server::http_request(router_->port(), "POST", "/v1/completions",
                           completion_body(1, request.prompt, 6), body);
  ASSERT_EQ(status, 200);
  std::vector<std::int64_t> tokens;
  ASSERT_TRUE(server::json_int_array_field(body, "tokens", tokens));
  ASSERT_EQ(tokens.size(), reference[0].size());
  for (std::size_t i = 0; i < tokens.size(); ++i)
    EXPECT_EQ(tokens[i], reference[0][i]) << "token " << i;
  EXPECT_EQ(router_obs_.router().requests_routed->value(), 1);
}

TEST_F(FleetRouterTest, StreamedProxyIsByteIdenticalToDirect) {
  start_fleet(2);
  const auto prompt = nn::synthetic_prompt(model::presets::tiny(), 11, 16);
  const std::string raw = raw_completion_request(completion_body(7, prompt, 8, true));

  const std::string direct = reference_stream(raw);
  ASSERT_NE(direct.find("data: [DONE]"), std::string::npos);
  const std::string via_router = raw_round_trip(router_->port(), raw);
  EXPECT_EQ(via_router, direct);
}

TEST_F(FleetRouterTest, PrefixAffinityRoutesRepeatPromptsToSameReplica) {
  start_fleet(2);
  const auto prompt = nn::synthetic_prompt(model::presets::tiny(), 21, 32);
  std::string body;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(server::http_request(router_->port(), "POST", "/v1/completions",
                                   completion_body(100 + i, prompt, 2), body),
              200);
  }
  // All four share the prompt prefix: after the first placement the other
  // three must hit the affinity map and land on the same replica.
  EXPECT_EQ(router_obs_.router().prefix_hits->value(), 3);
  const auto snap = router_->table().snapshot();
  EXPECT_EQ(snap[0].dispatched + snap[1].dispatched, 4);
  EXPECT_TRUE(snap[0].dispatched == 0 || snap[1].dispatched == 0)
      << "affinity split a shared prefix across replicas";
}

TEST_F(FleetRouterTest, FailoverMidStreamIsByteIdentical) {
  start_fleet(2);
  const auto prompt = nn::synthetic_prompt(model::presets::tiny(), 31, 12);
  // Long generation: the victim replica is killed while it still has most of
  // the stream left to produce.
  const std::string raw = raw_completion_request(completion_body(9, prompt, 600, true));
  const std::string reference = reference_stream(raw);
  ASSERT_NE(reference.find("data: [DONE]"), std::string::npos);
  ASSERT_EQ(count_token_events(reference), 600);

  const int fd = net::connect_tcp("127.0.0.1", router_->port(), 5.0);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(net::send_all(fd, raw.data(), raw.size()));

  std::string in;
  char buf[8192];
  bool killed = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (elapsed >= 60.0) break;
    if (!killed && count_token_events(in) >= 3) {
      // The stream is live: find the serving replica and kill it.
      const auto snap = router_->table().snapshot();
      for (std::size_t i = 0; i < snap.size(); ++i) {
        if (snap[i].inflight > 0) {
          stop_replica(i);
          killed = true;
          break;
        }
      }
    }
    if (!net::wait_readable(fd, 0.05)) continue;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
  }
  net::close_fd(fd);

  ASSERT_TRUE(killed) << "stream finished before the kill could land";
  // The client-observed bytes are identical to the fault-free run: same head,
  // same 600 token events, same terminal — the replay skipped exactly what
  // had already been forwarded.
  EXPECT_EQ(in, reference);
  EXPECT_GE(router_obs_.router().failovers->value(), 1);
  EXPECT_GE(router_obs_.router().replica_deaths->value(), 1);
}

TEST_F(FleetRouterTest, AllReplicasDeadYields503ThenHealthDown) {
  start_fleet(2, /*poll_interval_s=*/0.05);
  stop_replica(0);
  stop_replica(1);
  const auto prompt = nn::synthetic_prompt(model::presets::tiny(), 41, 8);
  const std::string response =
      raw_round_trip(router_->port(), raw_completion_request(completion_body(1, prompt, 2)));
  EXPECT_EQ(response.rfind("HTTP/1.1 503", 0), 0u) << response;
  EXPECT_NE(response.find("Retry-After:"), std::string::npos);
  EXPECT_NE(response.find("no replica available"), std::string::npos);

  // Give the poller a couple of sweeps to notice, then /health flips down.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::string body;
  EXPECT_EQ(server::http_request(router_->port(), "GET", "/health", "", body), 503);
  EXPECT_NE(body.find("\"alive\":0"), std::string::npos);
}

TEST(FleetRouterShed, EscalatesPastSaturatedReplicaToSibling) {
  FakeShedReplica shed;

  obs::Observability replica_obs;
  auto opt = tiny_options();
  opt.obs = &replica_obs;
  runtime::PipelineService service(opt, small_throttle());
  service.start();
  server::HttpServer server(service);
  server.start();

  obs::Observability router_obs;
  RouterOptions ro;
  // The shedding fake is placed first on ties (lower index), so every
  // completion hits it before escalating to the real sibling.
  ro.backends = {{"127.0.0.1", shed.port()}, {"127.0.0.1", server.port()}};
  ro.obs = &router_obs;
  FleetRouter router(ro);
  router.start();

  const auto cfg = model::presets::tiny();
  nn::GenRequest request;
  request.id = 3;
  request.prompt = nn::synthetic_prompt(cfg, 5, 12);
  request.max_new_tokens = 4;
  const auto reference = nn::generate_reference(cfg, kSeed, {request});

  std::string body;
  const int status =
      server::http_request(router.port(), "POST", "/v1/completions",
                           completion_body(3, request.prompt, 4), body);
  ASSERT_EQ(status, 200) << body;  // the client never saw the 503
  std::vector<std::int64_t> tokens;
  ASSERT_TRUE(server::json_int_array_field(body, "tokens", tokens));
  ASSERT_EQ(tokens.size(), reference[0].size());
  for (std::size_t i = 0; i < tokens.size(); ++i)
    EXPECT_EQ(tokens[i], reference[0][i]);

  EXPECT_GE(shed.posts_seen(), 1);
  EXPECT_GE(router_obs.router().sheds_retried->value(), 1);
  EXPECT_EQ(router_obs.router().sheds_exhausted->value(), 0);

  router.stop();
  server.stop();
  service.stop();
}

TEST(FleetRouterShed, AllSaturatedYields503WithRetryAfter) {
  FakeShedReplica a, b;
  obs::Observability router_obs;
  RouterOptions ro;
  ro.backends = {{"127.0.0.1", a.port()}, {"127.0.0.1", b.port()}};
  ro.retry_after_s = 2;
  ro.obs = &router_obs;
  FleetRouter router(ro);
  router.start();

  const auto prompt = nn::synthetic_prompt(model::presets::tiny(), 51, 8);
  const std::string response =
      raw_round_trip(router.port(), raw_completion_request(completion_body(4, prompt, 2)));
  EXPECT_EQ(response.rfind("HTTP/1.1 503", 0), 0u) << response;
  EXPECT_NE(response.find("Retry-After: 2"), std::string::npos);
  EXPECT_NE(response.find("all replicas saturated"), std::string::npos);
  EXPECT_GE(a.posts_seen() + b.posts_seen(), 2);  // both were tried
  EXPECT_GE(router_obs.router().sheds_exhausted->value(), 1);

  router.stop();
}

// --- loadgen: Retry-After-honouring 503 retries -----------------------------

TEST(LoadgenRetry, BoundedRetriesHonourRetryAfterAndAreCountedSeparately) {
  FakeShedReplica shed;
  loadgen::LoadgenOptions options;
  options.port = shed.port();
  options.connections = 1;
  options.requests = 3;
  options.stream = false;
  options.max_retries = 2;
  options.max_retry_wait_s = 0.0;  // the fake hints Retry-After: 0 anyway
  options.timeout_s = 10.0;

  const auto report = loadgen::run(options);
  EXPECT_EQ(report.requested, 3u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.shed, 3u);     // each request sheds once, after...
  EXPECT_EQ(report.retries, 6u);  // ...exactly max_retries re-drives
  EXPECT_EQ(shed.posts_seen(), 9);

  // With retries disabled nothing is re-driven.
  options.max_retries = 0;
  const auto once = loadgen::run(options);
  EXPECT_EQ(once.shed, 3u);
  EXPECT_EQ(once.retries, 0u);
}

}  // namespace
}  // namespace gllm::router
