#include "serve/router.hpp"
#include "serve/system.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hpp"

namespace gllm::serve {
namespace {

workload::Trace make_trace(std::size_t n = 64, std::uint64_t seed = 5) {
  workload::TraceBuilder builder(workload::WorkloadSpec::sharegpt(), seed);
  workload::ArrivalProcess arrivals;
  arrivals.rate = 4.0;
  return builder.generate_count(arrivals, n);
}

std::size_t total_requests(const std::vector<workload::Trace>& shards) {
  std::size_t n = 0;
  for (const auto& shard : shards) n += shard.size();
  return n;
}

TEST(RouteTrace, PartitionIsCompleteAndDisjoint) {
  const auto trace = make_trace(50);
  for (auto policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastWork, RoutePolicy::kRandom}) {
    const auto shards = route_trace(trace, 3, policy);
    EXPECT_EQ(total_requests(shards), trace.size());
    std::set<std::int64_t> ids;
    for (const auto& shard : shards) {
      for (const auto& r : shard) EXPECT_TRUE(ids.insert(r.id).second);
    }
  }
}

TEST(RouteTrace, RoundRobinEvenCounts) {
  const auto shards = route_trace(make_trace(60), 4, RoutePolicy::kRoundRobin);
  for (const auto& shard : shards) EXPECT_EQ(shard.size(), 15u);
}

TEST(RouteTrace, ArrivalOrderPreservedPerShard) {
  const auto shards = route_trace(make_trace(80), 3, RoutePolicy::kLeastWork);
  for (const auto& shard : shards) {
    for (std::size_t i = 1; i < shard.size(); ++i)
      EXPECT_GE(shard[i].arrival, shard[i - 1].arrival);
  }
}

TEST(RouteTrace, LeastWorkBalancesTokensOnSkewedTrace) {
  // A trace alternating huge and tiny requests: round-robin puts all the huge
  // ones on the same replicas; least-work spreads token mass.
  workload::Trace trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back(workload::RequestSpec{i, i * 0.1, i % 2 == 0 ? 4000 : 20, 10});
  }
  auto token_spread = [](const std::vector<workload::Trace>& shards) {
    double lo = 1e18, hi = 0;
    for (const auto& shard : shards) {
      double tokens = 0;
      for (const auto& r : shard) tokens += r.prompt_len + r.output_len;
      lo = std::min(lo, tokens);
      hi = std::max(hi, tokens);
    }
    return hi - lo;
  };
  const double rr = token_spread(route_trace(trace, 2, RoutePolicy::kRoundRobin));
  const double lw = token_spread(route_trace(trace, 2, RoutePolicy::kLeastWork,
                                             /*seed=*/17, /*service_rate=*/1.0));
  EXPECT_LT(lw, rr);
}

TEST(RouteTrace, RandomIsSeedDeterministic) {
  const auto trace = make_trace(40);
  const auto a = route_trace(trace, 3, RoutePolicy::kRandom, 9);
  const auto b = route_trace(trace, 3, RoutePolicy::kRandom, 9);
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(a[static_cast<std::size_t>(s)].size(), b[static_cast<std::size_t>(s)].size());
  const auto c = route_trace(trace, 3, RoutePolicy::kRandom, 10);
  bool differs = false;
  for (int s = 0; s < 3; ++s)
    differs |= a[static_cast<std::size_t>(s)].size() != c[static_cast<std::size_t>(s)].size();
  EXPECT_TRUE(differs);
}

TEST(RouteTrace, InvalidArgsThrow) {
  EXPECT_THROW(route_trace({}, 0, RoutePolicy::kRoundRobin), std::invalid_argument);
  EXPECT_THROW(route_trace({}, 2, RoutePolicy::kLeastWork, 1, 0.0), std::invalid_argument);
}

TEST(DataParallelSystem, FleetCompletesEverything) {
  DataParallelOptions options;
  options.replica = SystemOptions::gllm(model::presets::qwen2_5_14b(),
                                        hw::clusters::l20_node(1), /*pp=*/1);
  options.replicas = 4;
  DataParallelSystem fleet(options);
  const auto trace = make_trace(48);
  const auto result = fleet.run(trace);
  EXPECT_EQ(result.requests.size(), trace.size());
  EXPECT_EQ(result.completed_requests(), trace.size());
  EXPECT_EQ(result.stage_busy_seconds.size(), 4u);  // 4 replicas x pp1
  // Requests come back id-sorted regardless of sharding.
  for (std::size_t i = 1; i < result.requests.size(); ++i)
    EXPECT_LT(result.requests[i - 1].id, result.requests[i].id);
}

TEST(DataParallelSystem, InvalidReplicaRejectedEagerly) {
  DataParallelOptions options;
  // 32B does not fit one L20: the constructor must fail, not run().
  options.replica = SystemOptions::gllm(model::presets::qwen2_5_32b(),
                                        hw::clusters::l20_node(1), 1);
  options.replicas = 2;
  EXPECT_THROW(DataParallelSystem{options}, std::invalid_argument);
}

TEST(MergeResults, AggregatesAcrossReplicas) {
  engine::RunResult a, b;
  a.start_time = 1.0;
  a.end_time = 5.0;
  a.requests = {engine::RequestMetrics{2, 1, 10, 5, 0.1, 1.0, 0.05, 0, true}};
  a.stage_busy_seconds = {3.0};
  a.preemptions = 1;
  b.start_time = 0.5;
  b.end_time = 7.0;
  b.requests = {engine::RequestMetrics{1, 0.5, 20, 8, 0.2, 2.0, 0.06, 1, true}};
  b.stage_busy_seconds = {4.0};
  b.preemptions = 2;

  const auto merged = merge_results({a, b});
  EXPECT_DOUBLE_EQ(merged.start_time, 0.5);
  EXPECT_DOUBLE_EQ(merged.end_time, 7.0);
  EXPECT_EQ(merged.requests.size(), 2u);
  EXPECT_EQ(merged.requests[0].id, 1);  // id-sorted
  EXPECT_EQ(merged.stage_busy_seconds.size(), 2u);
  EXPECT_EQ(merged.preemptions, 3);
}

TEST(MergeResults, EmptyInput) {
  const auto merged = merge_results({});
  EXPECT_TRUE(merged.requests.empty());
  EXPECT_DOUBLE_EQ(merged.makespan(), 0.0);
}

TEST(DataParallel, DpVsPpTradeoffRuns) {
  // 4 single-GPU replicas vs one PP4 deployment of the same fleet: DP avoids
  // pipeline hops entirely, PP pools KV. Both must serve the trace; the
  // comparison itself is the abl_data_parallel bench's subject.
  const auto m = model::presets::qwen2_5_14b();
  const auto trace = make_trace(64);

  DataParallelOptions dp_options;
  dp_options.replica = SystemOptions::gllm(m, hw::clusters::l20_node(1), 1);
  dp_options.replicas = 4;
  DataParallelSystem dp(dp_options);
  const auto dp_result = dp.run(trace);

  ServingSystem pp(SystemOptions::gllm(m, hw::clusters::l20_node(4), 4));
  const auto pp_result = pp.run(trace);

  EXPECT_EQ(dp_result.completed_requests(), trace.size());
  EXPECT_EQ(pp_result.completed_requests(), trace.size());
  EXPECT_GT(dp_result.throughput(), 0.0);
  EXPECT_GT(pp_result.throughput(), 0.0);
}

}  // namespace
}  // namespace gllm::serve
