// Online serving mode (PipelineService): submissions at arbitrary times from
// arbitrary threads, streamed tokens, drain/stop semantics — with outputs
// still bit-identical to the single-stage reference.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "runtime/service.hpp"
#include "sched/token_throttle.hpp"

namespace gllm::runtime {
namespace {

constexpr std::uint64_t kSeed = 1234;

RuntimeOptions tiny_options(int pp = 2) {
  RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = pp;
  opt.kv_capacity_tokens = 4096;
  opt.kv_block_size = 8;
  opt.weight_seed = kSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

std::vector<nn::GenRequest> make_requests(const model::ModelConfig& cfg, int n) {
  std::vector<nn::GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = nn::synthetic_prompt(cfg, 800 + static_cast<std::uint64_t>(i),
                                    8 + (i * 5) % 24);
    r.max_new_tokens = 3 + i % 7;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

std::map<std::int64_t, RuntimeRequestRecord> by_id(
    const std::vector<RuntimeRequestRecord>& records) {
  std::map<std::int64_t, RuntimeRequestRecord> out;
  for (const auto& rec : records) out[rec.id] = rec;
  return out;
}

TEST(Service, SubmitDrainTokenExact) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 10);
  const auto ref = nn::generate_reference(cfg, kSeed, reqs);

  PipelineService service(tiny_options(), small_throttle());
  service.start();
  for (const auto& r : reqs) service.submit(r);
  service.drain();
  const auto records = by_id(service.results());
  service.stop();

  ASSERT_EQ(records.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto& rec = records.at(static_cast<std::int64_t>(i));
    EXPECT_TRUE(rec.completed);
    EXPECT_EQ(rec.output, ref[i]) << "request " << i;
    EXPECT_GT(rec.ttft, 0.0);
    EXPECT_GE(rec.e2e, rec.ttft);
  }
}

TEST(Service, LateSubmissionsJoinARunningServer) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 8);
  const auto ref = nn::generate_reference(cfg, kSeed, reqs);

  PipelineService service(tiny_options(4), small_throttle());
  service.start();
  // First wave, let it get going, then a second wave mid-flight.
  for (int i = 0; i < 4; ++i) service.submit(reqs[static_cast<std::size_t>(i)]);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 4; i < 8; ++i) service.submit(reqs[static_cast<std::size_t>(i)]);
  service.drain();
  const auto records = by_id(service.results());
  service.stop();

  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(records.at(static_cast<std::int64_t>(i)).output, ref[i]);
}

TEST(Service, ConcurrentSubmittersAreSafe) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 12);
  PipelineService service(tiny_options(2), small_throttle());
  service.start();

  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = t; i < 12; i += 3) service.submit(reqs[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();
  EXPECT_EQ(service.results().size(), 12u);
  service.stop();
}

TEST(Service, StreamsTokensPerRequest) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 4);
  PipelineService service(tiny_options(), small_throttle());
  service.start();

  std::mutex mu;
  std::map<std::int64_t, int> counts;
  std::map<std::int64_t, int> finals;
  for (const auto& r : reqs) {
    service.submit(r, [&](const StreamEvent& ev) {
      std::lock_guard lock(mu);
      (ev.is_last ? finals : counts)[ev.request_id]++;
    });
  }
  service.drain();
  const auto records = by_id(service.results());
  service.stop();

  for (const auto& r : reqs) {
    EXPECT_EQ(finals[r.id], 1);
    EXPECT_EQ(counts[r.id], static_cast<int>(records.at(r.id).output.size()));
  }
}

TEST(Service, OversizedRequestRejectedImmediately) {
  const auto cfg = model::presets::tiny();
  auto opt = tiny_options();
  opt.kv_capacity_tokens = 64;
  PipelineService service(opt, small_throttle());
  service.start();

  nn::GenRequest huge;
  huge.id = 7;
  huge.prompt = nn::synthetic_prompt(cfg, 1, 100);
  huge.max_new_tokens = 4;
  service.submit(huge);
  service.drain();  // must not hang on the rejected request
  const auto records = service.results();
  service.stop();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].completed);
  EXPECT_EQ(records[0].error, StreamError::kRejected);
}

TEST(Service, OversizedRequestStreamsTerminalErrorEvent) {
  // A streaming client of a rejected request must receive exactly one
  // terminal error event — never silence (the pre-fix behavior recorded the
  // rejection but left on_token unfired, hanging any waiter).
  const auto cfg = model::presets::tiny();
  auto opt = tiny_options();
  opt.kv_capacity_tokens = 64;
  PipelineService service(opt, small_throttle());
  service.start();

  nn::GenRequest huge;
  huge.id = 7;
  huge.prompt = nn::synthetic_prompt(cfg, 1, 100);
  huge.max_new_tokens = 4;
  std::atomic<int> events{0};
  StreamEvent last{};
  service.submit(huge, [&](const StreamEvent& ev) {
    last = ev;
    ++events;
  });
  service.drain();
  service.stop();
  EXPECT_EQ(events.load(), 1);
  EXPECT_EQ(last.request_id, 7);
  EXPECT_TRUE(last.is_last);
  EXPECT_EQ(last.error, StreamError::kRejected);
}

TEST(Service, SubmitRacingStopIsACleanRejection) {
  // submit() racing stop() used to throw std::logic_error out of a perfectly
  // well-formed call. Now every submission either completes or terminates
  // with an explicit error event — and the race must be exception-free.
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 24);
  PipelineService service(tiny_options(), small_throttle());
  service.start();

  std::mutex mu;
  std::map<std::int64_t, StreamEvent> terminal;
  std::atomic<int> submitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = t; i < 24; i += 3) {
        try {
          service.submit(reqs[static_cast<std::size_t>(i)], [&](const StreamEvent& ev) {
            if (!ev.is_last && ev.error == StreamError::kNone) return;
            std::lock_guard lock(mu);
            terminal[ev.request_id] = ev;
          });
          ++submitted;
        } catch (const std::logic_error&) {
          // Only legal once stop() has fully completed (service not running).
          EXPECT_FALSE(service.running());
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.stop();
  for (auto& t : submitters) t.join();

  // Every submission that got in is accounted for: a record exists and the
  // terminal event fired (completed or error-bearing — never silent).
  const auto records = by_id(service.results());
  EXPECT_EQ(records.size(), static_cast<std::size_t>(submitted.load()));
  std::lock_guard lock(mu);
  EXPECT_EQ(terminal.size(), records.size());
  for (const auto& [id, rec] : records) {
    ASSERT_TRUE(terminal.contains(id)) << "request " << id << " got no terminal event";
    if (!rec.completed) {
      EXPECT_NE(rec.error, StreamError::kNone);
    }
  }
}

TEST(Service, LifecycleGuards) {
  PipelineService service(tiny_options(), small_throttle());
  EXPECT_FALSE(service.running());
  EXPECT_THROW(service.submit(nn::GenRequest{}), std::logic_error);
  service.start();
  EXPECT_TRUE(service.running());
  service.start();  // idempotent
  service.stop();
  EXPECT_FALSE(service.running());
  service.stop();  // idempotent
}

TEST(Service, StopFinishesAcceptedWork) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 6);
  PipelineService service(tiny_options(), small_throttle());
  service.start();
  for (const auto& r : reqs) service.submit(r);
  service.stop();  // no drain() first: stop must still complete accepted work
  const auto records = service.results();
  EXPECT_EQ(records.size(), reqs.size());
  for (const auto& rec : records) EXPECT_TRUE(rec.completed);
}

TEST(Service, DestructorStops) {
  const auto cfg = model::presets::tiny();
  {
    PipelineService service(tiny_options(), small_throttle());
    service.start();
    service.submit(make_requests(cfg, 2)[0]);
  }  // dtor must join cleanly without leaks/hangs
  SUCCEED();
}

TEST(Service, MatchesBatchRuntimeOutputs) {
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 8);

  PipelineRuntime batch(tiny_options(2), small_throttle());
  const auto batch_report = batch.run(reqs);

  PipelineService service(tiny_options(2), small_throttle());
  service.start();
  for (const auto& r : reqs) service.submit(r);
  service.drain();
  const auto records = by_id(service.results());
  service.stop();

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(records.at(static_cast<std::int64_t>(i)).output,
              batch_report.requests[i].output);
  }
}

}  // namespace
}  // namespace gllm::runtime
