#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

namespace gllm::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(8);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntInvalidThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 4.0;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(0.5), 0.0);
}

TEST(Rng, ExponentialInvalidRateThrows) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng rng(16);
  const double mu = 1.0, sigma = 0.5;
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  const double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(18);
  const std::array<double, 3> w = {1.0, 2.0, 1.0};
  std::array<int, 3> counts = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(19);
  const std::array<double, 2> neg = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(neg), std::invalid_argument);
  const std::array<double, 2> zero = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.fork();
  // The fork consumed one draw from a; forked stream should not mirror it.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace gllm::util
