// ThreadSanitizer cannot follow fork() without exec once threads are
// involved: a child forked from (or forking into) a multi-threaded process
// dies with "starting new threads after multi-threaded fork is not
// supported", and the documented die_after_fork=0 escape hatch trades that
// for corrupted runtime state ("dup thread with used id") and flaky
// failures. Fork-mode runtime tests therefore skip themselves under TSan:
// the same code paths run threads-mode in the TSan job (which is the
// shared-memory concurrency TSan exists to check) and fork-mode under the
// plain and ASan/UBSan builds. kRemote tests are unaffected — exec resets
// the TSan runtime.
#pragma once

#include <gtest/gtest.h>

#if defined(__SANITIZE_THREAD__)
#define GLLM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GLLM_TSAN 1
#endif
#endif
#ifndef GLLM_TSAN
#define GLLM_TSAN 0
#endif

// Use at the top of any test that fork()s workers without exec.
#define GLLM_SKIP_IF_TSAN_FORK()                                          \
  do {                                                                    \
    if (GLLM_TSAN)                                                        \
      GTEST_SKIP() << "fork-without-exec is unsupported under "           \
                      "ThreadSanitizer; this path is covered by the "     \
                      "plain and ASan/UBSan builds";                      \
  } while (0)
