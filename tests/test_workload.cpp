#include "workload/generator.hpp"
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gllm::workload {
namespace {

TEST(LengthDistribution, FromMeanCvReproducesMean) {
  util::Rng rng(1);
  const auto d = LengthDistribution::from_mean_cv(200.0, 1.0, 1, 1 << 20);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 200.0, 6.0);
}

TEST(LengthDistribution, TruncationRespected) {
  util::Rng rng(2);
  const auto d = LengthDistribution::from_mean_cv(100.0, 2.0, 10, 300);
  for (int i = 0; i < 10000; ++i) {
    const int v = d.sample(rng);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 300);
  }
}

TEST(LengthDistribution, InvalidParamsThrow) {
  EXPECT_THROW(LengthDistribution::from_mean_cv(0, 1, 1, 10), std::invalid_argument);
  EXPECT_THROW(LengthDistribution::from_mean_cv(10, 0, 1, 10), std::invalid_argument);
}

TEST(ArrivalProcess, PoissonMeanGap) {
  util::Rng rng(3);
  ArrivalProcess p;
  p.rate = 5.0;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += p.next_gap(rng);
  EXPECT_NEAR(sum / n, 0.2, 0.005);
}

TEST(ArrivalProcess, UniformExactGap) {
  util::Rng rng(4);
  ArrivalProcess p;
  p.kind = ArrivalProcess::Kind::kUniform;
  p.rate = 4.0;
  EXPECT_DOUBLE_EQ(p.next_gap(rng), 0.25);
}

TEST(ArrivalProcess, BurstyHasHigherVariance) {
  util::Rng rng(5);
  ArrivalProcess poisson;
  poisson.rate = 1.0;
  ArrivalProcess bursty;
  bursty.kind = ArrivalProcess::Kind::kBursty;
  bursty.rate = 1.0;
  bursty.burst_cv = 4.0;

  util::Rng r1(7), r2(7);
  double var_p = 0, var_b = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double gp = poisson.next_gap(r1) - 1.0;
    const double gb = bursty.next_gap(r2) - 1.0;
    var_p += gp * gp;
    var_b += gb * gb;
  }
  EXPECT_GT(var_b, 3.0 * var_p);
}

TEST(ArrivalProcess, InvalidRateThrows) {
  util::Rng rng(6);
  ArrivalProcess p;
  p.rate = 0.0;
  EXPECT_THROW(p.next_gap(rng), std::invalid_argument);
}

TEST(WorkloadSpec, AzureToShareGptRatiosMatchPaper) {
  // Paper Fig. 11: Azure input mean 5.21x, output mean 1.66x ShareGPT's.
  TraceBuilder sg(WorkloadSpec::sharegpt(), 11);
  TraceBuilder az(WorkloadSpec::azure_conv(), 11);
  ArrivalProcess p;
  p.rate = 100.0;
  const auto t_sg = compute_stats(sg.generate_count(p, 20000));
  const auto t_az = compute_stats(az.generate_count(p, 20000));
  EXPECT_NEAR(t_az.input_mean / t_sg.input_mean, 5.21, 5.21 * 0.15);
  EXPECT_NEAR(t_az.output_mean / t_sg.output_mean, 1.66, 1.66 * 0.15);
}

TEST(TraceBuilder, DeterministicAcrossInstances) {
  TraceBuilder a(WorkloadSpec::sharegpt(), 42);
  TraceBuilder b(WorkloadSpec::sharegpt(), 42);
  ArrivalProcess p;
  p.rate = 5.0;
  const auto ta = a.generate_count(p, 100);
  const auto tb = b.generate_count(p, 100);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].prompt_len, tb[i].prompt_len);
    EXPECT_DOUBLE_EQ(ta[i].arrival, tb[i].arrival);
  }
}

TEST(TraceBuilder, SeedsChangeTraces) {
  TraceBuilder a(WorkloadSpec::sharegpt(), 1);
  TraceBuilder b(WorkloadSpec::sharegpt(), 2);
  ArrivalProcess p;
  p.rate = 5.0;
  EXPECT_NE(a.generate_count(p, 50)[10].prompt_len,
            b.generate_count(p, 50)[10].prompt_len);
}

TEST(TraceBuilder, DurationBoundsArrivals) {
  TraceBuilder builder(WorkloadSpec::tiny(), 9);
  ArrivalProcess p;
  p.rate = 10.0;
  const auto trace = builder.generate_for_duration(p, 32.0);
  EXPECT_GT(trace.size(), 200u);  // ~320 expected
  EXPECT_LT(trace.size(), 450u);
  for (const auto& r : trace) {
    EXPECT_GT(r.arrival, 0.0);
    EXPECT_LE(r.arrival, 32.0);
  }
}

TEST(TraceBuilder, ArrivalsMonotonic) {
  TraceBuilder builder(WorkloadSpec::sharegpt(), 10);
  ArrivalProcess p;
  p.rate = 3.0;
  const auto trace = builder.generate_count(p, 200);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
}

TEST(TraceBuilder, IdsUniqueAndSequential) {
  TraceBuilder builder(WorkloadSpec::tiny(), 12);
  ArrivalProcess p;
  p.rate = 5.0;
  const auto trace = builder.generate_count(p, 64);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].id, static_cast<std::int64_t>(i));
}

TEST(TraceBuilder, BurstAllAtSameInstant) {
  TraceBuilder builder(WorkloadSpec::tiny(), 13);
  const auto trace = builder.generate_burst(32, 5.0);
  EXPECT_EQ(trace.size(), 32u);
  for (const auto& r : trace) EXPECT_DOUBLE_EQ(r.arrival, 5.0);
}

TEST(TraceStats, ComputedCorrectly) {
  Trace trace{{0, 0.0, 10, 5}, {1, 2.0, 30, 15}, {2, 4.0, 20, 10}};
  const auto s = compute_stats(trace);
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.input_mean, 20.0);
  EXPECT_DOUBLE_EQ(s.output_mean, 10.0);
  EXPECT_DOUBLE_EQ(s.input_p50, 20.0);
  EXPECT_DOUBLE_EQ(s.duration, 4.0);
  EXPECT_DOUBLE_EQ(s.request_rate, 0.75);
  EXPECT_DOUBLE_EQ(s.total_tokens, 90.0);
  EXPECT_DOUBLE_EQ(s.input_max, 30.0);
}

TEST(TraceStats, EmptyTrace) {
  const auto s = compute_stats({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.input_mean, 0.0);
}

TEST(TraceCsv, RoundTrip) {
  Trace trace{{0, 0.5, 10, 5}, {1, 1.25, 30, 15}};
  std::stringstream ss;
  save_csv(trace, ss);
  const auto loaded = load_csv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].id, 1);
  EXPECT_DOUBLE_EQ(loaded[1].arrival, 1.25);
  EXPECT_EQ(loaded[1].prompt_len, 30);
  EXPECT_EQ(loaded[1].output_len, 15);
}

TEST(TraceCsv, MalformedLineThrows) {
  std::stringstream ss("id,arrival,prompt_len,output_len\nnot-a-number\n");
  EXPECT_THROW(load_csv(ss), std::runtime_error);
}

TEST(TraceCsv, EmptyStream) {
  std::stringstream ss;
  EXPECT_TRUE(load_csv(ss).empty());
}

class WorkloadMeans : public ::testing::TestWithParam<WorkloadSpec> {};

TEST_P(WorkloadMeans, PositiveLengthsAlways) {
  TraceBuilder builder(GetParam(), 21);
  ArrivalProcess p;
  p.rate = 50.0;
  for (const auto& r : builder.generate_count(p, 5000)) {
    EXPECT_GT(r.prompt_len, 0);
    EXPECT_GT(r.output_len, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, WorkloadMeans,
                         ::testing::Values(WorkloadSpec::sharegpt(),
                                           WorkloadSpec::azure_conv(),
                                           WorkloadSpec::tiny()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace gllm::workload
