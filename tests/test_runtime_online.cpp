// Online-serving features of the threaded runtime: arrival-time honouring
// and configurable sampling.

#include <gtest/gtest.h>

#include <set>

#include "runtime/pipeline_runtime.hpp"
#include "sched/token_throttle.hpp"

namespace gllm::runtime {
namespace {

RuntimeOptions tiny_options(int pp = 2) {
  RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = pp;
  opt.kv_capacity_tokens = 2048;
  opt.kv_block_size = 8;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

std::vector<nn::GenRequest> staggered_requests(const model::ModelConfig& cfg, int n,
                                               double gap) {
  std::vector<nn::GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = nn::synthetic_prompt(cfg, 700 + static_cast<std::uint64_t>(i), 10);
    r.max_new_tokens = 4;
    r.arrival = gap * i;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(RuntimeOnline, ArrivalsDelayService) {
  const auto cfg = model::presets::tiny();
  const auto reqs = staggered_requests(cfg, 4, 0.05);

  auto opt = tiny_options();
  opt.respect_arrivals = true;
  PipelineRuntime rt(opt, small_throttle());
  const auto report = rt.run(reqs);

  // The whole run must span at least the last arrival.
  EXPECT_GE(report.wall_seconds, 0.15);
  for (const auto& rec : report.requests) {
    EXPECT_TRUE(rec.completed);
    EXPECT_GT(rec.ttft, 0.0);  // measured from each request's own arrival
  }
}

TEST(RuntimeOnline, ArrivalsIgnoredByDefault) {
  const auto cfg = model::presets::tiny();
  auto reqs = staggered_requests(cfg, 4, 10.0);  // absurd gaps
  PipelineRuntime rt(tiny_options(), small_throttle());
  const auto report = rt.run(reqs);
  // Without respect_arrivals this completes immediately, not in 30+ seconds.
  EXPECT_LT(report.wall_seconds, 5.0);
  for (const auto& rec : report.requests) EXPECT_TRUE(rec.completed);
}

TEST(RuntimeOnline, OnlineTokensStillExact) {
  const auto cfg = model::presets::tiny();
  const auto reqs = staggered_requests(cfg, 6, 0.01);
  const auto ref = nn::generate_reference(cfg, 1234, reqs);

  auto opt = tiny_options(2);
  opt.respect_arrivals = true;
  PipelineRuntime rt(opt, small_throttle());
  const auto report = rt.run(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(report.requests[i].output, ref[i]);
}

TEST(RuntimeSampling, TopKDeterministicInSeed) {
  const auto cfg = model::presets::tiny();
  const auto reqs = staggered_requests(cfg, 4, 0.0);

  auto opt = tiny_options();
  opt.greedy_sampling = false;
  opt.top_k = 8;
  opt.temperature = 1.2f;
  opt.sampler_seed = 123;

  PipelineRuntime a(opt, small_throttle());
  PipelineRuntime b(opt, small_throttle());
  const auto ra = a.run(reqs);
  const auto rb = b.run(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(ra.requests[i].output, rb.requests[i].output);
}

TEST(RuntimeSampling, TopKDiffersFromGreedyEventually) {
  const auto cfg = model::presets::tiny();
  const auto reqs = staggered_requests(cfg, 8, 0.0);
  const auto greedy_ref = nn::generate_reference(cfg, 1234, reqs);

  auto opt = tiny_options();
  opt.greedy_sampling = false;
  opt.top_k = 16;
  opt.temperature = 2.0f;
  opt.sampler_seed = 5;
  PipelineRuntime rt(opt, small_throttle());
  const auto report = rt.run(reqs);

  int diffs = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    diffs += report.requests[i].output != greedy_ref[i] ? 1 : 0;
  EXPECT_GT(diffs, 0);  // hot sampling explores off the argmax path
  for (const auto& rec : report.requests) {
    for (const auto tok : rec.output) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, cfg.vocab);
    }
  }
}

}  // namespace
}  // namespace gllm::runtime
