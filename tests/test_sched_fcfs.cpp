#include "sched/fcfs.hpp"

#include <gtest/gtest.h>

namespace gllm::sched {
namespace {

ScheduleContext make_ctx(std::vector<WaitingSeq> waiting, std::vector<DecodeSeq> decodes,
                         std::int64_t kv_free_tokens = 1 << 20) {
  ScheduleContext ctx;
  ctx.pipeline_depth = 2;
  ctx.waiting = std::move(waiting);
  ctx.runnable_decodes = std::move(decodes);
  ctx.total_decode_seqs = static_cast<std::int64_t>(ctx.runnable_decodes.size());
  ctx.kv_free_tokens = kv_free_tokens;
  ctx.kv_free_rate = 0.9;
  return ctx;
}

TEST(Fcfs, WholePromptsOnlyNoChunking) {
  FcfsScheduler sched;
  auto ctx = make_ctx({{1, 500, 0, 0.0, false}}, {});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].n_tokens, 500);
  EXPECT_TRUE(plan.items[0].last_prefill_chunk);
}

TEST(Fcfs, HeadOfLineBlocking) {
  FcfsParams p;
  p.max_prefill_tokens = 400;
  FcfsScheduler sched(p);
  // Head request too large: nothing behind it is admitted either.
  auto ctx = make_ctx({{1, 500, 0, 0.0, false}, {2, 100, 0, 0.0, false}}, {});
  EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST(Fcfs, MultiplePromptsWithinBudget) {
  FcfsParams p;
  p.max_prefill_tokens = 600;
  FcfsScheduler sched(p);
  auto ctx = make_ctx({{1, 300, 0, 0.0, false}, {2, 300, 0, 0.0, false},
                       {3, 300, 0, 0.0, false}},
                      {});
  const auto plan = sched.plan(ctx);
  EXPECT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.prefill_tokens(), 600);
}

TEST(Fcfs, DecodesAlwaysIncluded) {
  FcfsScheduler sched;
  auto ctx = make_ctx({{1, 100, 0, 0.0, false}}, {{10, 5}, {11, 6}});
  const auto plan = sched.plan(ctx);
  EXPECT_EQ(plan.decode_tokens(), 2);
  EXPECT_EQ(plan.prefill_tokens(), 100);
}

TEST(Fcfs, KvExhaustionBlocksAdmission) {
  FcfsScheduler sched;
  auto ctx = make_ctx({{1, 100, 0, 0.0, false}}, {}, /*kv_free_tokens=*/50);
  EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST(Fcfs, SkipsInFlightChunks) {
  FcfsScheduler sched;
  auto ctx = make_ctx({{1, 100, 0, 0.0, /*in_flight=*/true}}, {});
  EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST(Fcfs, InvalidParamsThrow) {
  FcfsParams p;
  p.max_prefill_tokens = 0;
  EXPECT_THROW(FcfsScheduler{p}, std::invalid_argument);
}

TEST(Fcfs, NameIsOrca) { EXPECT_EQ(FcfsScheduler{}.name(), "orca-fcfs"); }

}  // namespace
}  // namespace gllm::sched
