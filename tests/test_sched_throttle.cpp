#include "sched/token_throttle.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gllm::sched {
namespace {

ScheduleContext make_ctx(std::int64_t waiting_tokens, std::int64_t total_decodes,
                         std::int64_t runnable, double kv_free, int depth = 4,
                         std::int64_t kv_free_tokens = 1 << 20) {
  ScheduleContext ctx;
  ctx.pipeline_depth = depth;
  if (waiting_tokens > 0)
    ctx.waiting.push_back(WaitingSeq{1, static_cast<int>(waiting_tokens), 0, 0.0, false});
  for (std::int64_t i = 0; i < runnable; ++i)
    ctx.runnable_decodes.push_back(DecodeSeq{100 + i, 50});
  ctx.total_decode_seqs = total_decodes;
  ctx.kv_free_rate = kv_free;
  ctx.kv_free_tokens = kv_free_tokens;
  return ctx;
}

// ---- eq. 1: WT only ---------------------------------------------------------

TEST(ThrottleEq1, WtOnlyMatchesFormula) {
  ThrottleParams p;
  p.enable_ut = false;
  p.iter_t = 8;
  p.max_p = 2048;
  p.min_p = 32;
  TokenThrottleScheduler sched(p);
  // #P = min(max(WP/T, MinP), MaxP)
  EXPECT_EQ(sched.prefill_budget(make_ctx(8000, 0, 0, 1.0)), 1000);
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 1.0)), 2048);   // capped
  EXPECT_EQ(sched.prefill_budget(make_ctx(64, 0, 0, 1.0)), 32);        // floored... but <= WP
}

TEST(ThrottleEq1, BudgetNeverExceedsWaitingTokens) {
  ThrottleParams p;
  p.enable_ut = false;
  p.min_p = 32;
  TokenThrottleScheduler sched(p);
  EXPECT_EQ(sched.prefill_budget(make_ctx(10, 0, 0, 1.0)), 10);
}

// ---- eq. 2: UT only -----------------------------------------------------------

TEST(ThrottleEq2, UtOnlyMatchesFormula) {
  ThrottleParams p;
  p.enable_wt = false;
  p.max_p = 2048;
  p.min_p = 32;
  p.kv_thresh = 0.0;
  TokenThrottleScheduler sched(p);
  // #P = max(MaxP * KV_free, MinP)
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 0.5)), 1024);
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 1.0)), 2048);
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 0.001)), 32);  // floor
}

// ---- eq. 3: combined ------------------------------------------------------------

TEST(ThrottleEq3, CombinedMatchesFormula) {
  ThrottleParams p;  // defaults: T=8, MaxP=2048, MinP=32, thresh=0.05
  TokenThrottleScheduler sched(p);
  // #P = max(min(WP/T, MaxP*(KVfree-thr)/(1-thr)), MinP)
  const double kv_free = 0.5;
  const double scaled = 2048.0 * (kv_free - 0.05) / 0.95;
  const auto expected = static_cast<std::int64_t>(std::llround(scaled));
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, kv_free)), expected);
  // WT term wins when waiting pool is small relative to KV headroom.
  EXPECT_EQ(sched.prefill_budget(make_ctx(800, 0, 0, 1.0)), 100);
}

TEST(ThrottleEq3, MinPFloorApplies) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  // WP/T = 4 -> floored to MinP=32 (but never above WP).
  EXPECT_EQ(sched.prefill_budget(make_ctx(32, 0, 0, 1.0)), 32);
  EXPECT_EQ(sched.prefill_budget(make_ctx(20, 0, 0, 1.0)), 20);
}

TEST(ThrottleThreshold, SuspendsPrefillNearCapacity) {
  TokenThrottleScheduler sched{ThrottleParams{}};  // kv_thresh = 0.05
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 0.04)), 0);
  EXPECT_GT(sched.prefill_budget(make_ctx(100000, 0, 0, 0.06)), 0);
}

TEST(ThrottleThreshold, ZeroWaitingAlwaysZero) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  EXPECT_EQ(sched.prefill_budget(make_ctx(0, 0, 0, 1.0)), 0);
}

// ---- eq. 4: decode --------------------------------------------------------------

TEST(ThrottleEq4, DecodeEvenShare) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  // #D = ceil(#RD / depth)
  EXPECT_EQ(sched.decode_budget(make_ctx(0, 100, 100, 1.0, 4)), 25);
  EXPECT_EQ(sched.decode_budget(make_ctx(0, 101, 101, 1.0, 4)), 26);
  EXPECT_EQ(sched.decode_budget(make_ctx(0, 3, 3, 1.0, 4)), 1);
  EXPECT_EQ(sched.decode_budget(make_ctx(0, 0, 0, 1.0, 4)), 0);
  EXPECT_EQ(sched.decode_budget(make_ctx(0, 7, 7, 1.0, 1)), 7);  // depth 1 = all
}

TEST(ThrottleEq4, PlanTakesMinOfBudgetAndRunnable) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  // 100 total decodes, depth 4 -> #D = 25; only 10 runnable -> take 10.
  auto ctx = make_ctx(0, 100, 10, 1.0, 4);
  EXPECT_EQ(sched.plan(ctx).decode_tokens(), 10);
  // 40 runnable -> take exactly 25.
  auto ctx2 = make_ctx(0, 100, 40, 1.0, 4);
  EXPECT_EQ(sched.plan(ctx2).decode_tokens(), 25);
}

// ---- plan assembly -----------------------------------------------------------------

TEST(ThrottlePlan, DecoupledBudgetsBothApplied) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  auto ctx = make_ctx(8000, 40, 40, 1.0, 4);
  const auto plan = sched.plan(ctx);
  EXPECT_EQ(plan.decode_tokens(), 10);     // 40/4
  EXPECT_EQ(plan.prefill_tokens(), 1000);  // 8000/8
  // Unlike Sarathi, the total is NOT tied to a fixed budget.
  EXPECT_EQ(plan.total_tokens(), 1010);
}

TEST(ThrottlePlan, PrefillSplitsAcrossWaitingFcfs) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  ScheduleContext ctx = make_ctx(0, 0, 0, 1.0);
  ctx.waiting.push_back(WaitingSeq{1, 600, 0, 0.0, false});
  ctx.waiting.push_back(WaitingSeq{2, 600, 0, 0.0, false});
  // WP = 1200, T = 8 -> 150 tokens: all from request 1.
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].seq, 1);
  EXPECT_EQ(plan.items[0].n_tokens, 150);
  EXPECT_FALSE(plan.items[0].last_prefill_chunk);
}

TEST(ThrottlePlan, LastChunkFlaggedAndSpillToNext) {
  ThrottleParams p;
  p.iter_t = 1;  // schedule everything waiting
  TokenThrottleScheduler sched(p);
  ScheduleContext ctx = make_ctx(0, 0, 0, 1.0);
  ctx.waiting.push_back(WaitingSeq{1, 100, 0, 0.0, false});
  ctx.waiting.push_back(WaitingSeq{2, 100, 0, 0.0, false});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_TRUE(plan.items[0].last_prefill_chunk);
  EXPECT_TRUE(plan.items[1].last_prefill_chunk);
}

TEST(ThrottlePlan, KvFreeTokensCapsPrefill) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  auto ctx = make_ctx(100000, 0, 0, 1.0, 4, /*kv_free_tokens=*/300);
  const auto plan = sched.plan(ctx);
  EXPECT_LE(plan.prefill_tokens(), 300);
}

TEST(ThrottlePlan, ChunkPipeliningDefaultOn) {
  TokenThrottleScheduler sched{ThrottleParams{}};
  ScheduleContext ctx = make_ctx(0, 0, 0, 1.0);
  ctx.waiting.push_back(WaitingSeq{1, 800, 100, 0.0, /*in_flight=*/true});
  const auto plan = sched.plan(ctx);
  ASSERT_EQ(plan.items.size(), 1u);  // scheduled despite chunk in flight (CPP)
}

TEST(ThrottlePlan, ChunkPipeliningCanBeDisabled) {
  ThrottleParams p;
  p.chunk_pipelining = false;
  TokenThrottleScheduler sched(p);
  ScheduleContext ctx = make_ctx(0, 0, 0, 1.0);
  ctx.waiting.push_back(WaitingSeq{1, 800, 100, 0.0, /*in_flight=*/true});
  EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST(ThrottlePlan, MaxBatchSeqsBoundsItems) {
  ThrottleParams p;
  p.max_batch_seqs = 4;
  TokenThrottleScheduler sched(p);
  auto ctx = make_ctx(0, 40, 40, 1.0, 1);  // depth 1 -> wants all 40
  EXPECT_EQ(sched.plan(ctx).items.size(), 4u);
}

// ---- variants ------------------------------------------------------------------------

TEST(ThrottleVariants, NamesReflectAblation) {
  ThrottleParams wo_wt;
  wo_wt.enable_wt = false;
  ThrottleParams wo_ut;
  wo_ut.enable_ut = false;
  EXPECT_EQ(TokenThrottleScheduler(ThrottleParams{}).name(), "token-throttle");
  EXPECT_EQ(TokenThrottleScheduler(wo_wt).name(), "token-throttle(w/o WT)");
  EXPECT_EQ(TokenThrottleScheduler(wo_ut).name(), "token-throttle(w/o UT)");
}

TEST(ThrottleVariants, WoUtIgnoresKvPressureAboveThreshold) {
  ThrottleParams p;
  p.enable_ut = false;
  TokenThrottleScheduler sched(p);
  // Same budget at 0.9 and 0.1 free (WT only), unlike the combined form.
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 0.9)),
            sched.prefill_budget(make_ctx(100000, 0, 0, 0.1)));
}

TEST(ThrottleVariants, WoWtIgnoresWaitingVolume) {
  ThrottleParams p;
  p.enable_wt = false;
  p.kv_thresh = 0.0;
  TokenThrottleScheduler sched(p);
  EXPECT_EQ(sched.prefill_budget(make_ctx(100000, 0, 0, 0.5)),
            sched.prefill_budget(make_ctx(2000, 0, 0, 0.5)));
}

// ---- parameter validation -------------------------------------------------------------

TEST(ThrottleParamsValidation, Throws) {
  ThrottleParams p;
  p.iter_t = 0;
  EXPECT_THROW(TokenThrottleScheduler{p}, std::invalid_argument);
  p = {};
  p.max_p = 0;
  EXPECT_THROW(TokenThrottleScheduler{p}, std::invalid_argument);
  p = {};
  p.min_p = -1;
  EXPECT_THROW(TokenThrottleScheduler{p}, std::invalid_argument);
  p = {};
  p.min_p = 4096;  // > max_p
  EXPECT_THROW(TokenThrottleScheduler{p}, std::invalid_argument);
  p = {};
  p.kv_thresh = 1.0;
  EXPECT_THROW(TokenThrottleScheduler{p}, std::invalid_argument);
  p = {};
  p.kv_thresh = -0.1;
  EXPECT_THROW(TokenThrottleScheduler{p}, std::invalid_argument);
}

// ---- property sweeps (sensitivity-study invariants) --------------------------------------

struct SweepCase {
  int iter_t;
  int max_p;
  int min_p;
  double kv_thresh;
};

class ThrottleSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ThrottleSweep, BudgetAlwaysWithinBounds) {
  const auto& c = GetParam();
  ThrottleParams p;
  p.iter_t = c.iter_t;
  p.max_p = c.max_p;
  p.min_p = c.min_p;
  p.kv_thresh = c.kv_thresh;
  TokenThrottleScheduler sched(p);
  for (std::int64_t wp : {0LL, 1LL, 100LL, 5000LL, 1000000LL}) {
    for (double kv : {0.0, 0.03, 0.1, 0.5, 1.0}) {
      const auto budget = sched.prefill_budget(make_ctx(wp, 0, 0, kv));
      EXPECT_GE(budget, 0);
      EXPECT_LE(budget, std::max<std::int64_t>(wp, 0));
      EXPECT_LE(budget, c.max_p);
      if (kv < c.kv_thresh || wp == 0) {
        EXPECT_EQ(budget, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    HyperParams, ThrottleSweep,
    ::testing::Values(SweepCase{1, 2048, 32, 0.05}, SweepCase{2, 2048, 32, 0.05},
                      SweepCase{4, 2048, 32, 0.05}, SweepCase{8, 2048, 32, 0.05},
                      SweepCase{16, 2048, 32, 0.05}, SweepCase{8, 512, 32, 0.05},
                      SweepCase{8, 1024, 32, 0.05}, SweepCase{8, 4096, 32, 0.05},
                      SweepCase{8, 2048, 0, 0.05}, SweepCase{8, 2048, 128, 0.05},
                      SweepCase{8, 2048, 32, 0.0}, SweepCase{8, 2048, 32, 0.1},
                      SweepCase{8, 2048, 32, 0.2}));

class ThrottleDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThrottleDepthSweep, DecodeShareCoversAllInDepthRounds) {
  const int depth = GetParam();
  TokenThrottleScheduler sched{ThrottleParams{}};
  for (std::int64_t rd : {1LL, 5LL, 16LL, 100LL, 999LL}) {
    const auto share = sched.decode_budget(make_ctx(0, rd, rd, 1.0, depth));
    EXPECT_GE(share * depth, rd);             // depth batches cover everyone
    EXPECT_LE((share - 1) * depth, rd - 1);   // share is the minimal such value
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ThrottleDepthSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace gllm::sched
