#include "util/args.hpp"

#include <gtest/gtest.h>

namespace gllm::util {
namespace {

ArgParser make_parser() {
  ArgParser args("test", "test parser");
  args.add_option("rate", "request rate", "4");
  args.add_option("model", "model name", "qwen");
  args.add_flag("verbose", "chatty output");
  return args;
}

bool parse(ArgParser& args, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "test");
  return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {}));
  EXPECT_EQ(args.get("rate"), "4");
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 4.0);
  EXPECT_FALSE(args.has("verbose"));
}

TEST(ArgParser, SpaceSeparatedValue) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {"--rate", "7.5"}));
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 7.5);
}

TEST(ArgParser, EqualsForm) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {"--rate=12", "--model=llama"}));
  EXPECT_EQ(args.get_int("rate"), 12);
  EXPECT_EQ(args.get("model"), "llama");
}

TEST(ArgParser, FlagsSet) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {"--verbose"}));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(ArgParser, PositionalCollected) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {"a.csv", "--rate", "2", "b.csv"}));
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"a.csv", "b.csv"}));
}

TEST(ArgParser, UnknownOptionFails) {
  auto args = make_parser();
  EXPECT_FALSE(parse(args, {"--nope", "1"}));
  EXPECT_NE(args.error().find("unknown option"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto args = make_parser();
  EXPECT_FALSE(parse(args, {"--rate"}));
  EXPECT_NE(args.error().find("requires a value"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails) {
  auto args = make_parser();
  EXPECT_FALSE(parse(args, {"--verbose=1"}));
}

TEST(ArgParser, BadNumberThrows) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {"--rate", "abc"}));
  EXPECT_THROW(args.get_double("rate"), std::invalid_argument);
  EXPECT_THROW(args.get_int("rate"), std::invalid_argument);
}

TEST(ArgParser, UndeclaredGetThrows) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {}));
  EXPECT_THROW(args.get("missing"), std::invalid_argument);
}

TEST(ArgParser, HelpFlagBuiltIn) {
  auto args = make_parser();
  ASSERT_TRUE(parse(args, {"--help"}));
  EXPECT_TRUE(args.has("help"));
  EXPECT_NE(args.usage().find("--rate"), std::string::npos);
  EXPECT_NE(args.usage().find("default: 4"), std::string::npos);
}

TEST(ArgParser, Int64RoundTrip) {
  ArgParser args("t", "d");
  args.add_option("big", "large value", "0");
  const char* argv[] = {"t", "--big", "123456789012"};
  ASSERT_TRUE(args.parse(3, argv));
  EXPECT_EQ(args.get_int64("big"), 123456789012LL);
}

}  // namespace
}  // namespace gllm::util
