// Concurrency soak for the epoll HTTP front-end: N simultaneous SSE streams
// must each be byte-identical to the greedy-sampling reference, a stalled
// client (connects, requests, never reads) must neither delay the other
// streams nor survive the slow-client disconnect policy, and the SLO-aware
// admission shed must answer 503 + Retry-After when the waiting-prefill
// backlog exceeds the configured depth. Labelled `soak` in ctest: excluded
// from the default unit run, executed by the dedicated soak CI step and
// `tools/check.sh --soak`.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "nn/reference.hpp"
#include "obs/obs.hpp"
#include "sched/token_throttle.hpp"
#include "server/http_server.hpp"

namespace gllm::server {
namespace {

constexpr std::uint64_t kSeed = 1234;

runtime::RuntimeOptions tiny_options() {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = 2;
  opt.kv_capacity_tokens = 4096;
  opt.kv_block_size = 8;
  opt.weight_seed = kSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 4;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

std::string streaming_body(std::int64_t id, const std::vector<nn::TokenId>& prompt,
                           int max_tokens) {
  std::string body = "{\"id\":" + std::to_string(id) + ",\"prompt\":[";
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    if (i) body += ",";
    body += std::to_string(prompt[i]);
  }
  body += "],\"max_tokens\":" + std::to_string(max_tokens) + ",\"stream\":true}";
  return body;
}

std::string post_request(const std::string& body) {
  return "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

/// The exact SSE byte stream the server must emit for one completed greedy
/// generation: one token event per sampled token, the terminal done event,
/// then the [DONE] sentinel.
std::string expected_sse_bytes(std::int64_t id, const std::vector<nn::TokenId>& tokens) {
  std::string out;
  for (const auto token : tokens)
    out += "data: {\"id\":" + std::to_string(id) + ",\"token\":" + std::to_string(token) +
           "}\n\n";
  out += "data: {\"id\":" + std::to_string(id) + ",\"done\":true,\"tokens\":" +
         std::to_string(tokens.size()) + ",\"finish_reason\":\"length\"}\n\n" +
         "data: [DONE]\n\n";
  return out;
}

struct StreamCapture {
  int status = -1;
  std::string head;
  std::string body;       ///< raw bytes after the header terminator
  double ttft_s = -1.0;   ///< first token event
  bool eof = false;
};

/// Raw-socket streaming client: sends one streaming completion, reads to EOF,
/// records the first-token instant.
StreamCapture stream_completion(int port, std::int64_t id,
                                const std::vector<nn::TokenId>& prompt, int max_tokens,
                                double timeout_s = 60.0) {
  StreamCapture cap;
  const int fd = net::connect_tcp("127.0.0.1", port);
  if (fd < 0) return cap;
  const std::string req = post_request(streaming_body(id, prompt, max_tokens));
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  if (!net::send_all(fd, req.data(), req.size())) {
    net::close_fd(fd);
    return cap;
  }
  std::string raw;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  for (;;) {
    const double remaining = timeout_s - elapsed();
    if (remaining <= 0.0) break;
    if (!net::wait_readable(fd, remaining)) break;
    const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
    if (n == 0) {
      cap.eof = true;
      break;
    }
    if (n < 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        cap.head = raw.substr(0, header_end);
        cap.status = std::atoi(cap.head.c_str() + cap.head.find(' ') + 1);
      }
    }
    if (cap.ttft_s < 0.0 && header_end != std::string::npos &&
        raw.find("\"token\":", header_end) != std::string::npos)
      cap.ttft_s = elapsed();
  }
  net::close_fd(fd);
  if (header_end != std::string::npos) cap.body = raw.substr(header_end + 4);
  return cap;
}

TEST(ServerConcurrentSoak, SixtyFourStreamsAreByteIdenticalToReference) {
  constexpr int kStreams = 64;
  const auto cfg = model::presets::tiny();

  // Ground truth: greedy reference continuations for all 64 prompts.
  std::vector<nn::GenRequest> requests(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    requests[static_cast<std::size_t>(i)].id = i;
    requests[static_cast<std::size_t>(i)].prompt =
        nn::synthetic_prompt(cfg, 300 + static_cast<std::uint64_t>(i), 6 + i % 5);
    requests[static_cast<std::size_t>(i)].max_new_tokens = 3 + i % 6;
  }
  const auto reference = nn::generate_reference(cfg, kSeed, requests);

  obs::Observability obs;
  auto options = tiny_options();
  options.obs = &obs;
  runtime::PipelineService service(options, small_throttle());
  service.start();
  ServerOptions so;
  so.max_conns = 2 * kStreams;
  HttpServer server(service, so);
  server.start();

  std::vector<std::thread> clients;
  std::vector<StreamCapture> captures(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    clients.emplace_back([&, i] {
      captures[static_cast<std::size_t>(i)] =
          stream_completion(server.port(), i, requests[static_cast<std::size_t>(i)].prompt,
                            requests[static_cast<std::size_t>(i)].max_new_tokens);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kStreams; ++i) {
    const auto& cap = captures[static_cast<std::size_t>(i)];
    ASSERT_EQ(cap.status, 200) << "stream " << i;
    EXPECT_NE(cap.head.find("Content-Type: text/event-stream"), std::string::npos)
        << "stream " << i;
    // Byte-identical to the single-client reference rendering.
    EXPECT_EQ(cap.body, expected_sse_bytes(i, reference[static_cast<std::size_t>(i)]))
        << "stream " << i;
    EXPECT_GE(cap.ttft_s, 0.0) << "stream " << i;
  }
  EXPECT_EQ(obs.http().slow_client_disconnects->value(), 0);

  server.stop();
  service.stop();
}

TEST(ServerConcurrentSoak, StalledClientIsDisconnectedAndDoesNotDelayOthers) {
  const auto cfg = model::presets::tiny();
  obs::Observability obs;
  auto options = tiny_options();
  options.obs = &obs;
  runtime::PipelineService service(options, small_throttle());
  service.start();

  ServerOptions so;
  // Make backpressure observable fast: tiny kernel send buffer, tiny unsent
  // backlog allowance.
  so.sndbuf_bytes = 4096;
  so.max_write_buffer = 2048;
  HttpServer server(service, so);
  server.start();

  // The stalled client: sends a long streaming request, then never reads.
  // Shrinking its receive buffer (together with the server's shrunken send
  // buffer above) caps how many bytes TCP will absorb before the server's
  // writes hit EAGAIN and its unsent backlog starts growing.
  const int stalled = net::connect_tcp("127.0.0.1", server.port());
  ASSERT_GE(stalled, 0);
  {
    const int rcvbuf = 1024;
    ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  const auto stall_prompt = nn::synthetic_prompt(cfg, 900, 8);
  const std::string stall_req = post_request(streaming_body(77, stall_prompt, 1500));
  ASSERT_TRUE(net::send_all(stalled, stall_req.data(), stall_req.size()));
  // Deliberately never recv() on `stalled`.

  // Meanwhile: normal streaming clients must complete with correct bytes and
  // a TTFT that proves they were not serialized behind the stalled stream.
  constexpr int kOthers = 8;
  std::vector<nn::GenRequest> requests(kOthers);
  for (int i = 0; i < kOthers; ++i) {
    requests[static_cast<std::size_t>(i)].id = i;
    requests[static_cast<std::size_t>(i)].prompt =
        nn::synthetic_prompt(cfg, 700 + static_cast<std::uint64_t>(i), 8);
    requests[static_cast<std::size_t>(i)].max_new_tokens = 4;
  }
  const auto reference = nn::generate_reference(cfg, kSeed, requests);

  std::vector<std::thread> clients;
  std::vector<StreamCapture> captures(kOthers);
  for (int i = 0; i < kOthers; ++i) {
    clients.emplace_back([&, i] {
      captures[static_cast<std::size_t>(i)] =
          stream_completion(server.port(), i, requests[static_cast<std::size_t>(i)].prompt,
                            requests[static_cast<std::size_t>(i)].max_new_tokens, 30.0);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kOthers; ++i) {
    const auto& cap = captures[static_cast<std::size_t>(i)];
    ASSERT_EQ(cap.status, 200) << "stream " << i;
    EXPECT_EQ(cap.body, expected_sse_bytes(i, reference[static_cast<std::size_t>(i)]))
        << "stream " << i;
    // Not delayed behind the stalled stream's 1500-token generation: TTFT is
    // bounded by a small multiple of a healthy run, far under the stalled
    // stream's full duration.
    EXPECT_LT(cap.ttft_s, 10.0) << "stream " << i;
  }

  // The stalled client must be disconnected by the slow-client policy: its
  // socket reaches EOF/reset while the server keeps serving, and the metric
  // records the kill.
  // First wait for the server-side verdict (we must NOT read the socket
  // while waiting — the whole point is that the client never drains)...
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (obs.http().slow_client_disconnects->value() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GE(obs.http().slow_client_disconnects->value(), 1);

  // ...then drain: the connection must reach EOF/reset, proving the server
  // really cut it off rather than just counting it.
  bool disconnected = false;
  char sink[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    if (!net::wait_readable(stalled, 1.0)) continue;
    const ssize_t n = net::recv_some(stalled, sink, sizeof(sink));
    if (n <= 0) {
      disconnected = true;
      break;
    }
  }
  EXPECT_TRUE(disconnected);
  net::close_fd(stalled);

  server.stop();
  service.stop();
}

TEST(ServerConcurrentSoak, BacklogBeyondShedDepthAnswers503RetryAfter) {
  const auto cfg = model::presets::tiny();
  obs::Observability obs;
  auto options = tiny_options();
  options.obs = &obs;
  // Starve prefill, not KV: plenty of KV capacity (no preemption thrash) but
  // a ~4-token per-iteration prefill budget against 600-token prompts keeps
  // requests parked in the waiting-prefill queue for a sustained window —
  // the backlog the shed threshold is measured against.
  options.kv_capacity_tokens = 16384;
  sched::ThrottleParams p;
  p.max_p = 4;
  p.min_p = 1;
  p.iter_t = 1;
  runtime::PipelineService service(options,
                                   std::make_shared<sched::TokenThrottleScheduler>(p));
  service.start();

  ServerOptions so;
  so.shed_depth = 3;
  so.retry_after_s = 7;
  HttpServer server(service, so);
  server.start();

  // Fill the backlog with background streaming requests. Arrivals are
  // staggered so the early ones are ADMITTED (and pile up in waiting-prefill
  // behind the KV wall) instead of shedding each other through a momentary
  // inbox spike — the backlog must be real queued work, not a burst artifact.
  constexpr int kBackground = 8;
  std::vector<std::thread> background;
  for (int i = 0; i < kBackground; ++i) {
    background.emplace_back([&, i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10 * i));
      (void)stream_completion(server.port(), 1000 + i,
                              nn::synthetic_prompt(cfg, 50 + static_cast<std::uint64_t>(i), 600),
                              8, 60.0);
    });
  }

  // Probe until the shed fires: 503 with the configured Retry-After. Each
  // probe carries its own 250ms deadline — a probe that races admission
  // (queue momentarily below shed_depth) would otherwise wait FCFS behind the
  // entire starved backlog and block the loop past the shed window. A shed
  // answer is immediate, so the deadline only ever abandons admitted probes.
  bool shed_seen = false;
  std::int64_t probe_id = 2000;  // unique per probe: ids may not be reused in flight
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!shed_seen && std::chrono::steady_clock::now() < deadline) {
    const auto prompt = nn::synthetic_prompt(cfg, 99, 4);
    const std::string body = streaming_body(probe_id++, prompt, 4);
    const int fd = net::connect_tcp("127.0.0.1", server.port());
    ASSERT_GE(fd, 0);
    const std::string req =
        "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    ASSERT_TRUE(net::send_all(fd, req.data(), req.size()));
    std::string raw;
    char buf[4096];
    const auto probe_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
    while (raw.find("overloaded") == std::string::npos) {
      const double left = std::chrono::duration<double>(
                              probe_deadline - std::chrono::steady_clock::now())
                              .count();
      if (left <= 0.0 || !net::wait_readable(fd, left)) break;
      const ssize_t n = net::recv_some(fd, buf, sizeof(buf));
      if (n <= 0) break;
      raw.append(buf, static_cast<std::size_t>(n));
    }
    net::close_fd(fd);
    if (raw.find("HTTP/1.1 503") != std::string::npos &&
        raw.find("Retry-After: 7") != std::string::npos &&
        raw.find("overloaded") != std::string::npos) {
      shed_seen = true;
    }
  }
  for (auto& t : background) t.join();

  EXPECT_TRUE(shed_seen) << "no 503+Retry-After within the probe window";
  EXPECT_GE(obs.http().shed->value(), 1);

  server.stop();
  service.stop();
}

}  // namespace
}  // namespace gllm::server
