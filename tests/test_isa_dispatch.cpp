// Forced-dispatch proof bar: under GLLM_ISA=scalar and GLLM_ISA=avx2 the
// full runtime — every (pp, tp) in {1,2}^2, plus a speculative-decoding
// pipeline and the int8 numeric mode — streams tokens identical to the
// reference decoder resolved onto the same path, and /v1/stats reports the
// active ISA and quant mode. AVX2 variants self-skip on hosts without
// AVX2+FMA.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "nn/kernels/kernels.hpp"
#include "nn/reference.hpp"
#include "obs/obs.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "sched/token_throttle.hpp"
#include "server/http_server.hpp"
#include "spec/spec.hpp"

namespace gllm {
namespace {

constexpr std::uint64_t kWeightSeed = 1234;

class ScopedIsaEnv {
 public:
  explicit ScopedIsaEnv(const char* value) {
    const char* old = std::getenv("GLLM_ISA");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv("GLLM_ISA", value, 1);
  }
  ~ScopedIsaEnv() {
    if (had_old_)
      ::setenv("GLLM_ISA", old_.c_str(), 1);
    else
      ::unsetenv("GLLM_ISA");
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

bool isa_env_supported(const std::string& isa) {
  return isa != "avx2" || nn::kernels::isa_available(nn::kernels::Isa::kAvx2);
}

std::vector<nn::GenRequest> make_requests(const model::ModelConfig& cfg, int n) {
  std::vector<nn::GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = nn::synthetic_prompt(cfg, 800 + static_cast<std::uint64_t>(i),
                                    6 + (i * 5) % 20);
    r.max_new_tokens = 3 + i % 7;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

runtime::RuntimeOptions tiny_options(int pp, int tp, model::QuantMode quant) {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.model.quant = quant;
  opt.pp = pp;
  opt.tp = tp;
  opt.kv_capacity_tokens = 2048;
  opt.kv_block_size = 8;
  opt.weight_seed = kWeightSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 4;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

/// Reference and runtime resolved onto the same forced path must agree
/// token-for-token (no golden files: both halves are computed in-process).
void expect_runtime_matches_reference(int pp, int tp, model::QuantMode quant,
                                      spec::Mode spec_mode = spec::Mode::kOff) {
  auto cfg = model::presets::tiny();
  cfg.quant = quant;
  const auto reqs = make_requests(cfg, 8);
  const auto ref = nn::generate_reference(cfg, kWeightSeed, reqs);

  auto opt = tiny_options(pp, tp, quant);
  opt.spec.mode = spec_mode;
  opt.spec.k = 4;
  runtime::PipelineRuntime rt(opt, small_throttle());
  const auto report = rt.run(reqs);
  ASSERT_EQ(report.requests.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(report.requests[i].completed);
    EXPECT_EQ(report.requests[i].output, ref[i])
        << "request " << i << " diverged at pp=" << pp << " tp=" << tp
        << " quant=" << model::to_string(quant);
  }
}

/// (pp, tp, GLLM_ISA) — the forced-dispatch grid.
class ForcedIsaTokenEquality
    : public ::testing::TestWithParam<std::tuple<int, int, std::string>> {};

TEST_P(ForcedIsaTokenEquality, RuntimeMatchesReferenceOnForcedPath) {
  const auto [pp, tp, isa] = GetParam();
  if (!isa_env_supported(isa)) GTEST_SKIP() << "host cannot execute AVX2+FMA";
  ScopedIsaEnv env(isa.c_str());
  expect_runtime_matches_reference(pp, tp, model::QuantMode::kFp32);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ForcedIsaTokenEquality,
    ::testing::Combine(::testing::Values(1, 2), ::testing::Values(1, 2),
                       ::testing::Values(std::string("scalar"), std::string("avx2"))),
    [](const ::testing::TestParamInfo<std::tuple<int, int, std::string>>& info) {
      return "pp" + std::to_string(std::get<0>(info.param)) + "_tp" +
             std::to_string(std::get<1>(info.param)) + "_" + std::get<2>(info.param);
    });

TEST(ForcedIsaSpecDecode, NgramPipelineTokenIdenticalPerPath) {
  for (const std::string isa : {"scalar", "avx2"}) {
    if (!isa_env_supported(isa)) continue;
    ScopedIsaEnv env(isa.c_str());
    expect_runtime_matches_reference(2, 1, model::QuantMode::kFp32, spec::Mode::kNgram);
  }
}

TEST(ForcedIsaInt8, RuntimeMatchesInt8ReferencePerPath) {
  // int8 is a declared numeric mode: its goldens are the int8 reference run
  // through the same kernels, never the fp32 stream.
  for (const std::string isa : {"scalar", "avx2"}) {
    if (!isa_env_supported(isa)) continue;
    ScopedIsaEnv env(isa.c_str());
    expect_runtime_matches_reference(2, 2, model::QuantMode::kInt8);
  }
}

TEST(ForcedIsaDeterminism, RerunsStreamBitIdenticalTokensPerPath) {
  for (const std::string isa : {"scalar", "avx2"}) {
    if (!isa_env_supported(isa)) continue;
    ScopedIsaEnv env(isa.c_str());
    const auto cfg = model::presets::tiny();
    const auto reqs = make_requests(cfg, 6);
    runtime::PipelineRuntime a(tiny_options(2, 1, model::QuantMode::kFp32),
                               small_throttle());
    runtime::PipelineRuntime b(tiny_options(2, 1, model::QuantMode::kFp32),
                               small_throttle());
    const auto ra = a.run(reqs);
    const auto rb = b.run(reqs);
    ASSERT_EQ(ra.requests.size(), rb.requests.size());
    for (std::size_t i = 0; i < ra.requests.size(); ++i)
      EXPECT_EQ(ra.requests[i].output, rb.requests[i].output)
          << "rerun diverged on " << isa << " request " << i;
  }
}

TEST(StageKernelConfig, ReflectsForcedIsaAndQuant) {
  ScopedIsaEnv env("scalar");
  auto cfg = model::presets::tiny();
  model::StageShape shape;
  shape.first_layer = 0;
  shape.n_layers = cfg.n_layers;
  shape.has_embedding = true;
  shape.has_lm_head = true;

  cfg.quant = model::QuantMode::kInt8;
  nn::TransformerStage int8_stage(cfg, shape, kWeightSeed, 16, 8);
  EXPECT_EQ(int8_stage.kernel_config().isa, nn::kernels::Isa::kScalar);
  EXPECT_EQ(int8_stage.kernel_config().quant, model::QuantMode::kInt8);

  cfg.quant = model::QuantMode::kFp32;
  nn::TransformerStage fp32_stage(cfg, shape, kWeightSeed, 16, 8);
  // int8 packed caches must be roughly 4x smaller (1 byte vs 4 per weight,
  // plus the K-fold-smaller per-channel scales).
  EXPECT_LT(int8_stage.packed_weight_bytes(), fp32_stage.packed_weight_bytes() / 3);

  // An explicit kernel config wins over the env and writes its quant back.
  nn::TransformerStage forced(
      cfg, shape, kWeightSeed, 16, 8, 1,
      nn::kernels::Config{nn::kernels::Isa::kScalar, model::QuantMode::kInt8});
  EXPECT_EQ(forced.config().quant, model::QuantMode::kInt8);
  EXPECT_EQ(forced.packed_weight_bytes(), int8_stage.packed_weight_bytes());
}

TEST(StatsEndpoint, ReportsActiveIsaAndQuantMode) {
  ScopedIsaEnv env("scalar");
  obs::Observability observability;
  auto opt = tiny_options(2, 1, model::QuantMode::kInt8);
  opt.obs = &observability;
  runtime::PipelineService service(opt, small_throttle());
  service.start();
  server::HttpServer server(service);
  server.start();

  std::string body;
  const int status = server::http_request(server.port(), "GET", "/v1/stats", "", body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"isa\":\"scalar\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"quant\":\"int8\""), std::string::npos) << body;

  server.stop();
  service.stop();
}

}  // namespace
}  // namespace gllm
