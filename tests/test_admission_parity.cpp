// Cross-executor admission parity: the discrete-event PipelineEngine and the
// real threaded runtime share one sequence-lifecycle/admission implementation
// (engine::AdmissionCore), so the same request set under the same scheduler
// must make bit-identical admission decisions — identical preemption counts,
// identical per-request scheduled-chunk sequences, and token-equal outputs —
// even though one executor runs in simulated time and the other on threads.
//
// The argument (DESIGN.md §5, decision 5): with respect_arrivals=false and a
// time-independent scheduler, both executors produce the same interleaving of
// (admit, complete) events, so every ScheduleContext snapshot matches. The
// one asymmetry is the very first plan() call — the DES has processed only
// the first arrival event when it fires, while the runtime has enqueued every
// request — so the fixtures give request 0 a prompt larger than any prefill
// budget, making the first micro-batch single-sequence on both sides.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/pipeline_engine.hpp"
#include "model/cost.hpp"
#include "nn/reference.hpp"
#include "obs/obs.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "sched/sarathi.hpp"
#include "sched/token_throttle.hpp"

namespace gllm {
namespace {

constexpr std::uint64_t kWeightSeed = 1234;
constexpr int kBlockSize = 8;
constexpr int kHeadPrompt = 160;  ///< request 0: larger than any prefill budget

std::vector<nn::GenRequest> make_requests(int n) {
  const auto cfg = model::presets::tiny();
  std::vector<nn::GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    nn::GenRequest r;
    r.id = i;
    const int prompt_len = i == 0 ? kHeadPrompt : 12 + (i * 7) % 24;
    r.prompt = nn::synthetic_prompt(cfg, 500 + static_cast<std::uint64_t>(i), prompt_len);
    r.max_new_tokens = i == 0 ? 4 : 3 + i % 6;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

workload::Trace to_trace(const std::vector<nn::GenRequest>& reqs) {
  workload::Trace trace;
  for (const auto& r : reqs)
    trace.push_back(workload::RequestSpec{r.id, 0.0, static_cast<int>(r.prompt.size()),
                                          r.max_new_tokens});
  return trace;
}

/// An EngineConfig whose derived KV capacity lands in [lo, hi] tokens, found
/// by bisecting gpu_memory_util (capacity is monotone in it). This is how the
/// DES side and the runtime side are given the *same* pool size: the runtime
/// takes the engine's derived capacity verbatim.
engine::EngineConfig engine_config(int pp, std::int64_t lo, std::int64_t hi) {
  engine::EngineConfig cfg;
  cfg.model = model::presets::tiny();
  cfg.cluster = hw::clusters::l20_node(4);
  cfg.pp = pp;
  cfg.kv_block_size = kBlockSize;
  cfg.record_iterations = false;

  const model::PartitionPlan plan(cfg.model, pp);
  double u_lo = 0.0, u_hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (u_lo + u_hi);
    const std::int64_t cap = model::kv_token_capacity(plan, cfg.cluster.gpu, mid, cfg.tp);
    if (cap < lo) {
      u_lo = mid;
    } else if (cap > hi) {
      u_hi = mid;
    } else {
      cfg.gpu_memory_util = mid;
      return cfg;
    }
  }
  throw std::logic_error("no gpu_memory_util yields a capacity in the window");
}

runtime::RuntimeOptions runtime_options(int pp, std::int64_t kv_capacity) {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = pp;
  opt.kv_capacity_tokens = kv_capacity;
  opt.kv_block_size = kBlockSize;
  opt.weight_seed = kWeightSeed;
  return opt;
}

void expect_parity(const engine::RunResult& des, const runtime::RuntimeReport& rt) {
  EXPECT_EQ(des.preemptions, rt.preemptions);
  ASSERT_EQ(des.requests.size(), rt.requests.size());
  for (std::size_t i = 0; i < des.requests.size(); ++i) {
    const auto& d = des.requests[i];
    const auto& r = rt.requests[i];
    ASSERT_EQ(d.id, r.id);
    EXPECT_TRUE(d.completed) << "request " << d.id;
    EXPECT_TRUE(r.completed) << "request " << r.id;
    EXPECT_EQ(d.scheduled_chunks, r.scheduled_chunks) << "request " << d.id;
    EXPECT_EQ(d.preemptions, r.preemptions) << "request " << d.id;
    EXPECT_EQ(static_cast<std::size_t>(d.output_len), r.output.size())
        << "request " << d.id;
  }
}

sched::ThrottleParams tight_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;  // kHeadPrompt / iter_t >= max_p: first budget caps at max_p
  // The "w/o UT" ablation: admit prefill regardless of KV pressure, so the
  // tight pool actually triggers recompute preemptions to compare.
  p.enable_ut = false;
  p.kv_thresh = 0.0;
  return p;
}

class AdmissionParity : public ::testing::TestWithParam<int> {};

TEST_P(AdmissionParity, TokenThrottleUnderKvPressure) {
  const int pp = GetParam();
  const auto reqs = make_requests(10);
  // Window floor clears the largest request (164 tokens, so the DES does not
  // reject it up front) while total demand (~420 tokens) forces preemptions.
  const auto cfg = engine_config(pp, 176, 192);

  engine::PipelineEngine des(cfg, std::make_shared<sched::TokenThrottleScheduler>(
                                      tight_throttle()));
  const auto des_result = des.run(to_trace(reqs));

  runtime::PipelineRuntime rt(
      runtime_options(pp, des.kv_capacity_tokens()),
      std::make_shared<sched::TokenThrottleScheduler>(tight_throttle()));
  const auto rt_report = rt.run(reqs);

  EXPECT_GT(des_result.preemptions, 0);  // otherwise the scenario proves little
  expect_parity(des_result, rt_report);

  // And the runtime's outputs are still the reference model's, bit for bit.
  const auto ref = nn::generate_reference(model::presets::tiny(), kWeightSeed, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(rt_report.requests[i].output, ref[i]) << "request " << i;
}

// pp >= 3 is excluded deliberately: with deeper pipelines the DES can retire
// micro-batch k before batch k+2 clears stage 0, an ordering the threaded
// runtime's admit-until-depth loop cannot reproduce, so exact admission parity
// is only guaranteed at depths 1 and 2.
INSTANTIATE_TEST_SUITE_P(Depths, AdmissionParity, ::testing::Values(1, 2));

// Trace-level parity: both executors report the committed scheduling
// decisions as "throttle.decision" instants (emitted only on non-empty plans,
// because idle-poll counts legitimately differ between a DES and a threaded
// driver). With shared admission, the ordered sequence of (#P, #D) token
// pairs must be identical — the observability layer sees one system, not two.
TEST(AdmissionParityTrace, ThrottleDecisionSequencesMatch) {
  const auto reqs = make_requests(10);
  const auto cfg_base = engine_config(2, 176, 192);

  obs::ObsConfig obs_cfg;
  obs_cfg.tracing = true;

  obs::Observability des_obs(obs_cfg);
  auto cfg = cfg_base;
  cfg.obs = &des_obs;
  engine::PipelineEngine des(cfg, std::make_shared<sched::TokenThrottleScheduler>(
                                      tight_throttle()));
  const auto des_result = des.run(to_trace(reqs));
  EXPECT_GT(des_result.preemptions, 0);

  obs::Observability rt_obs(obs_cfg);
  auto opt = runtime_options(2, des.kv_capacity_tokens());
  opt.obs = &rt_obs;
  runtime::PipelineRuntime rt(
      opt, std::make_shared<sched::TokenThrottleScheduler>(tight_throttle()));
  const auto rt_report = rt.run(reqs);
  expect_parity(des_result, rt_report);

  auto decisions = [](const obs::Observability& obs) {
    std::vector<std::pair<int, int>> out;
    for (const auto& ev : obs.tracer().snapshot()) {
      if (std::string_view(ev.name) == "throttle.decision")
        out.emplace_back(static_cast<int>(ev.arg("p")), static_cast<int>(ev.arg("d")));
    }
    return out;
  };
  const auto des_decisions = decisions(des_obs);
  const auto rt_decisions = decisions(rt_obs);
  ASSERT_FALSE(des_decisions.empty());
  EXPECT_EQ(des_decisions, rt_decisions);
}

TEST(AdmissionParityAmple, SarathiNoPressure) {
  const auto reqs = make_requests(8);
  const auto cfg = engine_config(2, 2048, 2304);

  sched::SarathiParams p;
  p.token_budget = 48;  // < kHeadPrompt: first micro-batch is single-sequence
  engine::PipelineEngine des(cfg, std::make_shared<sched::SarathiScheduler>(p));
  const auto des_result = des.run(to_trace(reqs));

  runtime::PipelineRuntime rt(runtime_options(2, des.kv_capacity_tokens()),
                              std::make_shared<sched::SarathiScheduler>(p));
  const auto rt_report = rt.run(reqs);

  EXPECT_EQ(des_result.preemptions, 0);
  expect_parity(des_result, rt_report);
}

}  // namespace
}  // namespace gllm
