// End-to-end prefix caching in the real threaded runtime: requests sharing a
// prompt prefix reuse physical KV blocks (and skip their computation) while
// producing bit-identical tokens.

#include <gtest/gtest.h>

#include "runtime/pipeline_runtime.hpp"
#include "sched/token_throttle.hpp"

namespace gllm::runtime {
namespace {

constexpr std::uint64_t kSeed = 1234;

RuntimeOptions options(bool caching, int pp = 2) {
  RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = pp;
  opt.kv_capacity_tokens = 4096;
  opt.kv_block_size = 8;
  opt.weight_seed = kSeed;
  opt.prefix_caching = caching;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

/// Requests that share a long common prefix (a chat template) and diverge in
/// a short tail.
std::vector<nn::GenRequest> shared_prefix_requests(const model::ModelConfig& cfg, int n,
                                                   int prefix_len, int tail_len) {
  const auto prefix = nn::synthetic_prompt(cfg, 42, prefix_len);
  std::vector<nn::GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = prefix;
    const auto tail = nn::synthetic_prompt(cfg, 9000 + static_cast<std::uint64_t>(i), tail_len);
    r.prompt.insert(r.prompt.end(), tail.begin(), tail.end());
    r.max_new_tokens = 5;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(RuntimePrefixCache, TokensIdenticalWithCaching) {
  const auto cfg = model::presets::tiny();
  const auto reqs = shared_prefix_requests(cfg, 6, 24, 6);
  const auto ref = nn::generate_reference(cfg, kSeed, reqs);

  PipelineRuntime rt(options(true), small_throttle());
  const auto report = rt.run(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(report.requests[i].completed);
    EXPECT_EQ(report.requests[i].output, ref[i]) << "request " << i;
  }
}

TEST(RuntimePrefixCache, IdenticalPromptsReuseAndStayExact) {
  // The hardest case: prompts are *identical* and a multiple of the block
  // size, so the cache covers everything — the last token must still be
  // computed so logits exist.
  const auto cfg = model::presets::tiny();
  std::vector<nn::GenRequest> reqs;
  const auto prompt = nn::synthetic_prompt(cfg, 7, 32);  // 4 full blocks of 8
  for (int i = 0; i < 4; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = prompt;
    r.max_new_tokens = 6;
    reqs.push_back(std::move(r));
  }
  const auto ref = nn::generate_reference(cfg, kSeed, reqs);

  PipelineRuntime rt(options(true, /*pp=*/4), small_throttle());
  const auto report = rt.run(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(report.requests[i].completed);
    EXPECT_EQ(report.requests[i].output, ref[i]) << "request " << i;
  }
  // Identical outputs across identical prompts, of course.
  EXPECT_EQ(report.requests[0].output, report.requests[3].output);
}

TEST(RuntimePrefixCache, CachingOffMatchesCachingOn) {
  const auto cfg = model::presets::tiny();
  const auto reqs = shared_prefix_requests(cfg, 5, 16, 9);
  PipelineRuntime off(options(false), small_throttle());
  PipelineRuntime on(options(true), small_throttle());
  const auto r_off = off.run(reqs);
  const auto r_on = on.run(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(r_off.requests[i].output, r_on.requests[i].output);
}

TEST(KvManagerAdopt, CapsAtMaxTokensWholeBlocks) {
  kv::KvManager kv(16 * 8, 8, /*prefix_caching=*/true);
  std::vector<kv::TokenId> prompt(32);
  for (std::size_t i = 0; i < prompt.size(); ++i) prompt[i] = static_cast<kv::TokenId>(i);
  ASSERT_EQ(kv.allocate_prompt(1, prompt), 0);
  kv.register_prefix(1, prompt);

  // Cap 31 -> at most 3 whole blocks (24 tokens) despite 4 blocks cached.
  const auto reused = kv.adopt_cached_prefix(2, prompt, 31);
  EXPECT_EQ(reused, 24);
  EXPECT_EQ(kv.seq_tokens(2), 24);

  // Cap below one block -> nothing adopted, no table created.
  EXPECT_EQ(kv.adopt_cached_prefix(3, prompt, 7), 0);
  EXPECT_FALSE(kv.has(3));
}

TEST(KvManagerAdopt, NoCacheMeansZero) {
  kv::KvManager kv(16 * 8, 8, /*prefix_caching=*/false);
  std::vector<kv::TokenId> prompt(16, 1);
  EXPECT_EQ(kv.adopt_cached_prefix(1, prompt, 100), 0);
}

TEST(SequenceSkipPrefill, AccountingAndGuards) {
  engine::Sequence seq(workload::RequestSpec{1, 0.0, 20, 3});
  seq.skip_prefill(8);
  EXPECT_EQ(seq.remaining_prefill(), 12);
  seq.on_chunk_scheduled(12);
  EXPECT_TRUE(seq.on_chunk_completed(true, 1.0));

  engine::Sequence fresh(workload::RequestSpec{2, 0.0, 20, 3});
  EXPECT_THROW(fresh.skip_prefill(20), std::invalid_argument);  // nothing left
  EXPECT_THROW(fresh.skip_prefill(-1), std::invalid_argument);
  fresh.on_chunk_scheduled(4);
  EXPECT_THROW(fresh.skip_prefill(2), std::logic_error);  // too late
}

}  // namespace
}  // namespace gllm::runtime
