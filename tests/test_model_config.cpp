#include "model/config.hpp"

#include <gtest/gtest.h>

namespace gllm::model {
namespace {

TEST(ModelConfig, Qwen14bParamCount) {
  const auto m = presets::qwen2_5_14b();
  const double billions = static_cast<double>(m.total_params()) / 1e9;
  EXPECT_GT(billions, 13.5);
  EXPECT_LT(billions, 16.5);
}

TEST(ModelConfig, Qwen32bParamCount) {
  const auto m = presets::qwen2_5_32b();
  const double billions = static_cast<double>(m.total_params()) / 1e9;
  EXPECT_GT(billions, 31.0);
  EXPECT_LT(billions, 34.5);
}

TEST(ModelConfig, Llama100bParamCount) {
  const auto m = presets::llama3_1_100b();
  const double billions = static_cast<double>(m.total_params()) / 1e9;
  EXPECT_GT(billions, 93.0);
  EXPECT_LT(billions, 107.0);
}

TEST(ModelConfig, Llama8bParamCount) {
  const auto m = presets::llama3_1_8b();
  const double billions = static_cast<double>(m.total_params()) / 1e9;
  EXPECT_GT(billions, 7.2);
  EXPECT_LT(billions, 8.6);
}

TEST(ModelConfig, AttnParamsFormula) {
  auto m = presets::tiny();
  // q: h*(heads*hd), k/v: h*(kv*hd), o: (heads*hd)*h
  const std::int64_t q_dim = static_cast<std::int64_t>(m.n_heads) * m.head_dim;
  const std::int64_t kv_dim = static_cast<std::int64_t>(m.n_kv_heads) * m.head_dim;
  EXPECT_EQ(m.attn_params_per_layer(),
            2 * m.hidden * q_dim + 2 * m.hidden * kv_dim);
}

TEST(ModelConfig, MlpParamsFormula) {
  const auto m = presets::tiny();
  EXPECT_EQ(m.mlp_params_per_layer(), 3LL * m.hidden * m.intermediate);
}

TEST(ModelConfig, KvBytesPerTokenLayer) {
  const auto m = presets::qwen2_5_32b();
  // GQA: 2 (K+V) * 8 kv heads * 128 head dim * 2 bytes = 4096 B
  EXPECT_EQ(m.kv_bytes_per_token_layer(), 4096);
  EXPECT_EQ(m.kv_bytes_per_token(), 4096LL * 64);
}

TEST(ModelConfig, ActivationBytesPerToken) {
  const auto m = presets::qwen2_5_14b();
  EXPECT_EQ(m.activation_bytes_per_token(), 5120LL * 2);
}

TEST(ModelConfig, WeightBytesAreDtypeScaled) {
  auto m = presets::tiny();
  const double bf16 = [&] {
    auto c = m;
    c.dtype_bytes = 2;
    return c.total_weight_bytes();
  }();
  const double fp32 = [&] {
    auto c = m;
    c.dtype_bytes = 4;
    return c.total_weight_bytes();
  }();
  EXPECT_DOUBLE_EQ(fp32, 2.0 * bf16);
}

TEST(ModelConfig, TiedEmbeddingsDropHead) {
  auto m = presets::tiny();
  const auto untied = m.total_params();
  m.tie_embeddings = true;
  EXPECT_EQ(m.total_params(), untied - m.embedding_params());
}

TEST(ModelConfig, ValidateAcceptsPresets) {
  EXPECT_NO_THROW(presets::qwen2_5_14b().validate());
  EXPECT_NO_THROW(presets::qwen2_5_32b().validate());
  EXPECT_NO_THROW(presets::llama3_1_100b().validate());
  EXPECT_NO_THROW(presets::llama3_1_8b().validate());
  EXPECT_NO_THROW(presets::tiny().validate());
}

struct InvalidCase {
  const char* name;
  void (*mutate)(ModelConfig&);
};

class ModelConfigInvalid : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(ModelConfigInvalid, Throws) {
  auto m = presets::tiny();
  GetParam().mutate(m);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, ModelConfigInvalid,
    ::testing::Values(
        InvalidCase{"zero_layers", [](ModelConfig& m) { m.n_layers = 0; }},
        InvalidCase{"zero_hidden", [](ModelConfig& m) { m.hidden = 0; }},
        InvalidCase{"zero_heads", [](ModelConfig& m) { m.n_heads = 0; }},
        InvalidCase{"kv_not_divisor", [](ModelConfig& m) { m.n_kv_heads = 3; }},
        InvalidCase{"zero_kv", [](ModelConfig& m) { m.n_kv_heads = 0; }},
        InvalidCase{"zero_head_dim", [](ModelConfig& m) { m.head_dim = 0; }},
        InvalidCase{"zero_inter", [](ModelConfig& m) { m.intermediate = 0; }},
        InvalidCase{"zero_vocab", [](ModelConfig& m) { m.vocab = 0; }},
        InvalidCase{"zero_dtype", [](ModelConfig& m) { m.dtype_bytes = 0; }}),
    [](const auto& info) { return info.param.name; });

TEST(ModelConfig, GqaRatioPresets) {
  EXPECT_EQ(presets::qwen2_5_32b().n_heads % presets::qwen2_5_32b().n_kv_heads, 0);
  EXPECT_EQ(presets::llama3_1_100b().n_heads / presets::llama3_1_100b().n_kv_heads, 16);
}

}  // namespace
}  // namespace gllm::model
