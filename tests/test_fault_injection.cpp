// Deterministic fault-injection scheduler (net/fault.hpp): one-shot specs
// keyed on (stage, outgoing metadata frame index), plan parsing, and seeded
// random plans — the reproducibility these tests pin down is what makes the
// chaos-recovery proof bar (byte-identical streams) checkable at all.

#include "net/fault.hpp"

#include <gtest/gtest.h>

namespace gllm::net {
namespace {

TEST(FaultInjector, FiresExactlyOnceAtItsCoordinate) {
  FaultInjector inj;
  inj.schedule(FaultSpec{FaultKind::kKillWorker, /*stage=*/1, /*at_frame=*/4});
  ASSERT_EQ(inj.pending_count(), 1u);

  EXPECT_FALSE(inj.on_metadata_frame(1, 3).any());  // wrong frame
  EXPECT_FALSE(inj.on_metadata_frame(0, 4).any());  // wrong stage

  const FiredFaults fired = inj.on_metadata_frame(1, 4);
  EXPECT_TRUE(fired.kill);
  EXPECT_FALSE(fired.drop || fired.corrupt || fired.stall);

  // One-shot: the same coordinate never fires the spent spec again.
  EXPECT_FALSE(inj.on_metadata_frame(1, 4).any());
  EXPECT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(inj.pending_count(), 0u);
}

TEST(FaultInjector, DuplicateSpecsArmOnePerGeneration) {
  // A rebuilt pipeline restarts its frame counters, so scheduling the same
  // (stage, frame) twice means "once per pipeline generation": each visit to
  // the coordinate consumes exactly one of the armed specs.
  FaultInjector inj;
  inj.schedule(FaultSpec{FaultKind::kKillWorker, 0, 0});
  inj.schedule(FaultSpec{FaultKind::kKillWorker, 0, 0});

  EXPECT_TRUE(inj.on_metadata_frame(0, 0).kill);  // generation 1
  EXPECT_TRUE(inj.on_metadata_frame(0, 0).kill);  // generation 2
  EXPECT_FALSE(inj.on_metadata_frame(0, 0).any());
  EXPECT_EQ(inj.fired_count(), 2);
}

TEST(FaultInjector, DistinctKindsFireTogether) {
  FaultInjector inj;
  inj.schedule(FaultSpec{FaultKind::kDropFrame, 2, 7});
  inj.schedule(FaultSpec{FaultKind::kStallHeartbeat, 2, 7});
  const FiredFaults fired = inj.on_metadata_frame(2, 7);
  EXPECT_TRUE(fired.drop);
  EXPECT_TRUE(fired.stall);
  EXPECT_FALSE(fired.kill || fired.corrupt);
  EXPECT_EQ(inj.fired_count(), 2);
}

TEST(FaultInjector, ParseAcceptsPlansAndRejectsGarbage) {
  const auto inj = FaultInjector::parse("kill:1@4,drop:0@2,corrupt:3@7,stall:2@0");
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->pending_count(), 4u);
  EXPECT_TRUE(inj->on_metadata_frame(1, 4).kill);
  EXPECT_TRUE(inj->on_metadata_frame(0, 2).drop);
  EXPECT_TRUE(inj->on_metadata_frame(3, 7).corrupt);
  EXPECT_TRUE(inj->on_metadata_frame(2, 0).stall);

  EXPECT_THROW(FaultInjector::parse("explode:1@4"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("kill:x@4"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse("kill:1"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse(""), std::invalid_argument);
}

TEST(FaultInjector, RandomPlanIsSeedReproducible) {
  const std::uint64_t seed = 42;
  const int pp = 4;
  const int n = 6;
  const auto a = FaultInjector::random_plan(seed, pp, n, /*frame_window=*/16);
  const auto b = FaultInjector::random_plan(seed, pp, n, /*frame_window=*/16);
  ASSERT_EQ(a->pending_count(), static_cast<std::size_t>(n));

  // Sweep every coordinate in the window on both injectors; the fired
  // patterns must match exactly (same seed, same plan).
  for (int stage = 0; stage < pp; ++stage) {
    for (std::uint64_t frame = 0; frame < 16; ++frame) {
      const FiredFaults fa = a->on_metadata_frame(stage, frame);
      const FiredFaults fb = b->on_metadata_frame(stage, frame);
      EXPECT_EQ(fa.drop, fb.drop) << stage << "@" << frame;
      EXPECT_EQ(fa.corrupt, fb.corrupt) << stage << "@" << frame;
      EXPECT_EQ(fa.kill, fb.kill) << stage << "@" << frame;
      EXPECT_EQ(fa.stall, fb.stall) << stage << "@" << frame;
    }
  }
  // Duplicate draws (same kind at the same coordinate) fire one per sweep
  // visit, so compare the two plans rather than assuming n distinct specs.
  EXPECT_GE(a->fired_count(), 1);
  EXPECT_EQ(a->fired_count(), b->fired_count());

  // A different seed must produce a different plan (overwhelmingly likely
  // with 6 draws over a 4x16x4 coordinate space).
  const auto c = FaultInjector::random_plan(seed + 1, pp, n, 16);
  bool differs = false;
  const auto d = FaultInjector::random_plan(seed, pp, n, 16);
  for (int stage = 0; stage < pp && !differs; ++stage) {
    for (std::uint64_t frame = 0; frame < 16 && !differs; ++frame) {
      const FiredFaults fc = c->on_metadata_frame(stage, frame);
      const FiredFaults fd = d->on_metadata_frame(stage, frame);
      differs = fc.drop != fd.drop || fc.corrupt != fd.corrupt || fc.kill != fd.kill ||
                fc.stall != fd.stall;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, KindNamesRoundTrip) {
  EXPECT_STREQ(to_string(FaultKind::kDropFrame), "drop");
  EXPECT_STREQ(to_string(FaultKind::kCorruptFrame), "corrupt");
  EXPECT_STREQ(to_string(FaultKind::kKillWorker), "kill");
  EXPECT_STREQ(to_string(FaultKind::kStallHeartbeat), "stall");
}

}  // namespace
}  // namespace gllm::net
