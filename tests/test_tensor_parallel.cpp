// Two-dimensional parallelism proof bar (tentpole of the TP×PP refactor):
// greedy token streams from the real runtime must be byte-identical to the
// single-stage unsharded reference for every (pp, tp) in {1,2,4} × {1,2,4},
// and the worker-failure recovery path must preserve that equality when the
// respawned pipeline is tensor-parallel.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <map>

#include "net/fault.hpp"
#include "nn/reference.hpp"
#include "obs/obs.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "runtime/service.hpp"
#include "sched/token_throttle.hpp"
#include "tsan_skip.hpp"

namespace gllm {
namespace {

constexpr std::uint64_t kWeightSeed = 1234;

std::vector<nn::GenRequest> make_requests(const model::ModelConfig& cfg, int n) {
  std::vector<nn::GenRequest> reqs;
  for (int i = 0; i < n; ++i) {
    nn::GenRequest r;
    r.id = i;
    r.prompt = nn::synthetic_prompt(cfg, 500 + static_cast<std::uint64_t>(i),
                                    6 + (i * 7) % 30);
    r.max_new_tokens = 3 + i % 9;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

runtime::RuntimeOptions tiny_options(int pp, int tp) {
  runtime::RuntimeOptions opt;
  opt.model = model::presets::tiny();
  opt.pp = pp;
  opt.tp = tp;
  opt.kv_capacity_tokens = 2048;
  opt.kv_block_size = 8;
  opt.weight_seed = kWeightSeed;
  return opt;
}

std::shared_ptr<sched::IScheduler> small_throttle() {
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 4;
  return std::make_shared<sched::TokenThrottleScheduler>(p);
}

bool no_children_left() {
  const pid_t got = ::waitpid(-1, nullptr, WNOHANG);
  return got < 0 && errno == ECHILD;
}

/// (pp, tp) grid — the full two-dimensional parallelism space under test.
class TpPpTokenEquality : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TpPpTokenEquality, MatchesUnshardedReferenceExactly) {
  const auto [pp, tp] = GetParam();
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 10);
  // The reference is the unsharded (tp=1) single-stage greedy decoder.
  const auto ref = nn::generate_reference(cfg, kWeightSeed, reqs);

  runtime::PipelineRuntime rt(tiny_options(pp, tp), small_throttle());
  const auto report = rt.run(reqs);
  ASSERT_EQ(report.requests.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(report.requests[i].completed);
    EXPECT_EQ(report.requests[i].output, ref[i])
        << "request " << i << " diverged at pp=" << pp << " tp=" << tp;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TpPpTokenEquality,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 2}, std::pair{1, 4},
                      std::pair{2, 1}, std::pair{2, 2}, std::pair{2, 4},
                      std::pair{4, 1}, std::pair{4, 2}, std::pair{4, 4}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "pp" + std::to_string(info.param.first) + "_tp" +
             std::to_string(info.param.second);
    });

TEST(TensorParallelRuntime, PreemptionUnderTinyKvStillTokenExact) {
  // Recompute preemption rebuilds per-shard KV pools; the replayed stream
  // must stay byte-identical when stages are sharded.
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 8);
  const auto ref = nn::generate_reference(cfg, kWeightSeed, reqs);

  auto opt = tiny_options(2, 2);
  opt.kv_capacity_tokens = 160;  // forces recompute preemption
  sched::ThrottleParams p;
  p.max_p = 64;
  p.min_p = 8;
  p.iter_t = 2;
  p.enable_ut = false;
  p.kv_thresh = 0.0;
  runtime::PipelineRuntime rt(opt, std::make_shared<sched::TokenThrottleScheduler>(p));
  const auto report = rt.run(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(report.requests[i].completed);
    EXPECT_EQ(report.requests[i].output, ref[i]) << "request " << i;
  }
}

TEST(TensorParallelRuntime, InvalidTpRejectedUpfront) {
  // tiny() has 4 KV heads: tp=3 breaks divisibility, tp=8 breaks GQA groups.
  EXPECT_THROW(runtime::PipelineRuntime(tiny_options(2, 3), small_throttle()).run({}),
               std::invalid_argument);
  EXPECT_THROW(runtime::PipelineRuntime(tiny_options(2, 8), small_throttle()).run({}),
               std::invalid_argument);
}

TEST(TensorParallelRecovery, ForkKillReplaysByteIdenticalAtTp2) {
  GLLM_SKIP_IF_TSAN_FORK();
  // The fault-recovery replay at tp=2: SIGKILL stage 1 of a forked pp=2
  // pipeline mid-run; the respawned sharded pipeline must finish every
  // recovered request with the exact fault-free stream.
  const auto cfg = model::presets::tiny();
  const auto reqs = make_requests(cfg, 8);
  const auto ref = nn::generate_reference(cfg, kWeightSeed, reqs);

  auto opt = tiny_options(2, 2);
  opt.deployment.mode = runtime::DeploymentOptions::Mode::kFork;
  opt.deployment.heartbeat_interval_s = 0.05;
  opt.deployment.heartbeat_timeout_s = 1.0;
  opt.deployment.fault_injector = net::FaultInjector::parse("kill:1@4");
  opt.fault.restart_backoff_s = 0.01;
  opt.fault.sample_wait_timeout_s = 10.0;

  obs::Observability observability;
  opt.obs = &observability;

  runtime::PipelineService service(opt, small_throttle());
  service.start();
  for (const auto& r : reqs) service.submit(r);
  service.drain();
  std::map<std::int64_t, runtime::RuntimeRequestRecord> records;
  for (const auto& rec : service.results()) records[rec.id] = rec;
  const int restarts = service.pipeline_restarts();
  service.stop();

  ASSERT_EQ(records.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto& rec = records.at(static_cast<std::int64_t>(i));
    if (rec.completed) {
      EXPECT_EQ(rec.output, ref[i]) << "request " << i << " diverged after recovery";
      EXPECT_EQ(rec.error, runtime::StreamError::kNone);
    } else {
      EXPECT_NE(rec.error, runtime::StreamError::kNone);
    }
  }
  EXPECT_GE(restarts, 1) << "the injected kill never triggered a respawn";
  EXPECT_EQ(observability.fault().degraded->value(), 0.0);
  EXPECT_TRUE(no_children_left());
}

}  // namespace
}  // namespace gllm
