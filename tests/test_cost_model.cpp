#include "model/cost.hpp"

#include <gtest/gtest.h>

#include "hw/gpu.hpp"

namespace gllm::model {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  ModelConfig cfg_ = presets::qwen2_5_32b();
  hw::GpuSpec gpu_ = hw::gpus::l20_48g();
  PartitionPlan plan_{cfg_, 4};
  CostModel cost_{cfg_, gpu_};
};

TEST_F(CostModelTest, EmptyBatchIsFree) {
  EXPECT_DOUBLE_EQ(cost_.stage_time(plan_.stage(0), {}), 0.0);
  const WorkItem zero{0, 100, false, false};
  EXPECT_DOUBLE_EQ(cost_.stage_time(plan_.stage(0), {&zero, 1}), 0.0);
}

TEST_F(CostModelTest, MonotonicInTokens) {
  double prev = 0.0;
  for (int n : {32, 128, 512, 2048}) {
    const WorkItem item{n, 0, true, true};
    const double t = cost_.stage_time(plan_.stage(0), {&item, 1});
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(CostModelTest, DecodeBatchBoundedBelowByWeightStreaming) {
  // A 1-token decode batch cannot beat the time to stream the stage weights.
  const WorkItem item{1, 500, false, true};
  const auto bd = cost_.stage_breakdown(plan_.stage(1), {&item, 1});
  const double weight_floor = bd.weight_bytes / gpu_.effective_mem_bw();
  EXPECT_GE(bd.gemm_time, weight_floor * 0.999);
  // And it is on the order of 20ms for a 16-layer slice of a 32B model.
  EXPECT_GT(bd.total, 0.010);
  EXPECT_LT(bd.total, 0.100);
}

TEST_F(CostModelTest, PrefillChunkIsComputeBound) {
  const WorkItem item{2048, 0, true, true};
  const auto bd = cost_.stage_breakdown(plan_.stage(1), {&item, 1});
  EXPECT_GT(bd.gemm_flops / (gpu_.peak_flops * gpu_.max_mfu),
            bd.weight_bytes / gpu_.effective_mem_bw());
  // Roughly 0.8-1.0s for a 2048-token chunk of a 32B/4 stage on L20.
  EXPECT_GT(bd.total, 0.4);
  EXPECT_LT(bd.total, 2.0);
}

TEST_F(CostModelTest, QuadraticAttentionTermGrowsWithContext) {
  const WorkItem short_ctx{256, 0, true, false};
  const WorkItem long_ctx{256, 8192, true, false};
  const double t_short = cost_.stage_time(plan_.stage(1), {&short_ctx, 1});
  const double t_long = cost_.stage_time(plan_.stage(1), {&long_ctx, 1});
  EXPECT_GT(t_long, t_short);
}

TEST_F(CostModelTest, DecodeKvReadsGrowWithContext) {
  const WorkItem near{1, 64, false, true};
  const WorkItem far{1, 65536, false, true};
  const auto bd_near = cost_.stage_breakdown(plan_.stage(1), {&near, 1});
  const auto bd_far = cost_.stage_breakdown(plan_.stage(1), {&far, 1});
  EXPECT_GT(bd_far.kv_bytes, 100 * bd_near.kv_bytes);
  EXPECT_GT(bd_far.total, bd_near.total);
}

TEST_F(CostModelTest, TpShardsComputeAndTraffic) {
  const WorkItem item{1024, 0, true, true};
  const auto bd1 = cost_.stage_breakdown(plan_.stage(0), {&item, 1}, 1);
  const auto bd4 = cost_.stage_breakdown(plan_.stage(0), {&item, 1}, 4);
  EXPECT_NEAR(bd4.gemm_flops, bd1.gemm_flops / 4.0, 1e-3);
  EXPECT_NEAR(bd4.weight_bytes, bd1.weight_bytes / 4.0, 1e-3);
  EXPECT_LT(bd4.total, bd1.total);
  EXPECT_GT(bd4.total, bd1.total / 4.5);  // overheads don't shard
}

TEST_F(CostModelTest, InvalidTpThrows) {
  const WorkItem item{8, 0, true, false};
  EXPECT_THROW(cost_.stage_time(plan_.stage(0), {&item, 1}, 0), std::invalid_argument);
}

TEST_F(CostModelTest, BreakdownTotalConsistent) {
  const WorkItem items[2] = {{512, 0, true, true}, {1, 900, false, true}};
  const auto bd = cost_.stage_breakdown(plan_.stage(3), items);
  EXPECT_NEAR(bd.total, bd.gemm_time + bd.attn_time + bd.comm_time + bd.overhead, 1e-12);
  EXPECT_DOUBLE_EQ(bd.total, cost_.stage_time(plan_.stage(3), items));
}

TEST_F(CostModelTest, CollectivesFreeAtTpOne) {
  const WorkItem item{512, 0, true, true};
  const auto bd = cost_.stage_breakdown(plan_.stage(0), {&item, 1}, 1);
  EXPECT_DOUBLE_EQ(bd.comm_bytes, 0.0);
  EXPECT_DOUBLE_EQ(bd.comm_time, 0.0);
}

TEST_F(CostModelTest, CollectivesChargedAtTpGreaterThanOne) {
  // Two ring all-reduces per layer over the activation tensor: the collective
  // term is nonzero, appears in the total, and matches 2 * layers * act bytes.
  const WorkItem item{512, 0, true, true};
  const auto shape = plan_.stage(0);
  const auto bd = cost_.stage_breakdown(shape, {&item, 1}, 4);
  EXPECT_GT(bd.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(bd.comm_bytes, 2.0 * shape.n_layers * cost_.activation_bytes(512));
  EXPECT_NEAR(bd.total, bd.gemm_time + bd.attn_time + bd.comm_time + bd.overhead, 1e-12);
  // The explicit-CommModel overload agrees with the default tp link.
  const auto bd2 = cost_.stage_breakdown(shape, {&item, 1}, 4, cost_.tp_comm());
  EXPECT_DOUBLE_EQ(bd.comm_time, bd2.comm_time);
}

TEST_F(CostModelTest, CollectiveTermScalesWithHiddenSize) {
  // Activation all-reduce volume is proportional to hidden, so a wider model
  // pays proportionally more collective time on the same link and layer count.
  auto wide = cfg_;
  wide.hidden *= 2;
  wide.name = "wide";
  const CostModel wide_cost(wide, gpu_);
  const PartitionPlan wide_plan(wide, 4);
  const WorkItem item{512, 0, true, false};
  const auto narrow_bd = cost_.stage_breakdown(plan_.stage(1), {&item, 1}, 4);
  const auto wide_bd = wide_cost.stage_breakdown(wide_plan.stage(1), {&item, 1}, 4);
  EXPECT_GT(wide_bd.comm_bytes, 1.9 * narrow_bd.comm_bytes);
  EXPECT_GT(wide_bd.comm_time, narrow_bd.comm_time);
}

TEST_F(CostModelTest, SlowerTpLinkChargesMoreCollectiveTime) {
  const WorkItem item{1024, 0, true, false};
  const auto shape = plan_.stage(0);
  const auto nvlink = cost_.stage_breakdown(shape, {&item, 1}, 4, hw::CommModel(hw::links::nvlink()));
  const auto pcie = cost_.stage_breakdown(shape, {&item, 1}, 4, hw::CommModel(hw::links::pcie4()));
  EXPECT_GT(pcie.comm_time, nvlink.comm_time);
  EXPECT_DOUBLE_EQ(pcie.comm_bytes, nvlink.comm_bytes);  // same traffic, slower link
}

TEST_F(CostModelTest, LmHeadChargedOnlyWhenSampling) {
  const WorkItem sampling{64, 0, true, true};
  const WorkItem not_sampling{64, 0, true, false};
  const auto with = cost_.stage_breakdown(plan_.stage(3), {&sampling, 1});
  const auto without = cost_.stage_breakdown(plan_.stage(3), {&not_sampling, 1});
  EXPECT_GT(with.gemm_flops, without.gemm_flops);
  // Non-head stages never charge the head.
  const auto mid_a = cost_.stage_breakdown(plan_.stage(1), {&sampling, 1});
  const auto mid_b = cost_.stage_breakdown(plan_.stage(1), {&not_sampling, 1});
  EXPECT_DOUBLE_EQ(mid_a.gemm_flops, mid_b.gemm_flops);
}

TEST_F(CostModelTest, ActivationBytes) {
  EXPECT_DOUBLE_EQ(cost_.activation_bytes(100), 100.0 * 5120 * 2);
}

TEST_F(CostModelTest, KvBytesPerTokenStage) {
  EXPECT_DOUBLE_EQ(cost_.kv_bytes_per_token_stage(plan_.stage(0)), 4096.0 * 16);
}

TEST(KvCapacity, PaperConfigsFit) {
  // 32B over 4x L20-48G leaves room for >100k tokens of KV.
  const PartitionPlan plan(presets::qwen2_5_32b(), 4);
  const auto cap = kv_token_capacity(plan, hw::gpus::l20_48g(), 0.9);
  EXPECT_GT(cap, 100000);

  // 100B over 4x A800-80G fits.
  const PartitionPlan plan100(presets::llama3_1_100b(), 4);
  EXPECT_GT(kv_token_capacity(plan100, hw::gpus::a800_80g(), 0.9), 50000);
}

TEST(KvCapacity, ModelTooBigYieldsZero) {
  const PartitionPlan plan(presets::qwen2_5_32b(), 1);
  EXPECT_EQ(kv_token_capacity(plan, hw::gpus::l20_48g(), 0.9), 0);
}

TEST(KvCapacity, MonotonicInUtilAndTp) {
  const PartitionPlan plan(presets::qwen2_5_32b(), 4);
  const auto lo = kv_token_capacity(plan, hw::gpus::l20_48g(), 0.5);
  const auto hi = kv_token_capacity(plan, hw::gpus::l20_48g(), 0.95);
  EXPECT_GT(hi, lo);
  const auto tp2 = kv_token_capacity(plan, hw::gpus::l20_48g(), 0.9, 2);
  EXPECT_GT(tp2, kv_token_capacity(plan, hw::gpus::l20_48g(), 0.9, 1));
}

TEST(KvCapacity, InvalidArgsThrow) {
  const PartitionPlan plan(presets::tiny(), 1);
  EXPECT_THROW(kv_token_capacity(plan, hw::gpus::l20_48g(), 0.0), std::invalid_argument);
  EXPECT_THROW(kv_token_capacity(plan, hw::gpus::l20_48g(), 1.1), std::invalid_argument);
  EXPECT_THROW(kv_token_capacity(plan, hw::gpus::l20_48g(), 0.5, 0), std::invalid_argument);
}

TEST(ParallelPlanSearch, ReturnsTwoDimensionalPlansBestFirst) {
  // 32B over a 4x L20 node: the search must surface genuinely 2-D mappings
  // (tp > 1) alongside pure-PP ones, sorted by modelled throughput.
  const auto plans =
      search_parallel_plans(presets::qwen2_5_32b(), hw::clusters::l20_node(4), 0.9);
  ASSERT_FALSE(plans.empty());
  bool saw_tp = false, saw_pp = false;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_LE(plans[i].pp * plans[i].tp, 4);
    EXPECT_GE(plans[i].kv_capacity_tokens, 2048);
    EXPECT_GT(plans[i].throughput, 0.0);
    if (i > 0) EXPECT_GE(plans[i - 1].throughput, plans[i].throughput * 0.999999);
    saw_tp |= plans[i].tp > 1;
    saw_pp |= plans[i].pp > 1;
  }
  EXPECT_TRUE(saw_tp);
  EXPECT_TRUE(saw_pp);
}

TEST(ParallelPlanSearch, InfeasibleModelYieldsNoPlans) {
  // A 100B model cannot fit a single 48G GPU at any (pp, tp) <= 4 devices
  // once the KV floor is demanded... but it can with pp*tp = 4; demand an
  // absurd KV floor instead so every mapping is memory-infeasible.
  const auto plans = search_parallel_plans(presets::llama3_1_100b(),
                                           hw::clusters::l20_node(4), 0.9,
                                           /*min_kv_tokens=*/100'000'000);
  EXPECT_TRUE(plans.empty());
}

TEST(ParallelPlanSearch, CollectivesMakeTpDearerOnSlowLinks) {
  // On a PCIe node, every tp>1 plan pays a visible collective tax: the same
  // (pp, tp) shape must model strictly more step time than its no-comm
  // counterpart would — verified via the breakdown's comm_time > 0.
  const auto cfg = presets::qwen2_5_32b();
  const auto cluster = hw::clusters::l20_node(4);
  const auto plans = search_parallel_plans(cfg, cluster, 0.9);
  for (const auto& p : plans) {
    if (p.tp == 1) continue;
    const CostModel cost(cfg, cluster.gpu);
    const PartitionPlan part(cfg, p.pp);
    const WorkItem item{2048, 0, true, true};
    const hw::CommModel comm(cluster.link_between(0, p.tp - 1));
    const auto bd = cost.stage_breakdown(part.stage(0), {&item, 1}, p.tp, comm);
    EXPECT_GT(bd.comm_time, 0.0) << "pp=" << p.pp << " tp=" << p.tp;
  }
}

TEST(CostModelScaling, FasterGpuIsFaster) {
  const auto cfg = presets::qwen2_5_14b();
  const PartitionPlan plan(cfg, 4);
  const CostModel slow(cfg, hw::gpus::l20_48g());
  const CostModel fast(cfg, hw::gpus::h100_80g());
  const WorkItem item{2048, 0, true, true};
  EXPECT_LT(fast.stage_time(plan.stage(0), {&item, 1}),
            slow.stage_time(plan.stage(0), {&item, 1}));
}

TEST(CostModelScaling, BatchingDecodesAmortizesWeights) {
  // Per-token decode cost falls sharply as the batch grows.
  const auto cfg = presets::qwen2_5_32b();
  const PartitionPlan plan(cfg, 4);
  const CostModel cost(cfg, hw::gpus::l20_48g());
  std::vector<WorkItem> one{{1, 500, false, true}};
  std::vector<WorkItem> many(64, WorkItem{1, 500, false, true});
  const double t1 = cost.stage_time(plan.stage(1), one);
  const double t64 = cost.stage_time(plan.stage(1), many);
  EXPECT_LT(t64, t1 * 8);  // far better than linear scaling
}

}  // namespace
}  // namespace gllm::model
