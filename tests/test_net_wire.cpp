// Wire-format coverage for gllm::net: randomized round-trip property tests
// over the runtime message types, and adversarial-input tests (truncation,
// bad magic/version, corrupt checksum, garbage bytes) that must produce
// decode errors — never a crash or an over-read (enforced by the ASan/UBSan
// CI job).

#include "net/frame.hpp"
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gllm::net {
namespace {

template <typename T>
std::vector<std::uint8_t> encoded(const T& msg) {
  WireWriter w;
  encode(w, msg);
  return w.take();
}

template <typename T>
bool decoded(std::span<const std::uint8_t> bytes, T& out) {
  WireReader r(bytes);
  return decode(r, out) && r.done();
}

runtime::StepMetadata random_metadata(util::Rng& rng) {
  runtime::StepMetadata m;
  m.batch_id = rng.next_u64();
  const auto n_items = rng.uniform_int(0, 6);
  for (std::int64_t i = 0; i < n_items; ++i) {
    runtime::ItemMeta im;
    im.seq = rng.uniform_int(-1000, 1'000'000);
    im.n_tokens = static_cast<int>(rng.uniform_int(0, 512));
    im.context = rng.uniform_int(0, 1 << 20);
    const auto n_blocks = rng.uniform_int(0, 16);
    for (std::int64_t b = 0; b < n_blocks; ++b)
      im.blocks.push_back(static_cast<kv::BlockId>(rng.uniform_int(0, 1 << 20)));
    im.is_prefill = rng.bernoulli(0.5);
    im.last_chunk = rng.bernoulli(0.5);
    im.wants_logits = rng.bernoulli(0.5);
    if (im.n_tokens > 1)
      im.spec_tokens = static_cast<int>(rng.uniform_int(0, im.n_tokens - 1));
    const auto n_tokens = rng.uniform_int(0, 32);
    for (std::int64_t t = 0; t < n_tokens; ++t)
      im.input_tokens.push_back(static_cast<nn::TokenId>(rng.uniform_int(0, 1 << 16)));
    m.items.push_back(std::move(im));
  }
  return m;
}

runtime::Activations random_activations(util::Rng& rng) {
  runtime::Activations a;
  a.batch_id = rng.next_u64();
  const auto rows = rng.uniform_int(0, 8);
  const auto cols = rng.uniform_int(1, 24);
  a.hidden = tensor::Tensor({rows, cols});
  for (auto& x : a.hidden.flat()) x = static_cast<float>(rng.normal());
  return a;
}

runtime::SampleResult random_samples(util::Rng& rng) {
  runtime::SampleResult s;
  s.batch_id = rng.next_u64();
  const auto n = rng.uniform_int(0, 20);
  for (std::int64_t i = 0; i < n; ++i)
    s.tokens.emplace_back(rng.uniform_int(0, 1 << 20),
                          static_cast<nn::TokenId>(rng.uniform_int(0, 1 << 16)));
  return s;
}

bool operator_eq(const runtime::ItemMeta& a, const runtime::ItemMeta& b) {
  return a.seq == b.seq && a.n_tokens == b.n_tokens && a.context == b.context &&
         a.blocks == b.blocks && a.is_prefill == b.is_prefill &&
         a.last_chunk == b.last_chunk && a.wants_logits == b.wants_logits &&
         a.spec_tokens == b.spec_tokens && a.input_tokens == b.input_tokens;
}

// --- round trips -------------------------------------------------------------

TEST(WireRoundTrip, StepMetadataRandomized) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed);
    const auto m = random_metadata(rng);
    runtime::StepMetadata out;
    ASSERT_TRUE(decoded(encoded(m), out)) << "seed " << seed;
    EXPECT_EQ(out.batch_id, m.batch_id);
    ASSERT_EQ(out.items.size(), m.items.size());
    for (std::size_t i = 0; i < m.items.size(); ++i)
      EXPECT_TRUE(operator_eq(out.items[i], m.items[i])) << "seed " << seed << " item " << i;
  }
}

TEST(WireRoundTrip, ActivationsRandomized) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed * 77);
    const auto a = random_activations(rng);
    runtime::Activations out;
    ASSERT_TRUE(decoded(encoded(a), out)) << "seed " << seed;
    EXPECT_EQ(out.batch_id, a.batch_id);
    EXPECT_EQ(out.hidden.shape(), a.hidden.shape());
    const auto in = a.hidden.flat();
    const auto got = out.hidden.flat();
    ASSERT_EQ(got.size(), in.size());
    // Bit-exact: floats travel as IEEE-754 bit patterns.
    for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(got[i], in[i]);
  }
}

TEST(WireRoundTrip, SampleResultRandomized) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed * 1234 + 5);
    const auto s = random_samples(rng);
    runtime::SampleResult out;
    ASSERT_TRUE(decoded(encoded(s), out)) << "seed " << seed;
    EXPECT_EQ(out.batch_id, s.batch_id);
    EXPECT_EQ(out.tokens, s.tokens);
  }
}

TEST(WireRoundTrip, StreamEventAndControlMessages) {
  const runtime::StreamEvent ev{-42, 7, true};
  runtime::StreamEvent ev_out;
  ASSERT_TRUE(decoded(encoded(ev), ev_out));
  EXPECT_EQ(ev_out.request_id, ev.request_id);
  EXPECT_EQ(ev_out.token, ev.token);
  EXPECT_EQ(ev_out.is_last, ev.is_last);

  Hello hello;
  hello.requested_stage = 3;
  hello.act_in_port = 40123;
  Hello hello_out;
  ASSERT_TRUE(decoded(encoded(hello), hello_out));
  EXPECT_EQ(hello_out.wire_version, kWireVersion);
  EXPECT_EQ(hello_out.requested_stage, 3);
  EXPECT_EQ(hello_out.act_in_port, 40123);

  HelloAck ack;
  ack.stage = 1;
  ack.pp = 4;
  ack.tp = 2;
  ack.model = model::presets::tiny();
  ack.weight_seed = 99;
  ack.kv_capacity_tokens = 4096;
  ack.kv_block_size = 16;
  ack.greedy_sampling = false;
  ack.top_k = 40;
  ack.temperature = 0.7f;
  ack.sampler_seed = 5;
  ack.next_host = "10.0.0.7";
  ack.next_port = 31999;
  ack.heartbeat_interval_s = 0.125;
  ack.heartbeat_timeout_s = 3.5;
  HelloAck out;
  ASSERT_TRUE(decoded(encoded(ack), out));
  EXPECT_EQ(out.stage, ack.stage);
  EXPECT_EQ(out.pp, ack.pp);
  EXPECT_EQ(out.tp, ack.tp);
  EXPECT_EQ(out.model.name, ack.model.name);
  EXPECT_EQ(out.model.n_layers, ack.model.n_layers);
  EXPECT_EQ(out.model.vocab, ack.model.vocab);
  EXPECT_EQ(out.weight_seed, ack.weight_seed);
  EXPECT_EQ(out.kv_capacity_tokens, ack.kv_capacity_tokens);
  EXPECT_EQ(out.kv_block_size, ack.kv_block_size);
  EXPECT_EQ(out.greedy_sampling, ack.greedy_sampling);
  EXPECT_EQ(out.top_k, ack.top_k);
  EXPECT_EQ(out.temperature, ack.temperature);
  EXPECT_EQ(out.sampler_seed, ack.sampler_seed);
  EXPECT_EQ(out.next_host, ack.next_host);
  EXPECT_EQ(out.next_port, ack.next_port);
  EXPECT_EQ(out.heartbeat_interval_s, ack.heartbeat_interval_s);
  EXPECT_EQ(out.heartbeat_timeout_s, ack.heartbeat_timeout_s);
}

// --- adversarial inputs ------------------------------------------------------

TEST(WireAdversarial, TruncatedMessageAtEveryPrefixFailsCleanly) {
  util::Rng rng(7);
  const auto bytes = encoded(random_metadata(rng));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    runtime::StepMetadata out;
    // The item/block/token counts at the head of the encoding pin the exact
    // byte length, so every strict prefix must fail to decode.
    EXPECT_FALSE(decoded(std::span<const std::uint8_t>(bytes.data(), len), out))
        << "prefix " << len;
  }
}

TEST(WireAdversarial, TruncatedActivationsNeverOverRead) {
  util::Rng rng(11);
  const auto bytes = encoded(random_activations(rng));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    runtime::Activations out;
    WireReader r(std::span<const std::uint8_t>(bytes.data(), len));
    decode(r, out);  // must not crash or over-read (ASan-checked)
  }
}

TEST(WireAdversarial, RandomBytesNeverCrashDecoders) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(static_cast<std::size_t>(rng.uniform_int(0, 96)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    {
      runtime::StepMetadata out;
      WireReader r(junk);
      decode(r, out);
    }
    {
      runtime::Activations out;
      WireReader r(junk);
      decode(r, out);
    }
    {
      runtime::SampleResult out;
      WireReader r(junk);
      decode(r, out);
    }
    {
      HelloAck out;
      WireReader r(junk);
      decode(r, out);
    }
  }
}

TEST(WireAdversarial, AbsurdCountsRejectedBeforeAllocation) {
  // StepMetadata claiming 2^32-1 items in a 16-byte payload must fail fast
  // (and certainly not reserve gigabytes).
  WireWriter w;
  w.u64(1);            // batch_id
  w.u32(0xFFFFFFFFu);  // item count
  w.u32(0);
  const auto bytes = w.take();
  runtime::StepMetadata out;
  WireReader r(bytes);
  EXPECT_FALSE(decode(r, out));

  // Activations with a huge dim product must be rejected by the numel guard.
  WireWriter w2;
  w2.u64(2);
  w2.u8(3);
  w2.i64(1 << 20);
  w2.i64(1 << 20);
  w2.i64(1 << 20);
  const auto bytes2 = w2.take();
  runtime::Activations act;
  WireReader r2(bytes2);
  EXPECT_FALSE(decode(r2, act));
}

TEST(WireAdversarial, NegativeTensorDimRejected) {
  WireWriter w;
  w.u64(3);
  w.u8(2);
  w.i64(-4);
  w.i64(4);
  const auto bytes = w.take();
  runtime::Activations act;
  WireReader r(bytes);
  EXPECT_FALSE(decode(r, act));
}

TEST(WireAdversarial, NonCanonicalBoolRejected) {
  WireWriter w;
  w.i64(1);  // request_id
  w.i32(2);  // token
  w.u8(7);   // is_last must be 0 or 1
  const auto bytes = w.take();
  runtime::StreamEvent ev;
  WireReader r(bytes);
  EXPECT_FALSE(decode(r, ev));
}

// --- framing -----------------------------------------------------------------

TEST(FrameCodec, RoundTripAndExactConsumption) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto buf = encode_frame(MsgType::kStepMetadata, payload);
  EXPECT_EQ(buf.size(), kFrameHeaderBytes + payload.size());
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(buf, out, consumed), FrameDecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kStepMetadata);
  EXPECT_EQ(out.payload, payload);
  EXPECT_EQ(consumed, buf.size());
}

TEST(FrameCodec, EmptyPayloadFrames) {
  const auto buf = encode_frame(MsgType::kHeartbeat, {});
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(buf, out, consumed), FrameDecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kHeartbeat);
  EXPECT_TRUE(out.payload.empty());
}

TEST(FrameCodec, TruncatedAtEveryPrefixNeedsMore) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto buf = encode_frame(MsgType::kSampleResult, payload);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_frame(std::span<const std::uint8_t>(buf.data(), len), out, consumed),
              FrameDecodeStatus::kNeedMore)
        << "prefix " << len;
  }
}

TEST(FrameCodec, BadMagicBadVersionTooLarge) {
  auto buf = encode_frame(MsgType::kHello, {});
  Frame out;
  std::size_t consumed = 0;

  auto corrupted = buf;
  corrupted[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(corrupted, out, consumed), FrameDecodeStatus::kBadMagic);

  corrupted = buf;
  corrupted[4] ^= 0xFF;  // version little-endian low byte
  EXPECT_EQ(decode_frame(corrupted, out, consumed), FrameDecodeStatus::kBadVersion);

  corrupted = buf;
  corrupted[8] = 0xFF;  // payload_len bytes 8..11
  corrupted[9] = 0xFF;
  corrupted[10] = 0xFF;
  corrupted[11] = 0xFF;
  EXPECT_EQ(decode_frame(corrupted, out, consumed), FrameDecodeStatus::kTooLarge);
}

TEST(FrameCodec, CorruptPayloadFailsChecksum) {
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40};
  auto buf = encode_frame(MsgType::kActivations, payload);
  for (std::size_t i = kFrameHeaderBytes; i < buf.size(); ++i) {
    auto corrupted = buf;
    corrupted[i] ^= 0x01;
    Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_frame(corrupted, out, consumed), FrameDecodeStatus::kBadChecksum)
        << "byte " << i;
  }
}

TEST(FrameCodec, EveryHeaderBitFlipIsRejected) {
  const std::vector<std::uint8_t> payload = {1, 1, 2, 3, 5, 8};
  const auto buf = encode_frame(MsgType::kStepMetadata, payload);
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      // Flipping the type field changes the frame's meaning but stays a valid
      // frame; every other header byte must make decoding fail.
      if (i == 6 || i == 7) continue;
      auto corrupted = buf;
      corrupted[i] ^= static_cast<std::uint8_t>(1 << bit);
      Frame out;
      std::size_t consumed = 0;
      EXPECT_NE(decode_frame(corrupted, out, consumed), FrameDecodeStatus::kOk)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(FrameCodec, Crc32KnownVector) {
  // IEEE 802.3 check value for "123456789".
  const std::string s = "123456789";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(p, s.size())), 0xCBF43926u);
}

}  // namespace
}  // namespace gllm::net
