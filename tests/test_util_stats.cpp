#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gllm::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, CvZeroMean) {
  OnlineStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cv(), 0.0);  // mean == 0 guard
}

TEST(OnlineStats, CvMatchesDirectComputation) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / 2.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 5.0);
}

TEST(SampleStats, PercentileInterpolates) {
  SampleStats s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(SampleStats, PercentileSingle) {
  SampleStats s;
  s.add(7.0);
  EXPECT_EQ(s.percentile(99), 7.0);
}

TEST(SampleStats, PercentileOutOfRangeThrows) {
  SampleStats s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SampleStats, UnsortedInputHandled) {
  SampleStats s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleStats, AddAfterPercentileStillCorrect) {
  SampleStats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(0.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
}

TEST(SampleStats, EmptyReturnsZeros) {
  SampleStats s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.bucket_weight(0), 2.0);
  EXPECT_EQ(h.bucket_weight(9), 2.0);
  EXPECT_EQ(h.total_weight(), 4.0);
}

TEST(Histogram, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  EXPECT_EQ(h.bucket_weight(0), 3.0);
  EXPECT_EQ(h.total_weight(), 3.0);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, AsciiRendersEveryBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(3.0);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace gllm::util
