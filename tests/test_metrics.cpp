#include "engine/metrics.hpp"

#include <gtest/gtest.h>

namespace gllm::engine {
namespace {

RunResult sample_result() {
  RunResult r;
  r.start_time = 0.0;
  r.end_time = 10.0;
  r.stage_busy_seconds = {8.0, 6.0};
  // Three completed, one failed.
  r.requests = {
      RequestMetrics{0, 0.0, 100, 10, 0.5, 2.0, 0.1, 0, true},
      RequestMetrics{1, 1.0, 200, 20, 1.0, 4.0, 0.2, 1, true},
      RequestMetrics{2, 2.0, 300, 1, 1.5, 1.5, 0.0, 0, true},
      RequestMetrics{3, 3.0, 400, 0, 0.0, 0.0, 0.0, 0, false},
  };
  r.iterations = {
      IterationSample{0.0, 100, 0, 1.0, 0.1},
      IterationSample{1.0, 0, 100, 0.9, 0.1},
      IterationSample{2.0, 50, 50, 0.8, 0.1},
  };
  return r;
}

TEST(RunResult, CompletedAndTokens) {
  const auto r = sample_result();
  EXPECT_EQ(r.completed_requests(), 3u);
  EXPECT_EQ(r.total_tokens(), 100 + 10 + 200 + 20 + 300 + 1);
  EXPECT_EQ(r.output_tokens(), 31);
}

TEST(RunResult, LatencyMeans) {
  const auto r = sample_result();
  EXPECT_DOUBLE_EQ(r.mean_ttft(), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_e2el(), 2.5);
  // TPOT mean only over requests with output_len > 1.
  EXPECT_NEAR(r.mean_tpot(), 0.15, 1e-12);
}

TEST(RunResult, P99Ttft) {
  const auto r = sample_result();
  EXPECT_NEAR(r.p99_ttft(), 1.49, 0.011);
}

TEST(RunResult, ThroughputOverMakespan) {
  const auto r = sample_result();
  EXPECT_DOUBLE_EQ(r.makespan(), 10.0);
  EXPECT_DOUBLE_EQ(r.throughput(), 631.0 / 10.0);
}

TEST(RunResult, SloCountsIncompleteAsViolation) {
  const auto r = sample_result();
  // All three completed meet ttft<=2.0, tpot<=0.3; the failed one violates.
  EXPECT_DOUBLE_EQ(r.slo_attainment(2.0, 0.3), 0.75);
  // Tight TTFT excludes two.
  EXPECT_DOUBLE_EQ(r.slo_attainment(0.6, 0.3), 0.25);
  EXPECT_DOUBLE_EQ(r.slo_attainment(0.0, 0.0), 0.0);
}

TEST(RunResult, StageUtilization) {
  const auto r = sample_result();
  EXPECT_DOUBLE_EQ(r.mean_stage_utilization(), (0.8 + 0.6) / 2.0);
}

TEST(RunResult, TokenCountCv) {
  const auto r = sample_result();
  // Token totals per iteration: 100, 100, 100 -> CV 0.
  EXPECT_DOUBLE_EQ(r.token_count_cv(), 0.0);
}

TEST(RunResult, EmptySafeDefaults) {
  RunResult r;
  EXPECT_EQ(r.completed_requests(), 0u);
  EXPECT_EQ(r.throughput(), 0.0);
  EXPECT_EQ(r.mean_ttft(), 0.0);
  EXPECT_EQ(r.slo_attainment(1, 1), 0.0);
  EXPECT_EQ(r.mean_stage_utilization(), 0.0);
  EXPECT_EQ(r.token_count_cv(), 0.0);
}

TEST(RunResult, CvDetectsVolatility) {
  RunResult balanced, volatile_;
  for (int i = 0; i < 10; ++i) {
    balanced.iterations.push_back(IterationSample{0, 500, 12, 1.0, 0.1});
    volatile_.iterations.push_back(
        IterationSample{0, i % 2 ? 2000 : 0, i % 2 ? 0 : 20, 1.0, 0.1});
  }
  EXPECT_LT(balanced.token_count_cv(), 0.05);
  EXPECT_GT(volatile_.token_count_cv(), 0.8);
}

}  // namespace
}  // namespace gllm::engine
